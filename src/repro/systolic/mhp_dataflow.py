"""MHP dataflow: diagonal computation PEs, everything else transmits.

During a Matrix Hadamard Product every operand is used exactly once, so
the conventional forward-and-reuse dataflow wastes the array.  ONE-SA
instead routes each operand stream through *transmission* PEs to the
*computation* PE on the diagonal of its lane (Section IV-B): PE ``(i, i)``
computes all outputs assigned to lane ``i``; PEs ``(i, j), i != j``
only register and forward.

This module builds the MHP schedule (lane assignment, stream lengths,
PE-role map), the bit-accurate functional execution, and the naive-MHP
baseline used by the dataflow ablation (all PEs compute, paying the
reuse-less operand delivery).

Like the GEMM planner, :func:`plan_mhp` serves repeated shapes from a
bounded LRU and derives the lane assignment lazily — a schedule is pure
analytic metadata until a consumer actually asks for the row lists.
Functional execution is one whole-operand
:func:`fixed_hadamard_mac`: each output element is computed by exactly
one diagonal PE independently of every other, so the reassembled
per-lane result equals the whole-matrix call bit for bit
(:func:`execute_mhp_per_lane` keeps the lane loop as the equivalence
reference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.fixedpoint import fixed_hadamard_mac
from repro.store import get_store, register_namespace
from repro.systolic.config import SystolicConfig
from repro.systolic.pe import PEMode
from repro.systolic.timing import CycleBreakdown, nonlinear_cycles


@dataclass(frozen=True)
class MHPSchedule:
    """Schedule of one Matrix Hadamard Product on a design point."""

    config: SystolicConfig
    m_dim: int
    n_dim: int
    breakdown: CycleBreakdown

    @property
    def lane_rows(self) -> List[np.ndarray]:
        """Row indices assigned to each diagonal lane (derived lazily).

        Rows round-robin over the ``pe_rows`` lanes; the list is built
        on demand so cached schedules hold no per-shape arrays.
        """
        return [
            np.arange(lane, self.m_dim, self.config.pe_rows)
            for lane in range(self.config.pe_rows)
        ]

    @property
    def elements(self) -> int:
        return self.m_dim * self.n_dim

    @property
    def computation_pes(self) -> int:
        """Active (diagonal) PEs during this MHP."""
        return self.config.pe_rows

    @property
    def transmission_pes(self) -> int:
        """PEs demoted to pure operand routing."""
        return self.config.n_pes - self.config.pe_rows

    @property
    def stream_elements_per_channel(self) -> int:
        """Interleaved stream length per input channel (2 per output)."""
        return 2 * self.elements

    def pe_role(self, row: int, col: int) -> PEMode:
        """Role of PE ``(row, col)`` during the MHP (Fig. 4, marks 3/4)."""
        return PEMode.COMPUTATION if row == col else PEMode.TRANSMISSION


# ---------------------------------------------------------------------------
# Plan cache (same bounded-LRU policy as repro.systolic.gemm, served by
# the same process-global cache store under its own namespace).
# ---------------------------------------------------------------------------
MHP_PLAN_NAMESPACE = "systolic.mhp_plans"
_DEFAULT_PLAN_CACHE_CAPACITY = 512
register_namespace(MHP_PLAN_NAMESPACE, max_entries=_DEFAULT_PLAN_CACHE_CAPACITY)


def plan_mhp(
    config: SystolicConfig,
    m_dim: int,
    n_dim: int,
    fused_ipf: bool = True,
    use_cache: bool = True,
) -> MHPSchedule:
    """Build (or fetch) the MHP schedule for an ``M x N`` element matrix."""
    if use_cache:
        key = (config, m_dim, n_dim, fused_ipf)
        store = get_store()
        schedule = store.get(MHP_PLAN_NAMESPACE, key)
        if schedule is not None:
            return schedule
    schedule = MHPSchedule(
        config=config,
        m_dim=m_dim,
        n_dim=n_dim,
        breakdown=nonlinear_cycles(config, m_dim, n_dim, fused_ipf=fused_ipf),
    )
    if use_cache:
        store.put(MHP_PLAN_NAMESPACE, key, schedule)
    return schedule


def clear_mhp_plan_cache() -> None:
    """Drop all cached MHP schedules and reset the hit counters."""
    store = get_store()
    store.clear(MHP_PLAN_NAMESPACE)
    store.reset_stats(MHP_PLAN_NAMESPACE)


def set_mhp_plan_cache_capacity(capacity: int = _DEFAULT_PLAN_CACHE_CAPACITY) -> None:
    """Bound the MHP plan LRU at ``capacity`` entries."""
    if capacity < 1:
        raise ValueError(f"cache capacity must be positive, got {capacity}")
    get_store().set_limit(MHP_PLAN_NAMESPACE, max_entries=int(capacity))


def mhp_plan_cache_info() -> Dict[str, int]:
    """Occupancy, capacity and hit/miss counters of the MHP plan LRU.

    Hit/miss counters arrived with the unified store stats — the GEMM
    planner's twin helper and this one now read the same
    :meth:`~repro.store.CacheStore.stats` schema instead of keeping
    duplicated module-level counters.
    """
    stats = get_store().stats(MHP_PLAN_NAMESPACE)
    return {
        "size": stats["entries"],
        "capacity": stats["max_entries"],
        "hits": stats["hits"],
        "misses": stats["misses"],
    }


def _validate_mhp_operands(
    x_raw: np.ndarray, k_raw: np.ndarray, b_raw: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    x_raw = np.atleast_2d(np.asarray(x_raw))
    k_raw = np.atleast_2d(np.asarray(k_raw))
    b_raw = np.atleast_2d(np.asarray(b_raw))
    if not (x_raw.shape == k_raw.shape == b_raw.shape):
        raise ValueError(
            f"MHP operands must share a shape, got {x_raw.shape}, "
            f"{k_raw.shape}, {b_raw.shape}"
        )
    return x_raw, k_raw, b_raw


def execute_mhp(
    config: SystolicConfig,
    x_raw: np.ndarray,
    k_raw: np.ndarray,
    b_raw: np.ndarray,
    fused_ipf: bool = True,
) -> tuple[np.ndarray, MHPSchedule]:
    """Run ``Y = X ⊙ K + B`` bit-accurately with its schedule.

    Each diagonal lane processes its assigned rows independently, so the
    whole-matrix :func:`fixed_hadamard_mac` equals the reassembled
    per-lane execution (:func:`execute_mhp_per_lane`), which the tests
    verify.
    """
    x_raw, k_raw, b_raw = _validate_mhp_operands(x_raw, k_raw, b_raw)
    m_dim, n_dim = x_raw.shape
    schedule = plan_mhp(config, m_dim, n_dim, fused_ipf=fused_ipf)
    out = fixed_hadamard_mac(x_raw, k_raw, b_raw, config.fmt)
    return out, schedule


def execute_mhp_per_lane(
    config: SystolicConfig,
    x_raw: np.ndarray,
    k_raw: np.ndarray,
    b_raw: np.ndarray,
    fused_ipf: bool = True,
) -> tuple[np.ndarray, MHPSchedule]:
    """Seed-faithful lane-by-lane MHP execution (equivalence reference)."""
    x_raw, k_raw, b_raw = _validate_mhp_operands(x_raw, k_raw, b_raw)
    m_dim, n_dim = x_raw.shape
    schedule = plan_mhp(config, m_dim, n_dim, fused_ipf=fused_ipf, use_cache=False)
    out = np.zeros_like(x_raw)
    for rows in schedule.lane_rows:
        if rows.size == 0:
            continue
        out[rows] = fixed_hadamard_mac(x_raw[rows], k_raw[rows], b_raw[rows], config.fmt)
    return out, schedule


def naive_mhp_cycles(config: SystolicConfig, m_dim: int, n_dim: int) -> CycleBreakdown:
    """Ablation baseline: MHP on the *unmodified* GEMM dataflow.

    Without the transmission/computation split, operands still enter at
    the array edges but every element must be delivered to a distinct
    PE with no reuse; the forward-and-reuse fabric delivers one fresh
    operand pair per lane per cycle (the rest of the bandwidth carries
    already-used values), so the array sustains only ``P`` outputs per
    cycle regardless of the MAC count — the "low resource utilization
    rate" of Section IV-B motivating the redesign.
    """
    p = config.pe_rows
    elements = m_dim * n_dim
    skew = 2 * (p - 1)
    injection = -(-elements // p)
    return CycleBreakdown(fill=skew, compute=injection, drain=p, overhead=3)
