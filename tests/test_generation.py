"""Generation test suite: step-wise decode pinned bit-identical.

The load-bearing contract of the continuous-batching decode path, in
three tiers:

1. **Bit-identity** (property-based): greedy generation via
   ``prefill`` + ``decode_step`` produces exactly the tokens of
   recomputing the full sequence from scratch at every step, across
   random model shapes, depths, prompt lengths and batch compositions
   — suffix-length-1 inference is not an approximation, because causal
   masking makes every cached K/V row suffix-independent and the
   fixed-point pipeline is exact per row.
2. **Cycle accounting**: every prefill and decode iteration's traced
   cycles equal the closed forms in :mod:`repro.nn.workload`, step by
   step, warm and cold.
3. **Continuous batching** (engine-level fuzz): randomized
   arrival/retirement schedules keep the scheduler honest — decode
   batches never mix tenants or positions, prefill batches never mix
   prompts, per-tenant cycles sum exactly to the total, and every
   admitted request completes bit-identically or lands in the failure
   ledger (the chaos case injects a seeded mid-decode shard crash).

Plus unit/property coverage of the radix prefix index and the
tenant-scoped, byte-budgeted :class:`~repro.serving.RadixKVCache`, and
the ``ShardedDispatcher`` deprecation shim.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.executor import ArrayBackend, CPWLBackend, DecodeKV, KVTap
from repro.nn.models import TinyBERT
from repro.nn.workload import (
    transformer_decode_step_cycles,
    transformer_prefill_cycles,
)
from repro.serving import (
    ClusterDispatcher,
    FaultPlan,
    GenerationAdapter,
    GenerationRequest,
    InferenceEngine,
    PrefixCache,
    PrefixEntry,
    RadixKVCache,
    RadixPrefixIndex,
    RetryPolicy,
    ShardedDispatcher,
)
from repro.systolic import SystolicArray, SystolicConfig

CONFIG = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=8)
GRANULARITY = 0.25

# One model per shape, shared across hypothesis examples: construction
# dominates runtime and the weights are deterministic per shape anyway.
_MODELS = {}


def _model(dim=8, heads=2, ff_dim=16, n_layers=2, seq_len=12, vocab=16):
    key = (dim, heads, ff_dim, n_layers, seq_len, vocab)
    if key not in _MODELS:
        _MODELS[key] = TinyBERT(
            vocab=vocab, seq_len=seq_len, dim=dim, heads=heads,
            ff_dim=ff_dim, n_layers=n_layers, causal=True, seed=0,
        )
    return _MODELS[key]


def _backend():
    return CPWLBackend(granularity=GRANULARITY)


def _prompts(rng, batch, length, vocab=16):
    return rng.integers(0, vocab, size=(batch, length), dtype=np.int64)


def _recompute_generate(model, prompt_row, max_new, backend, stop_token=None):
    """Reference decode: full-sequence recompute at every step."""
    tokens = list(int(t) for t in prompt_row)
    out = []
    for _ in range(max_new):
        logits = model.infer_logits(np.array([tokens], dtype=np.int64), backend)
        nxt = int(np.argmax(logits, axis=-1)[0])
        out.append(nxt)
        tokens.append(nxt)
        if stop_token is not None and nxt == stop_token:
            break
    return np.array(out, dtype=np.int64)


# ---------------------------------------------------------------------------
# 1. Bit-identity of step-wise decode (property-based)
# ---------------------------------------------------------------------------
class TestDecodeBitIdentity:
    @given(
        dim_heads=st.sampled_from([(4, 1), (4, 2), (8, 2)]),
        n_layers=st.integers(1, 2),
        prompt_len=st.integers(1, 5),
        max_new=st.integers(1, 6),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_generate_matches_recompute_per_token(
        self, dim_heads, n_layers, prompt_len, max_new, seed
    ):
        """KV-cached decode == full recompute, token for token."""
        dim, heads = dim_heads
        model = _model(dim=dim, heads=heads, ff_dim=2 * dim, n_layers=n_layers)
        rng = np.random.default_rng(seed)
        prompt = _prompts(rng, 1, prompt_len)
        backend = _backend()
        cached = model.generate(prompt, max_new, backend)[0]
        recomputed = _recompute_generate(model, prompt[0], max_new, backend)
        assert np.array_equal(cached, recomputed)

    @given(
        batch=st.integers(2, 4),
        prompt_len=st.integers(1, 5),
        max_new=st.integers(1, 5),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_batched_decode_matches_per_sequence(
        self, batch, prompt_len, max_new, seed
    ):
        """Stacking sequences into one decode batch changes nothing."""
        model = _model()
        rng = np.random.default_rng(seed)
        prompts = _prompts(rng, batch, prompt_len)
        backend = _backend()
        together = model.generate(prompts, max_new, backend)
        alone = [
            model.generate(prompts[j : j + 1], max_new, backend)[0]
            for j in range(batch)
        ]
        for got, expect in zip(together, alone):
            assert np.array_equal(got, expect)

    @given(
        prompt_len=st.integers(2, 6),
        cached_len_frac=st.floats(0.1, 0.9),
        max_new=st.integers(1, 4),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_warm_prefill_bit_identical(
        self, prompt_len, cached_len_frac, max_new, seed
    ):
        """Prefilling from a cached prefix == prefilling from scratch."""
        model = _model()
        rng = np.random.default_rng(seed)
        prompt = _prompts(rng, 1, prompt_len)
        cached_len = max(1, min(prompt_len - 1, int(prompt_len * cached_len_frac)))
        backend = _backend()
        cold_logits, cold_state = model.prefill(prompt, backend)

        adapter = GenerationAdapter(model)
        payload = adapter.capture(cold_state, cached_len)
        warm_logits, warm_state = model.prefill(prompt, backend, cached=payload)
        assert np.array_equal(cold_logits, warm_logits)
        for i in range(model.n_layers):
            assert np.array_equal(cold_state.k[i], warm_state.k[i])
            assert np.array_equal(cold_state.v[i], warm_state.v[i])
        # ...and the continuation decodes identically from either state.
        t0 = np.argmax(cold_logits, axis=-1)
        a = model.decode_step(cold_state, t0, backend)
        b = model.decode_step(warm_state, t0, backend)
        assert np.array_equal(a, b)

    @given(
        stop_after=st.integers(0, 3),
        prompt_len=st.integers(1, 4),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_stop_token_truncates_inclusively(self, stop_after, prompt_len, seed):
        """A stop token ends the row and is kept in the output."""
        model = _model()
        rng = np.random.default_rng(seed)
        prompt = _prompts(rng, 1, prompt_len)
        backend = _backend()
        free = model.generate(prompt, 6, backend)[0]
        stop = int(free[min(stop_after, len(free) - 1)])
        stopped = model.generate(prompt, 6, backend, stop_token=stop)[0]
        hits = np.flatnonzero(free == stop)
        expect = free[: hits[0] + 1] if hits.size else free
        assert np.array_equal(stopped, expect)

    def test_stack_split_roundtrip(self):
        model = _model()
        rng = np.random.default_rng(0)
        backend = _backend()
        _, state = model.prefill(_prompts(rng, 3, 4), backend)
        parts = state.split()
        restacked = DecodeKV.stack(parts)
        for i in range(state.n_layers):
            assert np.array_equal(state.k[i], restacked.k[i])
            assert np.array_equal(state.v[i], restacked.v[i])

    def test_decode_step_rejects_misuse(self):
        model = _model()
        backend = _backend()
        with pytest.raises(ValueError):
            model.prefill(np.zeros((2, model.seq_len + 1), dtype=np.int64), backend)
        with pytest.raises(ValueError):
            # more new tokens than the position table can hold
            model.generate(
                np.zeros((1, 4), dtype=np.int64), model.seq_len, backend
            )
        with pytest.raises(ValueError):
            GenerationRequest(prompt=np.zeros((2, 3)), max_new_tokens=1)
        with pytest.raises(ValueError):
            GenerationRequest(prompt=np.array([1, 2]), max_new_tokens=0)


# ---------------------------------------------------------------------------
# 2. Exact per-step cycle accounting (traced ArrayBackend)
# ---------------------------------------------------------------------------
class TestCycleAccounting:
    def _warm_backend(self, model):
        """An ArrayBackend past its one-time nonlinearity table preload."""
        array = SystolicArray(CONFIG)
        backend = ArrayBackend(array, GRANULARITY)
        model.prefill(np.zeros((1, 2), dtype=np.int64), backend)
        return array, backend

    def test_prefill_and_decode_steps_match_closed_form(self):
        model = _model()
        array, backend = self._warm_backend(model)
        rng = np.random.default_rng(1)
        batch, prompt_len, max_new = 3, 4, 4
        prompts = _prompts(rng, batch, prompt_len)

        before = array.total_cycles
        _, state = model.prefill(prompts, backend)
        measured = array.total_cycles - before
        assert measured == transformer_prefill_cycles(
            batch, prompt_len, 0, model.dim, model.heads, model.ff_dim,
            model.n_layers, model.vocab, CONFIG,
        )

        tokens = np.zeros(batch, dtype=np.int64)
        for step in range(max_new):
            position = state.pos
            before = array.total_cycles
            logits = model.decode_step(state, tokens, backend)
            measured = array.total_cycles - before
            assert measured == transformer_decode_step_cycles(
                batch, position, model.dim, model.heads, model.ff_dim,
                model.n_layers, model.vocab, CONFIG,
            )
            tokens = np.argmax(logits, axis=-1)

    def test_warm_prefill_cycles_match_closed_form(self):
        model = _model()
        array, backend = self._warm_backend(model)
        rng = np.random.default_rng(2)
        prompt = _prompts(rng, 2, 6)
        _, state = model.prefill(prompt, backend)
        payload = GenerationAdapter(model).capture(state, 4)

        before = array.total_cycles
        model.prefill(prompt, backend, cached=payload)
        measured = array.total_cycles - before
        assert measured == transformer_prefill_cycles(
            2, 6, 4, model.dim, model.heads, model.ff_dim,
            model.n_layers, model.vocab, CONFIG,
        )

    def test_decode_cycles_grow_with_position_only(self):
        """The per-step closed form depends on the K/V length, not on
        how the sequence got there — the attention GEMMs see one query
        row against ``position + 1`` keys."""
        model = _model()
        c1 = transformer_decode_step_cycles(
            2, 4, model.dim, model.heads, model.ff_dim,
            model.n_layers, model.vocab, CONFIG,
        )
        c2 = transformer_decode_step_cycles(
            2, 8, model.dim, model.heads, model.ff_dim,
            model.n_layers, model.vocab, CONFIG,
        )
        assert c2 > c1

    def test_closed_form_validation(self):
        with pytest.raises(ValueError):
            transformer_prefill_cycles(1, 4, 4, 8, 2, 16, 1, 16, CONFIG)
        with pytest.raises(ValueError):
            transformer_decode_step_cycles(1, 0, 8, 2, 16, 1, 16, CONFIG)


# ---------------------------------------------------------------------------
# 3. Continuous batching in the engine (invariant fuzz)
# ---------------------------------------------------------------------------
class RecordingAdapter(GenerationAdapter):
    """Adapter spy: observes every prefill/decode batch the engine runs."""

    def __init__(self, model):
        super().__init__(model)
        self.prefill_batches = []
        self.decode_batches = []

    def prefill(self, prompts, backend, cached=None):
        prompts = np.asarray(prompts)
        self.prefill_batches.append(
            {
                "size": prompts.shape[0],
                "uniform": bool(np.all(prompts == prompts[0])),
                "cached": cached is not None,
            }
        )
        return super().prefill(prompts, backend, cached=cached)

    def decode(self, states, tokens, backend):
        self.decode_batches.append(
            {"size": len(states), "positions": {s.pos for s in states}}
        )
        return super().decode(states, tokens, backend)


def _gen_engine(n_shards=2, adapter=None, model=None, **kw):
    model = model if model is not None else _model()
    pool = ClusterDispatcher.from_arrays(
        [SystolicArray(CONFIG) for _ in range(n_shards)], GRANULARITY
    )
    kw.setdefault("max_batch_size", 4)
    kw.setdefault("flush_timeout", 1e-4)
    engine = InferenceEngine(pool, **kw)
    adapter = adapter if adapter is not None else GenerationAdapter(model)
    engine.register("gen", generation_adapter=adapter)
    return engine, adapter, model


class TestContinuousBatching:
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_randomized_schedule_invariants(self, seed):
        """Random arrivals/lengths/tenants: the full contract holds."""
        model = _model()
        adapter = RecordingAdapter(model)
        engine, _, _ = _gen_engine(adapter=adapter, model=model)
        rng = np.random.default_rng(seed)
        ids, params = [], {}
        for i in range(12):
            length = int(rng.integers(1, 6))
            prompt = _prompts(rng, 1, length)[0]
            max_new = int(rng.integers(1, 5))
            tenant = ["gold", "free"][int(rng.integers(0, 2))]
            arrival = float(rng.uniform(0, 3e-4))
            rid = engine.submit_generation(
                "gen", prompt, max_new, arrival=arrival, tenant=tenant
            )
            ids.append(rid)
            params[rid] = (prompt, max_new)
        report = engine.run()

        # Every admitted request completes exactly once (no faults here).
        completed_ids = sorted(c.request.request_id for c in report.completed)
        assert completed_ids == sorted(ids)
        assert not report.failed and not report.shed

        # ...bit-identically to standalone lockstep generation.
        reference = _backend()
        for rid in ids:
            prompt, max_new = params[rid]
            expect = model.generate(prompt[None, :], max_new, reference)[0]
            assert np.array_equal(engine.result(rid), expect)

        # Prefill batches never mix prompts; decode batches never mix
        # positions (tenant/model purity is structural: DecodeStepRecord
        # carries exactly one of each, and the grouping keys on them).
        assert all(b["uniform"] for b in adapter.prefill_batches)
        assert all(len(b["positions"]) == 1 for b in adapter.decode_batches)
        assert all(
            b["size"] <= engine.scheduler.assembler.max_batch_size
            for b in adapter.decode_batches
        )

        # Per-tenant attribution is exact and exhaustive.
        assert sum(report.tenant_cycles.values()) == sum(
            report.shard_cycles.values()
        )
        # Token accounting: one token per decode-step batch slot, plus
        # one prefill token per sequence.
        step_tokens = sum(s.tokens for s in report.generation_steps)
        total_tokens = sum(len(c.outputs) for c in report.completed)
        assert total_tokens == step_tokens + len(ids)
        assert report.generated_tokens == total_tokens
        per_tenant = report.tenant_tokens()
        assert sum(per_tenant.values()) == total_tokens

    def test_decode_batches_merge_sequences_across_prefills(self):
        """Sequences from different prefill batches share iterations —
        the continuous part of continuous batching."""
        model = _model()
        adapter = RecordingAdapter(model)
        engine, _, _ = _gen_engine(n_shards=1, adapter=adapter, model=model)
        rng = np.random.default_rng(5)
        # Same length, distinct prompts (distinct digests => distinct
        # prefill batches), arrivals staggered tightly enough that later
        # sequences prefill while earlier ones still have steps left.
        for i in range(4):
            engine.submit_generation(
                "gen", _prompts(rng, 1, 4)[0], 6, arrival=i * 2e-6
            )
        report = engine.run()
        assert len(report.completed) == 4
        # Distinct prompts never share a prefill...
        assert all(b["size"] == 1 for b in adapter.prefill_batches)
        # ...yet decode iterations run multiple sequences together.
        assert any(b["size"] > 1 for b in adapter.decode_batches)
        assert any(s.batch_size > 1 for s in report.generation_steps)

    def test_identical_prompts_share_one_prefill(self):
        model = _model()
        adapter = RecordingAdapter(model)
        engine, _, _ = _gen_engine(adapter=adapter, model=model)
        prompt = np.array([5, 3, 1], dtype=np.int64)
        ids = [
            engine.submit_generation("gen", prompt, 3, arrival=i * 1e-5)
            for i in range(3)
        ]
        report = engine.run()
        assert [b["size"] for b in adapter.prefill_batches] == [3]
        outs = [engine.result(i) for i in ids]
        assert all(np.array_equal(outs[0], o) for o in outs)
        assert report.generation_section()  # renders without error
        assert "decode iterations" in report.summary()

    def test_generation_report_views(self):
        engine, _, model = _gen_engine()
        rid = engine.submit_generation(
            "gen", np.array([1, 2, 3], dtype=np.int64), 4
        )
        report = engine.run()
        assert report.has_generation_activity
        assert report.generated_tokens == len(engine.result(rid, keep=True))
        assert report.tokens_per_second() > 0
        assert report.generation_makespan() > 0
        assert report.decode_steps == 3  # 4 tokens = prefill + 3 steps
        for step in report.generation_steps:
            assert step.cycles > 0 and step.finish > step.start

    def test_submit_generation_requires_adapter(self):
        pool = ClusterDispatcher.from_arrays([SystolicArray(CONFIG)], GRANULARITY)
        engine = InferenceEngine(pool)
        engine.register("plain", _model())
        with pytest.raises(ValueError, match="generation_adapter"):
            engine.submit_generation("plain", np.array([1, 2]), 2)
        # ...and the position-table bound is enforced at submit time.
        engine.register("gen", generation_adapter=GenerationAdapter(_model()))
        with pytest.raises(ValueError, match="position table"):
            engine.submit_generation(
                "gen", np.zeros(4, dtype=np.int64), _model().seq_len
            )

    def test_mixed_generation_and_classifier_traffic(self):
        """Plain submit() and submit_generation() coexist on one engine."""
        model = _model()
        cls_model = TinyBERT(
            vocab=16, seq_len=8, dim=8, heads=2, ff_dim=16, n_layers=1,
            causal=True, seed=0,
        )
        engine, _, _ = _gen_engine(model=model)
        engine.register("cls", cls_model)
        rng = np.random.default_rng(9)
        gid = engine.submit_generation("gen", _prompts(rng, 1, 3)[0], 3, arrival=0.0)
        cid = engine.submit("cls", rng.integers(0, 16, size=8), arrival=1e-5)
        report = engine.run()
        assert len(report.completed) == 2
        assert engine.result(gid).shape == (3,)
        assert engine.result(cid) is not None
        assert sum(report.tenant_cycles.values()) == sum(
            report.shard_cycles.values()
        )


@pytest.mark.chaos
class TestGenerationChaos:
    def test_mid_decode_crash_reconciles_and_stays_bit_identical(self):
        """A seeded shard crash mid-decode: retried iterations complete
        bit-identically; anything abandoned is ledgered, never lost."""
        model = _model()
        plan = FaultPlan.from_seed(
            11, n_shards=2, horizon=2e-3, crash_rate=1.0, slowdown_rate=0.5
        )
        engine, _, _ = _gen_engine(
            model=model, faults=plan, retry_policy=RetryPolicy(max_retries=3)
        )
        rng = np.random.default_rng(3)
        ids = [
            engine.submit_generation(
                "gen", _prompts(rng, 1, 4)[0], 6, arrival=i * 2e-4
            )
            for i in range(8)
        ]
        report = engine.run()
        done = {c.request.request_id for c in report.completed}
        failed = {f.request.request_id for f in report.failed}
        assert done | failed == set(ids) and not (done & failed)
        assert report.fault_events  # the plan actually struck
        reference = _backend()
        for record in report.completed:
            expect = model.generate(
                np.asarray(record.request.inputs)[None, :], 6, reference
            )[0]
            assert np.array_equal(engine.result(record.request.request_id), expect)
        assert sum(report.tenant_cycles.values()) == sum(
            report.shard_cycles.values()
        )

    def test_decode_retry_budget_exhaustion_fails_cleanly(self):
        """A crash inside a decode step with a zero retry budget: the
        sequence lands in the failure ledger, never silently lost."""
        from repro.serving.faults import ShardCrash

        model = _model()
        prompt = np.array([1, 2, 3], dtype=np.int64)
        # Dry run to learn where the first decode iteration falls...
        engine, _, _ = _gen_engine(n_shards=1, model=model)
        engine.submit_generation("gen", prompt, 3, arrival=0.0)
        clean = engine.run()
        first = clean.generation_steps[0]
        strike = (first.start + first.finish) / 2.0

        # ...then strike exactly there with no budget to recover.
        plan = FaultPlan(events=(ShardCrash(shard=0, at=strike, until=1.0),))
        engine, _, _ = _gen_engine(
            n_shards=1, model=model,
            faults=plan, retry_policy=RetryPolicy(max_retries=0),
        )
        ids = [engine.submit_generation("gen", prompt, 3, arrival=0.0)]
        report = engine.run()
        assert not report.completed
        assert {f.request.request_id for f in report.failed} == set(ids)
        assert all(f.reason == "max_retries" for f in report.failed)
        assert any(
            r.kind == "crash" and r.action == "abandon"
            for r in report.fault_events
        )


# ---------------------------------------------------------------------------
# 4. Radix prefix index + RadixKVCache
# ---------------------------------------------------------------------------
class TestRadixPrefixIndex:
    def test_insert_and_longest_match(self):
        tree = RadixPrefixIndex()
        assert tree.insert([1, 2, 3])
        assert not tree.insert([1, 2, 3])  # already terminal
        assert tree.insert([1, 2])  # boundary split
        assert tree.insert([1, 2, 3, 4, 5])
        assert tree.longest_match([1, 2, 3, 4, 5, 6]) == 5
        assert tree.longest_match([1, 2, 3, 9]) == 3
        assert tree.longest_match([1, 2, 9]) == 2
        assert tree.longest_match([1, 9]) == 0
        assert tree.longest_match([9]) == 0
        assert len(tree) == 3

    def test_remove_prunes(self):
        tree = RadixPrefixIndex()
        tree.insert([1, 2, 3])
        tree.insert([1, 2])
        assert tree.remove([1, 2, 3])
        assert not tree.remove([1, 2, 3])  # already gone
        assert tree.longest_match([1, 2, 3]) == 2
        assert tree.remove([1, 2])
        assert tree.longest_match([1, 2, 3]) == 0
        assert len(tree) == 0

    @given(
        seqs=st.lists(
            st.lists(st.integers(0, 3), min_size=1, max_size=6),
            min_size=1, max_size=12,
        ),
        query=st.lists(st.integers(0, 3), min_size=1, max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_longest_match_equals_brute_force(self, seqs, query):
        """The tree agrees with the obvious O(N*M) scan, always."""
        tree = RadixPrefixIndex()
        inserted = set()
        for seq in seqs:
            tree.insert(seq)
            inserted.add(tuple(seq))
        brute = max(
            (len(s) for s in inserted if tuple(query[: len(s)]) == s),
            default=0,
        )
        assert tree.longest_match(query) == brute
        # containment round-trip
        for s in inserted:
            assert s in tree and tree.longest_match(list(s)) == len(s)

    @given(
        seqs=st.lists(
            st.lists(st.integers(0, 2), min_size=1, max_size=5),
            min_size=1, max_size=8,
        ),
        drop=st.integers(0, 7),
    )
    @settings(max_examples=40, deadline=None)
    def test_remove_restores_brute_force(self, seqs, drop):
        tree = RadixPrefixIndex()
        kept = set()
        for seq in seqs:
            tree.insert(seq)
            kept.add(tuple(seq))
        victim = sorted(kept)[drop % len(kept)]
        assert tree.remove(list(victim))
        kept.discard(victim)
        for s in sorted(kept):
            assert tree.longest_match(list(s)) == len(s)
        assert victim not in tree
        assert len(tree) == len(kept)


def _payload(model, prompt_row, upto=None):
    """A KVTap covering ``prompt_row``'s first ``upto`` positions."""
    backend = _backend()
    _, state = model.prefill(np.asarray(prompt_row)[None, :], backend)
    upto = len(prompt_row) if upto is None else upto
    return GenerationAdapter(model).capture(state, upto)


class TestRadixKVCache:
    def test_longest_prefix_lookup_and_incremental_capture(self):
        model = _model()
        cache = RadixKVCache()
        p = np.array([1, 2, 3, 4], dtype=np.int64)
        cache.insert(0, "t", "m", p, _payload(model, p))
        # exact query, capped one short of the prompt
        n, payload = cache.lookup(0, "t", "m", p, max_len=len(p) - 1)
        assert n == 0 and payload is None  # only the full-4 entry exists
        longer = np.array([1, 2, 3, 4, 9, 9], dtype=np.int64)
        n, payload = cache.lookup(0, "t", "m", longer, max_len=5)
        assert n == 4 and payload.prefix_len == 4
        # extending the transcript re-captures incrementally
        cache.insert(0, "t", "m", longer, _payload(model, longer))
        evenlonger = np.concatenate([longer, [7]])
        n, payload = cache.lookup(0, "t", "m", evenlonger, max_len=6)
        assert n == 6 and payload.prefix_len == 6
        stats = cache.stats()
        assert stats["insertions"] == 2 and stats["hits"] == 2

    def test_tenant_and_model_isolation(self):
        model = _model()
        cache = RadixKVCache()
        p = np.array([5, 6, 7], dtype=np.int64)
        cache.insert(0, "alice", "m", p, _payload(model, p))
        q = np.concatenate([p, [1]])
        assert cache.lookup(0, "bob", "m", q)[0] == 0
        assert cache.lookup(0, "alice", "other", q)[0] == 0
        assert cache.lookup(1, "alice", "m", q)[0] == 0  # other shard
        assert cache.lookup(0, "alice", "m", q)[0] == 3
        assert cache.resident_shards("alice", "m", q) == (0,)
        assert cache.resident_shards("bob", "m", q) == ()

    def test_eviction_under_byte_budget_self_heals(self):
        model = _model()
        one = _payload(model, np.array([0, 1], dtype=np.int64))
        budget = one.nbytes + 16 + 8  # room for ~one entry + token key
        cache = RadixKVCache(shard_budget_bytes=budget)
        a = np.array([0, 1], dtype=np.int64)
        b = np.array([2, 3], dtype=np.int64)
        assert cache.insert(0, "t", "m", a, _payload(model, a))
        assert cache.insert(0, "t", "m", b, _payload(model, b))  # evicts a
        assert cache.stats()["evictions"] >= 1
        # The stale index entry heals at lookup: a misses, b hits.
        assert cache.lookup(0, "t", "m", np.concatenate([a, [9]]))[0] == 0
        assert cache.lookup(0, "t", "m", np.concatenate([b, [9]]))[0] == 2
        # An entry that can never fit is rejected outright.
        huge = _payload(model, np.arange(8, dtype=np.int64) % 4)
        tiny = RadixKVCache(shard_budget_bytes=8)
        assert not tiny.insert(0, "t", "m", np.arange(8) % 4, huge)
        assert tiny.stats()["rejections"] == 1

    def test_payload_length_must_match_tokens(self):
        model = _model()
        cache = RadixKVCache()
        p = np.array([1, 2, 3], dtype=np.int64)
        with pytest.raises(ValueError, match="positions"):
            cache.insert(0, "t", "m", p, _payload(model, p, upto=2))

    def test_matches_flat_prefix_cache_on_single_prefix_workloads(self):
        """With whole-prompt entries only, the radix cache makes the
        same hit/miss decisions as the flat digest-keyed PrefixCache."""
        model = _model()
        radix = RadixKVCache()
        flat = PrefixCache()
        rng = np.random.default_rng(4)
        prompts = [_prompts(rng, 1, 4)[0] for _ in range(3)]
        workload = [prompts[i] for i in (0, 1, 0, 2, 1, 0)]
        for prompt in workload:
            key = GenerationAdapter(model).prompt_key(prompt)
            flat_hit = flat.lookup(0, "t", "m", key, prompt) is not None
            radix_len, _ = radix.lookup(0, "t", "m", prompt)
            assert (radix_len == len(prompt)) == flat_hit
            if not flat_hit:
                payload = _payload(model, prompt)
                flat.insert(
                    0,
                    PrefixEntry(
                        tenant="t", model="m", prefix_key=key,
                        prefix_tokens=prompt, payload=payload,
                    ),
                )
                radix.insert(0, "t", "m", prompt, payload)
        assert radix.stats()["hits"] == flat.hits
        assert radix.stats()["misses"] == flat.misses

    def test_engine_radix_roundtrip_saves_cycles(self):
        """Second run of the same prompt prefills warm: bit-identical
        output, positive closed-form savings in the prefix event."""
        model = _model(seq_len=16)
        adapter = GenerationAdapter(model)
        engine, _, _ = _gen_engine(
            n_shards=1, model=model, adapter=adapter,
            radix_cache=RadixKVCache(),
        )
        prompt = np.array([3, 1, 4, 1], dtype=np.int64)
        i0 = engine.submit_generation("gen", prompt, 4, arrival=0.0)
        engine.run()
        out0 = engine.result(i0)

        follow = np.concatenate([prompt, out0, [7, 2]]).astype(np.int64)
        i1 = engine.submit_generation("gen", follow, 3, arrival=1.0)
        report = engine.run()
        expect = model.generate(follow[None, :], 3, _backend())[0]
        assert np.array_equal(engine.result(i1), expect)
        hits = [e for e in report.prefix_events if e.hit]
        assert len(hits) == 1
        # Retirement donates prompt + generated[:-1]: the final token's
        # K/V row is never computed (its logits end the sequence), so
        # the resident prefix is one short of the full transcript.
        cached_len = len(prompt) + len(out0) - 1
        assert hits[0].cycles_saved == transformer_prefill_cycles(
            1, len(follow), 0, model.dim, model.heads, model.ff_dim,
            model.n_layers, model.vocab, CONFIG,
        ) - transformer_prefill_cycles(
            1, len(follow), cached_len, model.dim, model.heads, model.ff_dim,
            model.n_layers, model.vocab, CONFIG,
        )
        assert any(
            ns.startswith("serving.radix.") for ns in engine.cache_stats()
        )


# ---------------------------------------------------------------------------
# 5. ShardedDispatcher deprecation shim
# ---------------------------------------------------------------------------
class TestShardedDispatcherShim:
    def test_warns_and_behaves_like_cluster_dispatcher(self):
        arrays = [SystolicArray(CONFIG) for _ in range(2)]
        with pytest.warns(DeprecationWarning, match="ShardedDispatcher"):
            legacy = ShardedDispatcher.from_arrays(arrays, GRANULARITY)
        assert isinstance(legacy, ClusterDispatcher)
        modern = ClusterDispatcher.from_arrays(
            [SystolicArray(CONFIG) for _ in range(2)], GRANULARITY
        )
        assert legacy.n_shards == modern.n_shards

        model = _model()
        rng = np.random.default_rng(6)
        rows = rng.integers(0, 16, size=(4, model.seq_len))
        results = []
        for pool in (legacy, modern):
            engine = InferenceEngine(pool, max_batch_size=2, flush_timeout=1e-4)
            engine.register("bert", model)
            ids = [engine.submit("bert", row, arrival=i * 1e-5)
                   for i, row in enumerate(rows)]
            engine.run()
            results.append([engine.result(i) for i in ids])
        for got, expect in zip(*results):
            assert np.array_equal(got, expect)

    def test_direct_construction_warns_once_per_instance(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ClusterDispatcher.from_arrays([SystolicArray(CONFIG)], GRANULARITY)
        assert not any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
