"""Composite nonlinear operations decomposed for the array.

Section III-A uses GELU as the walk-through but notes "the same process
can also be used to handle other nonlinear operations, such as Softmax
and Layer normalization".  This module performs those decompositions: a
composite op becomes a short program of

* linear steps the array already supports (row reductions are
  matrix-vector GEMMs, subtractions are adds), and
* scalar CPWL stages (``exp``, ``1/x``, ``1/sqrt(x)``, ``gelu``, ...)
  executed as IPF + MHP events, and
* element-wise products, which are themselves MHPs with ``B = 0``.

Every function takes float activations, quantizes to the datapath format,
runs the bit-accurate fixed-point pipeline, and returns float results —
i.e. the value the network would actually see when the op runs on
ONE-SA.  Passing ``fmt=None`` selects an idealised float CPWL (no
quantization), which the ablation uses to split error sources.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.cpwl import CPWLApproximator
from repro.fixedpoint import QFormat, dequantize, quantize, saturate
from repro.fixedpoint.qformat import INT16
from repro.store import get_store, register_namespace

# Built approximators live in the process-global cache store, keyed by
# (function, granularity, fmt, domain) under this namespace.  Under
# serving traffic every distinct combination would otherwise stay
# resident forever — a slow leak — so the namespace is bounded (LRU
# eviction).  The default capacity is generous enough that
# single-experiment runs (granularity sweeps, the full test suite)
# never evict.
APPROXIMATOR_NAMESPACE = "core.approximators"
_DEFAULT_CACHE_CAPACITY = 256
register_namespace(APPROXIMATOR_NAMESPACE, max_entries=_DEFAULT_CACHE_CAPACITY)


def get_approximator(
    name: str,
    granularity: float,
    fmt: Optional[QFormat] = INT16,
    domain: Optional[tuple[float, float]] = None,
) -> CPWLApproximator:
    """Cached CPWL approximator (tables are preloaded once, like L3)."""
    key = (name, float(granularity), fmt, domain)
    store = get_store()
    approx = store.get(APPROXIMATOR_NAMESPACE, key)
    if approx is None:
        approx = CPWLApproximator(name, granularity, fmt=fmt, domain=domain)
        store.put(APPROXIMATOR_NAMESPACE, key, approx)
    return approx


def clear_approximator_cache() -> None:
    """Drop all cached tables (tests use this to control memory)."""
    get_store().clear(APPROXIMATOR_NAMESPACE)


def set_approximator_cache_capacity(capacity: int = _DEFAULT_CACHE_CAPACITY) -> None:
    """Bound the approximator LRU at ``capacity`` entries.

    Shrinking below the current occupancy evicts least-recently-used
    tables immediately.  Call with no argument to restore the default.
    (Thin wrapper over the store namespace budget — see
    :class:`repro.store.StoreConfig` for the one-object form.)
    """
    if capacity < 1:
        raise ValueError(f"cache capacity must be positive, got {capacity}")
    get_store().set_limit(APPROXIMATOR_NAMESPACE, max_entries=int(capacity))


def approximator_cache_info() -> "dict[str, int]":
    """Occupancy and capacity of the approximator LRU."""
    stats = get_store().stats(APPROXIMATOR_NAMESPACE)
    return {"size": stats["entries"], "capacity": stats["max_entries"]}


def _roundtrip(x: np.ndarray, fmt: Optional[QFormat]) -> np.ndarray:
    """Quantize-dequantize ``x`` when a fixed-point format is in use."""
    if fmt is None:
        return np.asarray(x, dtype=np.float64)
    return dequantize(quantize(x, fmt), fmt)


def cpwl_gelu(
    x: np.ndarray, granularity: float, fmt: Optional[QFormat] = INT16
) -> np.ndarray:
    """GELU via one IPF + MHP event (the paper's running example)."""
    return get_approximator("gelu", granularity, fmt)(x)


def cpwl_relu(
    x: np.ndarray, granularity: float, fmt: Optional[QFormat] = INT16
) -> np.ndarray:
    """ReLU via CPWL on the generic (mid-anchored) segment grid.

    The L3 parameter store uses one segment grid for all functions,
    anchored at the domain edge — it does not realign itself to each
    function's kink.  We anchor the grid midway (``x_min = -(8 + g/2)``)
    so the segment containing zero spans ``(-g/2, +g/2)`` and carries
    the chord ``y = x/2 + g/4``: ReLU is approximated, not special-cased,
    with error up to ``g/4`` concentrated exactly where batch-normalized
    activations live.  This is the mechanism behind the CNN rows of the
    accuracy-vs-granularity table; a kink-aligned grid would make ReLU
    exact and the CNN artificially insensitive.
    """
    domain = (-8.0 - granularity / 2.0, 8.0 + granularity / 2.0)
    return get_approximator("relu", granularity, fmt, domain=domain)(x)


def cpwl_sigmoid(
    x: np.ndarray, granularity: float, fmt: Optional[QFormat] = INT16
) -> np.ndarray:
    """Logistic sigmoid via one IPF + MHP event."""
    return get_approximator("sigmoid", granularity, fmt)(x)


def cpwl_tanh(
    x: np.ndarray, granularity: float, fmt: Optional[QFormat] = INT16
) -> np.ndarray:
    """tanh via one IPF + MHP event."""
    return get_approximator("tanh", granularity, fmt)(x)


def cpwl_softmax(
    x: np.ndarray,
    granularity: float,
    fmt: Optional[QFormat] = INT16,
    axis: int = -1,
) -> np.ndarray:
    """Softmax decomposed into array events.

    Program: (1) row max and subtraction — linear; (2) ``exp`` — CPWL
    IPF+MHP; (3) row sum — matrix-vector GEMM against a ones vector;
    (4) ``1/sum`` — CPWL; (5) elementwise scale — MHP with ``B = 0``.
    """
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    shifted = _roundtrip(shifted, fmt)
    exps = get_approximator("exp", granularity, fmt)(shifted)
    # CPWL chords of a convex function overshoot slightly and the capped
    # lower boundary segment can dip below zero; the hardware clamps the
    # exponential to its known non-negative range on writeback.
    exps = np.maximum(exps, 0.0)
    denom = np.sum(exps, axis=axis, keepdims=True)
    denom = _roundtrip(denom, fmt)
    # Guard the reciprocal domain: a denominator this small only occurs
    # when every exponent underflowed to zero; uniform output is correct.
    recip_table = get_approximator("reciprocal", granularity, fmt)
    lo = recip_table.table.x_min
    safe_denom = np.maximum(denom, lo)
    inv = recip_table(safe_denom)
    out = exps * np.broadcast_to(inv, x.shape)
    return _roundtrip(out, fmt)


def cpwl_layernorm(
    x: np.ndarray,
    granularity: float,
    gamma: Optional[np.ndarray] = None,
    beta: Optional[np.ndarray] = None,
    fmt: Optional[QFormat] = INT16,
    axis: int = -1,
    eps: float = 1e-5,
) -> np.ndarray:
    """Layer normalization decomposed into array events.

    Program: (1) row mean — matrix-vector GEMM; (2) centering — linear;
    (3) squaring — elementwise MHP of ``x`` with itself (``K = X``,
    ``B = 0``); (4) mean of squares — GEMM; (5) ``1/sqrt(var)`` — CPWL;
    (6) scale by the inverse std — MHP; (7) affine ``gamma``/``beta`` —
    another MHP.
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[axis]
    mean = np.sum(x, axis=axis, keepdims=True) / n
    centered = _roundtrip(x - mean, fmt)
    squares = _roundtrip(centered * centered, fmt)
    var = np.sum(squares, axis=axis, keepdims=True) / n
    var = _roundtrip(var + eps, fmt)
    rsqrt_table = get_approximator("rsqrt", granularity, fmt)
    lo = rsqrt_table.table.x_min
    inv_std = rsqrt_table(np.maximum(var, lo))
    normed = _roundtrip(centered * np.broadcast_to(inv_std, x.shape), fmt)
    if gamma is not None:
        normed = normed * np.asarray(gamma, dtype=np.float64)
    if beta is not None:
        normed = normed + np.asarray(beta, dtype=np.float64)
    return _roundtrip(normed, fmt)


def cpwl_rsqrt_range_reduced(
    x: np.ndarray, granularity: float, fmt: Optional[QFormat] = INT16
) -> np.ndarray:
    """``1/sqrt(x)`` via CPWL with power-of-two range reduction.

    The data-shift module normalizes the argument into ``[1, 4)`` by an
    even power-of-two shift (``x = 4^j · x_r``), the CPWL table covers
    only the well-conditioned reduced domain, and the result is
    rescaled by ``2^-j`` — the standard PWL practice for steep roots
    and exactly the kind of shift the L3 addressing datapath provides.
    Used where the argument spans decades (batchnorm channel variances).
    """
    x = np.asarray(x, dtype=np.float64)
    if np.any(x <= 0):
        raise ValueError("rsqrt argument must be positive")
    j = np.floor(np.log2(x) / 2.0)
    x_reduced = x / np.power(4.0, j)
    table = get_approximator("rsqrt", granularity, fmt, domain=(1.0, 4.0))
    y_reduced = table(x_reduced)
    return _roundtrip(y_reduced * np.power(2.0, -j), fmt)


def cpwl_batchnorm(
    x: np.ndarray,
    scale: np.ndarray,
    shift: np.ndarray,
    fmt: Optional[QFormat] = INT16,
    channel_axis: int = 1,
) -> np.ndarray:
    """Inference-time batch normalization as a single MHP.

    With running statistics folded in, inference BN is the per-channel
    affine ``y = x * scale + shift`` — exactly the Matrix Hadamard
    Product with broadcast parameters, so it needs no CPWL table at all.
    This is why Fig. 1 counts batchnorm among the operations ONE-SA
    absorbs into the array.
    """
    x = np.asarray(x, dtype=np.float64)
    shape = [1] * x.ndim
    shape[channel_axis] = -1
    k = np.asarray(scale, dtype=np.float64).reshape(shape)
    b = np.asarray(shift, dtype=np.float64).reshape(shape)
    return _roundtrip(x * k + b, fmt)
