"""Traced-path benchmark: plan-cached whole-matrix execution vs seed.

PR 1 vectorized the *untraced* CPWL fast path; this benchmark pins the
follow-up claim — the cycle-accounted ``SystolicArray``/``ArrayBackend``
path now executes whole operands under cached plans and is >= 5x faster
than the seed's per-tile / per-pair execution on traced BERT-tiny and
ResNet-block inference, with bit-identical outputs and identical per-op
cycle totals.

The seed path is reproduced faithfully on top of today's modules:

* one ``fixed_matmul`` dispatched **per output tile** of every GEMM
  (``execute_gemm_per_tile``), with the plan rebuilt (uncached) per
  call — exactly the seed ``execute_gemm`` loop;
* batched (attention) matmuls issued as a **per-pair Python loop** with
  per-pair quantization — the seed ``ArrayBackend.matmul``;
* the seed ``quantize`` (abs/floor/copysign chain, always materializing
  the storage-integer array that ``fixed_matmul`` then converted back
  to float64);
* the MHP executed **lane by lane** and its data-rearrange streams
  **materialized** on every nonlinear op (the seed built them
  unconditionally and never consumed them).

A ``BENCH_traced.json`` perf-trajectory artifact is written to the
repository root so CI can accumulate the measurements across PRs.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.fixedpoint import dequantize
from repro.nn.executor import ArrayBackend
from repro.nn.models import TinyBERT
from repro.systolic import ExecutionResult, SystolicArray, SystolicConfig
from repro.systolic.gemm import execute_gemm_per_tile
from repro.systolic.mhp_dataflow import execute_mhp_per_lane
from repro.systolic.trace import TraceEvent

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_traced.json"
SPEEDUP_GATE = 5.0
PLACEMENT_GATE = 1.3
KV_CACHE_GATE = 2.0
MULTIPROC_GATE = 1.5
FAULT_RECOVERY_GATE = 0.4
GENERATION_GATE = 2.0
AUTOTUNE_GATE = 1.3
ELASTIC_GATE = 1.5
ELASTIC_SPREAD_GATE = 3.0


def _update_artifact(**sections) -> None:
    """Merge sections into ``BENCH_traced.json`` (tests run separately)."""
    data = {}
    if ARTIFACT.exists():
        try:
            data = json.loads(ARTIFACT.read_text())
        except json.JSONDecodeError:
            data = {}
    data.update(sections)
    data["benchmark"] = "traced_inference"
    data["generated_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    ARTIFACT.write_text(json.dumps(data, indent=2) + "\n")


# --------------------------------------------------------------------------
# Seed-equivalent traced path.
# --------------------------------------------------------------------------
def _seed_quantize(values, fmt):
    """The seed's quantize: abs/floor/copysign passes, integer output."""
    values = np.asarray(values, dtype=np.float64)
    scaled = np.atleast_1d(values * (1 << fmt.frac_bits))
    raw = np.abs(scaled)
    raw += 0.5
    np.floor(raw, out=raw)
    np.copysign(raw, scaled, out=raw)
    np.clip(raw, fmt.raw_min, fmt.raw_max, out=raw)
    return raw.astype(fmt.storage_dtype()).reshape(values.shape)


class _SeedArray(SystolicArray):
    """SystolicArray with the seed's per-tile GEMM / per-lane MHP."""

    def gemm_raw(self, a_raw, b_raw, label="gemm"):
        out, schedule = execute_gemm_per_tile(
            self.config, a_raw, b_raw, use_plan_cache=False
        )
        self.trace.record(
            TraceEvent(
                kind="gemm",
                label=label,
                cycles=schedule.breakdown.total,
                ops=schedule.macs,
                breakdown=schedule.breakdown,
            )
        )
        return ExecutionResult(
            kind="gemm", raw=out, breakdown=schedule.breakdown, schedule=schedule
        )

    def _execute_mhp(self, x_raw, k_raw, b_raw, fused_ipf):
        return execute_mhp_per_lane(
            self.config, x_raw, k_raw, b_raw, fused_ipf=fused_ipf
        )

    def apply_nonlinear_raw(self, function, x_raw, granularity, **kw):
        kw["materialize_streams"] = True  # the seed always built streams
        return super().apply_nonlinear_raw(function, x_raw, granularity, **kw)


class _SeedBackend(ArrayBackend):
    """ArrayBackend with the seed's per-pair batched matmul loop."""

    def conv_cols(self, x, kernel, stride, padding, weight_mat, bias):
        # The seed unfolded patches first and quantized the k^2-expanded
        # matrix inside linear() (today's path quantizes before the
        # unfold, which commutes).
        from repro.nn.functional import im2col

        cols, out_hw = im2col(np.asarray(x, dtype=np.float64), kernel, stride, padding)
        return self.linear(cols, weight_mat, bias), out_hw

    def linear(self, x, weight, bias):
        # The seed ran a full quantize-dequantize round trip on the
        # bias-added output (today's path proves it reduces to a clip).
        orig_shape = x.shape
        x2 = np.asarray(x, dtype=np.float64).reshape(-1, orig_shape[-1])
        out = self.matmul(x2, weight.T) + dequantize(
            _seed_quantize(bias, self.fmt), self.fmt
        )
        out = dequantize(_seed_quantize(out, self.fmt), self.fmt)
        return out.reshape(orig_shape[:-1] + (weight.shape[0],))

    def matmul(self, a, b):
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.ndim == 2 and b.ndim == 2:
            result = self.array.gemm_raw(
                _seed_quantize(a, self.fmt), _seed_quantize(b, self.fmt)
            )
            return dequantize(result.raw, self.fmt)
        lead = np.broadcast_shapes(a.shape[:-2], b.shape[:-2])
        a_b = np.broadcast_to(a, lead + a.shape[-2:]).reshape((-1,) + a.shape[-2:])
        b_b = np.broadcast_to(b, lead + b.shape[-2:]).reshape((-1,) + b.shape[-2:])
        outs = [self.matmul(x, y) for x, y in zip(a_b, b_b)]
        return np.stack(outs).reshape(lead + (a.shape[-2], b.shape[-1]))


# --------------------------------------------------------------------------
# Workloads (the paper's 8x8x16 design point).
# --------------------------------------------------------------------------
def _paper_config():
    return SystolicConfig(pe_rows=8, pe_cols=8, macs_per_pe=16)


def _bert_workload():
    model = TinyBERT(vocab=32, seq_len=16, dim=32, heads=4, ff_dim=64, n_layers=2)
    tokens = np.random.default_rng(0).integers(0, 32, size=(8, 16))
    return "bert_tiny", model, lambda backend: model.infer(tokens, backend)

def _resnet_workload():
    from repro.nn.autograd import Tensor
    from repro.nn.models.resnet import BottleneckBlock

    # A ResNet-50-style bottleneck (1x1 reduce, 3x3, 1x1 expand): the
    # 1x1 convolutions issue many small output tiles per operand byte,
    # the regime where the seed's per-tile dispatch is most expensive.
    rng = np.random.default_rng(1)
    block = BottleneckBlock(128, 32, rng)
    block.train()
    block.forward(Tensor(rng.normal(size=(2, 128, 8, 8))))  # populate BN stats
    block.eval()
    feature_maps = rng.normal(size=(16, 128, 8, 8))
    return "resnet_block", block, lambda backend: block.infer(feature_maps, backend)


def _best_of(fn, repeats=5):
    """Best-of-N wall time (ratio-of-best is robust to runner noise)."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def _run_traced(workload, backend_cls, array_cls):
    array = array_cls(_paper_config())
    backend = backend_cls(array, 0.25)
    _, _, infer = workload
    out = infer(backend)
    cycles = array.total_cycles
    kinds = array.trace.cycles_by_kind()
    array.reset()
    elapsed = _best_of(lambda: infer(backend))
    return out, cycles, kinds, elapsed


def test_traced_inference_speedup(print_artifact):
    """Whole-matrix + plan-cached traced path >= 5x the seed path."""
    results = {}
    lines = [
        "Traced inference: seed per-tile path vs plan-cached whole-matrix",
        f"  design point: {_paper_config().describe()}",
    ]

    # The motivating shape from the tiling analysis: a 512^2 GEMM on the
    # 8x8 grid is 4096 output tiles, i.e. 4096 per-tile fixed_matmul
    # dispatches in the seed loop vs one whole-operand call.
    from repro.fixedpoint import INT16, quantize as _q
    from repro.systolic.gemm import execute_gemm

    rng = np.random.default_rng(2)
    config = _paper_config()
    a_raw = _q(rng.normal(size=(512, 512)), INT16)
    b_raw = _q(rng.normal(size=(512, 512)), INT16)
    out_seed, sched_seed = execute_gemm_per_tile(
        config, a_raw, b_raw, use_plan_cache=False
    )
    out_new, sched_new = execute_gemm(config, a_raw, b_raw)
    assert np.array_equal(out_seed, out_new)
    assert sched_seed.breakdown == sched_new.breakdown
    t_seed = _best_of(
        lambda: execute_gemm_per_tile(config, a_raw, b_raw, use_plan_cache=False)
    )
    t_new = _best_of(lambda: execute_gemm(config, a_raw, b_raw))
    results["gemm_512"] = {
        "seed_seconds": t_seed,
        "new_seconds": t_new,
        "speedup": t_seed / t_new,
        "traced_cycles": int(sched_new.breakdown.total),
    }
    lines.append(
        f"  {'gemm_512':<14s} seed {t_seed * 1e3:8.1f} ms   "
        f"new {t_new * 1e3:7.1f} ms   {t_seed / t_new:5.1f}x   "
        f"(4096 tiles -> 1 call)"
    )
    for workload in (_bert_workload(), _resnet_workload()):
        name = workload[0]
        seed_out, seed_cycles, seed_kinds, seed_t = _run_traced(
            workload, _SeedBackend, _SeedArray
        )
        new_out, new_cycles, new_kinds, new_t = _run_traced(
            workload, ArrayBackend, SystolicArray
        )
        # Bit-identical outputs, identical per-op cycle accounting.
        assert np.array_equal(seed_out, new_out), f"{name}: outputs diverged"
        assert seed_cycles == new_cycles, f"{name}: cycle totals diverged"
        assert seed_kinds == new_kinds, f"{name}: per-kind cycles diverged"
        speedup = seed_t / new_t
        results[name] = {
            "seed_seconds": seed_t,
            "new_seconds": new_t,
            "speedup": speedup,
            "traced_cycles": int(new_cycles),
        }
        lines.append(
            f"  {name:<14s} seed {seed_t * 1e3:8.1f} ms   "
            f"new {new_t * 1e3:7.1f} ms   {speedup:5.1f}x   "
            f"({new_cycles} cycles, identical)"
        )
    print_artifact("\n".join(lines))

    _update_artifact(
        design_point=_paper_config().describe(),
        speedup_gate=SPEEDUP_GATE,
        workloads=results,
    )

    for name, row in results.items():
        assert row["speedup"] >= SPEEDUP_GATE, (
            f"{name}: {row['speedup']:.1f}x < {SPEEDUP_GATE}x gate"
        )


def test_serving_throughput_measurably_up(print_artifact):
    """A request burst through InferenceEngine completes measurably
    faster on the plan-cached whole-matrix shards than on seed-path
    shards, with identical outputs."""
    from repro.serving import InferenceEngine, ClusterDispatcher

    config = _paper_config()
    rng = np.random.default_rng(3)
    tokens = rng.integers(0, 32, size=(16, 16))

    def run_burst(backend_cls, array_cls):
        model = TinyBERT(vocab=32, seq_len=16, dim=32, heads=4, ff_dim=64, n_layers=2)
        pool = ClusterDispatcher(
            [backend_cls(array_cls(config), 0.25) for _ in range(2)]
        )
        engine = InferenceEngine(pool, max_batch_size=8, flush_timeout=1e-4)
        engine.register("bert", model)

        def one_burst():
            ids = [engine.submit("bert", row) for row in tokens]
            report = engine.run()
            return [engine.result(i) for i in ids], report

        outputs, report = one_burst()
        elapsed = _best_of(lambda: one_burst(), repeats=3)
        return outputs, report, elapsed

    seed_out, seed_report, seed_t = run_burst(_SeedBackend, _SeedArray)
    new_out, new_report, new_t = run_burst(ArrayBackend, SystolicArray)

    for s, n in zip(seed_out, new_out):
        assert np.array_equal(s, n)
    assert new_report.total_cycles == seed_report.total_cycles

    print_artifact(
        "Serving burst (16 BERT-tiny requests, 2 array shards)\n"
        f"  seed shards {seed_t * 1e3:7.1f} ms   "
        f"new shards {new_t * 1e3:6.1f} ms   {seed_t / new_t:4.1f}x\n"
        + new_report.summary()
    )
    # "Measurably up": well clear of noise, conservative vs the >=5x
    # single-model gates because the engine adds shared batching work.
    assert seed_t / new_t >= 2.0


def test_placement_cost_aware_beats_round_robin(print_artifact):
    """Cost-aware placement >= 1.3x lower simulated makespan than blind
    round-robin on a skewed heterogeneous 4-shard pool.

    The pool mixes grid sizes, MAC counts and clocks (~160x capability
    spread end to end); the request mix is shape-skewed (two
    transformer endpoints with different sequence lengths and widths).
    Cost estimates come from the closed-form cycle model via batched
    ``Workload`` inventories — the same ``gemm_cycles`` the plan cache
    stores — so the policy prices every batch on every design point
    without executing anything twice.  Outputs stay bit-identical:
    placement moves work between shards, never changes arithmetic.
    """
    from repro.nn.workload import transformer_serving_workload
    from repro.serving import ClusterSpec, InferenceEngine, workload_cost_model

    pool_configs = [
        SystolicConfig(pe_rows=8, pe_cols=8, macs_per_pe=16, clock_hz=250e6),
        SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4, clock_hz=250e6),
        SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4, clock_hz=100e6),
        SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=2, clock_hz=100e6),
    ]
    small_kw = dict(vocab=16, seq_len=8, dim=8, heads=2, ff_dim=16, n_layers=1)
    large_kw = dict(vocab=16, seq_len=16, dim=16, heads=4, ff_dim=32, n_layers=2)
    rng = np.random.default_rng(4)
    small_rows = rng.integers(0, 16, size=(24, small_kw["seq_len"]))
    large_rows = rng.integers(0, 16, size=(8, large_kw["seq_len"]))

    def cost(kw):
        return workload_cost_model(
            lambda batch, shape: transformer_serving_workload(
                batch, kw["seq_len"], kw["dim"], kw["heads"],
                kw["ff_dim"], kw["n_layers"],
            )
        )

    def run(placement):
        engine = InferenceEngine(
            ClusterSpec.heterogeneous(pool_configs).build(),
            max_batch_size=4,
            flush_timeout=1e-4,
            placement=placement,
        )
        engine.register("bert_small", TinyBERT(**small_kw), cost_model=cost(small_kw))
        engine.register("bert_large", TinyBERT(**large_kw), cost_model=cost(large_kw))
        ids = [engine.submit("bert_small", row, arrival=0.0) for row in small_rows]
        ids += [engine.submit("bert_large", row, arrival=0.0) for row in large_rows]
        report = engine.run()
        outputs = [engine.result(i) for i in ids]
        return outputs, report

    rr_outputs, rr_report = run("round_robin")
    ca_outputs, ca_report = run("cost_aware")

    for a, b in zip(rr_outputs, ca_outputs):
        assert np.array_equal(a, b), "placement changed results"
    assert rr_report.n_requests == ca_report.n_requests == 32
    # The pinned backward-compat mapping: i-th batch -> shard i % 4.
    for decision in rr_report.placements:
        assert decision.shard == decision.batch_index % 4

    ratio = rr_report.makespan / ca_report.makespan
    results = {
        "pool": [
            f"{c.describe()} @ {c.clock_hz / 1e6:.0f} MHz" for c in pool_configs
        ],
        "requests": 32,
        "round_robin_makespan_us": rr_report.makespan * 1e6,
        "cost_aware_makespan_us": ca_report.makespan * 1e6,
        "speedup": ratio,
        "gate": PLACEMENT_GATE,
        "round_robin_imbalance": rr_report.imbalance(),
        "cost_aware_imbalance": ca_report.imbalance(),
        "cost_aware_utilization": {
            str(shard): round(util, 4)
            for shard, util in ca_report.shard_utilization().items()
        },
    }
    _update_artifact(placement=results)

    print_artifact(
        "Placement on a skewed heterogeneous 4-shard pool "
        "(32 requests, 2 endpoints)\n"
        f"  round_robin makespan {rr_report.makespan * 1e6:9.1f} us\n"
        f"  cost_aware  makespan {ca_report.makespan * 1e6:9.1f} us   "
        f"{ratio:4.1f}x\n"
        + ca_report.placement_section()
    )
    assert ratio >= PLACEMENT_GATE, (
        f"cost_aware only {ratio:.2f}x better than round_robin "
        f"(< {PLACEMENT_GATE}x gate)"
    )


def test_kv_cache_prefix_reuse(print_artifact):
    """KV-prefix reuse >= 2x traced-cycle reduction on a repeated-prefix
    burst, bit-identical to cold execution.

    The production-shaped scenario: a burst of requests sharing a long
    prompt (28 of 32 tokens) hits one engine with a ``PrefixCache`` and
    one without.  The cached engine executes the first batch cold
    (seeding the cache) and every later batch suffix-only on the shard
    holding the prefix; outputs match element for element, and the
    pool-wide traced cycles drop by the closed-form cost of the skipped
    GEMM/GELU work — the exactness the property suite pins.
    """
    from repro.nn.models import TinyBERT
    from repro.serving import (
        ClusterSpec,
        InferenceEngine,
        PrefixCache,
        TransformerPrefixAdapter,
    )

    config = _paper_config()
    seq_len, prefix_len = 32, 28
    model = TinyBERT(
        vocab=32, seq_len=seq_len, dim=32, heads=4, ff_dim=64,
        n_layers=2, causal=True,
    )
    rng = np.random.default_rng(6)
    prompt = rng.integers(0, 32, size=prefix_len)
    tokens = np.concatenate(
        [
            np.broadcast_to(prompt, (32, prefix_len)),
            rng.integers(0, 32, size=(32, seq_len - prefix_len)),
        ],
        axis=1,
    )

    def run_burst(cache):
        engine = InferenceEngine(
            ClusterSpec.homogeneous(config, 2).build(),
            max_batch_size=8,
            flush_timeout=1e-4,
            prefix_cache=cache,
        )
        adapter = (
            TransformerPrefixAdapter(model, prefix_len) if cache is not None else None
        )
        engine.register("bert", model, prefix_adapter=adapter)
        # Warm the approximator preloads on both shards so the traced
        # totals compare pure inference work.
        for shard in range(2):
            model.infer(tokens[:1], engine.dispatcher.backends[shard])
            engine.dispatcher.array_of(shard).trace.clear()
        ids = [engine.submit("bert", row) for row in tokens]
        report = engine.run()
        outputs = [engine.result(i) for i in ids]
        return outputs, report

    cold_out, cold_report = run_burst(None)
    warm_out, warm_report = run_burst(PrefixCache())

    for a, b in zip(cold_out, warm_out):
        assert np.array_equal(a, b), "prefix reuse changed results"
    assert warm_report.prefix_misses == 1
    assert warm_report.prefix_hits == 3
    # Exact accounting: cycles saved is precisely the traced difference.
    assert (
        cold_report.total_cycles - warm_report.total_cycles
        == warm_report.prefix_cycles_saved
    )

    ratio = cold_report.total_cycles / warm_report.total_cycles
    results = {
        "design_point": config.describe(),
        "requests": 32,
        "seq_len": seq_len,
        "prefix_len": prefix_len,
        "cold_total_cycles": cold_report.total_cycles,
        "cached_total_cycles": warm_report.total_cycles,
        "cycles_saved": warm_report.prefix_cycles_saved,
        "hit_batches": warm_report.prefix_hits,
        "miss_batches": warm_report.prefix_misses,
        "reduction": ratio,
        "gate": KV_CACHE_GATE,
    }
    _update_artifact(kv_cache=results)

    print_artifact(
        "KV-prefix reuse (32 requests, 28/32 shared prompt, 2 shards)\n"
        f"  cold burst   {cold_report.total_cycles:>12,} cycles\n"
        f"  cached burst {warm_report.total_cycles:>12,} cycles   "
        f"{ratio:4.1f}x fewer\n"
        + warm_report.prefix_section()
    )
    assert ratio >= KV_CACHE_GATE, (
        f"prefix reuse only {ratio:.2f}x traced-cycle reduction "
        f"(< {KV_CACHE_GATE}x gate)"
    )


def test_multiproc_scaleout_throughput(print_artifact):
    """Two worker processes over a 2-shard cluster sustain >= 1.5x the
    simulated throughput of one worker owning a single shard, with
    bit-identical outputs and exact merged accounting.

    The scale-out claim: a fleet worker owns its shard block outright,
    so adding a worker adds its block's full capacity.  Throughput is
    simulated requests-per-second (the cycle model's makespan), which
    isolates the capacity claim from host scheduling noise — on the
    single-core CI runner the two forked workers time-slice one CPU,
    but each one's *simulated* clock only advances with its own
    shards' work.  The fleet makespan is the slowest worker's (they
    run concurrently), so the ideal ratio on an even split is 2x and
    the 1.5x gate leaves room for batching-edge effects only.
    """
    import tempfile

    from repro.serving import ClusterSpec, ModelSpec, serve_multiproc
    from repro.serving.multiproc import partition_cluster

    config = _paper_config()
    cluster = ClusterSpec.homogeneous(config, 2)
    seq_len = 16
    model_kwargs = dict(
        vocab=32, seq_len=seq_len, dim=32, heads=4, ff_dim=64,
        n_layers=2, causal=True,
    )
    # No prefix endpoint here: every batch then costs the same, so the
    # makespan ratio measures shard capacity alone.  (The kv_cache
    # section above owns the prefix-reuse claim; the fabric still
    # shares GEMM/MHP plans and calibration across these workers.)
    models = [ModelSpec(name="bert", factory=TinyBERT, kwargs=model_kwargs)]
    rng = np.random.default_rng(7)
    # A burst (all arrivals at t=0): the makespan then measures pure
    # service capacity, not the arrival spread of the trace.
    requests = [
        {
            "model": "bert",
            "inputs": rng.integers(0, 32, size=seq_len),
            "arrival": 0.0,
        }
        for _ in range(32)
    ]

    # Baseline: one worker owning one shard block serves the full trace.
    single_block = partition_cluster(cluster, 2)[0]
    with tempfile.TemporaryDirectory() as root:
        single = serve_multiproc(
            single_block, models, requests, n_workers=1,
            store_root=f"{root}/fabric",
        )
    # Fleet: two workers, one block each, the trace split round-robin.
    with tempfile.TemporaryDirectory() as root:
        fleet = serve_multiproc(
            cluster, models, requests, n_workers=2,
            store_root=f"{root}/fabric",
        )

    # Scale-out must not change arithmetic: every request's output is
    # bit-identical to the single-worker run's.
    single_outputs = {
        record.request.inputs.tobytes(): record.outputs
        for record in single.merged.completed
    }
    for record in fleet.merged.completed:
        assert np.array_equal(
            record.outputs, single_outputs[record.request.inputs.tobytes()]
        ), "scale-out changed results"

    # Exact merged accounting across the fleet.
    assert fleet.merged.n_requests == 32
    assert fleet.merged.total_cycles == sum(
        r.total_cycles for r in fleet.reports
    )
    assert fleet.merged.shed_count == sum(r.shed_count for r in fleet.reports)

    single_span = single.merged.makespan
    fleet_span = max(report.makespan for report in fleet.reports)
    single_rps = 32 / single_span
    fleet_rps = 32 / fleet_span
    ratio = fleet_rps / single_rps
    results = {
        "design_point": config.describe(),
        "requests": 32,
        "workers": 2,
        "shards_per_worker": 1,
        "single_worker_makespan_us": single_span * 1e6,
        "fleet_makespan_us": fleet_span * 1e6,
        "single_worker_rps": single_rps,
        "fleet_rps": fleet_rps,
        "speedup": ratio,
        "gate": MULTIPROC_GATE,
    }
    _update_artifact(multiproc=results)

    print_artifact(
        "Multi-worker scale-out (32 requests, 2 workers x 1 shard, "
        "shared fabric)\n"
        f"  1 worker  makespan {single_span * 1e6:9.1f} us   "
        f"{single_rps:10.0f} req/s\n"
        f"  2 workers makespan {fleet_span * 1e6:9.1f} us   "
        f"{fleet_rps:10.0f} req/s   {ratio:4.2f}x"
    )
    assert ratio >= MULTIPROC_GATE, (
        f"2-worker fleet only {ratio:.2f}x single-worker throughput "
        f"(< {MULTIPROC_GATE}x gate)"
    )


def test_generation_continuous_batching(print_artifact):
    """Continuous-batching decode >= 2x the traced-cycle throughput of
    one-request-at-a-time decode on a mixed-arrival generation burst,
    with bit-identical tokens.

    Every decode iteration re-forms its batch from the live pool, so
    sequences admitted at different instants share each step's QKV
    projections, attention GEMMs and FFN — the per-step fixed costs
    (pipeline fill, weight loads) amortize over the batch while the
    serial baseline (``max_batch_size=1``) pays them once per sequence
    per token.  Prefill is *serial in both runs* (distinct prompts
    never share a prefill batch), so the ratio isolates the decode
    pool's contribution; tokens are bit-identical because batching
    only stacks rows through the same fixed-point kernels.
    """
    from repro.serving import ClusterDispatcher, GenerationAdapter, InferenceEngine

    config = _paper_config()
    # Narrow decode rows are the fixed-cost-dominated regime the decode
    # pool exists for: a (B, 4) step amortizes nearly all of its cycles.
    model = TinyBERT(
        vocab=16, seq_len=16, dim=4, heads=1, ff_dim=8, n_layers=2,
        causal=True, seed=0,
    )
    rng = np.random.default_rng(9)
    n_requests, prompt_len, max_new = 16, 4, 12
    prompts = rng.integers(0, 16, size=(n_requests, prompt_len))

    def run_burst(max_batch_size):
        pool = ClusterDispatcher.from_arrays([SystolicArray(config)], 0.25)
        engine = InferenceEngine(
            pool, max_batch_size=max_batch_size, flush_timeout=1e-4
        )
        engine.register("gen", generation_adapter=GenerationAdapter(model))
        ids = [
            engine.submit_generation("gen", row, max_new, arrival=i * 1e-7)
            for i, row in enumerate(prompts)
        ]
        report = engine.run()
        outputs = [engine.result(i) for i in ids]
        return outputs, report

    serial_out, serial_report = run_burst(1)
    batched_out, batched_report = run_burst(16)

    # Batching must not change a single token.
    for a, b in zip(serial_out, batched_out):
        assert np.array_equal(a, b), "continuous batching changed tokens"
    assert len(batched_report.completed) == n_requests
    assert not batched_report.failed and not batched_report.shed

    # The decode pool actually merged independent sequences.
    steps = batched_report.generation_steps
    mean_batch = sum(s.batch_size for s in steps) / len(steps)
    assert max(s.batch_size for s in steps) > 1

    # Traced-cycle throughput: tokens per simulated cycle of pool work.
    tokens = batched_report.generated_tokens
    serial_tput = tokens / serial_report.total_cycles
    batched_tput = tokens / batched_report.total_cycles
    ratio = batched_tput / serial_tput
    results = {
        "design_point": config.describe(),
        "requests": n_requests,
        "prompt_len": prompt_len,
        "max_new_tokens": max_new,
        "tokens": tokens,
        "serial_total_cycles": serial_report.total_cycles,
        "batched_total_cycles": batched_report.total_cycles,
        "serial_decode_iterations": serial_report.decode_steps,
        "batched_decode_iterations": batched_report.decode_steps,
        "mean_decode_batch": mean_batch,
        "serial_tokens_per_sec": serial_report.tokens_per_second(),
        "batched_tokens_per_sec": batched_report.tokens_per_second(),
        "speedup": ratio,
        "gate": GENERATION_GATE,
    }
    _update_artifact(generation=results)

    print_artifact(
        f"Continuous-batching decode ({n_requests} requests x {max_new} "
        "tokens, 1 shard)\n"
        f"  one-at-a-time {serial_report.total_cycles:>10,} cycles   "
        f"{serial_report.decode_steps:4d} iterations\n"
        f"  continuous    {batched_report.total_cycles:>10,} cycles   "
        f"{batched_report.decode_steps:4d} iterations   {ratio:4.2f}x\n"
        + batched_report.generation_section()
    )
    assert ratio >= GENERATION_GATE, (
        f"continuous batching only {ratio:.2f}x one-at-a-time "
        f"traced-cycle throughput (< {GENERATION_GATE}x gate)"
    )


def test_fault_recovery_throughput(print_artifact):
    """A supervised 2-worker fleet that loses one worker mid-run and
    redistributes its requests still completes every request with
    bit-identical outputs at >= 0.4x the no-fault simulated throughput.

    The recovery claim: killing worker 1 (nonzero exit before it
    delivers a report) with the restart budget exhausted forces the
    supervisor down the redistribution path — the dead worker's
    requests re-run on the survivor's shard block, time-shifted behind
    its existing work.  Half the fleet's capacity is gone, so the
    ideal throughput ratio is 0.5x; the 0.4x gate leaves room for
    batching-edge effects only.  Simulated throughput (requests over
    the merged makespan) isolates the capacity claim from host
    scheduling noise, exactly as in the scale-out benchmark above.
    """
    import tempfile

    from repro.serving import ClusterSpec, FaultPlan, ModelSpec, WorkerDeath
    from repro.serving import serve_multiproc

    config = _paper_config()
    cluster = ClusterSpec.homogeneous(config, 2)
    seq_len = 16
    model_kwargs = dict(
        vocab=32, seq_len=seq_len, dim=32, heads=4, ff_dim=64,
        n_layers=2, causal=True, seed=0,
    )
    models = [ModelSpec(name="bert", factory=TinyBERT, kwargs=model_kwargs)]
    rng = np.random.default_rng(8)
    requests = [
        {
            "model": "bert",
            "inputs": rng.integers(0, 32, size=seq_len),
            "arrival": 0.0,
        }
        for _ in range(32)
    ]

    def run(fault_plan):
        with tempfile.TemporaryDirectory() as root:
            return serve_multiproc(
                cluster, models, requests, n_workers=2,
                store_root=f"{root}/fabric",
                fault_plan=fault_plan,
                supervise=True,
                max_restarts=0,  # straight to redistribution
            )

    healthy = run(None)
    crashed = run(FaultPlan(events=(WorkerDeath(worker=1, at=1e-4),)))

    # Exactly-once completion under the crash: every submitted request
    # completes, none fail, none duplicate.
    assert crashed.merged.n_requests == 32
    assert crashed.merged.failed_count == 0
    assert crashed.merged.worker_redistributions == 1
    assert crashed.merged.worker_restarts == 0

    # Recovery must not change arithmetic: outputs bit-identical to the
    # no-fault fleet, request by request.
    healthy_outputs = {
        record.request.inputs.tobytes(): record.outputs
        for record in healthy.merged.completed
    }
    for record in crashed.merged.completed:
        assert np.array_equal(
            record.outputs, healthy_outputs[record.request.inputs.tobytes()]
        ), "fault recovery changed results"

    healthy_rps = 32 / healthy.merged.makespan
    crashed_rps = 32 / crashed.merged.makespan
    ratio = crashed_rps / healthy_rps
    results = {
        "design_point": config.describe(),
        "requests": 32,
        "workers": 2,
        "killed_worker": 1,
        "redistributions": crashed.merged.worker_redistributions,
        "healthy_makespan_us": healthy.merged.makespan * 1e6,
        "crashed_makespan_us": crashed.merged.makespan * 1e6,
        "healthy_rps": healthy_rps,
        "crashed_rps": crashed_rps,
        "throughput_ratio": ratio,
        "gate": FAULT_RECOVERY_GATE,
    }
    _update_artifact(fault_recovery=results)

    print_artifact(
        "Fault recovery (32 requests, 2 workers, worker 1 killed, "
        "redistributed)\n"
        f"  no fault  makespan {healthy.merged.makespan * 1e6:9.1f} us   "
        f"{healthy_rps:10.0f} req/s\n"
        f"  recovered makespan {crashed.merged.makespan * 1e6:9.1f} us   "
        f"{crashed_rps:10.0f} req/s   {ratio:4.2f}x"
        + "\n" + crashed.merged.fault_section()
    )
    assert ratio >= FAULT_RECOVERY_GATE, (
        f"recovered fleet only {ratio:.2f}x no-fault throughput "
        f"(< {FAULT_RECOVERY_GATE}x gate)"
    )


def test_autotune_search_beats_default(print_artifact):
    """A short seeded search over recorded traffic finds a deployment
    >= 1.3x better than the default config on the cost x SLO scalar.

    The closed loop the autotuner exists for: a default deployment (the
    full skewed 4-shard pool under blind round-robin) serves a bursty
    deadline-carrying burst with a ``TraceRecorder`` attached; the
    recorded trace is persisted and replayed over a seeded random draw
    of candidate deployments.  The default pool pays for all four
    design points — including two slow-clock shards round-robin keeps
    feeding — so the search finds configs that are simultaneously
    cheaper (smaller pools of the strong design points) and no worse at
    the tail, and the scalar objective (watt-equivalents x p99 seconds
    per unit of honored demand) improves by well over the gate.  The
    search itself is deterministic: same trace, same seed, same
    ``n_workers``-independent front every run.
    """
    from repro.autotune import (
        ConfigSpace,
        EndpointSpec,
        TraceRecorder,
        TuningConfig,
        WorkloadCostSpec,
        evaluate,
        load_trace,
        random_search,
        save_trace,
        scalar_score,
    )
    from repro.serving import ClusterSpec, InferenceEngine
    from repro.store import FileStore

    pool_configs = (
        SystolicConfig(pe_rows=8, pe_cols=8, macs_per_pe=16, clock_hz=250e6),
        SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4, clock_hz=250e6),
        SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4, clock_hz=100e6),
        SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=2, clock_hz=100e6),
    )
    model_kwargs = dict(
        vocab=16, seq_len=8, dim=8, heads=2, ff_dim=16, n_layers=1,
        causal=True, seed=0,
    )
    cost_spec = WorkloadCostSpec(seq_len=8, dim=8, heads=2, ff_dim=16, n_layers=1)
    endpoints = (
        EndpointSpec(
            name="bert", factory=TinyBERT, kwargs=model_kwargs, cost=cost_spec
        ),
    )
    default = TuningConfig(
        pool=pool_configs, placement="round_robin",
        max_batch_size=4, flush_timeout=1e-4,
    )

    # Record real traffic off the default deployment: a deadline-carrying
    # burst against the skewed pool, captured request by request.
    recorder = TraceRecorder(name="skewed_pool")
    engine = InferenceEngine(
        ClusterSpec.heterogeneous(default.pool).build(),
        max_batch_size=default.max_batch_size,
        flush_timeout=default.flush_timeout,
        placement=default.placement,
        recorder=recorder,
    )
    engine.register("bert", TinyBERT(**model_kwargs), cost_model=cost_spec.build())
    rng = np.random.default_rng(10)
    for i in range(32):
        arrival = float(i % 8) * 1e-6  # four overlapping 8-request waves
        engine.submit(
            "bert", rng.integers(0, 16, size=8), arrival,
            deadline=arrival + 5e-4,
        )
    engine.run()
    assert len(recorder) == 32

    import tempfile

    with tempfile.TemporaryDirectory() as root:
        store = FileStore(f"{root}/fabric", serializer="json")
        save_trace(recorder.trace(), store=store)
        trace = load_trace("skewed_pool", store=store)
    assert trace.n_requests == 32

    space = ConfigSpace(
        catalog=pool_configs, max_shards=4,
        batch_sizes=(2, 4, 8), flush_timeouts=(1e-4, 1e-3),
    )
    default_objective = evaluate(trace, default, endpoints)
    front = random_search(
        trace, space, endpoints, n_candidates=8, seed=0, n_workers=2
    )
    best = front.best()

    default_score = scalar_score(default_objective)
    best_score = scalar_score(best.objective)
    ratio = default_score / best_score
    results = {
        "trace": {
            "name": trace.name,
            "requests": trace.n_requests,
            "horizon_us": trace.horizon * 1e6,
        },
        "candidates_evaluated": front.evaluated,
        "front_size": front.n_entries,
        "default": {
            "config": default.describe(),
            "objective": default_objective.to_dict(),
            "score": default_score,
        },
        "best": {
            "config": best.config.describe(),
            "objective": best.objective.to_dict(),
            "score": best_score,
        },
        "improvement": ratio,
        "gate": AUTOTUNE_GATE,
    }
    _update_artifact(autotune=results)

    print_artifact(
        "Trace-driven autotuning (32 recorded requests, 8-candidate "
        "seeded search)\n"
        f"  default  score {default_score:.3e}   {default.describe()}\n"
        f"  tuned    score {best_score:.3e}   {best.config.describe()}\n"
        f"  improvement {ratio:5.2f}x\n"
        + front.describe()
    )
    assert ratio >= AUTOTUNE_GATE, (
        f"tuned config only {ratio:.2f}x better than the default "
        f"(< {AUTOTUNE_GATE}x gate)"
    )


def test_elastic_runtime_beats_greedy(print_artifact):
    """Look-ahead placement + work-stealing >= 1.5x lower simulated
    makespan than greedy ``cost_aware`` on the skewed 4-shard pool,
    with max/min shard-busy imbalance <= 3x and bit-identical outputs.

    The load-concentration pathology this PR fixes: a warmup of large
    batches occupies both fast shards, so the first batch of a
    hot-prefix stream cold-lands on a slow shard — and greedy placement
    then *pins the whole stream there*, because prefix affinity always
    prefers the shard holding the KV entry and greedy never revisits a
    queued decision.  The slow shard grinds through dozens of hit
    batches at ~3x the fast shards' service time while those shards sit
    idle.  The elastic runtime re-prices queued-but-unstarted batches
    at execution time: once a fast shard frees, the affinity-break test
    fires, the prefix entry migrates through the store fabric, and the
    remaining stream drains at fast-shard hit cost.  Placement moves
    work between shards, never changes arithmetic, so every request's
    output stays bit-identical to the greedy run's.
    """
    from repro.nn.workload import transformer_serving_workload
    from repro.serving import (
        ClusterSpec,
        ElasticConfig,
        InferenceEngine,
        PrefixCache,
        TransformerPrefixAdapter,
        workload_cost_model,
    )

    pool_configs = [
        SystolicConfig(pe_rows=8, pe_cols=8, macs_per_pe=16, clock_hz=250e6),
        SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4, clock_hz=250e6),
        SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4, clock_hz=100e6),
        SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=2, clock_hz=100e6),
    ]
    small_kw = dict(vocab=16, seq_len=8, dim=8, heads=2, ff_dim=16, n_layers=1)
    large_kw = dict(vocab=16, seq_len=16, dim=16, heads=4, ff_dim=32, n_layers=2)
    prefix_len = 6
    n_large_rows, n_cold, n_hot_batches = 12, 8, 48

    def cost(kw):
        return workload_cost_model(
            lambda batch, shape: transformer_serving_workload(
                batch, kw["seq_len"], kw["dim"], kw["heads"],
                kw["ff_dim"], kw["n_layers"],
            )
        )

    def run(placement, elastic):
        engine = InferenceEngine(
            ClusterSpec.heterogeneous(pool_configs).build(),
            max_batch_size=4,
            flush_timeout=1e-7,
            placement=placement,
            prefix_cache=PrefixCache(shard_budget_bytes=1 << 20),
            elastic=elastic,
        )
        small = TinyBERT(**small_kw, causal=True, seed=0)
        engine.register(
            "bert_small", small, cost_model=cost(small_kw),
            prefix_adapter=TransformerPrefixAdapter(small, prefix_len),
        )
        engine.register(
            "bert_large", TinyBERT(**large_kw, seed=0), cost_model=cost(large_kw)
        )
        rng = np.random.default_rng(11)
        # Warmup: three large batches.  Greedy stacks two on shard 0 and
        # spills the third to shard 1, so both fast shards are busy
        # ~105 us when the hot stream starts arriving.
        ids = [
            engine.submit("bert_large", row, arrival=0.0)
            for row in rng.integers(0, 16, size=(n_large_rows, 16))
        ]
        ids += [
            engine.submit("bert_small", row, arrival=0.0)
            for row in rng.integers(0, 16, size=(n_cold, 8))
        ]
        # The hot stream: 4-row batches sharing a 6/8-token prompt, one
        # batch per microsecond — faster than the slow shard can serve
        # them, so a pinned queue builds there under greedy placement.
        prompt = rng.integers(0, 16, size=prefix_len)
        for i in range(n_hot_batches):
            for _ in range(4):
                suffix = rng.integers(0, 16, size=2)
                ids.append(
                    engine.submit(
                        "bert_small",
                        np.concatenate([prompt, suffix]),
                        arrival=1e-6 * (i + 1),
                    )
                )
        report = engine.run()
        outputs = {i: engine.result(i, keep=True) for i in ids}
        return outputs, report

    greedy_out, greedy_report = run("cost_aware", None)
    elastic_out, elastic_report = run(
        "lookahead", ElasticConfig(lookahead=True, steal=True)
    )

    # Re-placement must not change arithmetic: request by request,
    # outputs are bit-identical across the two runs.
    assert greedy_out.keys() == elastic_out.keys()
    for request_id, expected in greedy_out.items():
        assert np.array_equal(expected, elastic_out[request_id]), (
            "elastic re-placement changed results"
        )
    assert elastic_report.steal_count > 0, "no steal fired"

    # Busy-time imbalance over the *whole* pool — idle shards count.
    greedy_busy = {s: greedy_report.shard_busy.get(s, 0.0) for s in range(4)}
    elastic_busy = {s: elastic_report.shard_busy.get(s, 0.0) for s in range(4)}
    assert min(elastic_busy.values()) > 0.0, "elastic left a shard idle"
    spread = max(elastic_busy.values()) / min(elastic_busy.values())

    ratio = greedy_report.makespan / elastic_report.makespan
    results = {
        "pool": [
            f"{c.describe()} @ {c.clock_hz / 1e6:.0f} MHz" for c in pool_configs
        ],
        "requests": len(greedy_out),
        "hot_prefix_batches": n_hot_batches,
        "greedy_makespan_us": greedy_report.makespan * 1e6,
        "elastic_makespan_us": elastic_report.makespan * 1e6,
        "speedup": ratio,
        "gate": ELASTIC_GATE,
        "steals": elastic_report.steal_count,
        "steals_by_reason": elastic_report.steals_by_reason(),
        "greedy_busy_us": {
            str(s): round(b * 1e6, 2) for s, b in greedy_busy.items()
        },
        "elastic_busy_us": {
            str(s): round(b * 1e6, 2) for s, b in elastic_busy.items()
        },
        "elastic_spread": spread,
        "spread_gate": ELASTIC_SPREAD_GATE,
    }
    _update_artifact(elastic=results)

    print_artifact(
        "Elastic runtime on the skewed heterogeneous 4-shard pool "
        f"({len(greedy_out)} requests, hot-prefix stream)\n"
        f"  greedy cost_aware makespan {greedy_report.makespan * 1e6:9.1f} us\n"
        f"  lookahead+steal   makespan {elastic_report.makespan * 1e6:9.1f} us   "
        f"{ratio:4.2f}x\n"
        f"  elastic busy spread {spread:4.2f}x (gate <= {ELASTIC_SPREAD_GATE}x)\n"
        + elastic_report.elastic_section()
    )
    assert ratio >= ELASTIC_GATE, (
        f"elastic runtime only {ratio:.2f}x better than greedy cost_aware "
        f"(< {ELASTIC_GATE}x gate)"
    )
    assert spread <= ELASTIC_SPREAD_GATE, (
        f"elastic busy-time spread {spread:.2f}x exceeds "
        f"{ELASTIC_SPREAD_GATE}x gate"
    )
