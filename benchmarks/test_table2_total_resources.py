"""Bench E3 — Table II: total hardware resources across array sizes.

The reproduced claim: ONE-SA adds 13.3%–24.1% flip-flops and virtually
nothing else (BRAM +2, LUT <1.5%, DSP identical) at 4×4, 8×8 and 16×16.
The model reproduces every published cell exactly.
"""

import pytest

from repro.evaluation.resource_sweep import (
    PAPER_TABLE2,
    format_table2,
    table2_total_resources,
)


def test_table2_total_resources(benchmark, print_artifact):
    rows = benchmark(table2_total_resources)
    print_artifact(format_table2())

    for entry in rows:
        dim = entry["dim"]
        for design in ("sa", "one-sa"):
            published = PAPER_TABLE2[(dim, design)]
            ours = entry[design]
            assert int(ours.bram) == published["bram"]
            assert int(ours.lut) == published["lut"]
            assert int(ours.ff) == published["ff"]
            assert int(ours.dsp) == published["dsp"]
        # Paper's headline band: 13.3% (4x4) to 24.1% (16x16) extra FFs.
        assert 1.13 <= entry["ratio"]["ff"] <= 1.25
        assert entry["ratio"]["lut"] <= 1.015
        assert entry["ratio"]["dsp"] == pytest.approx(1.0)

    ff_ratios = [e["ratio"]["ff"] for e in rows]
    assert ff_ratios[0] == pytest.approx(1.133, abs=0.002)
    assert ff_ratios[-1] == pytest.approx(1.241, abs=0.002)
