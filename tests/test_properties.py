"""Cross-cutting property-based tests (hypothesis).

Invariants that must hold across the whole stack, independent of the
specific calibration: quantization ordering, CPWL bracketing, tiling
equivalence, lane partitioning, timing monotonicity, Pareto soundness —
and the causality/prefix-reuse invariants the KV cache rides on.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.cpwl import CPWLApproximator
from repro.core.segment_table import build_segment_table
from repro.fixedpoint import INT16, dequantize, fixed_matmul, quantize
from repro.hardware.pareto import pareto_front
from repro.hardware.power import power_watts
from repro.hardware.resources import total_resources
from repro.nn.executor import CPWLBackend, KVTap
from repro.nn.models import TinyBERT
from repro.nn.workload import (
    GemmOp,
    transformer_prefix_savings,
    transformer_prefix_workload,
    transformer_serving_workload,
)
from repro.systolic.config import SystolicConfig
from repro.systolic.gemm import execute_gemm
from repro.systolic.mhp_dataflow import plan_mhp
from repro.systolic.timing import gemm_cycles, nonlinear_cycles

floats_small = st.floats(min_value=-100, max_value=100, allow_nan=False)


class TestQuantizationProperties:
    @given(st.lists(floats_small, min_size=2, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_quantization_preserves_order(self, values):
        """Quantization is monotone: sorted inputs stay sorted."""
        arr = np.sort(np.array(values))
        raw = quantize(arr, INT16)
        assert np.all(np.diff(raw.astype(np.int64)) >= 0)

    @given(st.lists(floats_small, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_quantize_idempotent(self, values):
        """Quantizing an already-quantized value is the identity."""
        arr = np.array(values)
        once = dequantize(quantize(arr, INT16), INT16)
        twice = dequantize(quantize(once, INT16), INT16)
        assert np.array_equal(once, twice)


class TestCPWLProperties:
    @given(
        st.sampled_from(["gelu", "tanh", "sigmoid"]),
        st.sampled_from([0.125, 0.25, 0.5, 1.0]),
    )
    @settings(max_examples=20, deadline=None)
    def test_chord_bracketing(self, name, granularity):
        """Inside each segment the chord stays between the function's
        segment-endpoint values (chords of monotone pieces do)."""
        table = build_segment_table(name, granularity)
        xs = np.linspace(table.x_min, table.x_max - 1e-9, 400)
        seg = table.segment_of(xs)
        starts = table.x_min + seg * granularity
        ends = starts + granularity
        from repro.core.functions import get_function

        fn = get_function(name)
        lo = np.minimum(fn(starts), fn(ends))
        hi = np.maximum(fn(starts), fn(ends))
        approx = table.evaluate(xs)
        assert np.all(approx >= lo - 1e-9)
        assert np.all(approx <= hi + 1e-9)

    @given(st.floats(min_value=0.05, max_value=2.0))
    @settings(max_examples=20, deadline=None)
    def test_any_positive_granularity_builds(self, granularity):
        approx = CPWLApproximator("gelu", granularity, fmt=None)
        assert approx.table.n_segments >= 1
        # Midpoint evaluation stays finite and near the function.
        x = np.array([0.5])
        assert np.isfinite(approx(x)).all()


class TestDataflowProperties:
    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_tiled_gemm_equals_whole(self, m, k, n):
        """Tile-by-tile execution equals one whole-matrix GEMM."""
        rng = np.random.default_rng(m * 400 + k * 20 + n)
        a = quantize(rng.normal(size=(m, k)), INT16)
        b = quantize(rng.normal(size=(k, n)), INT16)
        config = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
        out, _ = execute_gemm(config, a, b)
        assert np.array_equal(out, fixed_matmul(a, b, INT16))

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=2, max_value=16))
    @settings(max_examples=30, deadline=None)
    def test_mhp_lanes_partition_rows(self, rows, pe_dim):
        """Every row is assigned to exactly one diagonal lane."""
        config = SystolicConfig(pe_rows=pe_dim, pe_cols=pe_dim)
        schedule = plan_mhp(config, rows, 4)
        seen = np.concatenate([r for r in schedule.lane_rows if r.size])
        assert sorted(seen.tolist()) == list(range(rows))


class TestTimingProperties:
    @given(
        st.integers(min_value=1, max_value=256),
        st.integers(min_value=1, max_value=256),
    )
    @settings(max_examples=40, deadline=None)
    def test_gemm_cycles_monotone_in_problem(self, m, n):
        config = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=8)
        small = gemm_cycles(config, m, 32, n).total
        large = gemm_cycles(config, m + 4, 32, n + 4).total
        assert large >= small

    @given(st.integers(min_value=1, max_value=256))
    @settings(max_examples=30, deadline=None)
    def test_nonlinear_cycles_monotone(self, m):
        config = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=8)
        assert (
            nonlinear_cycles(config, m + 8, 16).total
            >= nonlinear_cycles(config, m, 16).total
        )

    @given(st.sampled_from([2, 4, 8, 16]), st.sampled_from([2, 4, 8, 16, 32]))
    @settings(max_examples=20, deadline=None)
    def test_power_positive_and_bounded(self, pe_dim, macs):
        config = SystolicConfig(pe_rows=pe_dim, pe_cols=pe_dim, macs_per_pe=macs)
        p = power_watts(config)
        assert 0.5 < p < 100

    @given(st.sampled_from([2, 4, 8, 16]))
    @settings(max_examples=10, deadline=None)
    def test_resources_nonnegative(self, pe_dim):
        res = total_resources(SystolicConfig(pe_rows=pe_dim, pe_cols=pe_dim))
        assert min(res.bram, res.lut, res.ff, res.dsp) >= 0


class TestCausalPrefixProperties:
    """The invariants KV-prefix reuse is built on.

    The serving-level claims (bit-identity through the engine, exact
    traced-cycle accounting on the array) live in
    ``tests/test_prefix_cache.py``; here are the underlying model-level
    properties, on the cheap untraced CPWL backend.
    """

    @staticmethod
    def _model(seq_len, dim, heads, ff_dim, n_layers, seed):
        return TinyBERT(
            vocab=16, seq_len=seq_len, dim=dim, heads=heads, ff_dim=ff_dim,
            n_layers=n_layers, causal=True, seed=seed,
        )

    @given(
        seq_len=st.sampled_from([6, 8, 12]),
        dims=st.sampled_from([(8, 2), (16, 4)]),
        n_layers=st.integers(min_value=1, max_value=2),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=12, deadline=None)
    def test_causal_prefix_activations_independent_of_suffix(
        self, seq_len, dims, n_layers, seed
    ):
        """Per-layer K/V and final hidden rows of a prompt are identical
        no matter what tokens follow it — the soundness condition for
        caching them at all."""
        dim, heads = dims
        rng = np.random.default_rng(seed)
        prefix_len = max(1, seq_len // 2)
        model = self._model(seq_len, dim, heads, 2 * dim, n_layers, seed % 11)
        backend = CPWLBackend(0.25)
        prefix = rng.integers(0, 16, size=prefix_len)

        taps = []
        for _ in range(2):
            suffix = rng.integers(0, 16, size=(2, seq_len - prefix_len))
            tokens = np.concatenate(
                [np.broadcast_to(prefix, (2, prefix_len)), suffix], axis=1
            )
            tap = KVTap(prefix_len)
            model.infer(tokens, backend, kv_tap=tap)
            taps.append(tap)
        first, second = taps
        for a, b in zip(first.layers, second.layers):
            assert np.array_equal(a.k, b.k)
            assert np.array_equal(a.v, b.v)
        assert np.array_equal(first.final_hidden, second.final_hidden)

    @given(
        seq_len=st.sampled_from([6, 8, 10]),
        dims=st.sampled_from([(8, 2), (16, 4)]),
        batch=st.integers(min_value=1, max_value=3),
        prefix_len=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=12, deadline=None)
    def test_suffix_inference_bit_identical_to_cold(
        self, seq_len, dims, batch, prefix_len, seed
    ):
        """Reusing a captured prefix reproduces cold outputs exactly."""
        assume(prefix_len < seq_len)
        dim, heads = dims
        rng = np.random.default_rng(seed)
        model = self._model(seq_len, dim, heads, 2 * dim, 1, seed % 7)
        backend = CPWLBackend(0.25)
        prefix = rng.integers(0, 16, size=prefix_len)
        tokens = np.concatenate(
            [
                np.broadcast_to(prefix, (batch, prefix_len)),
                rng.integers(0, 16, size=(batch, seq_len - prefix_len)),
            ],
            axis=1,
        )
        tap = KVTap(prefix_len)
        cold = model.infer(tokens, backend, kv_tap=tap)
        warm = model.infer_suffix(tokens, tap, backend)
        assert np.array_equal(cold, warm)

    @given(
        batch=st.integers(min_value=1, max_value=8),
        seq_len=st.integers(min_value=2, max_value=64),
        dims=st.sampled_from([(8, 2), (32, 4), (64, 8)]),
        n_layers=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_prefix_savings_positive_and_monotone(
        self, batch, seq_len, dims, n_layers
    ):
        """The closed-form savings are positive and grow with the
        prefix: caching more of the prompt never costs cycles."""
        dim, heads = dims
        config = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=8)
        previous = 0
        for prefix_len in range(1, seq_len):
            saved = transformer_prefix_savings(
                batch, seq_len, prefix_len, dim, heads, 2 * dim, n_layers, config
            )
            assert saved > 0
            assert saved >= previous
            previous = saved

    def test_prefix_savings_validates_bounds(self):
        config = SystolicConfig(pe_rows=4, pe_cols=4)
        with pytest.raises(ValueError):
            transformer_prefix_savings(1, 8, 0, 8, 2, 16, 1, config)
        with pytest.raises(ValueError):
            transformer_prefix_savings(1, 8, 8, 8, 2, 16, 1, config)

    @given(
        batch=st.integers(min_value=1, max_value=6),
        seq_len=st.integers(min_value=2, max_value=32),
        prefix_len=st.integers(min_value=1, max_value=31),
        dims=st.sampled_from([(8, 2), (32, 4)]),
        n_layers=st.integers(min_value=1, max_value=3),
        config=st.sampled_from(
            [
                SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=8),
                SystolicConfig(pe_rows=8, pe_cols=8, macs_per_pe=16),
            ]
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_prefix_workload_inventory_matches_savings(
        self, batch, seq_len, prefix_len, dims, n_layers, config
    ):
        """The suffix (hit-path) op inventory and the savings closed
        form describe the same execution: over the traced op subset
        (GEMMs + the GELU MHP), full inventory minus suffix inventory
        equals ``transformer_prefix_savings`` — which the cache tests
        pin to the live trace, so the inventory cannot drift from the
        real suffix path."""
        assume(prefix_len < seq_len)
        dim, heads = dims
        ff_dim = 2 * dim
        full = transformer_serving_workload(
            batch, seq_len, dim, heads, ff_dim, n_layers
        )
        suffix = transformer_prefix_workload(
            batch, seq_len, prefix_len, dim, heads, ff_dim, n_layers
        )

        def traced_cycles(workload):
            total = 0
            for op in workload.ops:
                if isinstance(op, GemmOp):
                    total += gemm_cycles(config, op.m, op.k, op.n).total * op.count
                elif op.kind == "gelu":
                    total += (
                        nonlinear_cycles(config, op.m, op.n).total
                        * op.mhp_passes
                        * op.count
                    )
            return total

        assert traced_cycles(full) - traced_cycles(suffix) == (
            transformer_prefix_savings(
                batch, seq_len, prefix_len, dim, heads, ff_dim, n_layers, config
            )
        )


class TestParetoProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=10, allow_nan=False),
                st.floats(min_value=0, max_value=10, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_front_is_mutually_nondominating(self, points):
        objs = (lambda p: p[0], lambda p: p[1])
        front = pareto_front(points, objs)
        assert front  # at least one survivor
        for a in front:
            for b in front:
                if a is b:
                    continue
                strictly_dominates = (
                    b[0] <= a[0] and b[1] <= a[1] and (b[0] < a[0] or b[1] < a[1])
                )
                assert not strictly_dominates

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=10, allow_nan=False),
                st.floats(min_value=0, max_value=10, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_every_point_dominated_by_some_front_point(self, points):
        objs = (lambda p: p[0], lambda p: p[1])
        front = pareto_front(points, objs)
        for p in points:
            assert any(f[0] <= p[0] and f[1] <= p[1] for f in front)
