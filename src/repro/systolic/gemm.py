"""GEMM dataflow schedule and tiling.

The array computes ``C = A @ B`` as output-stationary P×P tiles: a
weight tile is preloaded, the matching input rows stream through, every
PE accumulates one output element (``macs_per_pe`` reduction lanes per
cycle), and the finished tile drains through the L2 output banks into
the single L3 output buffer.

This module enumerates the tile schedule (used by the trace and energy
accounting), computes per-tile cycle costs consistent with
:mod:`repro.systolic.timing`, and provides the bit-accurate functional
execution via :func:`repro.fixedpoint.fixed_matmul`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.fixedpoint import fixed_matmul
from repro.systolic.config import SystolicConfig
from repro.systolic.timing import CycleBreakdown, effective_out_width, gemm_cycles


@dataclass(frozen=True)
class GemmTile:
    """One output tile of the GEMM schedule."""

    row_start: int
    row_end: int
    col_start: int
    col_end: int
    index: int

    @property
    def shape(self) -> tuple[int, int]:
        return (self.row_end - self.row_start, self.col_end - self.col_start)

    @property
    def elements(self) -> int:
        rows, cols = self.shape
        return rows * cols


@dataclass(frozen=True)
class GemmSchedule:
    """Complete schedule of one GEMM on a design point."""

    config: SystolicConfig
    m_dim: int
    k_dim: int
    n_dim: int
    tiles: List[GemmTile]
    breakdown: CycleBreakdown

    @property
    def macs(self) -> int:
        """Total multiply-accumulate operations."""
        return self.m_dim * self.k_dim * self.n_dim

    @property
    def input_traffic(self) -> int:
        """Operand elements streamed from L3 (A once per tile row pass,
        B once per tile).

        Output tiles are ``pe_rows x pe_cols``, so A is re-streamed once
        per tile *column* (``ceil(N / pe_cols)`` passes) and B once per
        tile *row* (``ceil(M / pe_rows)`` passes).
        """
        tiles_n = -(-self.n_dim // self.config.pe_cols)
        tiles_m = -(-self.m_dim // self.config.pe_rows)
        return tiles_n * self.m_dim * self.k_dim + tiles_m * self.k_dim * self.n_dim

    @property
    def output_traffic(self) -> int:
        """Result elements drained to the L3 output buffer."""
        return self.m_dim * self.n_dim


def plan_gemm(config: SystolicConfig, m_dim: int, k_dim: int, n_dim: int) -> GemmSchedule:
    """Build the tile schedule for ``C[M,N] = A[M,K] @ B[K,N]``.

    Output rows tile with ``pe_rows`` and output columns with
    ``pe_cols``, so rectangular PE grids produce correctly shaped tiles.
    """
    tiles = []
    index = 0
    for row_start in range(0, m_dim, config.pe_rows):
        for col_start in range(0, n_dim, config.pe_cols):
            tiles.append(
                GemmTile(
                    row_start=row_start,
                    row_end=min(row_start + config.pe_rows, m_dim),
                    col_start=col_start,
                    col_end=min(col_start + config.pe_cols, n_dim),
                    index=index,
                )
            )
            index += 1
    return GemmSchedule(
        config=config,
        m_dim=m_dim,
        k_dim=k_dim,
        n_dim=n_dim,
        tiles=tiles,
        breakdown=gemm_cycles(config, m_dim, k_dim, n_dim),
    )


def execute_gemm(
    config: SystolicConfig, a_raw: np.ndarray, b_raw: np.ndarray
) -> tuple[np.ndarray, GemmSchedule]:
    """Run a GEMM functionally (bit-accurate) with its schedule.

    The functional result is computed tile by tile in the schedule order
    so the arithmetic (wide accumulation, single saturating writeback
    per element) matches what the PE grid produces; the concatenated
    result equals :func:`fixed_matmul` on the full operands — a property
    the test suite checks.
    """
    a_raw = np.asarray(a_raw)
    b_raw = np.asarray(b_raw)
    if a_raw.ndim != 2 or b_raw.ndim != 2:
        raise ValueError("execute_gemm expects 2-D raw operands")
    if a_raw.shape[1] != b_raw.shape[0]:
        raise ValueError(f"shape mismatch: {a_raw.shape} @ {b_raw.shape}")
    m_dim, k_dim = a_raw.shape
    n_dim = b_raw.shape[1]
    schedule = plan_gemm(config, m_dim, k_dim, n_dim)
    out = np.zeros((m_dim, n_dim), dtype=config.fmt.storage_dtype())
    for tile in schedule.tiles:
        a_block = a_raw[tile.row_start : tile.row_end, :]
        b_block = b_raw[:, tile.col_start : tile.col_end]
        out[tile.row_start : tile.row_end, tile.col_start : tile.col_end] = (
            fixed_matmul(a_block, b_block, config.fmt)
        )
    return out, schedule
