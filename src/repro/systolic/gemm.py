"""GEMM dataflow schedule and tiling.

The *modelled hardware* computes ``C = A @ B`` as output-stationary
P×P tiles: a weight tile is preloaded, the matching input rows stream
through, every PE accumulates one output element (``macs_per_pe``
reduction lanes per cycle), and the finished tile drains through the
L2 output banks into the single L3 output buffer.  The *software* does
not loop over those tiles: since PR 2 the functional result is one
whole-operand :func:`repro.fixedpoint.fixed_matmul` call, and the tile
schedule survives purely as analytic metadata for the trace and energy
accounting.

This module derives that tile schedule analytically, computes cycle
costs consistent with :mod:`repro.systolic.timing`, and provides the
bit-accurate whole-matrix functional execution.

Two hot-path properties matter for serving throughput:

* **Plans are cached.**  Serving traffic repeats a handful of layer
  shapes, so :func:`plan_gemm` keeps a bounded LRU keyed on
  ``(config, M, K, N)`` (mirroring the approximator cache of
  :mod:`repro.core.nonlinear_ops`) — steady-state planning is a dict
  hit.
* **Tiles are enumerated lazily.**  :class:`GemmSchedule.tiles` is a
  :class:`GemmTiling` sequence that *derives* each
  :class:`GemmTile` analytically; consumers that only need counts or
  traffic totals never force an O(tiles) allocation.

Functional execution is one whole-operand :func:`fixed_matmul` call:
every output element is a single dot product with one saturating
writeback regardless of how the schedule partitions it into tiles, so
the whole-matrix result is bit-identical to the per-tile loop
(:func:`execute_gemm_per_tile` keeps the loop as the equivalence
reference the test suite pins the refactor against).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator

import numpy as np

from repro.fixedpoint import fixed_matmul
from repro.store import get_store, register_namespace
from repro.systolic.config import SystolicConfig
from repro.systolic.timing import CycleBreakdown, gemm_cycles


@dataclass(frozen=True)
class GemmTile:
    """One output tile of the GEMM schedule."""

    row_start: int
    row_end: int
    col_start: int
    col_end: int
    index: int

    @property
    def shape(self) -> tuple[int, int]:
        return (self.row_end - self.row_start, self.col_end - self.col_start)

    @property
    def elements(self) -> int:
        rows, cols = self.shape
        return rows * cols


class GemmTiling:
    """Lazy row-major tile enumeration of one GEMM's output.

    Behaves like an immutable sequence of :class:`GemmTile` — ``len``,
    iteration, indexing and slicing all work — but each tile is derived
    from the geometry on demand, so holding a tiling costs O(1) memory
    no matter how many tiles the schedule has.
    """

    __slots__ = ("m_dim", "n_dim", "tile_rows", "tile_cols", "tiles_m", "tiles_n")

    def __init__(self, m_dim: int, n_dim: int, tile_rows: int, tile_cols: int):
        self.m_dim = m_dim
        self.n_dim = n_dim
        self.tile_rows = tile_rows
        self.tile_cols = tile_cols
        self.tiles_m = -(-m_dim // tile_rows)
        self.tiles_n = -(-n_dim // tile_cols)

    def __len__(self) -> int:
        return self.tiles_m * self.tiles_n

    def _make(self, index: int) -> GemmTile:
        bi, bj = divmod(index, self.tiles_n)
        row_start = bi * self.tile_rows
        col_start = bj * self.tile_cols
        return GemmTile(
            row_start=row_start,
            row_end=min(row_start + self.tile_rows, self.m_dim),
            col_start=col_start,
            col_end=min(col_start + self.tile_cols, self.n_dim),
            index=index,
        )

    def __getitem__(self, index):
        n = len(self)
        if isinstance(index, slice):
            return [self._make(i) for i in range(*index.indices(n))]
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(f"tile index {index} out of range for {n} tiles")
        return self._make(index)

    def __iter__(self) -> Iterator[GemmTile]:
        for index in range(len(self)):
            yield self._make(index)

    def __repr__(self) -> str:
        return (
            f"GemmTiling({self.tiles_m}x{self.tiles_n} tiles of "
            f"{self.tile_rows}x{self.tile_cols} over {self.m_dim}x{self.n_dim})"
        )


@dataclass(frozen=True)
class GemmSchedule:
    """Complete schedule of one GEMM on a design point.

    The schedule is pure analytic metadata — tile geometry, cycle
    breakdown, traffic totals — so instances are immutable and shared
    freely through the plan cache.
    """

    config: SystolicConfig
    m_dim: int
    k_dim: int
    n_dim: int
    breakdown: CycleBreakdown

    @property
    def tiles(self) -> GemmTiling:
        """Lazy tile enumeration (row-major, O(1) memory)."""
        return GemmTiling(
            self.m_dim, self.n_dim, self.config.pe_rows, self.config.pe_cols
        )

    @property
    def n_tiles(self) -> int:
        """Number of output tiles without enumerating them."""
        return len(self.tiles)  # GemmTiling.__len__ is O(1)

    @property
    def macs(self) -> int:
        """Total multiply-accumulate operations."""
        return self.m_dim * self.k_dim * self.n_dim

    @property
    def input_traffic(self) -> int:
        """Operand elements streamed from L3 (A once per tile row pass,
        B once per tile).

        Output tiles are ``pe_rows x pe_cols``, so A is re-streamed once
        per tile *column* (``ceil(N / pe_cols)`` passes) and B once per
        tile *row* (``ceil(M / pe_rows)`` passes).
        """
        tiles_n = -(-self.n_dim // self.config.pe_cols)
        tiles_m = -(-self.m_dim // self.config.pe_rows)
        return tiles_n * self.m_dim * self.k_dim + tiles_m * self.k_dim * self.n_dim

    @property
    def output_traffic(self) -> int:
        """Result elements drained to the L3 output buffer."""
        return self.m_dim * self.n_dim


# ---------------------------------------------------------------------------
# Plan cache: serving traffic repeats a handful of layer shapes, so the
# steady state is a dict hit.  Schedules live in the process-global
# cache store under a bounded namespace (LRU eviction) so a
# shape-churning workload (design-space sweeps) cannot grow it without
# limit — and a shared store backend makes one worker's plans visible
# to the whole pool.
# ---------------------------------------------------------------------------
GEMM_PLAN_NAMESPACE = "systolic.gemm_plans"
_DEFAULT_PLAN_CACHE_CAPACITY = 512
register_namespace(GEMM_PLAN_NAMESPACE, max_entries=_DEFAULT_PLAN_CACHE_CAPACITY)


def plan_gemm(
    config: SystolicConfig,
    m_dim: int,
    k_dim: int,
    n_dim: int,
    use_cache: bool = True,
) -> GemmSchedule:
    """Build (or fetch) the schedule for ``C[M,N] = A[M,K] @ B[K,N]``.

    Output rows tile with ``pe_rows`` and output columns with
    ``pe_cols``, so rectangular PE grids produce correctly shaped tiles.
    Schedules are immutable and cached in a bounded LRU; pass
    ``use_cache=False`` to force a fresh build (the equivalence tests
    and seed-faithful benchmarks use this).
    """
    if use_cache:
        key = (config, m_dim, k_dim, n_dim)
        store = get_store()
        schedule = store.get(GEMM_PLAN_NAMESPACE, key)
        if schedule is not None:
            return schedule
    schedule = GemmSchedule(
        config=config,
        m_dim=m_dim,
        k_dim=k_dim,
        n_dim=n_dim,
        breakdown=gemm_cycles(config, m_dim, k_dim, n_dim),
    )
    if use_cache:
        store.put(GEMM_PLAN_NAMESPACE, key, schedule)
    return schedule


def clear_plan_cache() -> None:
    """Drop all cached schedules and reset the hit counters."""
    store = get_store()
    store.clear(GEMM_PLAN_NAMESPACE)
    store.reset_stats(GEMM_PLAN_NAMESPACE)


def set_plan_cache_capacity(capacity: int = _DEFAULT_PLAN_CACHE_CAPACITY) -> None:
    """Bound the plan LRU at ``capacity`` entries (evicts LRU overflow)."""
    if capacity < 1:
        raise ValueError(f"cache capacity must be positive, got {capacity}")
    get_store().set_limit(GEMM_PLAN_NAMESPACE, max_entries=int(capacity))


def plan_cache_info() -> Dict[str, int]:
    """Occupancy, capacity and hit/miss counters of the plan LRU."""
    stats = get_store().stats(GEMM_PLAN_NAMESPACE)
    return {
        "size": stats["entries"],
        "capacity": stats["max_entries"],
        "hits": stats["hits"],
        "misses": stats["misses"],
    }


def _validate_operands(a_raw: np.ndarray, b_raw: np.ndarray) -> tuple[int, int, int]:
    if a_raw.ndim != 2 or b_raw.ndim != 2:
        raise ValueError("execute_gemm expects 2-D raw operands")
    if a_raw.shape[1] != b_raw.shape[0]:
        raise ValueError(f"shape mismatch: {a_raw.shape} @ {b_raw.shape}")
    return a_raw.shape[0], a_raw.shape[1], b_raw.shape[1]


def execute_gemm(
    config: SystolicConfig, a_raw: np.ndarray, b_raw: np.ndarray
) -> tuple[np.ndarray, GemmSchedule]:
    """Run a GEMM functionally (bit-accurate) with its schedule.

    The functional result is one whole-operand :func:`fixed_matmul`:
    every output element is a single wide-accumulated dot product with
    one saturating writeback, exactly what the PE grid produces tile by
    tile, so the whole-matrix call equals the concatenated per-tile
    results (:func:`execute_gemm_per_tile` is the retained reference and
    the test suite asserts the equivalence).  Tile geometry stays
    available as analytic metadata on the returned schedule.
    """
    a_raw = np.asarray(a_raw)
    b_raw = np.asarray(b_raw)
    m_dim, k_dim, n_dim = _validate_operands(a_raw, b_raw)
    schedule = plan_gemm(config, m_dim, k_dim, n_dim)
    out = fixed_matmul(a_raw, b_raw, config.fmt)
    return out, schedule


def execute_gemm_per_tile(
    config: SystolicConfig,
    a_raw: np.ndarray,
    b_raw: np.ndarray,
    use_plan_cache: bool = True,
) -> tuple[np.ndarray, GemmSchedule]:
    """Seed-faithful per-tile GEMM execution (equivalence reference).

    Computes the result tile by tile in schedule order, the way the
    original implementation dispatched one :func:`fixed_matmul` per
    output tile.  Kept for the equivalence tests and the traced-path
    benchmark; the production path is :func:`execute_gemm`.
    """
    a_raw = np.asarray(a_raw)
    b_raw = np.asarray(b_raw)
    m_dim, k_dim, n_dim = _validate_operands(a_raw, b_raw)
    schedule = plan_gemm(config, m_dim, k_dim, n_dim, use_cache=use_plan_cache)
    out = np.zeros((m_dim, n_dim), dtype=config.fmt.storage_dtype())
    for tile in schedule.tiles:
        a_block = a_raw[tile.row_start : tile.row_end, :]
        b_block = b_raw[:, tile.col_start : tile.col_end]
        out[tile.row_start : tile.row_end, tile.col_start : tile.col_end] = (
            fixed_matmul(a_block, b_block, config.fmt)
        )
    return out, schedule
