"""Transformer example: TinyBERT with all four nonlinear op types on ONE-SA.

Trains the two-layer encoder on the SST-2 stand-in, evaluates accuracy
across CPWL granularities, and then routes a batch through the full
systolic-array model (ArrayBackend) to show the per-event cycle trace —
softmax, layernorm and GELU all executing as IPF + MHP events on the
same array that runs the GEMMs.

    python examples/bert_on_onesa.py
"""

import numpy as np

from repro.data import get_task
from repro.evaluation.reporting import format_table
from repro.nn.executor import ArrayBackend, CPWLBackend, QuantizedFloatBackend
from repro.nn.models import TinyBERT
from repro.nn.training import accuracy, train_classifier
from repro.nn.workload import bert_base_workload
from repro.systolic import SystolicArray, SystolicConfig
from repro.systolic.config import ONE_SA_PAPER_CONFIG


def main() -> None:
    task = get_task("sst2")
    model = TinyBERT(vocab=task.vocab, seq_len=task.seq_len,
                     n_classes=task.n_classes, seed=0)
    train_classifier(model, task.x_train, task.y_train, epochs=8, lr=2e-3,
                     forward=lambda batch: model.forward(batch))

    base = accuracy(model.predict(task.x_test, QuantizedFloatBackend()), task.y_test)
    rows = [["INT16 exact nonlinear (baseline)", f"{base * 100:.1f}%"]]
    for g in (0.1, 0.25, 0.5, 1.0):
        acc = accuracy(model.predict(task.x_test, CPWLBackend(g)), task.y_test)
        rows.append([f"CPWL granularity {g}", f"{acc * 100:.1f}% ({(acc - base) * 100:+.1f})"])
    print(format_table(["inference path", "test accuracy"], rows,
                       title="TinyBERT accuracy under CPWL (SST-2 stand-in)"))

    # Full microarchitecture pass: small array, small batch, full trace.
    config = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
    array = SystolicArray(config)
    backend = ArrayBackend(array, granularity=0.25)
    preds = model.predict(task.x_test[:4], backend)
    print(f"\n4-sequence batch on {config.describe()}: predictions {preds}")
    print("Cycle trace by event kind:")
    for kind, cycles in array.trace.cycles_by_kind().items():
        print(f"  {kind:<8} {cycles:>8} cycles")
    share = array.utilization_summary()
    print(f"GEMM share of cycles: {share.get('gemm', 0) * 100:.1f}%  "
          f"MHP share: {share.get('mhp', 0) * 100:.1f}%")

    # Full-size BERT-base on the paper's design point.
    wl = bert_base_workload()
    print(f"\nBERT-base (seq 64) on ONE-SA (64 PEs, 16 MACs): "
          f"{wl.latency_seconds(ONE_SA_PAPER_CONFIG) * 1e3:.2f} ms/inference, "
          f"{wl.throughput_gops(ONE_SA_PAPER_CONFIG):.1f} GOPS")


if __name__ == "__main__":
    main()
