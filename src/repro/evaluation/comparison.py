"""Table IV — ONE-SA vs general-purpose processors and ASIC designs.

For each of the three paper workloads (ResNet-50, BERT-base, GCN) the
harness reports inference latency (L), speedup over the CPU (S),
throughput (T), power (P) and computation efficiency (T/P) for:

* the measured general-purpose processors (CPU / GPU / SoC),
* the published application-specific accelerators that support the
  workload, and
* ONE-SA at the paper's design point (64 PEs, 16 MACs per PE), with
  latency from the cycle model and power from the calibrated model at
  the workload's GEMM/MHP phase weights.

The headline claims the benches assert: ONE-SA beats the CPU and SoC on
efficiency, approaches GPU-class efficiency, reaches the same level as
the application-specific accelerators — and, unlike them, runs *all
three* workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.baselines.accelerators import ACCELERATORS, accelerators_for
from repro.baselines.processors import PROCESSORS
from repro.evaluation.reporting import format_table
from repro.hardware.power import phase_weighted_activity, power_watts
from repro.nn.workload import Workload, paper_workloads
from repro.systolic.config import ONE_SA_PAPER_CONFIG, SystolicConfig


@dataclass(frozen=True)
class ComparisonEntry:
    """One processor × workload cell group of Table IV."""

    processor: str
    workload: str
    latency_s: Optional[float]
    speedup: Optional[float]
    throughput_gops: Optional[float]
    power_w: Optional[float]

    @property
    def efficiency(self) -> Optional[float]:
        if self.throughput_gops is None or not self.power_w:
            return None
        return self.throughput_gops / self.power_w

    @property
    def supported(self) -> bool:
        return self.latency_s is not None


def one_sa_performance(
    workload: Workload, config: SystolicConfig = ONE_SA_PAPER_CONFIG
) -> ComparisonEntry:
    """ONE-SA row cells for one workload (cycle + power models)."""
    latency = workload.latency_seconds(config)
    ops = workload.total_macs + workload.total_nonlinear_elements
    gemm_share = workload.gemm_cycle_share(config)
    activity = phase_weighted_activity(config, gemm_share, 1.0 - gemm_share)
    return ComparisonEntry(
        processor="ONE-SA",
        workload=workload.name,
        latency_s=latency,
        speedup=None,  # filled against the CPU by table4_comparison
        throughput_gops=ops / latency / 1e9,
        power_w=power_watts(config, activity=activity),
    )


def table4_comparison(
    config: SystolicConfig = ONE_SA_PAPER_CONFIG,
) -> List[ComparisonEntry]:
    """Build every Table IV cell group."""
    workloads = paper_workloads()
    entries: List[ComparisonEntry] = []
    cpu_latency: Dict[str, float] = {}

    for name, workload in workloads.items():
        cpu_latency[name] = PROCESSORS["cpu"].latency_seconds(workload)

    for key, proc in PROCESSORS.items():
        for name, workload in workloads.items():
            latency = proc.latency_seconds(workload)
            entries.append(
                ComparisonEntry(
                    processor=proc.name,
                    workload=name,
                    latency_s=latency,
                    speedup=cpu_latency[name] / latency,
                    throughput_gops=proc.throughput_gops(workload),
                    power_w=proc.power_watts,
                )
            )

    for key, spec in ACCELERATORS.items():
        for name in workloads:
            if spec.supports(name):
                entries.append(
                    ComparisonEntry(
                        processor=spec.name,
                        workload=name,
                        latency_s=spec.latency_s,
                        speedup=cpu_latency[name] / spec.latency_s,
                        throughput_gops=spec.throughput_gops,
                        power_w=spec.power_watts,
                    )
                )
            else:
                entries.append(
                    ComparisonEntry(
                        processor=spec.name,
                        workload=name,
                        latency_s=None,
                        speedup=None,
                        throughput_gops=None,
                        power_w=None,
                    )
                )

    for name, workload in workloads.items():
        cells = one_sa_performance(workload, config)
        entries.append(
            ComparisonEntry(
                processor="ONE-SA",
                workload=name,
                latency_s=cells.latency_s,
                speedup=cpu_latency[name] / cells.latency_s,
                throughput_gops=cells.throughput_gops,
                power_w=cells.power_w,
            )
        )
    return entries


def efficiency_gains(entries: List[ComparisonEntry]) -> Dict[str, Dict[str, float]]:
    """ONE-SA efficiency gain over each baseline, per workload."""
    by_key = {(e.processor, e.workload): e for e in entries}
    one_sa = {w: by_key[("ONE-SA", w)] for w in {e.workload for e in entries}}
    gains: Dict[str, Dict[str, float]] = {}
    for (proc, workload), entry in by_key.items():
        if proc == "ONE-SA" or entry.efficiency is None:
            continue
        gains.setdefault(proc, {})[workload] = (
            one_sa[workload].efficiency / entry.efficiency
        )
    return gains


def format_table4(entries: List[ComparisonEntry]) -> str:
    """Paper-style rendering of the comparison table."""
    workloads = sorted({e.workload for e in entries})
    processors = []
    for e in entries:
        if e.processor not in processors:
            processors.append(e.processor)
    by_key = {(e.processor, e.workload): e for e in entries}
    headers = ["Processor"]
    for w in workloads:
        headers += [f"{w}.L(ms)", f"{w}.S(x)", f"{w}.T", f"{w}.P(W)", f"{w}.T/P"]
    rows = []
    for proc in processors:
        row = [proc]
        for w in workloads:
            e = by_key[(proc, w)]
            if not e.supported:
                row += ["-", "-", "-", "-", "-"]
            else:
                row += [
                    f"{1e3 * e.latency_s:.2f}",
                    f"{e.speedup:.2f}",
                    f"{e.throughput_gops:.1f}",
                    f"{e.power_w:.2f}",
                    f"{e.efficiency:.2f}",
                ]
        rows.append(row)
    return format_table(headers, rows, title="Table IV: processor comparison")
