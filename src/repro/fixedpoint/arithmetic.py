"""Saturating fixed-point arithmetic primitives.

These model the datapath operations available inside a ONE-SA processing
element: INT16 multiply into a wide product, accumulation in the
multi-layer accumulator (int64 model), and saturating writeback.  All
functions operate on *raw* integer arrays (see :mod:`repro.fixedpoint`).
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.qformat import QFormat


def saturate(raw: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Clamp raw integers to the representable range of ``fmt``."""
    clipped = np.clip(np.asarray(raw, dtype=np.int64), fmt.raw_min, fmt.raw_max)
    return clipped.astype(fmt.storage_dtype())


def fixed_add(a: np.ndarray, b: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Saturating addition of two raw tensors in the same format."""
    total = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
    return saturate(total, fmt)


def fixed_mul(a: np.ndarray, b: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Saturating multiply of two raw tensors in the same format.

    The exact product carries ``2 * frac_bits`` fractional bits; the
    result is rounded back to ``frac_bits`` and saturated, matching a
    single-MAC multiply with immediate writeback.
    """
    product = np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
    half = np.int64(1) << (fmt.frac_bits - 1) if fmt.frac_bits > 0 else np.int64(0)
    rounded = (product + half) >> fmt.frac_bits
    return saturate(rounded, fmt)


def fixed_mac(
    acc: np.ndarray, a: np.ndarray, b: np.ndarray, fmt: QFormat
) -> np.ndarray:
    """One multiply-accumulate step: ``acc + a * b``.

    ``acc`` is held in the wide accumulator format (product-aligned,
    ``2 * frac_bits`` fractional bits, int64 storage).  No intermediate
    saturation is applied — the hardware accumulator carries guard bits —
    so only the final writeback (via :func:`accumulator_to_output`)
    saturates.
    """
    product = np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
    return np.asarray(acc, dtype=np.int64) + product


def accumulator_to_output(acc: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Round and saturate a product-aligned accumulator back to ``fmt``.

    Models the writeback from the multi-layer accumulator to the PE
    output buffer (Fig. 7a).
    """
    acc = np.asarray(acc, dtype=np.int64)
    half = np.int64(1) << (fmt.frac_bits - 1) if fmt.frac_bits > 0 else np.int64(0)
    rounded = (acc + half) >> fmt.frac_bits
    return saturate(rounded, fmt)


def fixed_matmul(a: np.ndarray, b: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Bit-accurate fixed-point matrix multiply ``a @ b``.

    This is the vectorised reference for what the systolic array computes
    in GEMM mode: every output element is a dot product accumulated in
    the wide accumulator and saturated once on writeback.  Inputs are raw
    integers in ``fmt``; the output is raw integers in ``fmt``.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(f"fixed_matmul expects 2-D inputs, got {a.ndim}-D and {b.ndim}-D")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch for matmul: {a.shape} @ {b.shape}")
    acc = a @ b  # exact in int64 for INT16 operands and practical K
    return accumulator_to_output(acc, fmt)


def fixed_hadamard_mac(
    x: np.ndarray, k: np.ndarray, b: np.ndarray, fmt: QFormat
) -> np.ndarray:
    """Bit-accurate fixed-point ``x * k + b`` (the MHP computation).

    Mirrors the rearranged two-term dot product each computation PE
    executes: ``y = k*x + b*1`` with both products accumulated in the wide
    accumulator before a single rounding/saturating writeback (Fig. 6).
    """
    x = np.asarray(x, dtype=np.int64)
    k = np.asarray(k, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    one = np.int64(1) << fmt.frac_bits
    acc = x * k + b * one
    return accumulator_to_output(acc, fmt)
