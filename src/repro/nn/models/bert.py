"""Transformer encoder (the paper's BERT family).

:class:`TinyBERT` is a two-layer post-norm encoder with learned token
and position embeddings, GELU feed-forwards, LayerNorms and softmax
attention — all four of Fig. 1(b)'s nonlinear op types — trainable in
seconds on the synthetic sequence tasks.  The full BERT-base layer
shapes live in :mod:`repro.nn.workload`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.layers import Embedding, Linear, Module, TransformerEncoderLayer


class TinyBERT(Module):
    """Encoder-only classifier for integer token sequences ``(N, T)``."""

    def __init__(
        self,
        vocab: int = 32,
        seq_len: int = 16,
        dim: int = 32,
        heads: int = 4,
        ff_dim: int = 64,
        n_layers: int = 2,
        n_classes: int = 2,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.seq_len = seq_len
        self.token_emb = Embedding(vocab, dim, rng)
        self.pos_emb = Tensor(
            rng.normal(0, 0.1, size=(seq_len, dim)), requires_grad=True
        )
        self.layers = [
            TransformerEncoderLayer(dim, heads, ff_dim, rng) for _ in range(n_layers)
        ]
        self.classifier = Linear(dim, n_classes, rng)

    def forward(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens)
        x = self.token_emb.forward_indices(tokens) + self.pos_emb
        for layer in self.layers:
            x = layer(x)
        pooled = x.mean(axis=1)
        return self.classifier(pooled)

    def infer(self, tokens: np.ndarray, backend) -> np.ndarray:
        tokens = np.asarray(tokens)
        x = self.token_emb.infer_indices(tokens) + self.pos_emb.data
        for layer in self.layers:
            x = layer.infer(x, backend)
        pooled = x.mean(axis=1)
        return self.classifier.infer(pooled, backend)

    def predict(self, tokens: np.ndarray, backend) -> np.ndarray:
        """Hard class predictions."""
        return np.argmax(self.infer(tokens, backend), axis=-1)
