"""CPWL segment tables.

A segment table is the pre-calculated ``(k, b)`` parameter store of the
capped piecewise linearization (Fig. 3): the approximation domain of a
nonlinear function is cut into equal-length segments; in each segment the
function is approximated by the chord ``y = k*x + b`` connecting the
segment's endpoints.  The table is preloaded into the L3 buffer before a
nonlinear operation executes, and the data-addressing module indexes it
with a shifted version of the fixed-point input (Fig. 5).

Segment lengths are powers of two so the index computation is a pure
arithmetic shift.  The paper sweeps granularities ``0.1 .. 1.0``
(Table III); granularities that are not powers of two are realised by the
*scale module* multiplying the shifted index by a small constant.  We
model both paths: power-of-two granularities use the shift path, others
the scale path (same functional result, one extra multiplier).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.functions import NonlinearFunction, get_function
from repro.fixedpoint import QFormat, quantize


def is_power_of_two(value: float) -> bool:
    """True if ``value`` is an exact (possibly negative) power of two."""
    if value <= 0:
        return False
    mantissa, _ = math.frexp(value)
    return mantissa == 0.5


@dataclass(frozen=True)
class SegmentTable:
    """Immutable CPWL parameter store for one nonlinear function.

    Attributes
    ----------
    name:
        Name of the approximated function.
    x_min, x_max:
        Approximation domain covered by the table.
    granularity:
        Segment length (the paper's approximation granularity).
    slopes, intercepts:
        Float ``(n_segments,)`` arrays of ``k`` and ``b`` per segment.
    shift_path:
        True when ``granularity`` is a power of two and the segment index
        can be produced by the data-shift module alone.
    """

    name: str
    x_min: float
    x_max: float
    granularity: float
    slopes: np.ndarray
    intercepts: np.ndarray
    shift_path: bool

    @property
    def n_segments(self) -> int:
        """Number of segments in the table."""
        return int(self.slopes.shape[0])

    @property
    def storage_bytes(self) -> int:
        """L3 storage footprint of the table in INT16 (2 bytes/parameter).

        Each segment stores one slope and one intercept; this is what the
        paper means by the granularity being "limited by the size of the
        L3 buffer" (Section V-B).
        """
        return self.n_segments * 2 * 2

    def segment_of(self, x: np.ndarray) -> np.ndarray:
        """Capped segment index for real-valued inputs.

        Implements steps 1 of Fig. 3: ``s = floor((x - x_min)/g)`` capped
        into ``[0, n_segments - 1]`` (the scale module's
        ``s = max[min(s, s_max), s_min]``).
        """
        x = np.asarray(x, dtype=np.float64)
        raw = np.floor((x - self.x_min) / self.granularity)
        return np.clip(raw, 0, self.n_segments - 1).astype(np.int64)

    def lookup(self, segments: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Gather ``(K, B)`` parameter matrices for a segment-index matrix."""
        segments = np.asarray(segments)
        return self.slopes[segments], self.intercepts[segments]

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Reference CPWL evaluation in float: ``X ⊙ K + B``."""
        k, b = self.lookup(self.segment_of(x))
        return np.asarray(x, dtype=np.float64) * k + b

    def quantized(self, fmt: QFormat) -> "QuantizedSegmentTable":
        """Quantize the parameter store to the array's fixed-point format."""
        return QuantizedSegmentTable(
            table=self,
            fmt=fmt,
            slopes_raw=quantize(self.slopes, fmt),
            intercepts_raw=quantize(self.intercepts, fmt),
        )


@dataclass(frozen=True)
class QuantizedSegmentTable:
    """A :class:`SegmentTable` with parameters quantized to a Q-format.

    This is what is actually preloaded into the L3 ``k``/``b`` buffers:
    INT16 raw integers, gathered by the data-addressing module.
    """

    table: SegmentTable
    fmt: QFormat
    slopes_raw: np.ndarray
    intercepts_raw: np.ndarray

    @property
    def n_segments(self) -> int:
        return self.table.n_segments

    def lookup_raw(self, segments: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Gather raw INT16 ``(K, B)`` matrices for segment indices."""
        segments = np.asarray(segments)
        return self.slopes_raw[segments], self.intercepts_raw[segments]


def build_segment_table(
    function: "str | NonlinearFunction",
    granularity: float,
    domain: Optional[tuple[float, float]] = None,
) -> SegmentTable:
    """Pre-calculate the CPWL segment table for a nonlinear function.

    Parameters
    ----------
    function:
        Registered function name or a :class:`NonlinearFunction`.
    granularity:
        Segment length.  Power-of-two values take the shift path in the
        data-addressing module.
    domain:
        Optional override of the function's default approximation domain.

    Returns
    -------
    SegmentTable
        The chord-interpolation table.  The first and last segments serve
        as the capped extensions outside the domain.
    """
    fn = get_function(function) if isinstance(function, str) else function
    if granularity <= 0:
        raise ValueError(f"granularity must be positive, got {granularity}")
    lo, hi = domain if domain is not None else fn.domain
    if not hi > lo:
        raise ValueError(f"empty domain ({lo}, {hi})")

    n_segments = max(1, int(math.ceil((hi - lo) / granularity - 1e-12)))
    starts = lo + granularity * np.arange(n_segments)
    ends = np.minimum(starts + granularity, hi)
    y_start = fn(starts)
    y_end = fn(ends)
    widths = ends - starts
    # Guard against a degenerate final sliver segment.
    widths = np.where(widths <= 0, granularity, widths)
    slopes = (y_end - y_start) / widths
    intercepts = y_start - slopes * starts
    return SegmentTable(
        name=fn.name,
        x_min=float(lo),
        x_max=float(hi),
        granularity=float(granularity),
        slopes=slopes,
        intercepts=intercepts,
        shift_path=is_power_of_two(granularity),
    )
