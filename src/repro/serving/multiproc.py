"""Multi-worker serving over one cluster and a shared cache fabric.

One :class:`~repro.serving.engine.InferenceEngine` is single-process by
design — the discrete-event loop, the batcher and the placement policy
all mutate one pool's state.  This module scales the serving front
*out* instead of up: the declared :class:`~repro.serving.cluster.ClusterSpec`
is partitioned into contiguous shard blocks, one worker process runs a
full engine over each block, and the workers share a cache **fabric** —
a :class:`~repro.store.FileStore` every worker mounts as the second
tier of a :class:`~repro.store.TieredStore`:

* GEMM/MHP **plan caches** and the approximator table namespace write
  through to the fabric, so a layer shape planned by one worker is a
  fabric hit (not a rebuild) everywhere else;
* the **prefix cache** writes computed prompts through and promotes
  fabric hits onto the local shard, so one worker's cold pass serves
  every other worker's first request for that prompt;
* **calibration** snapshots persist under
  :data:`~repro.serving.cluster.CALIBRATION_NAMESPACE`, so a worker
  (or a later run) prices placements from observations the fleet has
  already made.

Everything a worker needs crosses the process boundary as one
picklable :class:`WorkerConfig`; models cross as :class:`ModelSpec`
(factory + kwargs, rebuilt inside the worker) because live model
objects and engines do not pickle.  Workers return their
:class:`~repro.serving.report.ServingReport`; :func:`merge_reports`
re-maps worker-local shard indices onto the global cluster numbering
and merges the logs so the fleet-level invariants hold exactly:
merged ``tenant_cycles`` / ``shard_cycles`` / shed counts are the
element-wise sums of the per-worker reports.

**Failure domains.**  Worker processes are spawned individually (one
``Process`` + result pipe each, not a pool) so a worker that dies —
via an injected :class:`~repro.serving.faults.WorkerDeath` or a real
crash — is *detected by exit code* instead of hanging the front.
Unsupervised (``supervise=False``), a dead worker raises
:class:`WorkerFailedError` naming the worker, its shard block and the
exit code — never a silently partial merge.  Supervised, the front
restarts the worker (with the death event stripped from its fault
plan) up to ``max_restarts`` times; past that its requests are
*redistributed*: re-run in-process on a surviving worker's shard
block, arrival-shifted past that donor's last completion so the serial
reuse of the donor shards is honestly priced into the merged
timeline.  Either way every admitted request ends up completed exactly
once or failed with a reason — the in-memory state of a dead worker
(and any partial results it computed) is lost with the process, and
the re-run starts from the request list, not from salvage.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import traceback
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.serving.cluster import (
    CALIBRATION_NAMESPACE,
    ClusterSpec,
    save_calibration,
)
from repro.serving.elastic import ElasticConfig
from repro.serving.engine import InferenceEngine
from repro.serving.faults import FaultPlan
from repro.serving.prefix_cache import PrefixCache, TransformerPrefixAdapter
from repro.serving.report import ServingReport
from repro.serving.request import FailureRecord, InferenceRequest
from repro.serving.tenancy import DEFAULT_TENANT, TenantConfig
from repro.store import (
    FileStore,
    InProcessLRU,
    StoreConfig,
    TieredStore,
    get_store,
    set_store,
)


# ---------------------------------------------------------------------------
# Crossing the process boundary
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ModelSpec:
    """A model endpoint described by construction, not by instance.

    Workers rebuild the model as ``factory(**kwargs)`` — the factory
    must be importable (a module-level class or function), and the
    kwargs picklable.  Deterministic factories (seeded weight init)
    give every worker bit-identical weights, which is what makes the
    shared prefix fabric lossless across processes.

    ``prefix_len`` opts the endpoint into KV-prefix reuse via a
    :class:`~repro.serving.prefix_cache.TransformerPrefixAdapter`
    built inside the worker.
    """

    name: str
    factory: Callable[..., object]
    kwargs: Dict[str, object] = field(default_factory=dict)
    prefix_len: Optional[int] = None


@dataclass(frozen=True)
class WorkerConfig:
    """Everything one worker process needs, in one picklable record.

    ``fault_plan`` is the worker's *view* of the run's fault plan —
    shard events already re-mapped into worker-local indices via
    :meth:`~repro.serving.faults.FaultPlan.for_shard_block`, worker and
    fabric events kept global.  ``shard_offset`` records where the
    worker's block starts in the declared cluster, for error messages
    and merge bookkeeping.
    """

    index: int
    cluster: ClusterSpec
    models: Tuple[ModelSpec, ...]
    requests: Tuple[dict, ...]
    store_root: Optional[str] = None
    store_config: Optional[StoreConfig] = None
    shard_budget_bytes: int = 32 << 20
    max_batch_size: int = 8
    flush_timeout: float = 1e-3
    policy: str = "weighted_round_robin"
    placement: str = "round_robin"
    tenants: Tuple[TenantConfig, ...] = ()
    calibration_name: str = "default"
    fault_plan: Optional[FaultPlan] = None
    shard_offset: int = 0
    #: Elastic-runtime knobs every worker engine runs under (None =
    #: the pinned baseline; the frozen config pickles as-is).
    elastic: Optional[ElasticConfig] = None


class WorkerFailedError(RuntimeError):
    """A worker process died before delivering its report.

    Raised by :func:`serve_multiproc` when supervision is off
    (``supervise=False``) and a worker exits nonzero — the run refuses
    to hand back a silently partial merge.  Carries the failure
    coordinates as attributes:

    Attributes
    ----------
    worker:
        Index of the dead worker.
    shard_block:
        Global shard indices of the block the worker was serving.
    exit_code:
        The process exit code (negative = killed by that signal).
    """

    def __init__(
        self, worker: int, shard_block: Tuple[int, ...], exit_code: int
    ) -> None:
        self.worker = worker
        self.shard_block = tuple(shard_block)
        self.exit_code = exit_code
        block = (
            f"shards {self.shard_block[0]}..{self.shard_block[-1]}"
            if self.shard_block
            else "no shards"
        )
        super().__init__(
            f"worker {worker} ({block}) exited with code {exit_code} before "
            f"delivering its report; pass supervise=True to restart it or "
            f"redistribute its requests onto surviving workers"
        )


@dataclass(frozen=True)
class MultiprocResult:
    """Outcome of one :func:`serve_multiproc` run."""

    #: Per-worker reports, in worker order (shard indices worker-local).
    reports: Tuple[ServingReport, ...]
    #: The fleet view: shard indices re-mapped onto the cluster
    #: numbering, logs concatenated, counters summed exactly.
    merged: ServingReport
    #: The contiguous shard block each worker served.
    partitions: Tuple[ClusterSpec, ...]


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------
def partition_cluster(cluster: ClusterSpec, n_workers: int) -> List[ClusterSpec]:
    """Split a cluster into ``n_workers`` contiguous shard blocks.

    Blocks are as even as possible (sizes differ by at most one, larger
    blocks first) and preserve shard order, so global shard ``g`` of
    the declared cluster is worker-local shard ``g - offset`` of
    exactly one partition — the inverse of the re-mapping
    :func:`merge_reports` applies.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers > cluster.n_shards:
        raise ValueError(
            f"cannot split {cluster.n_shards} shard(s) across "
            f"{n_workers} workers; each worker needs at least one shard"
        )
    base, extra = divmod(cluster.n_shards, n_workers)
    partitions: List[ClusterSpec] = []
    start = 0
    for worker in range(n_workers):
        size = base + (1 if worker < extra else 0)
        partitions.append(ClusterSpec(cluster.shards[start : start + size]))
        start += size
    return partitions


# ---------------------------------------------------------------------------
# The worker body
# ---------------------------------------------------------------------------
def _worker_main(config: WorkerConfig) -> ServingReport:
    """Run one engine over one partition; the body of a worker process.

    Also callable in-process (the single-worker path and the tests use
    this): the process-global store is swapped for the worker's tiered
    store for the duration and restored afterwards, so an in-process
    call never leaks worker state into the caller's store.
    """
    previous = get_store()
    fabric: Optional[FileStore] = None
    try:
        if config.store_root is not None:
            fabric = FileStore(config.store_root)
            set_store(TieredStore(InProcessLRU(), fabric))
        else:
            set_store(None)  # a fresh default InProcessLRU
        if config.store_config is not None:
            config.store_config.apply()

        wants_prefix = any(spec.prefix_len is not None for spec in config.models)
        prefix_cache = (
            PrefixCache(config.shard_budget_bytes, fabric=fabric)
            if wants_prefix
            else None
        )
        engine = InferenceEngine(
            config.cluster.build(),
            max_batch_size=config.max_batch_size,
            flush_timeout=config.flush_timeout,
            policy=config.policy,
            placement=config.placement,
            tenants=config.tenants,
            prefix_cache=prefix_cache,
            faults=config.fault_plan,
            elastic=config.elastic,
        )
        for spec in config.models:
            model = spec.factory(**dict(spec.kwargs))
            adapter = (
                TransformerPrefixAdapter(model, spec.prefix_len)
                if spec.prefix_len is not None and prefix_cache is not None
                else None
            )
            engine.register(spec.name, model, prefix_adapter=adapter)

        if fabric is not None:
            state = fabric.get(CALIBRATION_NAMESPACE, config.calibration_name)
            if state is not None:
                engine.calibrator.load_dict(state)

        report = engine.run(request_source=list(config.requests))

        if fabric is not None:
            save_calibration(
                engine.calibrator, fabric, name=config.calibration_name
            )
        return report
    finally:
        set_store(previous)


def _worker_entry(config: WorkerConfig, conn) -> None:
    """Process body of one worker: run, send the report, exit.

    Honors an injected :class:`~repro.serving.faults.WorkerDeath`: the
    worker serves only the requests that arrived before the death
    time, then dies via ``os._exit`` with the injected exit code —
    *without* sending a report, so the partial work is genuinely lost
    with the process (the front recovers from the request list, never
    from salvage).  Unexpected exceptions print a traceback to the
    worker's stderr and exit nonzero, so the front sees a clean
    dead-worker signal instead of a hung pipe.
    """
    death = (
        config.fault_plan.worker_death(config.index)
        if config.fault_plan is not None
        else None
    )
    try:
        run_config = config
        if death is not None:
            served = tuple(
                request
                for request in config.requests
                if float(request.get("arrival", 0.0)) < death.at
            )
            run_config = replace(config, requests=served)
        report = _worker_main(run_config)
        if death is None:
            conn.send(report)
    except BaseException:  # pragma: no cover — exercised via subprocess
        traceback.print_exc(file=sys.stderr)
        conn.close()
        os._exit(1)
    conn.close()
    if death is not None:
        os._exit(death.exit_code)


def _spawn(ctx, config: WorkerConfig):
    """Start one worker process with a one-shot result pipe."""
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_worker_entry, args=(config, child_conn))
    proc.start()
    child_conn.close()
    return proc, parent_conn


def _collect(proc, conn) -> Optional[ServingReport]:
    """Reap one worker: its report, or None if it died before sending.

    Polls the pipe *before* joining — a report can be larger than the
    pipe buffer, so the child may block in ``send`` until the parent
    reads; joining first would deadlock.  A dead child closes the pipe,
    which surfaces here as EOF rather than a hang.
    """
    report: Optional[ServingReport] = None
    try:
        while report is None:
            if conn.poll(0.05):
                report = conn.recv()
                break
            if not proc.is_alive():
                if conn.poll(0):  # pragma: no cover — send/exit race
                    report = conn.recv()
                break
    except (EOFError, OSError):  # pragma: no cover — pipe torn down
        report = None
    finally:
        conn.close()
    proc.join()
    return report


def _shift_requests(requests: Sequence[dict], shift: float) -> Tuple[dict, ...]:
    """Shift arrivals (and absolute deadlines) by ``shift`` seconds.

    Used when a dead worker's requests are re-run on a surviving
    worker's shard block: the donor shards are busy until their own
    run's last completion, so the re-run is scheduled *after* it —
    serial reuse honestly priced into the merged timeline.  Deadlines
    shift by the same amount, preserving each request's slack.
    """
    shifted = []
    for request in requests:
        moved = dict(request)
        moved["arrival"] = float(request.get("arrival", 0.0)) + shift
        if moved.get("deadline") is not None:
            moved["deadline"] = float(moved["deadline"]) + shift
        shifted.append(moved)
    return tuple(shifted)


def _lost_report(config: WorkerConfig, at: float) -> ServingReport:
    """A report declaring every request of a dead worker failed.

    The terminal fallback when a worker cannot be restarted and no
    surviving worker exists to take its requests: the exactly-once
    invariant still holds because every admitted request is accounted
    for — as a :class:`~repro.serving.request.FailureRecord` with
    reason ``"worker_lost"``.
    """
    failed = tuple(
        FailureRecord(
            request=InferenceRequest(
                request_id=index,
                model=str(request["model"]),
                inputs=request["inputs"],
                arrival=float(request.get("arrival", 0.0)),
                tenant=str(request.get("tenant", DEFAULT_TENANT)),
                priority=request.get("priority"),
                deadline=request.get("deadline"),
            ),
            reason="worker_lost",
            at=at,
            attempts=0,
        )
        for index, request in enumerate(config.requests)
    )
    return ServingReport(
        completed=(),
        shard_cycles={},
        wall_seconds=0.0,
        placement_policy=config.placement,
        failed=failed,
    )


# ---------------------------------------------------------------------------
# The front
# ---------------------------------------------------------------------------
def serve_multiproc(
    cluster: ClusterSpec,
    models: Sequence[ModelSpec],
    requests: Sequence[dict],
    n_workers: int = 2,
    store_root: Optional[str] = None,
    store_config: Optional[StoreConfig] = None,
    shard_budget_bytes: int = 32 << 20,
    max_batch_size: int = 8,
    flush_timeout: float = 1e-3,
    policy: str = "weighted_round_robin",
    placement: str = "round_robin",
    tenants: Sequence[TenantConfig] = (),
    fault_plan: Optional[FaultPlan] = None,
    supervise: bool = False,
    max_restarts: int = 1,
    elastic: Optional[ElasticConfig] = None,
) -> MultiprocResult:
    """Serve ``requests`` with ``n_workers`` engine processes.

    The cluster splits into contiguous shard blocks
    (:func:`partition_cluster`), requests round-robin over workers
    (``requests[i::n_workers]``, preserving each worker's arrival
    order), and — when ``store_root`` is given — every worker mounts
    the same :class:`~repro.store.FileStore` fabric under its tiered
    store, sharing plans, prompts and calibration across the fleet.

    ``requests`` is an arrival-sorted sequence of request dicts
    (:meth:`~repro.serving.engine.InferenceEngine.submit` keywords:
    ``model``, ``inputs``, optionally ``arrival``/``tenant``/
    ``priority``/``deadline``).  Worker processes fork on POSIX;
    ``n_workers=1`` runs in-process (no fork), which is also the
    fallback the tests exercise for coverage.  In-process runs honor
    shard-level fault events but not :class:`WorkerDeath` (there is no
    process to kill).

    ``fault_plan`` injects faults: shard events are sliced per worker
    block (:meth:`~repro.serving.faults.FaultPlan.for_shard_block`),
    worker-death events are honored by the worker processes.  When a
    worker dies:

    * ``supervise=False`` — raise :class:`WorkerFailedError`;
    * ``supervise=True`` — restart it (death event stripped from its
      plan) up to ``max_restarts`` times, then *redistribute*: re-run
      its requests in-process on the first surviving worker's shard
      block, arrival-shifted past everything that block has already
      completed.  If no worker survives, the dead worker's requests
      are reported failed with reason ``"worker_lost"``.  Supervision
      actions land in the merged report's ``worker_restarts`` /
      ``worker_redistributions`` counters.

    ``elastic`` hands every worker engine the same
    :class:`~repro.serving.elastic.ElasticConfig` (look-ahead
    placement, work-stealing, autoscaling — each worker runs the
    elastic loop over its own shard block); the merged report carries
    the fleet's steal and scaling logs in cluster shard numbering.

    Returns per-worker reports plus the merged fleet report; merged
    counters are exact sums of the per-worker ones (see
    :func:`merge_reports`).
    """
    partitions = partition_cluster(cluster, n_workers)
    offsets: List[int] = []
    running = 0
    for partition in partitions:
        offsets.append(running)
        running += partition.n_shards
    model_specs = tuple(models)
    configs = [
        WorkerConfig(
            index=worker,
            cluster=partitions[worker],
            models=model_specs,
            requests=tuple(requests[worker::n_workers]),
            store_root=store_root,
            store_config=store_config,
            shard_budget_bytes=shard_budget_bytes,
            max_batch_size=max_batch_size,
            flush_timeout=flush_timeout,
            policy=policy,
            placement=placement,
            tenants=tuple(tenants),
            fault_plan=(
                fault_plan.for_shard_block(
                    offsets[worker], partitions[worker].n_shards
                )
                if fault_plan is not None
                else None
            ),
            shard_offset=offsets[worker],
            elastic=elastic,
        )
        for worker in range(n_workers)
    ]
    restarts = 0
    redistributions = 0
    merge_offsets = list(offsets)
    if n_workers == 1:
        reports: List[Optional[ServingReport]] = [_worker_main(configs[0])]
    else:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover — non-POSIX fallback
            ctx = multiprocessing.get_context()
        procs = [_spawn(ctx, config) for config in configs]
        reports = []
        exit_codes = []
        for proc, conn in procs:
            reports.append(_collect(proc, conn))
            exit_codes.append(proc.exitcode if proc.exitcode is not None else 0)
        for worker in range(n_workers):
            if reports[worker] is not None:
                continue
            config = configs[worker]
            if not supervise:
                shard_block = tuple(
                    range(
                        offsets[worker],
                        offsets[worker] + partitions[worker].n_shards,
                    )
                )
                raise WorkerFailedError(worker, shard_block, exit_codes[worker])
            # Restart-or-redistribute.  Restarts re-fork the worker on
            # its own block with the death event stripped; past the
            # budget, its requests re-run on a surviving block.
            attempts = 0
            while reports[worker] is None and attempts < max_restarts:
                attempts += 1
                restarts += 1
                stripped = (
                    config.fault_plan.without_worker_death(worker)
                    if config.fault_plan is not None
                    else None
                )
                proc, conn = _spawn(ctx, replace(config, fault_plan=stripped))
                reports[worker] = _collect(proc, conn)
            if reports[worker] is not None:
                continue
            donor = next(
                (
                    other
                    for other in range(n_workers)
                    if other != worker and reports[other] is not None
                ),
                None,
            )
            if donor is None:
                death = (
                    config.fault_plan.worker_death(worker)
                    if config.fault_plan is not None
                    else None
                )
                reports[worker] = _lost_report(
                    config, at=death.at if death is not None else 0.0
                )
                continue
            # The donor block is occupied until its own run's last
            # completion (including earlier redistributions onto it) —
            # schedule the re-run strictly after.
            handoff = max(
                (
                    record.finish
                    for other, other_report in enumerate(reports)
                    if other_report is not None
                    and merge_offsets[other] == offsets[donor]
                    for record in other_report.completed
                ),
                default=0.0,
            )
            reports[worker] = _worker_main(
                replace(
                    config,
                    cluster=partitions[donor],
                    fault_plan=None,
                    requests=_shift_requests(config.requests, handoff),
                    shard_offset=offsets[donor],
                )
            )
            merge_offsets[worker] = offsets[donor]
            redistributions += 1
    merged = merge_reports(reports, partitions, offsets=merge_offsets)
    if restarts or redistributions:
        merged = replace(
            merged,
            worker_restarts=merged.worker_restarts + restarts,
            worker_redistributions=merged.worker_redistributions
            + redistributions,
        )
    return MultiprocResult(
        reports=tuple(reports), merged=merged, partitions=tuple(partitions)
    )


# ---------------------------------------------------------------------------
# Merging
# ---------------------------------------------------------------------------
def merge_reports(
    reports: Sequence[ServingReport],
    partitions: Sequence[ClusterSpec],
    offsets: Optional[Sequence[int]] = None,
) -> ServingReport:
    """One fleet report from per-worker reports.

    Worker-local shard indices shift by the cumulative size of the
    preceding partitions, recovering the declared cluster's numbering.
    Counters merge without loss: ``tenant_cycles``, ``shard_cycles``
    and shed counts sum exactly; placement, shed and prefix-event logs
    concatenate in worker order; ``wall_seconds`` is the slowest
    worker (the fleet ran concurrently).  Request ids stay worker-local
    (each engine numbers from zero) — batch identity in the merged
    view rests on the now-globally-unique ``(shard, batch_index)``
    pairs, not on request ids.

    ``offsets`` overrides the per-report shard shift (one global base
    index per report).  The supervised front needs this for
    redistribution: a re-run of a dead worker's requests executes on a
    *donor's* partition, so its shard indices must map onto the donor's
    block — cumulative offsets would misattribute them.  When two
    reports share an offset (donor + redistribution), their per-shard
    cycle and busy counters sum on the shared shard ids.

    Fault-tolerance state merges the same way: ``failed`` /
    ``fault_events`` / ``breaker_transitions`` concatenate in worker
    order with shard ids re-mapped (records with ``shard=None`` pass
    through), and supervision counters sum.  Elastic-runtime logs do
    too: ``steals`` re-map both endpoints (``from_shard`` /
    ``to_shard``) and ``scaling_events`` re-map ``shard``, so the
    fleet view names shards in cluster numbering.

    Per-worker ``cache_stats`` namespaces are qualified as
    ``worker<N>/<namespace>`` — each worker owns a private store (plus
    its view of the fabric), so same-named namespaces are distinct
    caches, not one cache to sum.
    """
    if len(reports) != len(partitions):
        raise ValueError(
            f"got {len(reports)} reports for {len(partitions)} partitions"
        )
    if offsets is None:
        resolved_offsets: List[int] = []
        running = 0
        for partition in partitions:
            resolved_offsets.append(running)
            running += partition.n_shards
    else:
        if len(offsets) != len(reports):
            raise ValueError(
                f"got {len(offsets)} offsets for {len(reports)} reports"
            )
        resolved_offsets = list(offsets)
    completed: List[object] = []
    placements: List[object] = []
    shed: List[object] = []
    prefix_events: List[object] = []
    failed: List[object] = []
    fault_events: List[object] = []
    breaker_transitions: List[object] = []
    steals: List[object] = []
    scaling_events: List[object] = []
    shard_cycles: Dict[int, int] = {}
    shard_busy: Dict[int, float] = {}
    tenant_cycles: Dict[str, int] = {}
    tenants: Dict[str, TenantConfig] = {}
    cache_stats: Dict[str, Dict[str, int]] = {}
    wall_seconds = 0.0
    worker_restarts = 0
    worker_redistributions = 0
    for worker, (report, offset) in enumerate(zip(reports, resolved_offsets)):
        completed.extend(
            replace(record, shard=record.shard + offset)
            for record in report.completed
        )
        placements.extend(
            replace(decision, shard=decision.shard + offset)
            for decision in report.placements
        )
        prefix_events.extend(
            replace(event, shard=event.shard + offset)
            for event in report.prefix_events
        )
        shed.extend(report.shed)
        failed.extend(
            replace(record, shard=record.shard + offset)
            if record.shard is not None
            else record
            for record in report.failed
        )
        fault_events.extend(
            replace(event, shard=event.shard + offset)
            if event.shard is not None
            else event
            for event in report.fault_events
        )
        breaker_transitions.extend(
            replace(transition, shard=transition.shard + offset)
            for transition in report.breaker_transitions
        )
        steals.extend(
            replace(
                steal,
                from_shard=steal.from_shard + offset,
                to_shard=steal.to_shard + offset,
            )
            for steal in report.steals
        )
        scaling_events.extend(
            replace(event, shard=event.shard + offset)
            for event in report.scaling_events
        )
        for shard, cycles in report.shard_cycles.items():
            shard_cycles[shard + offset] = (
                shard_cycles.get(shard + offset, 0) + cycles
            )
        for shard, busy in report.shard_busy.items():
            shard_busy[shard + offset] = shard_busy.get(shard + offset, 0.0) + busy
        for tenant, cycles in report.tenant_cycles.items():
            tenant_cycles[tenant] = tenant_cycles.get(tenant, 0) + cycles
        tenants.update(report.tenants)
        for namespace, stats in report.cache_stats.items():
            cache_stats[f"worker{worker}/{namespace}"] = stats
        wall_seconds = max(wall_seconds, report.wall_seconds)
        worker_restarts += report.worker_restarts
        worker_redistributions += report.worker_redistributions
    policy = reports[0].placement_policy if reports else "round_robin"
    return ServingReport(
        completed=tuple(completed),
        shard_cycles=shard_cycles,
        wall_seconds=wall_seconds,
        tenant_cycles=tenant_cycles,
        tenants=tenants,
        placements=tuple(placements),
        shed=tuple(shed),
        shard_busy=shard_busy,
        placement_policy=policy,
        prefix_events=tuple(prefix_events),
        cache_stats=cache_stats,
        failed=tuple(failed),
        fault_events=tuple(fault_events),
        breaker_transitions=tuple(breaker_transitions),
        worker_restarts=worker_restarts,
        worker_redistributions=worker_redistributions,
        steals=tuple(steals),
        scaling_events=tuple(scaling_events),
    )
