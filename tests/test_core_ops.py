"""Unit tests for IPF, MHP and the composite nonlinear operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    build_segment_table,
    cpwl_batchnorm,
    cpwl_gelu,
    cpwl_layernorm,
    cpwl_relu,
    cpwl_sigmoid,
    cpwl_softmax,
    cpwl_tanh,
    fetch_parameters,
    matrix_hadamard_product,
    segment_indices,
)
from repro.core.granularity import (
    PAPER_GRANULARITIES,
    recommend_granularity,
    sweep_granularity,
    table_pressure,
)
from repro.core.mhp import rearranged_streams
from repro.core.nonlinear_ops import (
    approximator_cache_info,
    clear_approximator_cache,
    cpwl_rsqrt_range_reduced,
    get_approximator,
    set_approximator_cache_capacity,
)
from repro.fixedpoint import INT16, dequantize, quantize


class TestSegmentIndices:
    def test_shift_path_matches_float_path(self):
        """The power-of-two shift datapath must agree with float floor-div."""
        table = build_segment_table("gelu", 0.25)
        xs = np.linspace(-9, 9, 500)
        raw = quantize(xs, INT16)
        hw = segment_indices(raw, table, INT16)
        ref = table.segment_of(dequantize(raw, INT16))
        assert np.array_equal(hw, ref)

    def test_non_pow2_scale_path(self):
        table = build_segment_table("gelu", 0.1)
        xs = np.linspace(-7, 7, 300)
        raw = quantize(xs, INT16)
        hw = segment_indices(raw, table, INT16)
        ref = table.segment_of(dequantize(raw, INT16))
        assert np.array_equal(hw, ref)

    @given(
        arrays(
            np.float64,
            (4, 4),
            elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_indices_always_in_range(self, xs):
        table = build_segment_table("gelu", 0.5)
        seg = segment_indices(quantize(xs, INT16), table, INT16)
        assert seg.min() >= 0
        assert seg.max() < table.n_segments

    def test_edge_domain_shift_and_scale_paths_agree(self):
        """Regression: with a table domain beyond the representable
        range, the origin register saturates; both datapaths must index
        from that same saturated register (the shift path used to
        subtract an unsaturated ``np.round`` origin instead)."""
        from dataclasses import replace

        table = build_segment_table("relu", 0.5, domain=(-160.0, 160.0))
        assert table.shift_path
        # Same geometry forced through the scale-multiplier branch.
        scale_table = replace(table, shift_path=False)
        raw = quantize(np.linspace(-140.0, 140.0, 2001), INT16)
        shift_idx = segment_indices(raw, table, INT16)
        scale_idx = segment_indices(raw, scale_table, INT16)
        assert np.array_equal(shift_idx, scale_idx)
        # The saturated origin register puts the format's minimum value
        # in segment 0: the first *reachable* segment of the table.
        lowest = segment_indices(quantize(np.array([-128.0]), INT16), table, INT16)
        assert lowest[0] == 0

    def test_edge_domain_array_matches_approximator(self):
        """The full CPWL pipeline stays bit-identical to the addressing
        datapath on an edge domain."""
        approx = get_approximator("relu", 0.5, INT16, domain=(-160.0, 160.0))
        raw = quantize(np.linspace(-140.0, 140.0, 501), INT16)
        seg_hw = segment_indices(raw, approx.table, INT16)
        k_raw, b_raw = approx.qtable.lookup_raw(seg_hw)
        from repro.fixedpoint import fixed_hadamard_mac

        expected = fixed_hadamard_mac(raw, k_raw, b_raw, INT16)
        assert np.array_equal(approx.evaluate_raw(raw), expected)


class TestIPF:
    def test_fetch_shapes_and_metadata(self):
        qtable = build_segment_table("gelu", 0.25).quantized(INT16)
        x = quantize(np.random.default_rng(0).normal(size=(6, 5)), INT16)
        result = fetch_parameters(x, qtable, INT16)
        assert result.k_raw.shape == (6, 5)
        assert result.b_raw.shape == (6, 5)
        assert result.elements == 30
        assert result.shift_path

    def test_fetched_parameters_reconstruct_function(self):
        qtable = build_segment_table("gelu", 0.25).quantized(INT16)
        xs = np.linspace(-3, 3, 64).reshape(8, 8)
        x_raw = quantize(xs, INT16)
        result = fetch_parameters(x_raw, qtable, INT16)
        y = matrix_hadamard_product(x_raw, result.k_raw, result.b_raw, INT16)
        from repro.core.functions import gelu

        assert np.allclose(dequantize(y, INT16), gelu(xs), atol=0.05)


class TestMHP:
    def test_float_mode(self):
        x = np.array([[1.0, 2.0]])
        k = np.array([[3.0, 0.5]])
        b = np.array([[0.0, -1.0]])
        assert np.allclose(matrix_hadamard_product(x, k, b), [[3.0, 0.0]])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            matrix_hadamard_product(np.zeros((2, 2)), np.zeros((2, 3)), np.zeros((2, 2)))

    def test_rearranged_streams_preserve_values(self):
        x = np.arange(6.0).reshape(2, 3)
        k = x * 2
        b = x + 1
        inp, wgt = rearranged_streams(x, k, b)
        assert inp.shape == (2, 6)
        # Two-term dot products of adjacent pairs reproduce the MHP.
        pairs_in = inp.reshape(2, 3, 2)
        pairs_w = wgt.reshape(2, 3, 2)
        y = (pairs_in * pairs_w).sum(axis=-1)
        assert np.allclose(y, x * k + b)


class TestCompositeOps:
    def test_gelu_close_to_exact(self):
        xs = np.random.default_rng(0).normal(size=(16, 16))
        from repro.core.functions import gelu

        assert np.allclose(cpwl_gelu(xs, 0.25), gelu(xs), atol=0.05)

    def test_relu_error_bounded_by_quarter_granularity(self):
        xs = np.random.default_rng(1).normal(size=(10, 10))
        for g in PAPER_GRANULARITIES:
            out = cpwl_relu(xs, g)
            assert np.max(np.abs(out - np.maximum(xs, 0))) <= g / 4 + 2 * INT16.scale

    def test_sigmoid_tanh_bounded_outputs(self):
        xs = np.random.default_rng(2).normal(scale=3, size=(8, 8))
        assert np.all(np.abs(cpwl_tanh(xs, 0.25)) <= 1.01)
        sig = cpwl_sigmoid(xs, 0.25)
        assert np.all(sig >= -0.01) and np.all(sig <= 1.01)

    def test_softmax_rows_near_one(self):
        xs = np.random.default_rng(3).normal(size=(12, 10))
        out = cpwl_softmax(xs, 0.25)
        # The reciprocal chord overshoots slightly, so rows land near
        # (not exactly at) one — the approximation error the paper's
        # granularity study quantifies end to end.
        assert np.allclose(out.sum(axis=-1), 1.0, atol=0.08)
        assert np.all(out >= 0)

    def test_softmax_matches_exact_at_fine_granularity(self):
        xs = np.random.default_rng(4).normal(size=(6, 8))
        exact = np.exp(xs - xs.max(-1, keepdims=True))
        exact /= exact.sum(-1, keepdims=True)
        assert np.allclose(cpwl_softmax(xs, 0.1), exact, atol=0.03)

    def test_softmax_argmax_preserved(self):
        xs = np.random.default_rng(5).normal(size=(20, 10))
        out = cpwl_softmax(xs, 0.25)
        assert np.array_equal(out.argmax(-1), xs.argmax(-1))

    def test_layernorm_normalizes(self):
        xs = np.random.default_rng(6).normal(loc=2.0, scale=3.0, size=(8, 32))
        out = cpwl_layernorm(xs, 0.25)
        assert np.all(np.abs(out.mean(axis=-1)) < 0.25)
        assert np.all(np.abs(out.std(axis=-1) - 1.0) < 0.3)

    def test_layernorm_affine_params(self):
        xs = np.random.default_rng(7).normal(size=(4, 16))
        gamma = 2.0 * np.ones(16)
        beta = np.ones(16)
        out = cpwl_layernorm(xs, 0.1, gamma=gamma, beta=beta)
        plain = cpwl_layernorm(xs, 0.1)
        assert np.allclose(out, plain * 2 + 1, atol=0.05)

    def test_batchnorm_is_exact_affine(self):
        xs = np.random.default_rng(8).normal(size=(2, 3, 4, 4))
        scale = np.array([1.0, 2.0, 0.5])
        shift = np.array([0.0, -1.0, 1.0])
        out = cpwl_batchnorm(xs, scale, shift)
        ref = xs * scale[None, :, None, None] + shift[None, :, None, None]
        assert np.allclose(out, ref, atol=2 * INT16.scale)

    def test_rsqrt_range_reduced_accuracy(self):
        xs = np.logspace(-3, 3, 200)
        # Float mode isolates the chord error: the range reduction keeps
        # it below 1% relative at the default granularity.
        out_float = cpwl_rsqrt_range_reduced(xs, 0.25, fmt=None)
        rel = np.abs(out_float - 1 / np.sqrt(xs)) * np.sqrt(xs)
        assert rel.max() < 0.01
        # INT16 adds the output-quantization floor (LSB relative to tiny
        # rsqrt values of large inputs), still bounded.
        out_q = cpwl_rsqrt_range_reduced(xs, 0.25)
        rel_q = np.abs(out_q - 1 / np.sqrt(xs)) * np.sqrt(xs)
        assert rel_q.max() < 0.07

    def test_rsqrt_range_reduced_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            cpwl_rsqrt_range_reduced(np.array([0.0]), 0.25)

    def test_float_mode_no_quantization(self):
        xs = np.random.default_rng(9).normal(size=(4, 4))
        out = cpwl_gelu(xs, 0.25, fmt=None)
        table = build_segment_table("gelu", 0.25)
        assert np.allclose(out, table.evaluate(xs))

    @given(
        arrays(
            np.float64,
            (3, 6),
            elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_softmax_always_a_distribution(self, xs):
        out = cpwl_softmax(xs, 0.5)
        assert np.all(out >= 0)
        assert np.all(out.sum(axis=-1) < 1.3)
        assert np.all(out.sum(axis=-1) > 0.7)


class TestGranularity:
    def test_sweep_returns_all_candidates(self):
        choices = sweep_granularity("gelu", (0.25, 1.0))
        assert len(choices) == 2
        assert choices[0].n_segments > choices[1].n_segments

    def test_recommend_prefers_coarsest_feasible(self):
        choice = recommend_granularity("gelu", max_error=0.1)
        assert choice.granularity == 1.0

    def test_recommend_tight_error_picks_finer(self):
        loose = recommend_granularity("gelu", max_error=0.1)
        tight = recommend_granularity("gelu", max_error=0.02)
        assert tight.granularity < loose.granularity

    def test_recommend_raises_when_infeasible(self):
        with pytest.raises(ValueError):
            recommend_granularity("gelu", max_error=1e-9)

    def test_l3_budget_excludes_large_tables(self):
        choices = sweep_granularity("gelu", (0.1,), l3_budget_bytes=100)
        assert not choices[0].fits_l3

    def test_table_pressure_sums_tables(self):
        total = table_pressure(["gelu", "exp"], 0.25)
        g = build_segment_table("gelu", 0.25).storage_bytes
        e = build_segment_table("exp", 0.25).storage_bytes
        assert total == g + e

    def test_approximator_cache_reuse(self):
        clear_approximator_cache()
        a1 = get_approximator("gelu", 0.25)
        a2 = get_approximator("gelu", 0.25)
        assert a1 is a2
        clear_approximator_cache()
        assert get_approximator("gelu", 0.25) is not a1


class TestApproximatorLRU:
    """The table cache is bounded: serving traffic must not leak."""

    def teardown_method(self):
        set_approximator_cache_capacity()  # restore the default
        clear_approximator_cache()

    def test_capacity_bounds_occupancy(self):
        clear_approximator_cache()
        set_approximator_cache_capacity(4)
        for g in (0.1, 0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.7):
            get_approximator("gelu", g)
        info = approximator_cache_info()
        assert info["size"] <= 4
        assert info["capacity"] == 4

    def test_least_recently_used_is_evicted(self):
        clear_approximator_cache()
        set_approximator_cache_capacity(2)
        a = get_approximator("gelu", 0.25)
        b = get_approximator("tanh", 0.25)
        assert get_approximator("gelu", 0.25) is a  # refresh gelu
        get_approximator("sigmoid", 0.25)  # evicts tanh (LRU)
        assert get_approximator("gelu", 0.25) is a
        assert get_approximator("tanh", 0.25) is not b

    def test_shrinking_capacity_evicts_immediately(self):
        clear_approximator_cache()
        set_approximator_cache_capacity(8)
        for g in (0.25, 0.5, 1.0):
            get_approximator("gelu", g)
        set_approximator_cache_capacity(1)
        assert approximator_cache_info()["size"] == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            set_approximator_cache_capacity(0)
