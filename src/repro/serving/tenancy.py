"""Tenant identities, shares and latency targets.

A *tenant* is one customer of the serving engine: a stream of requests
with its own queue, a fair-share **weight** (consumed by the
weighted-round-robin policy), a strict **priority** (consumed by the
strict-priority policy), and an optional **latency SLO** the report
scores attainment against.

The single-tenant API of PR 1 survives unchanged as a shim: requests
submitted without a tenant land on :data:`DEFAULT_TENANT`, which the
registry materialises on first use with weight 1, priority 0 and no
SLO — one implicit tenant behaves exactly like no tenancy at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

#: Tenant id used when a request is submitted without one.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class TenantConfig:
    """Scheduling contract of one tenant.

    Attributes
    ----------
    tenant_id:
        Stable identifier; also the trace-label namespace the engine
        attributes this tenant's cycles under.
    weight:
        Relative share under the weighted-round-robin policy
        (must be > 0).  A weight-3 tenant contending with a weight-1
        tenant is picked for ~3 of every 4 ready batches.
    priority:
        Rank under the strict-priority policy; higher runs first.
        Individual requests may override it at submit time.
    slo_latency:
        Target arrival-to-completion latency in simulated seconds.
        When set, requests without an explicit deadline are scored
        against ``arrival + slo_latency`` in the report's SLO section.
    max_queue_depth:
        Admission control: the most requests this tenant may have
        queued (admitted, not yet executed) at once.  A request
        arriving above the cap is *shed* — never executed, reported
        under :attr:`~repro.serving.report.ServingReport.shed_count`.
        ``None`` (default) disables the cap.
    shed_doomed:
        Admission control: when True, a request whose effective
        deadline (explicit, else ``arrival + slo_latency``) cannot be
        met even starting immediately on the fastest shard is shed at
        admit time instead of wasting pool cycles on an answer that
        scores as a miss.  Default False: deadlines stay
        accounting-only, the pre-admission-control behaviour.
    """

    tenant_id: str
    weight: float = 1.0
    priority: int = 0
    slo_latency: Optional[float] = None
    max_queue_depth: Optional[int] = None
    shed_doomed: bool = False

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ValueError("tenant_id must be a non-empty string")
        if not self.weight > 0:
            raise ValueError(
                f"tenant {self.tenant_id!r} weight must be > 0, got {self.weight}"
            )
        if self.slo_latency is not None and self.slo_latency <= 0:
            raise ValueError(
                f"tenant {self.tenant_id!r} slo_latency must be > 0, "
                f"got {self.slo_latency}"
            )
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError(
                f"tenant {self.tenant_id!r} max_queue_depth must be >= 1, "
                f"got {self.max_queue_depth}"
            )


class TenantRegistry:
    """Known tenants, with get-or-default semantics.

    Unregistered tenant ids are materialised with default
    :class:`TenantConfig` on first lookup, so the legacy single-tenant
    API (everything on :data:`DEFAULT_TENANT`) needs no registration
    step, and a new tenant id seen at submit time is admitted with
    weight 1 / priority 0 until configured explicitly.
    """

    def __init__(self) -> None:
        self._tenants: Dict[str, TenantConfig] = {}

    def register(self, config: TenantConfig) -> TenantConfig:
        """Add or replace one tenant's config; returns it."""
        self._tenants[config.tenant_id] = config
        return config

    def get(self, tenant_id: str) -> TenantConfig:
        """Config for ``tenant_id``, materialising a default entry."""
        config = self._tenants.get(tenant_id)
        if config is None:
            config = TenantConfig(tenant_id=tenant_id)
            self._tenants[tenant_id] = config
        return config

    def configured(self) -> Dict[str, TenantConfig]:
        """Snapshot of every known tenant's config."""
        return dict(self._tenants)

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._tenants

    def __iter__(self) -> Iterator[str]:
        return iter(self._tenants)

    def __len__(self) -> int:
        return len(self._tenants)
