"""Fig. 1 — op-type computation breakdown of classic networks.

The paper's introduction motivates ONE-SA with pie charts of where the
computation goes in a CNN (ResNet on CIFAR-10) and a transformer (BERT
on SST-2) on conventional hardware: GEMM dominates, but nonlinear op
types (softmax, normalization, activations) claim meaningful shares
because each of their elements costs many scalar operations.

The harness profiles our exact workload descriptors under the
CPU-equivalent cost weights and reports the same categories the figure
uses.
"""

from __future__ import annotations

from typing import Dict

from repro.nn.profiler import ARRAY_COST_WEIGHTS, CPU_COST_WEIGHTS, op_mix
from repro.nn.workload import bert_base_workload, resnet50_workload
from repro.evaluation.reporting import as_percent, format_table

#: Shares the paper reports in Fig. 1 (for the EXPERIMENTS.md record).
PAPER_FIG1 = {
    "resnet50": {
        "gemm": 0.7233,
        "multiply": 0.0019,
        "add": 0.0093,
        "softmax": 0.0016,
        "batchnorm": 0.2149,
        "relu": 0.0458,
    },
    "bert-base": {
        "gemm": 0.8239,
        "multiply": 0.0206,
        "add": 0.0353,
        "softmax": 0.0267,
        "layernorm": 0.0305,
        "gelu": 0.0629,
    },
}


def figure1_breakdown(view: str = "cpu") -> Dict[str, Dict[str, float]]:
    """Op-mix shares for the two Fig. 1 networks.

    ``view='cpu'`` uses the general-purpose cost weights (the paper's
    figure); ``view='array'`` shows the same workloads in ONE-SA MHP
    passes — the "after" picture.
    """
    weights = CPU_COST_WEIGHTS if view == "cpu" else ARRAY_COST_WEIGHTS
    # Fig. 1(a) profiles the CIFAR-10 ResNet (32x32 inputs); Fig. 1(b)
    # BERT on SST-2-length sequences.
    return {
        "resnet50": op_mix(resnet50_workload(image_size=32), weights),
        "bert-base": op_mix(bert_base_workload(), weights),
    }


def format_figure1(view: str = "cpu") -> str:
    """Paper-style text rendering of the Fig. 1 breakdown."""
    mixes = figure1_breakdown(view)
    kinds = sorted({k for mix in mixes.values() for k in mix})
    rows = []
    for name, mix in mixes.items():
        rows.append([name] + [as_percent(mix.get(k, 0.0)) for k in kinds])
    return format_table(
        ["network"] + kinds, rows, title=f"Fig. 1 op breakdown ({view} view)"
    )
