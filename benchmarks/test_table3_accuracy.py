"""Bench E4 — Table III: inference accuracy vs CPWL granularity.

Trains the three family stand-in models on one task per family (the
full 12-task table takes ~30 s and is exercised by the examples; the
bench keeps one easy and one hard task per family for the claims) and
reproduces the trends:

* negligible loss at the default granularity 0.25;
* loss grows (weakly monotone) with granularity;
* the GCN family barely reacts (the paper's own observation);
* the hardest task of each family degrades at least as much as the
  easiest at the coarsest granularity.
"""

import pytest

from repro.evaluation.accuracy import format_table3, table3_accuracy

BENCH_TASKS = ["qmnist", "cifar100", "sst2", "cola", "cora", "citeseer"]


@pytest.fixture(scope="module")
def rows():
    return table3_accuracy(tasks=BENCH_TASKS)


def test_table3_accuracy(benchmark, rows, print_artifact):
    benchmark.pedantic(
        table3_accuracy,
        kwargs={"tasks": ["qmnist"], "granularities": (0.25,)},
        iterations=1,
        rounds=1,
    )
    print_artifact(format_table3(rows))

    by_task = {r.task: r for r in rows}

    # Claim 1: negligible loss at the paper's default granularity.
    for row in rows:
        assert abs(row.delta_at(0.25)) <= 0.03, row.task

    # Claim 2: baselines land near the paper's Table III "Original".
    for row in rows:
        paper = {
            "qmnist": 1.0,
            "cifar100": 0.851,
            "sst2": 0.923,
            "cola": 0.565,
            "cora": 0.843,
            "citeseer": 0.646,
        }[row.task]
        assert abs(row.baseline - paper) < 0.1, row.task

    # Claim 3: GCN is granularity-insensitive.
    for task in ("cora", "citeseer"):
        for g, delta in by_task[task].deltas.items():
            assert abs(delta) <= 0.03, (task, g)

    # Claim 4: the BERT family's hard task (CoLA) degrades more at the
    # coarsest granularity than the easy one (SST-2).
    assert by_task["cola"].delta_at(1.0) <= by_task["sst2"].delta_at(1.0) + 0.01

    # Claim 5: coarse granularity never *helps* beyond noise on the
    # sensitive family (BERT), i.e. 1.0 is no better than 0.1 + margin.
    for task in ("sst2", "cola"):
        row = by_task[task]
        assert row.delta_at(1.0) <= row.delta_at(0.1) + 0.02
