"""Matrix Hadamard Product (MHP).

The second architecture-level event of a nonlinear operation
(Section III-A, step 3): the element-wise calculation
``Y = X ⊙ K + B``.  After the data-rearrange module pairs each ``k`` with
its ``b`` and each ``x`` with the constant 1 (Fig. 6), every output
element is a two-term dot product ``y = k*x + b*1`` executed by a
computation PE on the array diagonal.

This module provides the bit-accurate functional form; the dataflow
(which PEs compute, how operands traverse the array, cycle costs) lives
in :mod:`repro.systolic.mhp_dataflow`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.fixedpoint import QFormat, fixed_hadamard_mac


def matrix_hadamard_product(
    x: np.ndarray,
    k: np.ndarray,
    b: np.ndarray,
    fmt: Optional[QFormat] = None,
) -> np.ndarray:
    """Compute ``Y = X ⊙ K + B``.

    Parameters
    ----------
    x, k, b:
        Same-shaped matrices.  With ``fmt`` given they are raw
        fixed-point integers and the result is the saturating INT16 value
        the array produces; without, they are floats and the result is
        the ideal product (used by float-mode analyses).
    fmt:
        Optional fixed-point format selecting the bit-accurate path.
    """
    x = np.asarray(x)
    k = np.asarray(k)
    b = np.asarray(b)
    if not (x.shape == k.shape == b.shape):
        raise ValueError(
            f"MHP operands must share a shape, got {x.shape}, {k.shape}, {b.shape}"
        )
    if fmt is None:
        return x.astype(np.float64) * k.astype(np.float64) + b.astype(np.float64)
    return fixed_hadamard_mac(x, k, b, fmt)


def rearranged_streams(
    x: np.ndarray, k: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Produce the paired data streams of the data-rearrange module.

    Returns ``(input_stream, weight_stream)`` where the input stream
    interleaves ``(x, 1)`` and the weight stream interleaves ``(k, b)``
    along the last axis, exactly as Fig. 6 shows.  The two-term dot
    product of corresponding pairs reproduces the MHP; tests use this to
    check the rearrangement is value-preserving.
    """
    x = np.asarray(x)
    k = np.asarray(k)
    b = np.asarray(b)
    ones = np.ones_like(x)
    input_stream = np.stack([x, ones], axis=-1).reshape(*x.shape[:-1], -1)
    weight_stream = np.stack([k, b], axis=-1).reshape(*k.shape[:-1], -1)
    return input_stream, weight_stream
