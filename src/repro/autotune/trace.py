"""Traffic traces: record serving requests, synthesize workloads, persist.

A :class:`TrafficTrace` is a pure value describing a request stream —
everything :meth:`~repro.serving.engine.InferenceEngine.submit` /
:meth:`~repro.serving.engine.InferenceEngine.submit_generation` needs
to re-drive the exact same traffic, in a versioned JSON-safe format
(``TRACE_VERSION``) that both store serializers can carry.  Traces
come from two places:

* **capture** — a :class:`TraceRecorder` attached to a live engine
  (the ``recorder=`` constructor knob) observes every admitted
  request: tenant, model, input tokens, arrival time, priority,
  deadline, and — for generation traffic — prompt, token budget and
  stop token;
* **synthesis** — :func:`synthesize_trace` draws a seeded stream in
  one of three workload shapes (``bursty`` / ``skewed`` /
  ``conversational``), so the autotuner can be exercised on traffic
  the serving stack has never actually seen.

Traces persist as namespaces on the :mod:`repro.store` fabric
(:func:`save_trace` / :func:`load_trace` under
:data:`TRACE_NAMESPACE`), so a trace recorded by one process — or one
serving worker — is replayable by any other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.store import register_namespace

#: Schema version stamped into every serialized trace.  Bump on any
#: field change; ``TrafficTrace.from_dict`` refuses versions it does
#: not understand instead of guessing.
TRACE_VERSION = 1

#: Store namespace holding persisted traces (one entry per trace name).
TRACE_NAMESPACE = "autotune.traces"

register_namespace(TRACE_NAMESPACE, max_entries=32)


@dataclass(frozen=True)
class TracedRequest:
    """One recorded submission — enough to re-issue it exactly.

    ``inputs`` holds the token/feature payload as nested lists plus a
    dtype string (JSON-safe; rebuilt with :meth:`inputs_array`).
    ``max_new_tokens`` is None for plain inference requests and set for
    generation requests (where ``inputs`` is the prompt row).
    """

    model: str
    inputs: Tuple
    dtype: str
    arrival: float
    tenant: str = "default"
    priority: Optional[int] = None
    deadline: Optional[float] = None
    max_new_tokens: Optional[int] = None
    stop_token: Optional[int] = None

    @property
    def is_generation(self) -> bool:
        return self.max_new_tokens is not None

    def inputs_array(self) -> np.ndarray:
        """The payload as the ndarray the engine originally saw."""
        return np.array(self.inputs, dtype=np.dtype(self.dtype))

    def to_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "inputs": _to_jsonable(self.inputs),
            "dtype": self.dtype,
            "arrival": self.arrival,
            "tenant": self.tenant,
            "priority": self.priority,
            "deadline": self.deadline,
            "max_new_tokens": self.max_new_tokens,
            "stop_token": self.stop_token,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TracedRequest":
        return cls(
            model=str(data["model"]),
            inputs=_to_tuple(data["inputs"]),
            dtype=str(data["dtype"]),
            arrival=float(data["arrival"]),
            tenant=str(data["tenant"]),
            priority=(
                None if data["priority"] is None else int(data["priority"])
            ),
            deadline=(
                None if data["deadline"] is None else float(data["deadline"])
            ),
            max_new_tokens=(
                None
                if data["max_new_tokens"] is None
                else int(data["max_new_tokens"])
            ),
            stop_token=(
                None if data["stop_token"] is None else int(data["stop_token"])
            ),
        )

    @classmethod
    def from_request(cls, request) -> "TracedRequest":
        """Capture one live :class:`~repro.serving.request.InferenceRequest`."""
        generation = request.generation
        return cls(
            model=request.model,
            inputs=_to_tuple(np.asarray(request.inputs).tolist()),
            dtype=str(np.asarray(request.inputs).dtype),
            arrival=request.arrival,
            tenant=request.tenant,
            priority=request.priority,
            deadline=request.deadline,
            max_new_tokens=(
                None if generation is None else generation.max_new_tokens
            ),
            stop_token=(None if generation is None else generation.stop_token),
        )


def _to_tuple(value):
    """Nested lists → nested tuples (hashable, hypothesis-friendly)."""
    if isinstance(value, (list, tuple)):
        return tuple(_to_tuple(item) for item in value)
    return value


def _to_jsonable(value):
    """Nested tuples → nested lists (what JSON serializers expect)."""
    if isinstance(value, tuple):
        return [_to_jsonable(item) for item in value]
    return value


@dataclass(frozen=True)
class TrafficTrace:
    """A versioned, replayable request stream.

    ``seed`` records provenance for synthesized traces (None for
    captured ones); ``requests`` are sorted by arrival at construction
    so the trace is directly feedable to a discrete-event run.
    """

    name: str
    requests: Tuple[TracedRequest, ...]
    seed: Optional[int] = None
    version: int = TRACE_VERSION

    def __post_init__(self) -> None:
        arrivals = [r.arrival for r in self.requests]
        if arrivals != sorted(arrivals):
            object.__setattr__(
                self,
                "requests",
                tuple(sorted(self.requests, key=lambda r: r.arrival)),
            )

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    @property
    def models(self) -> List[str]:
        """Distinct endpoint names the trace touches, sorted."""
        return sorted({r.model for r in self.requests})

    @property
    def tenants(self) -> List[str]:
        return sorted({r.tenant for r in self.requests})

    @property
    def horizon(self) -> float:
        """Last recorded arrival (0.0 for an empty trace)."""
        return max((r.arrival for r in self.requests), default=0.0)

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "name": self.name,
            "seed": self.seed,
            "requests": [r.to_dict() for r in self.requests],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TrafficTrace":
        version = int(data["version"])
        if version != TRACE_VERSION:
            raise ValueError(
                f"trace version {version} is not supported "
                f"(this build reads version {TRACE_VERSION})"
            )
        return cls(
            name=str(data["name"]),
            seed=None if data["seed"] is None else int(data["seed"]),
            requests=tuple(
                TracedRequest.from_dict(item) for item in data["requests"]
            ),
            version=version,
        )


class TraceRecorder:
    """Engine hook capturing every admitted request.

    Pass one as the engine's ``recorder=`` constructor argument (or set
    ``engine.recorder`` afterwards); the engine calls :meth:`record`
    with each validated :class:`~repro.serving.request.InferenceRequest`
    at submission time — including requests fed through
    ``run(request_source=...)``, so a recorder sees exactly the traffic
    the run served.  :meth:`trace` snapshots the log as an immutable
    :class:`TrafficTrace`; :meth:`clear` starts a fresh capture.
    """

    def __init__(self, name: str = "captured") -> None:
        self.name = name
        self._log: List[TracedRequest] = []

    def record(self, request) -> None:
        self._log.append(TracedRequest.from_request(request))

    def __len__(self) -> int:
        return len(self._log)

    def clear(self) -> None:
        self._log.clear()

    def trace(self, name: Optional[str] = None) -> TrafficTrace:
        return TrafficTrace(
            name=name if name is not None else self.name,
            requests=tuple(self._log),
        )


# ---------------------------------------------------------------------------
# Synthesis
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class EndpointProfile:
    """Shape of one synthetic endpoint's requests.

    ``weight`` biases model choice (the ``skewed`` shape raises the
    contrast); ``max_new_tokens`` switches the endpoint's requests to
    generation traffic with ``seq_len``-token prompts.
    """

    model: str
    seq_len: int
    vocab: int = 16
    weight: float = 1.0
    max_new_tokens: Optional[int] = None
    stop_token: Optional[int] = None


def synthesize_trace(
    name: str,
    endpoints: Sequence[EndpointProfile],
    n_requests: int,
    horizon: float,
    seed: int,
    shape: str = "bursty",
    tenants: Sequence[str] = ("default",),
    deadline_slack: Optional[float] = None,
) -> TrafficTrace:
    """Draw a seeded synthetic trace in one of three workload shapes.

    * ``bursty`` — arrivals cluster into a few tight bursts over the
      horizon (the flash-crowd case dynamic batching exists for);
    * ``skewed`` — uniform arrivals, but model and tenant choice
      follow the endpoint weights raised to a power, so one endpoint
      dominates (the hot-model case placement policies trip over);
    * ``conversational`` — multi-turn sessions: each session re-sends
      a growing prompt (shared prefix + fresh suffix), the shape
      prefix/radix caches monetize.

    Same ``(endpoints, n_requests, horizon, seed, shape)`` ⇒ the same
    trace, bit for bit.  ``deadline_slack`` attaches a deadline of
    ``arrival + slack`` to every request so replays score SLO
    attainment.
    """
    if not endpoints:
        raise ValueError("synthesize_trace needs at least one endpoint")
    if shape not in ("bursty", "skewed", "conversational"):
        raise ValueError(
            f"unknown workload shape {shape!r}; "
            "available: bursty, skewed, conversational"
        )
    rng = np.random.default_rng(seed)
    weights = np.array([e.weight for e in endpoints], dtype=np.float64)
    if shape == "skewed":
        weights = weights**2
    weights = weights / weights.sum()

    if shape == "bursty":
        n_bursts = max(1, n_requests // 8)
        burst_times = np.sort(rng.uniform(0.0, horizon, size=n_bursts))
        arrivals = np.sort(
            np.clip(
                burst_times[rng.integers(0, n_bursts, size=n_requests)]
                + rng.exponential(horizon / (20.0 * n_bursts), size=n_requests),
                0.0,
                horizon,
            )
        )
    else:
        arrivals = np.sort(rng.uniform(0.0, horizon, size=n_requests))

    sessions: Dict[int, np.ndarray] = {}
    requests: List[TracedRequest] = []
    for index in range(n_requests):
        endpoint = endpoints[int(rng.choice(len(endpoints), p=weights))]
        tenant = str(tenants[int(rng.integers(0, len(tenants)))])
        if shape == "conversational":
            # A session's next turn keeps the first half of its prompt
            # and redraws the rest — a growing shared prefix.
            session = int(rng.integers(0, max(1, n_requests // 4)))
            row = rng.integers(0, endpoint.vocab, size=endpoint.seq_len)
            prior = sessions.get(session)
            if prior is not None and prior.size == row.size:
                keep = endpoint.seq_len // 2
                row[:keep] = prior[:keep]
            sessions[session] = row
        else:
            row = rng.integers(0, endpoint.vocab, size=endpoint.seq_len)
        arrival = float(arrivals[index])
        requests.append(
            TracedRequest(
                model=endpoint.model,
                inputs=_to_tuple(row.tolist()),
                dtype=str(row.dtype),
                arrival=arrival,
                tenant=tenant,
                deadline=(
                    None
                    if deadline_slack is None
                    else arrival + float(deadline_slack)
                ),
                max_new_tokens=endpoint.max_new_tokens,
                stop_token=endpoint.stop_token,
            )
        )
    return TrafficTrace(name=name, requests=tuple(requests), seed=seed)


# ---------------------------------------------------------------------------
# Persistence
# ---------------------------------------------------------------------------
def save_trace(trace: TrafficTrace, store=None) -> None:
    """Persist ``trace`` under its name on a cache store.

    With a :class:`repro.store.FileStore` fabric the trace survives the
    process and is loadable by any worker; the default process-global
    store makes it an in-process snapshot.  The payload is the
    JSON-safe :meth:`TrafficTrace.to_dict` form, so both store
    serializers can carry it.
    """
    if store is None:
        from repro.store import get_store

        store = get_store()
    store.put(TRACE_NAMESPACE, trace.name, trace.to_dict())


def load_trace(name: str, store=None) -> Optional[TrafficTrace]:
    """Restore a :func:`save_trace` snapshot, or None if absent."""
    if store is None:
        from repro.store import get_store

        store = get_store()
    data = store.get(TRACE_NAMESPACE, name)
    if data is None:
        return None
    return TrafficTrace.from_dict(data)
