"""Unified cache fabric: one store interface across every reuse site.

:class:`~repro.store.base.CacheStore` is the contract (namespaced
get/put/evict under entry/byte budgets with uniform stats), with three
implementations:

* :class:`~repro.store.lru.InProcessLRU` — the default; per-process
  bounded LRU dicts, bit-identical to the historical private caches;
* :class:`~repro.store.filestore.FileStore` — on-disk, lock-guarded,
  shareable between worker processes (pickle or JSON serialization);
* :class:`~repro.store.tiered.TieredStore` — a local tier over a
  shared fabric tier (read-through with promotion, write-through),
  degrading to local-only operation when the shared tier's lock times
  out (:class:`~repro.store.base.StoreLockTimeout`) so one wedged
  fabric lock never stalls a serving worker.

The process-global default store (:func:`~repro.store.base.get_store`
/ :func:`~repro.store.base.set_store`) backs the module-level cache
sites in :mod:`repro.core.nonlinear_ops`, :mod:`repro.systolic.gemm`
and :mod:`repro.systolic.mhp_dataflow`;
:class:`~repro.store.base.StoreConfig` declares every site's budget in
one object.  See ``docs/architecture.md`` ("The cache fabric") for the
namespace map.
"""

from repro.store.base import (
    MISSING,
    CacheStore,
    NamespaceLimit,
    StoreConfig,
    StoreLockTimeout,
    get_store,
    namespace_default,
    register_namespace,
    set_store,
)
from repro.store.filestore import FileStore
from repro.store.lru import InProcessLRU
from repro.store.tiered import TieredStore

__all__ = [
    "MISSING",
    "CacheStore",
    "NamespaceLimit",
    "StoreConfig",
    "StoreLockTimeout",
    "get_store",
    "set_store",
    "register_namespace",
    "namespace_default",
    "InProcessLRU",
    "FileStore",
    "TieredStore",
]
