"""Bench E2 — Table I: L3 buffer and PE resource consumption.

The analytic model must reproduce the published module costs exactly
(they are its calibration anchors) and the paper's stated ratios: the
ONE-SA PE costs ~27% more FFs and identical BRAM/DSP; the ONE-SA L3
needs 4.87x more LUTs and 1.14x more FFs.
"""

import pytest

from repro.evaluation.resource_sweep import (
    PAPER_TABLE1,
    format_table1,
    table1_module_resources,
)


def test_table1_module_resources(benchmark, print_artifact):
    data = benchmark(table1_module_resources)
    print_artifact(format_table1())

    for (module, design), published in PAPER_TABLE1.items():
        ours = data[module][design]
        assert int(ours.bram) == published["bram"], (module, design, "bram")
        assert int(ours.lut) == published["lut"], (module, design, "lut")
        assert int(ours.ff) == published["ff"], (module, design, "ff")
        assert int(ours.dsp) == published["dsp"], (module, design, "dsp")

    pe_ratio = data["pe"]["one-sa"].ff / data["pe"]["sa"].ff
    assert pe_ratio == pytest.approx(1.27, abs=0.02)
    l3_lut_extra = (data["l3"]["one-sa"].lut - data["l3"]["sa"].lut) / data["l3"]["sa"].lut
    assert l3_lut_extra == pytest.approx(4.87, abs=0.01)
