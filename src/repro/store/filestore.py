"""On-disk, lock-guarded backend shareable between worker processes.

Layout: one directory per namespace under the store root, one data
file per entry, plus an ``index.json`` per namespace holding the LRU
order (a monotonically increasing sequence number per entry — mtimes
are too coarse to order back-to-back operations) and each entry's
declared byte charge.  All mutation happens under an exclusive
``fcntl`` lock on the namespace's ``.lock`` file, so concurrent worker
processes interleave whole operations and never corrupt the index or
tear a data file; data files themselves are written to a temp name and
published with :func:`os.replace`, so a reader racing an eviction sees
either the old entry or none, never a partial pickle.

Keys are hashed (SHA-256 of ``repr(key)``) into file names, but
correctness never rests on the digest: the data file stores the
``(key, value)`` pair and a read verifies key equality, so a hash or
repr collision degrades to a miss — the same verify-before-trust rule
the prefix cache applies to prompt digests.

Serialization is ``pickle`` by default (plan schedules, prefix
payloads) or ``json`` (``serializer="json"``) for sites that already
speak the ``to_dict``/``from_dict`` idiom, like cost-model
calibration.  Hit/miss/insertion counters are per-process views;
occupancy (entries/bytes) is read from the shared index and is
therefore fleet-wide truth.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.store.base import (
    CacheStore,
    NamespaceLimit,
    NamespaceStats,
    StoreLockTimeout,
    namespace_default,
)

try:  # POSIX advisory locks; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

_INDEX_NAME = "index.json"
_LOCK_NAME = ".lock"


def _key_filename(key, suffix: str) -> str:
    digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:32]
    return f"{digest}.{suffix}"


class FileStore(CacheStore):
    """Namespace directories of serialized entries under one root.

    Parameters
    ----------
    root:
        Store directory (created if missing).  Point several worker
        processes at the same root and they share one cache fabric.
    serializer:
        ``"pickle"`` (default, arbitrary Python values) or ``"json"``
        (JSON-safe values only — the ``to_dict`` idiom).
    lock_timeout:
        Seconds a namespace-lock acquisition may wait before raising
        :class:`~repro.store.base.StoreLockTimeout` (``None`` blocks
        indefinitely — the historical behavior).  Bounded by default so
        a worker wedged while holding a fabric lock degrades the fleet
        to local caching instead of freezing it.

    **Corruption containment**: a data file that no longer
    deserializes (torn write survived a crash, external truncation,
    bit rot) is *quarantined* on read — removed from disk and from the
    index, counted under the namespace's ``corruptions`` stat — and
    the read degrades to a miss.  A corrupt entry can therefore cost
    at most one failed read fleet-wide; it can never wedge a namespace
    or serve garbage.
    """

    def __init__(
        self,
        root: str,
        serializer: str = "pickle",
        lock_timeout: Optional[float] = 10.0,
    ) -> None:
        if serializer not in ("pickle", "json"):
            raise ValueError(
                f"serializer must be 'pickle' or 'json', got {serializer!r}"
            )
        if lock_timeout is not None and lock_timeout <= 0:
            raise ValueError(
                f"lock_timeout must be positive or None, got {lock_timeout}"
            )
        self.root = os.path.abspath(str(root))
        self.serializer = serializer
        self.lock_timeout = lock_timeout
        self._suffix = "pkl" if serializer == "pickle" else "json"
        os.makedirs(self.root, exist_ok=True)
        self._limits: Dict[str, NamespaceLimit] = {}
        self._stats: Dict[str, NamespaceStats] = {}

    # -- paths and locking ----------------------------------------------
    def _ns_dir(self, namespace: str, create: bool = False) -> str:
        path = os.path.join(self.root, namespace)
        if create:
            os.makedirs(path, exist_ok=True)
        return path

    def _acquire(self, handle, namespace: str) -> None:
        """Take the namespace lock, bounded by ``lock_timeout``.

        Uses non-blocking attempts in a poll loop rather than a
        blocking ``flock`` so a holder that never releases cannot
        stall this process forever; ``InterruptedError`` (EINTR from a
        signal) retries immediately — a signal is not a timeout.
        """
        if self.lock_timeout is None:
            while True:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                    return
                except InterruptedError:  # pragma: no cover — signal race
                    continue
        deadline = time.monotonic() + self.lock_timeout
        while True:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                return
            except InterruptedError:  # pragma: no cover — signal race
                continue
            except (BlockingIOError, PermissionError):
                if time.monotonic() >= deadline:
                    raise StoreLockTimeout(
                        f"namespace {namespace!r} under {self.root} still "
                        f"locked after {self.lock_timeout:.3f}s"
                    ) from None
                time.sleep(min(0.005, self.lock_timeout))

    @contextmanager
    def _locked(self, namespace: str):
        """Exclusive per-namespace lock spanning one whole operation."""
        ns_dir = self._ns_dir(namespace, create=True)
        lock_path = os.path.join(ns_dir, _LOCK_NAME)
        handle = open(lock_path, "a+")
        try:
            if fcntl is not None:
                self._acquire(handle, namespace)
            yield ns_dir
        finally:
            if fcntl is not None:
                # Unlocking an un-held handle is a harmless no-op, so
                # the timeout path needs no special casing here.
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            handle.close()

    def _pstats(self, namespace: str) -> NamespaceStats:
        stats = self._stats.get(namespace)
        if stats is None:
            stats = self._stats[namespace] = NamespaceStats()
        return stats

    # -- index -----------------------------------------------------------
    def _read_index(self, ns_dir: str) -> Dict[str, object]:
        path = os.path.join(ns_dir, _INDEX_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return {"seq": 0, "entries": {}}

    def _write_index(self, ns_dir: str, index: Dict[str, object]) -> None:
        path = os.path.join(ns_dir, _INDEX_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(index, handle)
        os.replace(tmp, path)

    # -- (de)serialization ----------------------------------------------
    def _dump(self, path: str, key, value) -> None:
        tmp = path + ".tmp"
        if self.serializer == "pickle":
            with open(tmp, "wb") as handle:
                pickle.dump((repr(key), value), handle)
        else:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump({"key": repr(key), "value": value}, handle)
        os.replace(tmp, path)

    def _load(self, path: str, key) -> Tuple[str, object]:
        """(status, value): ``"hit"``, ``"miss"`` or ``"corrupt"``.

        A file that is absent or stores a *different* key (digest
        collision) is a verified miss; a file that exists but no
        longer deserializes is corrupt — the caller quarantines it.
        """
        try:
            if self.serializer == "pickle":
                with open(path, "rb") as handle:
                    stored_key, value = pickle.load(handle)
            else:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                stored_key, value = payload["key"], payload["value"]
        except FileNotFoundError:
            return "miss", None
        except (pickle.UnpicklingError, json.JSONDecodeError, EOFError,
                KeyError, ValueError, TypeError, AttributeError,
                ModuleNotFoundError):
            return "corrupt", None
        if stored_key != repr(key):
            # Digest collision: verified miss, never a wrong value.
            return "miss", None
        return "hit", value

    # -- eviction ---------------------------------------------------------
    def _limit(self, namespace: str) -> NamespaceLimit:
        return self._limits.get(namespace, namespace_default(namespace))

    def _evict_over_budget(
        self,
        namespace: str,
        ns_dir: str,
        index: Dict[str, object],
        incoming_bytes: int,
        incoming_entry: bool,
    ) -> None:
        limit = self._limit(namespace)
        entries: Dict[str, Dict[str, int]] = index["entries"]
        extra_entries = 1 if incoming_entry else 0

        def over() -> bool:
            total_bytes = sum(meta["nbytes"] for meta in entries.values())
            return bool(entries) and (
                (
                    limit.max_entries is not None
                    and len(entries) + extra_entries > limit.max_entries
                )
                or (
                    limit.max_bytes is not None
                    and total_bytes + incoming_bytes > limit.max_bytes
                )
            )

        while over():
            victim = min(entries, key=lambda name: entries[name]["seq"])
            entries.pop(victim)
            try:
                os.remove(os.path.join(ns_dir, victim))
            except FileNotFoundError:  # pragma: no cover - racing cleaner
                pass
            self._pstats(namespace).evictions += 1

    # -- core ------------------------------------------------------------
    def get(self, namespace: str, key, default=None, touch: bool = True):
        stats = self._pstats(namespace)
        fname = _key_filename(key, self._suffix)
        with self._locked(namespace) as ns_dir:
            index = self._read_index(ns_dir)
            meta = index["entries"].get(fname)
            if meta is None:
                stats.misses += 1
                return default
            status, value = self._load(os.path.join(ns_dir, fname), key)
            if status == "corrupt":
                # Quarantine: drop the unreadable file and its index
                # entry so it costs at most this one failed read.
                index["entries"].pop(fname, None)
                try:
                    os.remove(os.path.join(ns_dir, fname))
                except FileNotFoundError:  # pragma: no cover - racing cleaner
                    pass
                self._write_index(ns_dir, index)
                stats.corruptions += 1
                stats.misses += 1
                return default
            if status != "hit":
                stats.misses += 1
                return default
            if touch:
                index["seq"] += 1
                meta["seq"] = index["seq"]
                self._write_index(ns_dir, index)
        stats.hits += 1
        return value

    def put(
        self,
        namespace: str,
        key,
        value,
        nbytes: int = 0,
        version: Optional[int] = None,
    ) -> bool:
        stats = self._pstats(namespace)
        nbytes = int(nbytes)
        limit = self._limit(namespace)
        if limit.max_bytes is not None and nbytes > limit.max_bytes:
            stats.rejections += 1
            return False
        fname = _key_filename(key, self._suffix)
        with self._locked(namespace) as ns_dir:
            index = self._read_index(ns_dir)
            index["entries"].pop(fname, None)  # replace releases old bytes
            self._evict_over_budget(
                namespace, ns_dir, index, incoming_bytes=nbytes, incoming_entry=True
            )
            self._dump(os.path.join(ns_dir, fname), key, value)
            index["seq"] += 1
            meta = {"nbytes": nbytes, "seq": index["seq"]}
            if version is not None:
                meta["version"] = int(version)
            index["entries"][fname] = meta
            self._write_index(ns_dir, index)
        stats.insertions += 1
        return True

    def version_of(self, namespace: str, key) -> Optional[int]:
        fname = _key_filename(key, self._suffix)
        with self._locked(namespace) as ns_dir:
            meta = self._read_index(ns_dir)["entries"].get(fname)
        # Pre-versioning indexes have no "version" field: unversioned.
        return None if meta is None else meta.get("version")

    def contains(self, namespace: str, key) -> bool:
        fname = _key_filename(key, self._suffix)
        with self._locked(namespace) as ns_dir:
            return fname in self._read_index(ns_dir)["entries"]

    def touch(self, namespace: str, key) -> None:
        fname = _key_filename(key, self._suffix)
        with self._locked(namespace) as ns_dir:
            index = self._read_index(ns_dir)
            meta = index["entries"].get(fname)
            if meta is not None:
                index["seq"] += 1
                meta["seq"] = index["seq"]
                self._write_index(ns_dir, index)

    def delete(self, namespace: str, key) -> bool:
        fname = _key_filename(key, self._suffix)
        with self._locked(namespace) as ns_dir:
            index = self._read_index(ns_dir)
            if index["entries"].pop(fname, None) is None:
                return False
            try:
                os.remove(os.path.join(ns_dir, fname))
            except FileNotFoundError:  # pragma: no cover - racing cleaner
                pass
            self._write_index(ns_dir, index)
        return True

    def clear(self, namespace: Optional[str] = None) -> None:
        namespaces = [namespace] if namespace is not None else self._list_namespaces()
        for name in namespaces:
            with self._locked(name) as ns_dir:
                index = self._read_index(ns_dir)
                for fname in index["entries"]:
                    try:
                        os.remove(os.path.join(ns_dir, fname))
                    except FileNotFoundError:  # pragma: no cover
                        pass
                self._write_index(ns_dir, {"seq": index["seq"], "entries": {}})

    def _list_namespaces(self) -> List[str]:
        try:
            return sorted(
                name
                for name in os.listdir(self.root)
                if os.path.isdir(os.path.join(self.root, name))
            )
        except FileNotFoundError:  # pragma: no cover - root removed externally
            return []

    # -- enumeration -----------------------------------------------------
    def _sorted_entries(self, ns_dir: str) -> List[Tuple[str, Dict[str, int]]]:
        index = self._read_index(ns_dir)
        return sorted(index["entries"].items(), key=lambda item: item[1]["seq"])

    def keys(self, namespace: str) -> List[object]:
        """Resident keys in LRU → MRU order.

        Keys are stored as ``repr`` strings (hash preimages), so this
        returns the repr forms — sufficient for introspection; values
        round-trip exactly via :meth:`values`.
        """
        result = []
        with self._locked(namespace) as ns_dir:
            for fname, _ in self._sorted_entries(ns_dir):
                found, _value = self._load_any(os.path.join(ns_dir, fname))
                if found:
                    result.append(_value[0])
        return result

    def values(self, namespace: str) -> List[object]:
        result = []
        with self._locked(namespace) as ns_dir:
            for fname, _ in self._sorted_entries(ns_dir):
                found, payload = self._load_any(os.path.join(ns_dir, fname))
                if found:
                    result.append(payload[1])
        return result

    def _load_any(self, path: str) -> Tuple[bool, Tuple[object, object]]:
        """Load (repr-key, value) without a key to verify against."""
        try:
            if self.serializer == "pickle":
                with open(path, "rb") as handle:
                    stored_key, value = pickle.load(handle)
            else:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                stored_key, value = payload["key"], payload["value"]
        except (FileNotFoundError, pickle.UnpicklingError, json.JSONDecodeError,
                EOFError, KeyError, ValueError):  # pragma: no cover - torn file
            return False, (None, None)
        return True, (stored_key, value)

    def nbytes_of(self, namespace: str, key) -> int:
        fname = _key_filename(key, self._suffix)
        with self._locked(namespace) as ns_dir:
            meta = self._read_index(ns_dir)["entries"].get(fname)
        return 0 if meta is None else int(meta["nbytes"])

    # -- budgets and stats ----------------------------------------------
    def set_limit(
        self,
        namespace: str,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self._limits[namespace] = NamespaceLimit(
            max_entries=max_entries, max_bytes=max_bytes
        )
        with self._locked(namespace) as ns_dir:
            index = self._read_index(ns_dir)
            self._evict_over_budget(
                namespace, ns_dir, index, incoming_bytes=0, incoming_entry=False
            )
            self._write_index(ns_dir, index)

    def limit(self, namespace: str) -> NamespaceLimit:
        return self._limit(namespace)

    def stats(self, namespace: Optional[str] = None) -> Dict[str, object]:
        if namespace is None:
            names = sorted(set(self._list_namespaces()) | set(self._stats))
            return {name: self.stats(name) for name in names}
        stats = self._pstats(namespace)
        with self._locked(namespace) as ns_dir:
            entries = self._read_index(ns_dir)["entries"]
            stats.entries = len(entries)
            stats.bytes = sum(meta["nbytes"] for meta in entries.values())
        return stats.as_dict(self._limit(namespace))

    def reset_stats(self, namespace: Optional[str] = None) -> None:
        targets = [namespace] if namespace is not None else list(self._stats)
        for name in targets:
            self._pstats(name).reset_counters()
