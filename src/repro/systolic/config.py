"""Design-point configuration of the (ONE-)systolic array.

A :class:`SystolicConfig` pins down one point of the design space the
paper sweeps: the PE grid, the number of MACs per PE, the clock, the
memory-port widths and the buffer geometry.  Buffer sizes follow the
derivations that reproduce the paper's Table V exactly for the 8×8 /
16-MAC configuration used in Table IV:

* **L1** (per PE input/weight registers) — ``macs_per_pe`` INT16 entries
  = 32 B at 16 MACs → the paper's 0.031 KB;
* **PE output buffer** — ``3 * macs_per_pe`` INT16 entries (input reg,
  weight reg and output lane per MAC) = 96 B → 0.094 KB;
* **L2** (one bank per array edge lane, 3 edges: input, weight, output)
  — ``2 * pe_rows * macs_per_pe`` INT16 entries (double-buffered row of
  operands) = 512 B → 0.5 KB, 24 banks for an 8×8 array;
* **L3** — ``pe_rows * macs_per_pe`` INT16 entries plus a 32 B FIFO
  region = 288 B → the paper's 0.28 KB, 3 instances (input, weight,
  output).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.fixedpoint import QFormat
from repro.fixedpoint.qformat import INT16


@dataclass(frozen=True)
class SystolicConfig:
    """One design point of the (ONE-)SA design space.

    Parameters
    ----------
    pe_rows, pe_cols:
        PE grid dimensions.  The MHP diagonal dataflow requires
        ``pe_rows == pe_cols``, so ONE-SA design points
        (``nonlinear_enabled=True``) must be square; conventional SA
        baselines may use rectangular grids (GEMM tiles are then
        ``pe_rows x pe_cols``).
    macs_per_pe:
        Parallel multiply-accumulate units inside each PE (the paper
        sweeps 2–32; 16 is the Pareto-optimal choice of Fig. 10).
    clock_hz:
        Array clock.  Virtex-7 HLS designs of this family close timing
        around 200–250 MHz; the default reproduces the paper's
        throughput magnitudes.
    fmt:
        Datapath fixed-point format (INT16 per Section V-A).
    nonlinear_enabled:
        True for ONE-SA, False for the conventional SA baseline (used by
        the resource-comparison experiments).
    l3_out_width:
        Elements per cycle the L3 output buffer accepts from the L2
        output banks (GEMM result drain).  ``None`` (default) derives
        ``max(1, pe_cols // 4)`` — one quarter of the column lanes —
        which reproduces the Section V-C observation that draining a
        32×32 result from a 16×16 array takes ~85% of the cycles.
    l3_in_width:
        Elements per cycle each of the L3 input/weight buffers delivers.
    segment_capacity:
        CPWL (k, b) pairs the L3 parameter store can hold resident.
    """

    pe_rows: int = 8
    pe_cols: int = 8
    macs_per_pe: int = 16
    clock_hz: float = 250e6
    fmt: QFormat = field(default_factory=lambda: INT16)
    nonlinear_enabled: bool = True
    l3_out_width: "int | None" = None
    l3_in_width: int = 16
    segment_capacity: int = 256

    def __post_init__(self) -> None:
        if self.pe_rows < 1 or self.pe_cols < 1:
            raise ValueError("PE grid dimensions must be positive")
        if self.nonlinear_enabled and self.pe_rows != self.pe_cols:
            raise ValueError(
                "ONE-SA requires a square PE grid (diagonal MHP dataflow); "
                f"got {self.pe_rows}x{self.pe_cols}"
            )
        if self.macs_per_pe < 1:
            raise ValueError("macs_per_pe must be positive")
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        if self.l3_out_width is not None and self.l3_out_width < 1:
            raise ValueError("l3_out_width must be positive or None (auto)")
        if self.l3_in_width < 1:
            raise ValueError("l3_in_width must be positive")

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def n_pes(self) -> int:
        """Total number of processing elements."""
        return self.pe_rows * self.pe_cols

    @property
    def n_l2_banks(self) -> int:
        """L2 bank count: one bank per array edge lane.

        Inputs stream across the ``pe_rows`` row lanes; weights load and
        results drain through the ``pe_cols`` column lanes (consistent
        with the column-lane drain model in the timing module).  Equals
        ``3 * P`` on the square grids of the paper.
        """
        return self.pe_rows + 2 * self.pe_cols

    @property
    def n_l3_buffers(self) -> int:
        """L3 instances: input, weight, output."""
        return 3

    @property
    def element_bytes(self) -> int:
        """Storage bytes per datapath element."""
        return (self.fmt.total_bits + 7) // 8

    # ------------------------------------------------------------------
    # Buffer geometry (reproduces Table V at the paper's design point)
    # ------------------------------------------------------------------
    @property
    def l1_bytes(self) -> int:
        """Per-PE L1 register file: one operand per MAC."""
        return self.macs_per_pe * self.element_bytes

    @property
    def pe_buffer_bytes(self) -> int:
        """Per-PE working buffer: input reg + weight reg + output lane."""
        return 3 * self.macs_per_pe * self.element_bytes

    @property
    def l2_bytes(self) -> int:
        """Per-bank L2: double-buffered operand row for one array edge.

        Sized for the longer edge so rectangular grids hold a full
        operand row on every lane (``pe_rows == pe_cols`` in the
        paper's design points, so Table V is unchanged).
        """
        edge = max(self.pe_rows, self.pe_cols)
        return 2 * edge * self.macs_per_pe * self.element_bytes

    @property
    def l3_bytes(self) -> int:
        """Per-instance L3: one operand row plus the FIFO region."""
        edge = max(self.pe_rows, self.pe_cols)
        return edge * self.macs_per_pe * self.element_bytes + 32

    @property
    def total_buffer_bytes(self) -> int:
        """Aggregate on-chip buffer footprint (Table V's 'Total' row)."""
        return (
            self.n_l3_buffers * self.l3_bytes
            + self.n_l2_banks * self.l2_bytes
            + self.n_pes * self.pe_buffer_bytes
            + self.n_pes * self.l1_bytes
        )

    # ------------------------------------------------------------------
    # Peak rates
    # ------------------------------------------------------------------
    @property
    def macs_per_cycle(self) -> int:
        """Array-wide MAC operations per cycle in GEMM mode."""
        return self.n_pes * self.macs_per_pe

    @property
    def mhp_elements_per_cycle(self) -> float:
        """Peak MHP outputs per cycle in nonlinear mode.

        Only the ``pe_rows`` diagonal computation PEs produce results and
        each output consumes a two-term dot product, so the peak is
        ``pe_rows * macs_per_pe / 2``.
        """
        return self.pe_rows * self.macs_per_pe / 2.0

    # ------------------------------------------------------------------
    # Cost estimation (consumed by cluster placement)
    # ------------------------------------------------------------------
    def estimate_gemm_cycles(self, m_dim: int, k_dim: int, n_dim: int) -> int:
        """Closed-form cycles of ``(M,K) @ (K,N)`` on this design point.

        The hook cost-aware cluster placement estimates candidate
        shards with; delegates to
        :func:`repro.systolic.timing.gemm_cycles` (the same model the
        plan cache stores), imported lazily to keep the layering
        acyclic.
        """
        from repro.systolic.timing import gemm_cycles

        return gemm_cycles(self, m_dim, k_dim, n_dim).total

    def estimate_gemm_seconds(self, m_dim: int, k_dim: int, n_dim: int) -> float:
        """The same estimate on this design point's clock."""
        return self.estimate_gemm_cycles(m_dim, k_dim, n_dim) / self.clock_hz

    def estimate_nonlinear_cycles(self, m_dim: int, n_dim: int) -> int:
        """Closed-form cycles of one fused nonlinear pass (ONE-SA only)."""
        from repro.systolic.timing import nonlinear_cycles

        return nonlinear_cycles(self, m_dim, n_dim).total

    def with_size(self, pe_dim: int, macs_per_pe: "int | None" = None) -> "SystolicConfig":
        """Derive a new design point with a different grid / MAC count."""
        return replace(
            self,
            pe_rows=pe_dim,
            pe_cols=pe_dim,
            macs_per_pe=self.macs_per_pe if macs_per_pe is None else macs_per_pe,
        )

    def describe(self) -> str:
        """Short human-readable design-point label, e.g. ``'8x8x16'``."""
        kind = "ONE-SA" if self.nonlinear_enabled else "SA"
        return f"{kind} {self.pe_rows}x{self.pe_cols} PEs, {self.macs_per_pe} MACs/PE"


#: The configuration evaluated in Table IV: 64 PEs, 16 MACs per PE.
ONE_SA_PAPER_CONFIG = SystolicConfig(pe_rows=8, pe_cols=8, macs_per_pe=16)

#: The conventional-array baseline at the same design point.
SA_PAPER_CONFIG = SystolicConfig(pe_rows=8, pe_cols=8, macs_per_pe=16, nonlinear_enabled=False)
