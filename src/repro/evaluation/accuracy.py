"""Table III — end-to-end inference accuracy vs CPWL granularity.

For every registered stand-in task the harness trains the family's
small model once, then evaluates inference accuracy under

* the INT16 baseline with exact nonlinearities ("Original" column), and
* the full CPWL pipeline at each granularity (0.1 … 1.0 columns),

reporting the deltas exactly like the paper's table.  The reproduced
claims are the *trends*: accuracy declines as granularity grows, harder
tasks degrade more, and GCNs barely move.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.granularity import PAPER_GRANULARITIES
from repro.data.registry import TASK_REGISTRY, TaskSpec, tasks_for_family
from repro.evaluation.reporting import delta_percent, format_table
from repro.nn.executor import CPWLBackend, QuantizedFloatBackend
from repro.nn.models import GCN, SmallResNet, TinyBERT
from repro.nn.training import accuracy, train_classifier, train_gcn


@dataclass
class AccuracyRow:
    """One Table III row: a task's baseline and per-granularity deltas."""

    family: str
    task: str
    paper_dataset: str
    baseline: float
    deltas: Dict[float, float] = field(default_factory=dict)

    def delta_at(self, granularity: float) -> float:
        return self.deltas[granularity]


def _train_for_task(spec: TaskSpec, seed: int):
    """Train the family model for a task; returns (model, eval_fn).

    ``eval_fn(backend) -> float`` measures test accuracy under a given
    inference backend.
    """
    task = spec.build(seed)
    if spec.family == "cnn":
        model = SmallResNet(
            in_channels=task.x_train.shape[1], n_classes=task.n_classes, seed=seed
        )
        train_classifier(
            model, task.x_train, task.y_train, epochs=8, lr=3e-3, seed=seed
        )
        return model, lambda backend: accuracy(
            model.predict(task.x_test, backend), task.y_test
        )
    if spec.family == "bert":
        model = TinyBERT(
            vocab=task.vocab,
            seq_len=task.seq_len,
            n_classes=task.n_classes,
            seed=seed,
        )
        train_classifier(
            model,
            task.x_train,
            task.y_train,
            epochs=10,
            lr=2e-3,
            seed=seed,
            forward=lambda batch: model.forward(batch),
        )
        return model, lambda backend: accuracy(
            model.predict(task.x_test, backend), task.y_test
        )
    if spec.family == "gcn":
        model = GCN(
            task.features.shape[1], hidden=16, n_classes=task.n_classes, seed=seed
        )
        train_gcn(
            model, task.features, task.a_hat, task.labels, task.train_mask,
            epochs=150,
        )
        return model, lambda backend: accuracy(
            model.predict(task.features, task.a_hat, backend)[task.test_mask],
            task.labels[task.test_mask],
        )
    raise ValueError(f"unknown family {spec.family!r}")


def table3_accuracy(
    tasks: Optional[Sequence[str]] = None,
    granularities: Sequence[float] = PAPER_GRANULARITIES,
    seed: int = 0,
) -> List[AccuracyRow]:
    """Run the Table III experiment.

    Parameters
    ----------
    tasks:
        Task names to evaluate (default: the full registry).
    granularities:
        The CPWL granularity sweep (paper default 0.1 … 1.0).
    seed:
        Controls task generation and training determinism.
    """
    names = list(tasks) if tasks is not None else list(TASK_REGISTRY)
    rows: List[AccuracyRow] = []
    for name in names:
        spec = TASK_REGISTRY[name]
        _, evaluate = _train_for_task(spec, seed)
        baseline = evaluate(QuantizedFloatBackend())
        row = AccuracyRow(
            family=spec.family,
            task=name,
            paper_dataset=spec.paper_dataset,
            baseline=baseline,
        )
        for g in granularities:
            row.deltas[g] = evaluate(CPWLBackend(g)) - baseline
        rows.append(row)
    return rows


def format_table3(rows: Sequence[AccuracyRow]) -> str:
    """Paper-style rendering of the accuracy table."""
    if not rows:
        return "(no rows)"
    grans = sorted(rows[0].deltas)
    headers = ["family", "task (stands in for)", "Original"] + [
        str(g) for g in grans
    ]
    body = []
    for row in rows:
        body.append(
            [
                row.family.upper(),
                f"{row.task} ({row.paper_dataset})",
                f"{100 * row.baseline:.1f}%",
            ]
            + [delta_percent(row.baseline + row.deltas[g], row.baseline) for g in grans]
        )
    return format_table(headers, body, title="Table III: accuracy vs granularity")
