"""Serving-level performance report.

Aggregates one :meth:`InferenceEngine.run` into the metrics a serving
operator watches: latency percentiles, request throughput, the cycle
cost per request summed over every shard's array trace — and, per
tenant, the same latency view plus cycle attribution (from the tenant
trace namespaces), deadline misses and SLO attainment.

The tenant cycle account is exact: every batch executes inside its
tenant's trace namespace, so :attr:`ServingReport.tenant_cycles` sums
to :attr:`ServingReport.total_cycles` — cycles are attributed, never
double-counted or dropped, even in aggregate-only trace retention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.serving.cluster import BreakerTransition, PlacementDecision
from repro.serving.elastic import ScalingEvent, StealEvent
from repro.serving.faults import FaultRecord
from repro.serving.generation import DecodeStepRecord
from repro.serving.prefix_cache import PrefixEvent
from repro.serving.request import CompletedRequest, FailureRecord, ShedRecord
from repro.serving.tenancy import DEFAULT_TENANT, TenantConfig


@dataclass(frozen=True)
class ServingReport:
    """Summary of one engine run.

    Attributes
    ----------
    completed:
        Every finished request with placement and timing.
    shard_cycles:
        Traced cycles per hardware-routed shard, summed over the run.
    wall_seconds:
        Host wall-clock time the run took (simulation cost, *not* the
        modelled latency).
    tenant_cycles:
        Traced cycles attributed to each tenant (via the per-tenant
        trace namespaces); sums to :attr:`total_cycles`.
    tenants:
        Scheduling contracts of the tenants known to the engine
        (weights, priorities, SLO targets) for the SLO section.
    placements:
        The placement-decision log: one
        :class:`~repro.serving.cluster.PlacementDecision` per executed
        batch, in execution order.
    shed:
        Requests refused at admission (queue-depth cap or
        deadline-doomed), never executed.
    shard_busy:
        Simulated seconds each shard spent executing during the run
        (keys cover the whole pool, idle shards at 0.0) — the basis of
        :meth:`shard_utilization` and :meth:`imbalance`.
    placement_policy:
        Name of the placement policy that made the decisions.
    prefix_events:
        One :class:`~repro.serving.prefix_cache.PrefixEvent` per
        prefix-keyed batch, in execution order — the basis of the
        hit/miss counters, cycles-saved totals and per-tenant reuse
        views.
    cache_stats:
        Snapshot of every cache namespace touched during the run, one
        :meth:`repro.store.CacheStore.stats` dict per namespace (plan
        caches, approximator tables, prefix shards, param caches) —
        the unified replacement for the per-module ``*_cache_info``
        helpers this report used to leave scattered.
    failed:
        Admitted requests lost to faults (retry budget exhausted,
        deadline-doomed retries, lost workers) — together with
        :attr:`completed` they partition the admitted, non-shed
        requests exactly (the fault-tolerance invariant).
    fault_events:
        The engine's failed/parked-attempt log, one
        :class:`~repro.serving.faults.FaultRecord` per event.
    breaker_transitions:
        Per-shard circuit-breaker state changes, in simulated-time
        order.
    worker_restarts, worker_redistributions:
        Supervision actions of a multi-worker run (always 0 for a
        single-engine report): dead workers restarted, and dead
        workers whose requests were re-run on a surviving partition.
    generation_steps:
        One :class:`~repro.serving.generation.DecodeStepRecord` per
        executed decode iteration, in execution order — the basis of
        the generation section (steps, tokens/sec in simulated time,
        per-tenant token counts).
    """

    completed: Tuple[CompletedRequest, ...]
    shard_cycles: Dict[int, int]
    wall_seconds: float
    tenant_cycles: Dict[str, int] = field(default_factory=dict)
    tenants: Dict[str, TenantConfig] = field(default_factory=dict)
    placements: Tuple[PlacementDecision, ...] = ()
    shed: Tuple[ShedRecord, ...] = ()
    shard_busy: Dict[int, float] = field(default_factory=dict)
    placement_policy: str = "round_robin"
    prefix_events: Tuple[PrefixEvent, ...] = ()
    cache_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    failed: Tuple[FailureRecord, ...] = ()
    fault_events: Tuple[FaultRecord, ...] = ()
    breaker_transitions: Tuple[BreakerTransition, ...] = ()
    worker_restarts: int = 0
    worker_redistributions: int = 0
    generation_steps: Tuple["DecodeStepRecord", ...] = ()
    steals: Tuple[StealEvent, ...] = ()
    scaling_events: Tuple[ScalingEvent, ...] = ()

    # -- request-level views --------------------------------------------
    @property
    def n_requests(self) -> int:
        return len(self.completed)

    @property
    def latencies(self) -> np.ndarray:
        """Per-request simulated latencies, seconds."""
        return np.array([c.latency for c in self.completed], dtype=np.float64)

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile of request latency (seconds)."""
        if not self.completed:
            return 0.0
        return float(np.percentile(self.latencies, q))

    @property
    def p50(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p90(self) -> float:
        return self.latency_percentile(90.0)

    @property
    def p99(self) -> float:
        return self.latency_percentile(99.0)

    # -- run-level views ------------------------------------------------
    @property
    def makespan(self) -> float:
        """First arrival to last completion, simulated seconds."""
        if not self.completed:
            return 0.0
        first = min(c.request.arrival for c in self.completed)
        last = max(c.finish for c in self.completed)
        return last - first

    @property
    def throughput_rps(self) -> float:
        """Requests per simulated second over the makespan."""
        span = self.makespan
        return self.n_requests / span if span > 0 else 0.0

    @property
    def total_cycles(self) -> int:
        return sum(self.shard_cycles.values())

    @property
    def cycles_per_request(self) -> float:
        return self.total_cycles / self.n_requests if self.completed else 0.0

    @property
    def n_batches(self) -> int:
        return len({(c.shard, c.batch_index) for c in self.completed})

    @property
    def mean_batch_size(self) -> float:
        return self.n_requests / self.n_batches if self.n_batches else 0.0

    # -- placement / admission views ------------------------------------
    @property
    def shed_count(self) -> int:
        """Requests refused at admission during this run."""
        return len(self.shed)

    def tenant_shed(self, tenant: str) -> int:
        """One tenant's shed-request count."""
        return sum(1 for record in self.shed if record.request.tenant == tenant)

    def shed_by_reason(self) -> Dict[str, int]:
        """Shed counts grouped by admission-control reason."""
        counts: Dict[str, int] = {}
        for record in self.shed:
            counts[record.reason] = counts.get(record.reason, 0) + 1
        return counts

    def shard_utilization(self) -> Dict[int, float]:
        """Busy fraction of the run's makespan, per shard.

        1.0 means the shard executed for the entire span between the
        first arrival and the last completion; heterogeneous pools
        under blind placement typically show fast shards far below it.
        """
        span = self.makespan
        if span <= 0:
            return {shard: 0.0 for shard in self.shard_busy}
        return {
            shard: busy / span for shard, busy in sorted(self.shard_busy.items())
        }

    def imbalance(self) -> float:
        """Max-over-mean shard busy time (1.0 = perfectly balanced).

        The load-skew metric of the placement section: a 4-shard pool
        where one shard does all the work scores 4.0.  Returns 0.0
        when nothing ran.
        """
        if not self.shard_busy:
            return 0.0
        busy = list(self.shard_busy.values())
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean > 0 else 0.0

    def utilization_spread(self) -> Optional[float]:
        """Max-over-min shard busy time (the bench's balance gate).

        1.0 = perfectly balanced; ``inf`` when a shard sat completely
        idle while another worked — the greedy-concentration pathology
        the elastic runtime removes.  None for single-shard pools or
        when nothing ran.
        """
        if len(self.shard_busy) < 2:
            return None
        busy = list(self.shard_busy.values())
        if max(busy) <= 0:
            return None
        low = min(busy)
        return float("inf") if low <= 0 else max(busy) / low

    def placement_section(self) -> str:
        """Per-shard block of the summary: decisions, busy, utilization."""
        lines = [
            f"placement            : {self.placement_policy} "
            f"({len(self.placements)} decisions)"
        ]
        batches_on = {shard: 0 for shard in self.shard_busy}
        for decision in self.placements:
            batches_on[decision.shard] = batches_on.get(decision.shard, 0) + 1
        utilization = self.shard_utilization()
        for shard in sorted(self.shard_busy):
            lines.append(
                f"  shard {shard} placement : {batches_on.get(shard, 0)} batches, "
                f"busy {self.shard_busy[shard] * 1e6:,.1f} us "
                f"(util {utilization.get(shard, 0.0):.0%})"
            )
        if len(self.shard_busy) > 1:
            lines.append(
                f"  imbalance          : {self.imbalance():.2f} (max/mean busy)"
            )
        if self.shed:
            reasons = ", ".join(
                f"{reason} {count}"
                for reason, count in sorted(self.shed_by_reason().items())
            )
            lines.append(f"  requests shed      : {self.shed_count} ({reasons})")
        return "\n".join(lines)

    # -- prefix-cache views ----------------------------------------------
    @property
    def prefix_hits(self) -> int:
        """Prefix-keyed batches served from a cached prompt."""
        return sum(1 for event in self.prefix_events if event.hit)

    @property
    def prefix_misses(self) -> int:
        """Prefix-keyed batches that executed cold (and seeded the cache)."""
        return sum(1 for event in self.prefix_events if not event.hit)

    @property
    def prefix_hit_rate(self) -> float:
        """Hit fraction over prefix-keyed batches (0.0 when none ran)."""
        total = len(self.prefix_events)
        return self.prefix_hits / total if total else 0.0

    @property
    def prefix_cycles_saved(self) -> int:
        """Traced cycles the run's cache hits skipped (closed form).

        Exact by construction: a hit executes the suffix-only shapes,
        whose traced delta against cold execution is the same closed
        form (:func:`~repro.nn.workload.transformer_prefix_savings`)
        each event carries.
        """
        return sum(event.cycles_saved for event in self.prefix_events)

    def tenant_prefix_reuse(self, tenant: str) -> Dict[str, int]:
        """One tenant's reuse account: requests/batches hit and cycles saved."""
        hits = misses = requests_reused = cycles = 0
        for event in self.prefix_events:
            if event.tenant != tenant:
                continue
            if event.hit:
                hits += 1
                requests_reused += event.batch_size
                cycles += event.cycles_saved
            else:
                misses += 1
        return {
            "hit_batches": hits,
            "miss_batches": misses,
            "requests_reused": requests_reused,
            "cycles_saved": cycles,
        }

    def prefix_section(self) -> str:
        """Prefix-cache block of the summary."""
        total = self.total_cycles
        saved = self.prefix_cycles_saved
        cold_equiv = total + saved
        lines = [
            f"prefix cache         : {self.prefix_hits} hit / "
            f"{self.prefix_misses} miss batches "
            f"({self.prefix_hit_rate:.0%} hit rate)",
            f"  cycles saved       : {saved:,} "
            f"({saved / cold_equiv:.0%} of cold-equivalent work)"
            if cold_equiv
            else "  cycles saved       : 0",
        ]
        for tenant in sorted({event.tenant for event in self.prefix_events}):
            reuse = self.tenant_prefix_reuse(tenant)
            lines.append(
                f"  tenant {tenant!r} reuse : "
                f"{reuse['hit_batches']} hit batches "
                f"({reuse['requests_reused']} requests), "
                f"{reuse['cycles_saved']:,} cycles saved"
            )
        return "\n".join(lines)

    def cache_section(self) -> str:
        """Cache-fabric block of the summary: one line per namespace.

        Every cache in the run — plan caches, approximator tables,
        per-shard prefix stores, parameter caches — reports through the
        same store-stats schema, so the section is a uniform table
        instead of per-subsystem formats.
        """
        if not self.cache_stats:
            return "cache fabric         : (no cache activity recorded)"
        lines = ["cache fabric         :"]
        for namespace in sorted(self.cache_stats):
            stats = self.cache_stats[namespace]
            hits = stats.get("hits", 0)
            misses = stats.get("misses", 0)
            total = hits + misses
            rate = f" ({hits / total:.0%} hit rate)" if total else ""
            lines.append(
                f"  {namespace:<24s}: {stats.get('entries', 0)} entries, "
                f"{stats.get('bytes', 0):,} bytes, "
                f"{hits} hit / {misses} miss{rate}, "
                f"{stats.get('evictions', 0)} evicted"
            )
        return "\n".join(lines)

    # -- fault-tolerance views --------------------------------------------
    @property
    def failed_count(self) -> int:
        """Admitted requests lost to faults during this run."""
        return len(self.failed)

    def failed_by_reason(self) -> Dict[str, int]:
        """Failure counts grouped by reason."""
        counts: Dict[str, int] = {}
        for record in self.failed:
            counts[record.reason] = counts.get(record.reason, 0) + 1
        return counts

    @property
    def retries(self) -> int:
        """Batch executions past the first attempt (successful or not):
        completed re-placements plus repeat crashes."""
        return sum(1 for p in self.placements if p.attempt > 0) + sum(
            1 for e in self.fault_events if e.kind == "crash" and e.attempt > 0
        )

    @property
    def replacements(self) -> int:
        """Retried batches that completed on a *different* shard than
        the one their previous attempt failed on."""
        return sum(
            1
            for p in self.placements
            if p.recovered_from is not None and p.shard != p.recovered_from
        )

    @property
    def recovered_requests(self) -> int:
        """Requests that completed after at least one failed attempt."""
        return sum(1 for c in self.completed if c.attempts > 1)

    @property
    def has_fault_activity(self) -> bool:
        return bool(
            self.fault_events
            or self.failed
            or self.breaker_transitions
            or self.worker_restarts
            or self.worker_redistributions
        )

    def fault_section(self) -> str:
        """Fault-tolerance block of the summary.

        Counts faulted attempts by kind and action, retry/re-placement
        and recovery totals, failed requests by reason, breaker
        transitions per shard, and worker supervision actions.
        """
        crashes = [e for e in self.fault_events if e.kind == "crash"]
        parks = [e for e in self.fault_events if e.action == "park"]
        lines = [
            f"faults               : {len(crashes)} failed attempts, "
            f"{len(parks)} parked (all shards down)"
        ]
        lines.append(
            f"  retries            : {self.retries} "
            f"({self.replacements} re-placed on another shard)"
        )
        lines.append(
            f"  recovered requests : {self.recovered_requests} "
            f"(completed after a failed attempt)"
        )
        if self.failed:
            reasons = ", ".join(
                f"{reason} {count}"
                for reason, count in sorted(self.failed_by_reason().items())
            )
            lines.append(f"  failed requests    : {self.failed_count} ({reasons})")
        if self.breaker_transitions:
            per_shard: Dict[int, int] = {}
            opened = 0
            for transition in self.breaker_transitions:
                per_shard[transition.shard] = per_shard.get(transition.shard, 0) + 1
                if transition.to_state == "open":
                    opened += 1
            shards = ", ".join(
                f"shard {shard} x{count}" for shard, count in sorted(per_shard.items())
            )
            lines.append(
                f"  breaker            : {len(self.breaker_transitions)} "
                f"transitions ({opened} opens; {shards})"
            )
        if self.worker_restarts or self.worker_redistributions:
            lines.append(
                f"  supervision        : {self.worker_restarts} worker "
                f"restart(s), {self.worker_redistributions} redistribution(s)"
            )
        return "\n".join(lines)

    # -- elastic-runtime views --------------------------------------------
    @property
    def steal_count(self) -> int:
        """Queued batches migrated between shards during the run."""
        return len(self.steals)

    def steals_by_reason(self) -> Dict[str, int]:
        """Steal counts grouped by trigger (drift / breaker / affinity)."""
        counts: Dict[str, int] = {}
        for steal in self.steals:
            counts[steal.reason] = counts.get(steal.reason, 0) + 1
        return counts

    @property
    def has_elastic_activity(self) -> bool:
        return bool(self.steals or self.scaling_events)

    def elastic_section(self) -> str:
        """Elastic-runtime block: steals, scalings, and the per-shard /
        per-model stats descriptor tree all three decisions read."""
        from repro.serving.stats import cluster_desc, render_cluster_desc

        lines = []
        if self.steals:
            reasons = ", ".join(
                f"{reason} {count}"
                for reason, count in sorted(self.steals_by_reason().items())
            )
            migrated = sum(1 for steal in self.steals if steal.cache_migrated)
            lines.append(
                f"work stealing        : {self.steal_count} batches re-placed "
                f"({reasons}; {migrated} cache migrations)"
            )
        if self.scaling_events:
            grows = sum(1 for e in self.scaling_events if e.action == "grow")
            shrinks = len(self.scaling_events) - grows
            lines.append(
                f"autoscaling          : {grows} grow / {shrinks} shrink "
                f"(final pool power "
                f"{self.scaling_events[-1].pool_power_watts:.2f} W)"
            )
            for event in self.scaling_events:
                lines.append(
                    f"  {event.action:<6s} shard {event.shard} at "
                    f"{event.at * 1e6:,.1f} us ({event.reason}; "
                    f"slo {event.slo_attainment:.0%}, "
                    f"shed {event.shed_rate:.0%})"
                )
        tree = render_cluster_desc(cluster_desc(self))
        lines.append("cluster stats        :")
        lines.extend("  " + line for line in tree.split("\n"))
        return "\n".join(lines)

    # -- generation views ------------------------------------------------
    @cached_property
    def generation_completed(self) -> Tuple[CompletedRequest, ...]:
        """Completed generation requests (outputs are token rows)."""
        return tuple(
            c for c in self.completed if c.request.generation is not None
        )

    @property
    def decode_steps(self) -> int:
        """Decode iterations executed during the run."""
        return len(self.generation_steps)

    @property
    def generated_tokens(self) -> int:
        """Tokens produced by completed generation requests."""
        return sum(len(c.outputs) for c in self.generation_completed)

    @property
    def has_generation_activity(self) -> bool:
        return bool(self.generation_steps or self.generation_completed)

    def generation_makespan(self) -> float:
        """First generation arrival to last generation finish (sim s)."""
        records = self.generation_completed
        if not records:
            return 0.0
        first = min(c.request.arrival for c in records)
        last = max(c.finish for c in records)
        return last - first

    def tokens_per_second(self) -> float:
        """Generated-token throughput over the generation makespan,
        in *simulated* time."""
        span = self.generation_makespan()
        if span <= 0.0:
            return 0.0
        return self.generated_tokens / span

    def tenant_tokens(self) -> Dict[str, int]:
        """Generated-token counts per tenant (completed requests)."""
        counts: Dict[str, int] = {}
        for c in self.generation_completed:
            counts[c.request.tenant] = counts.get(c.request.tenant, 0) + len(
                c.outputs
            )
        return counts

    def generation_section(self) -> str:
        """Continuous-batching block of the summary.

        Decode iterations and their mean batch size, completed
        sequences and token totals, token throughput in simulated
        time, decode-attributed cycles, and per-tenant token counts.
        """
        steps = self.generation_steps
        mean_batch = (
            sum(s.batch_size for s in steps) / len(steps) if steps else 0.0
        )
        decode_cycles = sum(s.cycles for s in steps)
        lines = [
            f"decode iterations    : {len(steps)} "
            f"(mean batch size {mean_batch:.2f})",
            f"  sequences          : {len(self.generation_completed)} completed, "
            f"{self.generated_tokens} tokens",
            f"  token throughput   : {self.tokens_per_second():.1f} tokens/s "
            f"(simulated)",
            f"  decode cycles      : {decode_cycles}",
        ]
        tokens = self.tenant_tokens()
        if tokens:
            per_tenant = ", ".join(
                f"{tenant} {count}" for tenant, count in sorted(tokens.items())
            )
            lines.append(f"  tenant tokens      : {per_tenant}")
        return "\n".join(lines)

    # -- per-tenant views -----------------------------------------------
    @cached_property
    def _completed_by_tenant(self) -> Dict[str, List[CompletedRequest]]:
        """One-pass grouping; reports are immutable so caching is safe."""
        groups: Dict[str, List[CompletedRequest]] = {}
        for record in self.completed:
            groups.setdefault(record.request.tenant, []).append(record)
        return groups

    @property
    def tenant_ids(self) -> List[str]:
        """Tenants that appear in this run, sorted."""
        seen = set(self._completed_by_tenant)
        seen.update(self.tenant_cycles)
        return sorted(seen)

    def tenant_completed(self, tenant: str) -> List[CompletedRequest]:
        """This tenant's finished requests."""
        return list(self._completed_by_tenant.get(tenant, ()))

    def tenant_latencies(self, tenant: str) -> np.ndarray:
        """This tenant's simulated latencies, seconds."""
        return np.array(
            [c.latency for c in self._completed_by_tenant.get(tenant, ())],
            dtype=np.float64,
        )

    def tenant_percentile(self, tenant: str, q: float) -> float:
        """The ``q``-th latency percentile within one tenant."""
        latencies = self.tenant_latencies(tenant)
        if latencies.size == 0:
            return 0.0
        return float(np.percentile(latencies, q))

    def _effective_deadline(self, record: CompletedRequest) -> Optional[float]:
        """Request deadline, falling back to arrival + tenant SLO."""
        if record.request.deadline is not None:
            return record.request.deadline
        config = self.tenants.get(record.request.tenant)
        if config is not None and config.slo_latency is not None:
            return record.request.arrival + config.slo_latency
        return None

    def deadline_misses(self, tenant: str) -> int:
        """Requests that finished after their effective deadline."""
        return sum(
            1
            for c in self._completed_by_tenant.get(tenant, ())
            if (due := self._effective_deadline(c)) is not None and c.finish > due
        )

    def slo_attainment(self, tenant: str) -> Optional[float]:
        """Fraction of the tenant's requests that met their deadline.

        None when the tenant has no deadline-carrying requests (no
        per-request deadlines and no configured SLO).
        """
        scored = [
            c.finish <= due
            for c in self._completed_by_tenant.get(tenant, ())
            if (due := self._effective_deadline(c)) is not None
        ]
        if not scored:
            return None
        return sum(scored) / len(scored)

    def objective_section(self) -> Dict[str, object]:
        """Machine-readable run summary for replay scoring.

        One flat dict instead of three report sections to scrape —
        what :func:`repro.autotune.objective_from_report` reads when a
        trace replay is collapsed into an objective tuple:

        * ``slo_attainment`` — fraction of *all* deadline-carrying
          completed requests that met their effective deadline
          (explicit deadline, else tenant SLO), across tenants; None
          when nothing carried a deadline;
        * ``shed`` / ``failed`` / ``n_requests`` — refused, lost and
          completed counts; ``shed_rate`` is shed over everything the
          run was asked to serve;
        * ``p50`` / ``p99`` — request latency percentiles, simulated
          seconds;
        * ``tokens_per_second`` — generated-token throughput in
          simulated time (0.0 without generation traffic);
        * ``total_cycles`` — traced array cycles across all shards.
        """
        scored = [
            c.finish <= due
            for c in self.completed
            if (due := self._effective_deadline(c)) is not None
        ]
        offered = self.n_requests + self.shed_count + self.failed_count
        return {
            "slo_attainment": (
                sum(scored) / len(scored) if scored else None
            ),
            "shed": self.shed_count,
            "shed_rate": self.shed_count / offered if offered else 0.0,
            "failed": self.failed_count,
            "n_requests": self.n_requests,
            "p50": self.p50,
            "p99": self.p99,
            "tokens_per_second": self.tokens_per_second(),
            "total_cycles": self.total_cycles,
        }

    def slo_section(self) -> str:
        """Per-tenant block of the summary: share, latency, SLO."""
        total = self.total_cycles
        lines = []
        for tenant in self.tenant_ids:
            records = self._completed_by_tenant.get(tenant, ())
            cycles = self.tenant_cycles.get(tenant, 0)
            share = cycles / total if total else 0.0
            config = self.tenants.get(tenant)
            lines.append(
                f"tenant {tenant!r}: {len(records)} requests, "
                f"{cycles:,} cycles ({share:.0%} of pool)"
            )
            if records:
                lines.append(
                    f"  latency p50/p99    : "
                    f"{self.tenant_percentile(tenant, 50.0) * 1e6:,.1f} / "
                    f"{self.tenant_percentile(tenant, 99.0) * 1e6:,.1f} us"
                )
            # One pass over the records so the printed miss count and
            # attainment percentage can never disagree.
            scored = missed = 0
            for record in records:
                due = self._effective_deadline(record)
                if due is not None:
                    scored += 1
                    if record.finish > due:
                        missed += 1
            if scored:
                target = (
                    f" (target {config.slo_latency * 1e6:,.1f} us)"
                    if config is not None and config.slo_latency is not None
                    else ""
                )
                lines.append(
                    f"  SLO attainment     : {(scored - missed) / scored:.0%}"
                    f"{target}, {missed} missed"
                )
        return "\n".join(lines)

    def summary(self) -> str:
        """Paper-artifact-style text table of the serving run."""
        lines = [
            f"requests served      : {self.n_requests}",
            f"batches executed     : {self.n_batches} "
            f"(mean size {self.mean_batch_size:.2f})",
            f"throughput           : {self.throughput_rps:,.0f} req/s (simulated)",
            f"latency p50/p90/p99  : {self.p50 * 1e6:,.1f} / "
            f"{self.p90 * 1e6:,.1f} / {self.p99 * 1e6:,.1f} us",
            f"cycles per request   : {self.cycles_per_request:,.0f}",
        ]
        for shard in sorted(self.shard_cycles):
            lines.append(
                f"  shard {shard} cycles    : {self.shard_cycles[shard]:,}"
            )
        # Placement block whenever there was a pool to balance over or
        # admission control refused anything.
        if len(self.shard_busy) > 1 or self.shed:
            lines.append(self.placement_section())
        if self.prefix_events:
            lines.append(self.prefix_section())
        if self.cache_stats:
            lines.append(self.cache_section())
        if self.has_generation_activity:
            lines.append(self.generation_section())
        if self.has_fault_activity:
            lines.append(self.fault_section())
        if self.has_elastic_activity:
            lines.append(self.elastic_section())
        tenant_ids = self.tenant_ids
        # Per-tenant block for any named tenant, or whenever deadlines
        # were in play (even on the implicit default tenant).
        if tenant_ids and (
            tenant_ids != [DEFAULT_TENANT]
            or any(self._effective_deadline(c) is not None for c in self.completed)
        ):
            lines.append(self.slo_section())
        lines.append(f"host wall time       : {self.wall_seconds * 1e3:,.1f} ms")
        return "\n".join(lines)
