"""Analytic BRAM/LUT/FF/DSP model calibrated to the paper.

Model structure (see the subpackage docstring for the calibration
story):

* **PE** (Table I, 16 MACs): ``DSP = m``, ``BRAM = 1``,
  ``LUT = 600 + 14 m`` (+2 for the ONE-SA control muxes),
  ``FF = 950 + 57 m`` (+518 for the C1/C2 control logics and the MHP
  bypass registers).  At ``m = 16`` this reproduces the published
  824/826 LUT and 1862/2380 FF exactly, and doubling the MAC count
  raises PE FFs by 7–49%, inside the 2.6–53.8% band reported in
  Section V-C.
* **L3 buffer** (per instance): ``LUT = 110 + P m / 2``,
  ``FF = 310 + 2 P m``, no BRAM/DSP — 174 LUT / 566 FF at the paper's
  8×8/16-MAC point.  The ONE-SA *output* L3 additionally carries the
  data-addressing module and the k/b parameter store:
  ``+2 BRAM, +847 LUT, +643 FF`` (the Table I deltas).
* **Fabric remainder** (L2 banks, interconnect, control): anchored to
  the Table II SA totals at 16/64/256 PEs and interpolated linearly in
  the PE count, matching the linear LUT/FF/DSP growth of Fig. 9.

With this structure the model reproduces Table II exactly at the three
published design points, including every ONE-SA-over-SA delta.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.systolic.config import SystolicConfig

# ---------------------------------------------------------------------------
# Calibration anchors (published numbers)
# ---------------------------------------------------------------------------

#: Table I PE cost at 16 MACs (conventional SA).
_PE_ANCHOR = {"bram": 1, "lut": 824, "ff": 1862, "dsp": 16, "macs": 16}

#: Table I ONE-SA deltas: per-PE control logic and the extended output L3.
_PE_NL_DELTA = {"lut": 2, "ff": 518}
_L3_NL_DELTA = {"bram": 2, "lut": 847, "ff": 643}

#: Table II conventional-SA totals, keyed by PE count (all at 16 MACs).
_TABLE2_SA_TOTALS = {
    16: {"bram": 470, "lut": 67_976, "ff": 66_924, "dsp": 256},
    64: {"bram": 822, "lut": 179_247, "ff": 179_247, "dsp": 1_024},
    256: {"bram": 1_366, "lut": 730_225, "ff": 552_539, "dsp": 4_096},
}


@dataclass(frozen=True)
class ArrayResources:
    """A BRAM/LUT/FF/DSP resource vector."""

    bram: float
    lut: float
    ff: float
    dsp: float

    def __add__(self, other: "ArrayResources") -> "ArrayResources":
        return ArrayResources(
            self.bram + other.bram,
            self.lut + other.lut,
            self.ff + other.ff,
            self.dsp + other.dsp,
        )

    def scaled(self, factor: float) -> "ArrayResources":
        return ArrayResources(
            self.bram * factor,
            self.lut * factor,
            self.ff * factor,
            self.dsp * factor,
        )

    def rounded(self) -> "ArrayResources":
        return ArrayResources(
            round(self.bram), round(self.lut), round(self.ff), round(self.dsp)
        )

    def as_dict(self) -> dict:
        return {"bram": self.bram, "lut": self.lut, "ff": self.ff, "dsp": self.dsp}


def pe_resources(macs_per_pe: int, nonlinear: bool = True) -> ArrayResources:
    """Resource cost of one processing element.

    ``nonlinear=False`` gives the conventional-SA PE; ``True`` adds the
    C1/C2 control logics (Fig. 7), which cost flip-flops and a couple of
    LUT-level muxes but no extra BRAM or DSP — the headline claim of
    Table I.
    """
    if macs_per_pe < 1:
        raise ValueError("macs_per_pe must be positive")
    lut = 600 + 14 * macs_per_pe
    ff = 950 + 57 * macs_per_pe
    if nonlinear:
        lut += _PE_NL_DELTA["lut"]
        ff += _PE_NL_DELTA["ff"]
    return ArrayResources(bram=1, lut=lut, ff=ff, dsp=macs_per_pe)


def l3_resources(
    pe_rows: int, macs_per_pe: int, nonlinear_output: bool = False
) -> ArrayResources:
    """Resource cost of one L3 buffer instance.

    ``nonlinear_output=True`` models the ONE-SA output L3 with the
    data-addressing module and k/b parameter store (Fig. 5): +2 BRAM,
    +847 LUT, +643 FF over the conventional buffer — the Table I deltas.
    """
    row = pe_rows * macs_per_pe
    base = ArrayResources(bram=0, lut=110 + row // 2, ff=310 + 2 * row, dsp=0)
    if not nonlinear_output:
        return base
    return base + ArrayResources(
        bram=_L3_NL_DELTA["bram"],
        lut=_L3_NL_DELTA["lut"],
        ff=_L3_NL_DELTA["ff"],
        dsp=0,
    )


def _fabric_anchor(n_pes: int) -> ArrayResources:
    """Fabric remainder (L2 + interconnect + control) at one anchor."""
    totals = _TABLE2_SA_TOTALS[n_pes]
    pe_rows = int(round(n_pes**0.5))
    pes = pe_resources(16, nonlinear=False).scaled(n_pes)
    l3s = l3_resources(pe_rows, 16).scaled(3)
    return ArrayResources(
        bram=totals["bram"] - pes.bram - l3s.bram,
        lut=totals["lut"] - pes.lut - l3s.lut,
        ff=totals["ff"] - pes.ff - l3s.ff,
        dsp=totals["dsp"] - pes.dsp - l3s.dsp,
    )


def fabric_resources(n_pes: int) -> ArrayResources:
    """Fabric remainder interpolated in the PE count.

    Linear interpolation between the Table II anchors (16/64/256 PEs)
    and linear extrapolation outside, clamped non-negative.  The fabric
    is MAC-count independent, consistent with the Fig. 9 observation
    that extra MACs grow DSPs and FFs but not BRAM.
    """
    if n_pes < 1:
        raise ValueError("n_pes must be positive")
    anchors = sorted(_TABLE2_SA_TOTALS)
    values = {n: _fabric_anchor(n) for n in anchors}
    xs = np.array(anchors, dtype=np.float64)

    def interp(attr: str) -> float:
        ys = np.array([getattr(values[n], attr) for n in anchors])
        if n_pes <= xs[0]:
            slope = (ys[1] - ys[0]) / (xs[1] - xs[0])
            return float(max(0.0, ys[0] + slope * (n_pes - xs[0])))
        if n_pes >= xs[-1]:
            slope = (ys[-1] - ys[-2]) / (xs[-1] - xs[-2])
            return float(max(0.0, ys[-1] + slope * (n_pes - xs[-1])))
        return float(np.interp(n_pes, xs, ys))

    return ArrayResources(
        bram=interp("bram"), lut=interp("lut"), ff=interp("ff"), dsp=interp("dsp")
    )


def total_resources(config: SystolicConfig) -> ArrayResources:
    """Total resource vector of a design point (Table II / Fig. 9).

    Sum of ``n_PEs`` processing elements, two conventional L3 buffers
    (input, weight), one output L3 (extended when the design is ONE-SA)
    and the interpolated fabric remainder.
    """
    pes = pe_resources(config.macs_per_pe, nonlinear=config.nonlinear_enabled)
    total = pes.scaled(config.n_pes)
    total = total + l3_resources(config.pe_rows, config.macs_per_pe).scaled(2)
    total = total + l3_resources(
        config.pe_rows,
        config.macs_per_pe,
        nonlinear_output=config.nonlinear_enabled,
    )
    total = total + fabric_resources(config.n_pes)
    return total.rounded()


def resource_ratio(
    one_sa: ArrayResources, sa: ArrayResources
) -> dict:
    """Per-class ratio ONE-SA / SA (the parenthesised rows of Table II)."""
    return {
        "bram": one_sa.bram / sa.bram if sa.bram else float("inf"),
        "lut": one_sa.lut / sa.lut if sa.lut else float("inf"),
        "ff": one_sa.ff / sa.ff if sa.ff else float("inf"),
        "dsp": one_sa.dsp / sa.dsp if sa.dsp else float("inf"),
    }
