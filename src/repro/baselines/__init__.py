"""Comparison baselines for Table IV.

Two kinds of baseline appear in the paper's headline comparison:

* **general-purpose processors** (Intel i7-11700, NVIDIA 3090Ti, NVIDIA
  AGX Orin) — the paper measured these directly with an oscilloscope
  and OS timers; we encode the published measurements as calibration
  anchors of simple throughput models
  (:mod:`repro.baselines.processors`);
* **application-specific FPGA accelerators** (Angel-eye, the VGG16
  accelerator, NPE, FTRANS) — published specs quoted by the paper
  (:mod:`repro.baselines.accelerators`).
"""

from repro.baselines.processors import PROCESSORS, ProcessorModel
from repro.baselines.accelerators import ACCELERATORS, AcceleratorSpec

__all__ = ["ProcessorModel", "PROCESSORS", "AcceleratorSpec", "ACCELERATORS"]
