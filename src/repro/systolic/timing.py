"""Closed-form cycle model of the (ONE-)SA dataflow.

The model follows the schedule the paper describes and [6]'s
high-performance systolic template, with three documented bandwidth
assumptions:

1. **Operand streaming scales with the array** — each L2 bank feeds its
   lane ``macs_per_pe`` elements per cycle, so GEMM streaming keeps the
   PEs busy in steady state and MHP injection sustains
   ``pe_rows * macs_per_pe`` elements/cycle per channel.
2. **Result drain is the narrow path** — GEMM results leave through the
   single L3 output buffer at ``l3_out_width`` elements per cycle
   (default ``pe_cols // 4``; the grids the paper evaluates are square).  This reproduces the Section V-C
   observation that for a 32×32 input on a 16×16 array ~85% of cycles
   are spent transmitting results after computation has finished (we
   measure 86%), and it produces the "throughput cliff" of Fig. 8.
3. **IPF is fused with the producer** — the data-addressing module taps
   the output stream of the operation that *produced* the nonlinear
   input (Fig. 5 reuses the output-C path), so a fused nonlinear op
   charges only the module's pipeline latency.  ``fused_ipf=False``
   charges the full standalone pass.

GEMM schedule (output-stationary P×P tiles):

* wavefront skew ``2 (P - 1)`` once;
* first weight-tile preload ``ceil(K / m)`` (later preloads are double
  buffered behind compute);
* per-tile compute ``ceil(K / m)`` over ``ceil(M/P) * ceil(N/P)`` tiles;
* result drain ``ceil(M N / l3_out_width)``, overlapped with compute
  from the moment the first tile completes.

MHP schedule: wavefront skew, rearranged-stream injection
``ceil(2 M N / (P m))`` (each output consumes an ``(x, 1)`` and a
``(k, b)`` pair), and a ``P``-cycle exit wavefront.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.systolic.config import SystolicConfig


@dataclass(frozen=True)
class CycleBreakdown:
    """Cycle decomposition of one operation on the array.

    ``fill`` covers wavefront skew and non-overlapped preloads,
    ``compute`` the cycles with PEs actively multiplying, ``drain`` the
    *exposed* result-transmission cycles (those not hidden behind
    compute) and ``overhead`` fused-pipeline latencies (IPF, rearrange).
    """

    fill: int
    compute: int
    drain: int
    overhead: int = 0

    @property
    def total(self) -> int:
        """Total cycles of the operation."""
        return self.fill + self.compute + self.drain + self.overhead

    @property
    def drain_fraction(self) -> float:
        """Share of cycles spent transmitting results (Section V-C)."""
        return self.drain / self.total if self.total else 0.0

    def seconds(self, clock_hz: float) -> float:
        """Wall-clock duration at a given clock."""
        return self.total / clock_hz

    def merged(self, other: "CycleBreakdown") -> "CycleBreakdown":
        """Sequential composition of two operations."""
        return CycleBreakdown(
            fill=self.fill + other.fill,
            compute=self.compute + other.compute,
            drain=self.drain + other.drain,
            overhead=self.overhead + other.overhead,
        )


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def effective_out_width(config: SystolicConfig) -> int:
    """Drain bandwidth of the L3 output buffer (elements/cycle).

    Results leave through the column lanes, so both the cap and the
    derived default follow ``pe_cols`` (identical to ``pe_rows`` on the
    square grids the paper evaluates, correct on rectangular ones).
    """
    if config.l3_out_width is not None and config.l3_out_width > 0:
        # Configured explicitly; still never wider than one element per
        # column lane.
        return min(config.l3_out_width, config.pe_cols)
    return max(1, config.pe_cols // 4)


def gemm_cycles(config: SystolicConfig, m_dim: int, k_dim: int, n_dim: int) -> CycleBreakdown:
    """Cycle count of ``C[M,N] = A[M,K] @ B[K,N]`` on the array.

    See the module docstring for the schedule.  All dimensions must be
    positive; matrices smaller than the array underutilize it (partial
    tiles still occupy full tile slots), which is the small-matrix
    penalty visible in Fig. 8.
    """
    if min(m_dim, k_dim, n_dim) < 1:
        raise ValueError(f"GEMM dims must be positive, got {(m_dim, k_dim, n_dim)}")
    macs = config.macs_per_pe
    # Output tiles are pe_rows x pe_cols (rows tile M, columns tile N) —
    # identical to 2*(P-1)/P^2 on square grids, correct on rectangular.
    tiles = _ceil_div(m_dim, config.pe_rows) * _ceil_div(n_dim, config.pe_cols)
    compute_per_tile = _ceil_div(k_dim, macs)
    skew = (config.pe_rows - 1) + (config.pe_cols - 1)
    weight_preload = compute_per_tile
    compute_total = tiles * compute_per_tile
    drain_total = _ceil_div(m_dim * n_dim, effective_out_width(config))
    # Drain begins once the first tile is complete and then proceeds at
    # the L3 output width; whichever of compute or (first tile + drain)
    # finishes later bounds the schedule.
    core = max(compute_total, compute_per_tile + drain_total)
    exposed_drain = core - compute_total
    return CycleBreakdown(
        fill=skew + weight_preload,
        compute=compute_total,
        drain=exposed_drain,
    )


def nonlinear_cycles(
    config: SystolicConfig,
    m_dim: int,
    n_dim: int,
    fused_ipf: bool = True,
) -> CycleBreakdown:
    """Cycle count of one nonlinear operation (IPF + MHP) on the array.

    Parameters
    ----------
    m_dim, n_dim:
        Shape of the element matrix the nonlinearity is applied to.
    fused_ipf:
        When True (default), the addressing pass rides the producing
        operation's output stream and only its pipeline latency is
        charged; when False, the standalone pass streams the whole
        matrix through the L3 output port.
    """
    if not config.nonlinear_enabled:
        raise RuntimeError(
            "nonlinear operations require a ONE-SA configuration "
            "(nonlinear_enabled=True); the conventional SA has no "
            "IPF/MHP datapath"
        )
    if min(m_dim, n_dim) < 1:
        raise ValueError(f"matrix dims must be positive, got {(m_dim, n_dim)}")
    p = config.pe_rows
    macs = config.macs_per_pe
    elements = m_dim * n_dim
    skew = 2 * (p - 1)
    # Rearranged streams carry 2 elements per output on each channel,
    # injected at P*m elements/cycle per channel.
    injection = _ceil_div(2 * elements, p * macs)
    exit_wave = p
    if fused_ipf:
        ipf = 3  # addressing-pipeline depth (Fig. 5)
    else:
        ipf = _ceil_div(elements, effective_out_width(config)) + 3
    return CycleBreakdown(
        fill=skew,
        compute=injection,
        drain=exit_wave,
        overhead=ipf,
    )


def peak_gops(config: SystolicConfig) -> float:
    """Theoretical GEMM throughput in GOPS.

    The paper counts one operation as a fused multiply+add, i.e. one MAC
    (Section V-C), so the peak is ``PEs * MACs * f``.
    """
    return config.macs_per_cycle * config.clock_hz / 1e9


def peak_gnfs(config: SystolicConfig) -> float:
    """Theoretical nonlinear throughput in GNFS.

    Giga nonlinear function evaluations per second: only the diagonal
    computation PEs produce results and each evaluation is a two-term
    dot product, giving ``P * MACs / 2`` evaluations per cycle.
    """
    return config.mhp_elements_per_cycle * config.clock_hz / 1e9


def gemm_throughput_gops(
    config: SystolicConfig, m_dim: int, k_dim: int, n_dim: int
) -> float:
    """Achieved GEMM throughput for a given problem size."""
    breakdown = gemm_cycles(config, m_dim, k_dim, n_dim)
    ops = m_dim * k_dim * n_dim
    return ops / breakdown.seconds(config.clock_hz) / 1e9


def nonlinear_throughput_gnfs(
    config: SystolicConfig, m_dim: int, n_dim: int, fused_ipf: bool = True
) -> float:
    """Achieved nonlinear throughput for a given matrix size."""
    breakdown = nonlinear_cycles(config, m_dim, n_dim, fused_ipf=fused_ipf)
    return m_dim * n_dim / breakdown.seconds(config.clock_hz) / 1e9


def gemm_utilization(config: SystolicConfig, m_dim: int, k_dim: int, n_dim: int) -> float:
    """MAC-array utilization of a GEMM (achieved / peak)."""
    breakdown = gemm_cycles(config, m_dim, k_dim, n_dim)
    ideal = m_dim * k_dim * n_dim / config.macs_per_cycle
    return ideal / breakdown.total if breakdown.total else 0.0
