"""Granularity selection: the Section V-B trade-off, automated.

The paper notes the approximation granularity is limited by the L3
buffer size and the uncapped range, and that search ("NAS") can pick
granularities per function.  This example runs the selection logic for
every registered nonlinear function under two L3 budgets and two error
targets, then validates the recommendation end to end on a trained
network.

    python examples/granularity_search.py
"""

from repro.core import FUNCTION_LIBRARY, recommend_granularity, sweep_granularity
from repro.data import get_task
from repro.evaluation.reporting import format_table
from repro.nn.executor import CPWLBackend, QuantizedFloatBackend
from repro.nn.models import SmallResNet
from repro.nn.training import accuracy, train_classifier


def main() -> None:
    functions = ("gelu", "tanh", "sigmoid", "exp", "reciprocal", "rsqrt")

    rows = []
    for name in functions:
        for budget in (128, 1024):
            for max_error in (0.05, 0.01):
                try:
                    choice = recommend_granularity(
                        name, max_error=max_error, l3_budget_bytes=budget
                    )
                    picked = f"g={choice.granularity} ({choice.storage_bytes} B)"
                except ValueError:
                    picked = "infeasible"
                rows.append([name, budget, max_error, picked])
    print(format_table(
        ["function", "L3 budget (B)", "max error", "recommendation"],
        rows,
        title="Granularity recommendations (Section V-B trade-off)",
    ))

    # Validate the recommended default end to end on a trained CNN.
    choice = recommend_granularity("gelu", max_error=0.05)
    print(f"\nCoarsest GELU granularity within 0.05 max error: {choice.granularity}")

    task = get_task("qmnist")
    model = SmallResNet(in_channels=1, n_classes=task.n_classes, seed=0)
    train_classifier(model, task.x_train, task.y_train, epochs=6, lr=3e-3)
    base = accuracy(model.predict(task.x_test, QuantizedFloatBackend()), task.y_test)
    acc = accuracy(model.predict(task.x_test, CPWLBackend(choice.granularity)), task.y_test)
    print(f"End-to-end check on the QMNIST stand-in: baseline {base * 100:.1f}%, "
          f"CPWL at g={choice.granularity}: {acc * 100:.1f}% "
          f"({(acc - base) * 100:+.1f} points)")

    print("\nFull sweep detail for GELU:")
    for c in sweep_granularity("gelu"):
        print(f"  g={c.granularity:<5} segments={c.n_segments:<4} "
              f"max|err|={c.max_abs_error:.4f} rmse={c.rmse:.4f} "
              f"fits-L3={c.fits_l3} shift-path={c.shift_path}")


if __name__ == "__main__":
    main()
