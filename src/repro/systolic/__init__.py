"""Systolic-array simulator (functional + cycle level).

Implements the ONE-SA microarchitecture of Sections III-B and IV:

* :mod:`repro.systolic.config` — design-point description (PE grid,
  MACs/PE, buffer geometry, clock, port widths);
* :mod:`repro.systolic.pe` — processing element with the C1/C2 control
  logics that switch it between GEMM, computation-PE and
  transmission-PE behaviour (Fig. 7);
* :mod:`repro.systolic.buffers` — L1/L2/L3 buffers and FIFOs with
  capacity accounting (Table V geometry);
* :mod:`repro.systolic.addressing` — the L3 data-addressing module
  (Fig. 5);
* :mod:`repro.systolic.rearrange` — the data-rearrange module (Fig. 6);
* :mod:`repro.systolic.gemm` / :mod:`repro.systolic.mhp_dataflow` —
  dataflow schedules for the two operating modes;
* :mod:`repro.systolic.timing` — closed-form cycle model used by the
  design-space sweeps (Figs. 8 and 10);
* :mod:`repro.systolic.cycle_sim` — an event-level PE-by-PE simulator
  for small configurations that validates both the functional results
  and the closed-form model;
* :mod:`repro.systolic.array` — the user-facing :class:`SystolicArray`.
"""

from repro.systolic.config import ONE_SA_PAPER_CONFIG, SystolicConfig
from repro.systolic.timing import (
    CycleBreakdown,
    gemm_cycles,
    nonlinear_cycles,
    peak_gops,
    peak_gnfs,
)
from repro.systolic.array import ExecutionResult, SystolicArray
from repro.systolic.gemm import (
    clear_plan_cache,
    plan_cache_info,
    set_plan_cache_capacity,
)
from repro.systolic.trace import Trace, TraceEvent

__all__ = [
    "SystolicConfig",
    "ONE_SA_PAPER_CONFIG",
    "SystolicArray",
    "ExecutionResult",
    "CycleBreakdown",
    "Trace",
    "TraceEvent",
    "gemm_cycles",
    "nonlinear_cycles",
    "peak_gops",
    "peak_gnfs",
    "clear_plan_cache",
    "plan_cache_info",
    "set_plan_cache_capacity",
]
