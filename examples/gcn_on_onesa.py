"""GNN example: a two-layer GCN on ONE-SA.

Trains the GCN on the CORA stand-in (stochastic-block-model citation
graph), shows that its accuracy is essentially granularity-insensitive
(the paper's own Table III observation for GCNs), and reports the
full-size GCN workload's Table IV cells.

    python examples/gcn_on_onesa.py
"""

import numpy as np

from repro.data import get_task
from repro.evaluation.comparison import one_sa_performance
from repro.evaluation.reporting import format_table
from repro.nn.executor import CPWLBackend, QuantizedFloatBackend
from repro.nn.models import GCN
from repro.nn.training import accuracy, train_gcn
from repro.nn.workload import gcn_workload


def main() -> None:
    task = get_task("cora")
    n_edges = int((task.a_hat > 0).sum())
    print(f"Graph: {task.features.shape[0]} nodes, ~{n_edges} weighted entries, "
          f"{task.n_classes} classes")

    model = GCN(task.features.shape[1], hidden=16, n_classes=task.n_classes, seed=0)
    log = train_gcn(model, task.features, task.a_hat, task.labels,
                    task.train_mask, epochs=150)
    print(f"Trained to {log.accuracies[-1] * 100:.1f}% on the training nodes")

    def test_acc(backend):
        preds = model.predict(task.features, task.a_hat, backend)
        return accuracy(preds[task.test_mask], task.labels[task.test_mask])

    base = test_acc(QuantizedFloatBackend())
    rows = [["INT16 exact nonlinear (baseline)", f"{base * 100:.1f}%"]]
    for g in (0.1, 0.25, 0.5, 0.75, 1.0):
        acc = test_acc(CPWLBackend(g))
        rows.append([f"CPWL granularity {g}", f"{acc * 100:.1f}% ({(acc - base) * 100:+.1f})"])
    print("\n" + format_table(["inference path", "test accuracy"], rows,
                              title="GCN accuracy under CPWL (CORA stand-in)"))
    print("(GCNs barely react to granularity — matching the paper's Table III.)")

    cells = one_sa_performance(gcn_workload())
    print(f"\nFull-size GCN workload on ONE-SA (64 PEs, 16 MACs):")
    print(f"  latency     {cells.latency_s * 1e3:.2f} ms")
    print(f"  throughput  {cells.throughput_gops:.1f} GOPS")
    print(f"  power       {cells.power_w:.2f} W")
    print(f"  efficiency  {cells.efficiency:.1f} GOPS/W")


if __name__ == "__main__":
    main()
