"""Multi-tenant scheduler tests: fairness, priority, SLOs, async admission.

The load-bearing contracts:

* tenancy never changes results — serving the same requests through
  any tenant split stays bit-identical to single-tenant execution;
* per-tenant cycle totals in the report sum exactly to the engine's
  aggregate ``total_cycles`` (trace-namespace attribution is lossless);
* the incremental :class:`BatchAssembler` composes exactly the batches
  the offline :class:`DynamicBatcher` plan would;
* the legacy single-tenant ``submit``/``run`` API behaves as in PR 1.
"""

import numpy as np
import pytest

from repro.nn.executor import ArrayBackend, CPWLBackend, FloatBackend
from repro.nn.models import TinyBERT
from repro.serving import (
    BatchAssembler,
    DynamicBatcher,
    InferenceEngine,
    InferenceRequest,
    ClusterDispatcher,
    StrictPriority,
    TenantConfig,
    TenantRegistry,
    TenantScheduler,
    WeightedRoundRobin,
)
from repro.serving.scheduler import TenantCandidate, make_policy
from repro.systolic import SystolicArray, SystolicConfig
from repro.systolic.trace import Trace, TraceEvent

RNG = np.random.default_rng(7)


def req(i, model="m", arrival=0.0, tenant="default", priority=0, deadline=None):
    return InferenceRequest(
        request_id=i,
        model=model,
        inputs=np.zeros(1),
        arrival=arrival,
        tenant=tenant,
        priority=priority,
        deadline=deadline,
    )


def tiny_bert():
    return TinyBERT(vocab=16, seq_len=8, dim=8, heads=2, ff_dim=16, n_layers=1)


def array_pool(n=1):
    cfg = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
    return ClusterDispatcher.from_arrays([SystolicArray(cfg) for _ in range(n)], 0.25)


class TestTenantConfig:
    def test_defaults(self):
        cfg = TenantConfig("alice")
        assert cfg.weight == 1.0 and cfg.priority == 0 and cfg.slo_latency is None

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantConfig("")
        with pytest.raises(ValueError):
            TenantConfig("a", weight=0.0)
        with pytest.raises(ValueError):
            TenantConfig("a", weight=-1.0)
        with pytest.raises(ValueError):
            TenantConfig("a", slo_latency=0.0)

    def test_registry_materialises_defaults(self):
        registry = TenantRegistry()
        assert "ghost" not in registry
        cfg = registry.get("ghost")
        assert cfg.weight == 1.0
        assert "ghost" in registry
        registry.register(TenantConfig("ghost", weight=5.0))
        assert registry.get("ghost").weight == 5.0


class TestBatchAssembler:
    """The incremental assembler must match the offline plan."""

    def drain(self, assembler):
        batches = []
        while True:
            at = assembler.earliest_ready()
            if at is None:
                return batches
            group = assembler.ready_groups(at)[0]
            batches.append(assembler.pop(group, index=len(batches)))

    def test_matches_dynamic_batcher_on_random_streams(self):
        rng = np.random.default_rng(3)
        for trial in range(5):
            n = int(rng.integers(5, 30))
            arrivals = np.sort(rng.uniform(0, 1.0, size=n))
            requests = [
                req(
                    i,
                    model=rng.choice(["m1", "m2"]),
                    arrival=float(arrivals[i]),
                    tenant=rng.choice(["a", "b"]),
                )
                for i in range(n)
            ]
            batcher = DynamicBatcher(max_batch_size=3, flush_timeout=0.05)
            planned = batcher.plan(requests)

            assembler = BatchAssembler(max_batch_size=3, flush_timeout=0.05)
            for r in requests:
                assembler.admit(r)
            incremental = self.drain(assembler)

            def key(b):
                return (
                    b.tenant,
                    b.model,
                    tuple(r.request_id for r in b.requests),
                    round(b.ready_time, 12),
                )

            assert {key(b) for b in planned} == {key(b) for b in incremental}

    def test_full_group_closes_and_next_opens(self):
        assembler = BatchAssembler(max_batch_size=2, flush_timeout=1.0)
        for i in range(3):
            assembler.admit(req(i, arrival=0.0))
        assert assembler.n_pending == 3
        assert assembler.earliest_ready() == 0.0  # the full pair
        batches = self.drain(assembler)
        assert [b.size for b in batches] == [2, 1]
        assert batches[1].ready_time == 1.0  # oldest arrival + timeout

    def test_expired_group_sealed_on_late_same_key_arrival(self):
        assembler = BatchAssembler(max_batch_size=8, flush_timeout=0.5)
        assembler.admit(req(0, arrival=0.0))
        assembler.admit(req(1, arrival=2.0))  # past the 0.5 deadline
        batches = self.drain(assembler)
        assert [b.size for b in batches] == [1, 1]
        assert batches[0].ready_time == 0.5
        assert batches[1].ready_time == 2.5

    def test_tenants_never_share_a_batch(self):
        assembler = BatchAssembler(max_batch_size=8, flush_timeout=1.0)
        assembler.admit(req(0, tenant="a"))
        assembler.admit(req(1, tenant="b"))
        batches = self.drain(assembler)
        assert len(batches) == 2
        assert {b.tenant for b in batches} == {"a", "b"}


class TestPolicies:
    def candidate(self, tenant_id, weight=1.0, priority=0, oldest=0.0):
        return TenantCandidate(
            config=TenantConfig(tenant_id, weight=weight, priority=priority),
            effective_priority=priority,
            oldest_ready=oldest,
            n_ready=1,
        )

    def test_make_policy_names(self):
        assert isinstance(make_policy("wrr"), WeightedRoundRobin)
        assert isinstance(make_policy("weighted_round_robin"), WeightedRoundRobin)
        assert isinstance(make_policy("strict_priority"), StrictPriority)
        custom = StrictPriority()
        assert make_policy(custom) is custom
        with pytest.raises(ValueError):
            make_policy("fifo")

    def test_wrr_share_matches_weights(self):
        policy = WeightedRoundRobin()
        candidates = [self.candidate("a", weight=3.0), self.candidate("b", weight=1.0)]
        wins = [policy.select(candidates) for _ in range(40)]
        assert wins.count("a") == 30
        assert wins.count("b") == 10
        # Interleaved, not bunched: b appears within every 4-round window.
        for start in range(0, 40, 4):
            assert "b" in wins[start : start + 4]

    def test_wrr_idle_tenant_accumulates_no_credit(self):
        policy = WeightedRoundRobin()
        a, b = self.candidate("a"), self.candidate("b")
        # b sits out 10 rounds, then contends: it must not burst ahead
        # with banked credit — equal weights resume 1:1 alternation.
        for _ in range(10):
            assert policy.select([a]) == "a"
        wins = [policy.select([a, b]) for _ in range(6)]
        assert wins.count("a") == 3 and wins.count("b") == 3

    def test_strict_priority_highest_wins(self):
        policy = StrictPriority()
        low = self.candidate("low", priority=0)
        high = self.candidate("high", priority=5)
        assert policy.select([low, high]) == "high"

    def test_strict_priority_ties_break_fifo_then_id(self):
        policy = StrictPriority()
        early = self.candidate("z", priority=1, oldest=0.0)
        late = self.candidate("a", priority=1, oldest=1.0)
        assert policy.select([early, late]) == "z"
        same = self.candidate("a", priority=1, oldest=0.0)
        assert policy.select([early, same]) == "a"


class TestTenantScheduler:
    def scheduler(self, policy="weighted_round_robin", **tenant_weights):
        registry = TenantRegistry()
        for tenant_id, weight in tenant_weights.items():
            registry.register(TenantConfig(tenant_id, weight=weight))
        return TenantScheduler(
            registry, policy, max_batch_size=2, flush_timeout=0.0
        )

    def drain_tenants(self, scheduler):
        order = []
        while True:
            at = scheduler.earliest_ready()
            if at is None:
                return order
            batch = scheduler.pop_ready(at)
            order.append(batch.tenant)
        return order

    def test_empty_tenant_queue_does_not_starve_others(self):
        # "idle" is registered with a huge weight but never submits;
        # "busy" must be served immediately and completely.
        scheduler = self.scheduler(idle=100.0, busy=1.0)
        for i in range(4):
            scheduler.admit(req(i, tenant="busy"))
        order = self.drain_tenants(scheduler)
        assert order == ["busy", "busy"]
        assert scheduler.pending == 0
        assert scheduler.pop_ready(0.0) is None

    def test_wrr_interleaves_by_weight(self):
        scheduler = self.scheduler(a=3.0, b=1.0)
        for i in range(12):
            scheduler.admit(req(i, tenant="a"))
        for i in range(12, 24):
            scheduler.admit(req(100 + i, tenant="b"))
        order = self.drain_tenants(scheduler)
        # While both tenants contend (first 8 pops), a gets ~3/4.
        contended = order[:8]
        assert contended.count("a") == 6
        assert contended.count("b") == 2
        # No starvation: b appears among the first 4 decisions.
        assert "b" in order[:4]

    def test_no_priority_inversion_under_strict_priority(self):
        # A low-priority flood ready at the same instant must not run
        # before the high-priority tenant's batch (priority inversion).
        registry = TenantRegistry()
        registry.register(TenantConfig("low", priority=0))
        registry.register(TenantConfig("high", priority=5))
        scheduler = TenantScheduler(
            registry, "strict_priority", max_batch_size=2, flush_timeout=0.0
        )
        for i in range(8):
            scheduler.admit(req(i, tenant="low", priority=0))
        for i in range(8, 10):
            scheduler.admit(req(i, tenant="high", priority=5))
        order = self.drain_tenants(scheduler)
        assert order[0] == "high"
        assert order.count("high") == 1 and order.count("low") == 4

    def test_winner_executes_its_highest_priority_group(self):
        # Regression: tenant A wins arbitration via its priority-9
        # group, so that group (not A's older priority-0 group) must
        # run — otherwise B's priority-5 batch waits behind priority 0.
        registry = TenantRegistry()
        scheduler = TenantScheduler(
            registry, "strict_priority", max_batch_size=2, flush_timeout=0.0
        )
        scheduler.admit(req(0, model="x", tenant="a", priority=0))
        scheduler.admit(req(1, model="y", tenant="a", priority=9))
        scheduler.admit(req(2, model="z", tenant="b", priority=5))
        order = []
        while (at := scheduler.earliest_ready()) is not None:
            batch = scheduler.pop_ready(at)
            order.append(max(r.priority for r in batch.requests))
        assert order == [9, 5, 0]

    def test_request_priority_overrides_tenant_priority(self):
        registry = TenantRegistry()
        registry.register(TenantConfig("meek", priority=0))
        registry.register(TenantConfig("proud", priority=3))
        scheduler = TenantScheduler(
            registry, "strict_priority", max_batch_size=2, flush_timeout=0.0
        )
        scheduler.admit(req(0, tenant="meek", priority=9))  # escalated request
        scheduler.admit(req(1, tenant="proud", priority=3))
        batch = scheduler.pop_ready(scheduler.earliest_ready())
        assert batch.tenant == "meek"

    def test_wrr_flood_cannot_capture_every_slot(self):
        # The WRR analogue of priority inversion: a floods 20 batches,
        # b submits 2; b still lands inside the contended window.
        scheduler = self.scheduler(a=1.0, b=1.0)
        for i in range(40):
            scheduler.admit(req(i, tenant="a"))
        for i in range(40, 44):
            scheduler.admit(req(i, tenant="b"))
        order = self.drain_tenants(scheduler)
        assert order[:4].count("b") == 2  # equal weights: alternation

    def test_wrr_solo_rounds_drop_idle_tenants_credit(self):
        # Regression: solo rounds must still consult the policy so
        # WRR's stale-credit cleanup runs.  Round 1: a and b contend
        # (a wins), then b runs a solo round while a idles — a's
        # negative credit must be dropped, not frozen.  Round 2: a vs
        # fresh tenant c then ties 1:1 and a (first by id) must win;
        # with frozen credit a would lose to c.
        scheduler = self.scheduler(a=1.0, b=1.0, c=1.0)
        scheduler.admit(req(0, tenant="a"))
        scheduler.admit(req(1, tenant="b"))
        assert self.drain_tenants(scheduler) == ["a", "b"]  # b's was solo
        scheduler.admit(req(2, tenant="a"))
        scheduler.admit(req(3, tenant="c"))
        first = scheduler.pop_ready(scheduler.earliest_ready())
        assert first.tenant == "a"

    def test_admission_between_pops(self):
        scheduler = self.scheduler(a=1.0)
        scheduler.admit(req(0, tenant="a"))
        scheduler.admit(req(1, tenant="a"))
        first = scheduler.pop_ready(scheduler.earliest_ready())
        assert first.size == 2
        # Admission while "in flight": new work lands mid-stream.
        scheduler.admit(req(2, tenant="a"))
        second = scheduler.pop_ready(scheduler.earliest_ready())
        assert second.size == 1
        assert scheduler.earliest_ready() is None


class TestEngineMultiTenant:
    def engine(self, n_shards=1, **kw):
        pool = array_pool(n_shards)
        engine = InferenceEngine(
            pool, max_batch_size=2, flush_timeout=1e-4, **kw
        )
        engine.register("bert", tiny_bert())
        return engine, pool

    def test_two_tenant_weighted_fair_cycle_attribution(self):
        """Acceptance: per-tenant cycles sum to total_cycles and the
        tenant split stays bit-identical to single-tenant serving."""
        tokens = RNG.integers(0, 16, size=(10, 8))

        # Single-tenant reference run (legacy API, separate engine).
        ref_engine, _ = self.engine()
        ref_ids = [ref_engine.submit("bert", row) for row in tokens]
        ref_engine.run()
        reference = [ref_engine.result(i) for i in ref_ids]

        engine, pool = self.engine()
        engine.register_tenant("alice", weight=3.0, slo_latency=1.0)
        engine.register_tenant("bob", weight=1.0)
        ids = [
            engine.submit("bert", row, tenant="alice" if i < 5 else "bob")
            for i, row in enumerate(tokens)
        ]
        report = engine.run()

        assert report.n_requests == 10
        assert set(report.tenant_ids) == {"alice", "bob"}
        # Lossless attribution: namespace totals sum to the aggregate.
        assert report.total_cycles > 0
        assert sum(report.tenant_cycles.values()) == report.total_cycles
        assert report.tenant_cycles["alice"] > 0
        assert report.tenant_cycles["bob"] > 0
        # Trace stays aggregate-only (bounded memory) yet attributable.
        trace = pool.array_of(0).trace
        assert trace.events_retained == 0
        assert set(trace.cycles_by_namespace()) == {"alice", "bob"}
        # Bit-identical to the single-tenant run of the same requests.
        for request_id, expected in zip(ids, reference):
            assert np.array_equal(engine.result(request_id), expected)
        # The SLO section appears in the summary for named tenants.
        assert "tenant 'alice'" in report.summary()

    def test_wrr_weight_shapes_latency_under_contention(self):
        engine, _ = self.engine()
        engine.register_tenant("gold", weight=4.0)
        engine.register_tenant("free", weight=1.0)
        tokens = RNG.integers(0, 16, size=(16, 8))
        for i, row in enumerate(tokens):
            engine.submit("bert", row, tenant="gold" if i % 2 == 0 else "free")
        report = engine.run()
        # Same demand, one shard: the weight-4 tenant waits less.
        gold = report.tenant_latencies("gold").mean()
        free = report.tenant_latencies("free").mean()
        assert gold < free

    def test_strict_priority_orders_execution(self):
        engine, _ = self.engine(policy="strict_priority")
        engine.register_tenant("batchjob", priority=0)
        engine.register_tenant("interactive", priority=10)
        tokens = RNG.integers(0, 16, size=(6, 8))
        for row in tokens[:4]:
            engine.submit("bert", row, tenant="batchjob")
        for row in tokens[4:]:
            engine.submit("bert", row, tenant="interactive")
        report = engine.run()
        first = min(report.completed, key=lambda c: (c.start, c.batch_index))
        assert first.request.tenant == "interactive"
        assert max(
            c.finish for c in report.tenant_completed("interactive")
        ) <= min(c.finish for c in report.tenant_completed("batchjob"))

    def test_register_tenant_after_submit_applies(self):
        # Priorities resolve lazily at scheduling time, like weights:
        # configuring the tenant after its requests are queued works.
        engine, _ = self.engine(policy="strict_priority")
        tokens = RNG.integers(0, 16, size=(4, 8))
        for row in tokens[:2]:
            engine.submit("bert", row, tenant="vip")
        for row in tokens[2:]:
            engine.submit("bert", row, tenant="low")
        engine.register_tenant("vip", priority=10)  # after submit
        report = engine.run()
        first = min(report.completed, key=lambda c: (c.start, c.batch_index))
        assert first.request.tenant == "vip"

    def test_deadline_expired_request_accounting(self):
        engine, _ = self.engine()
        engine.register_tenant("slo", slo_latency=1e-12)  # impossibly tight
        tokens = RNG.integers(0, 16, size=(2, 8))
        engine.submit("bert", tokens[0], tenant="slo")
        # Explicit per-request deadline, generous: met.
        engine.submit("bert", tokens[1], tenant="slo", deadline=10.0)
        report = engine.run()
        assert report.deadline_misses("slo") == 1
        assert report.slo_attainment("slo") == 0.5
        missed = [c for c in report.completed if c.deadline_missed]
        # Only the explicit-deadline request carries deadline_missed;
        # the SLO-derived miss is scored by the report.
        assert len(missed) == 0
        assert "SLO attainment" in report.slo_section()

    def test_source_accepts_explicit_none_arrival(self):
        engine, _ = self.engine()
        rows = RNG.integers(0, 16, size=(2, 8))
        report = engine.run(
            request_source=[
                {"model": "bert", "inputs": rows[0], "arrival": None},
                ("bert", rows[1], None),
            ]
        )
        assert report.n_requests == 2
        assert all(c.request.arrival == 0.0 for c in report.completed)

    def test_default_tenant_deadline_shows_slo_in_summary(self):
        engine, _ = self.engine()
        engine.submit("bert", RNG.integers(0, 16, size=8), deadline=1e-12)
        report = engine.run()
        assert report.deadline_misses("default") == 1
        assert "SLO attainment" in report.summary()

    def test_no_deadlines_means_no_slo_score(self):
        engine, _ = self.engine()
        engine.submit("bert", RNG.integers(0, 16, size=8))
        report = engine.run()
        assert report.slo_attainment("default") is None
        assert report.deadline_misses("default") == 0

    def test_default_tenant_backward_compat(self):
        """The PR-1 API unchanged: no tenant anywhere, same report shape."""
        engine, pool = self.engine(n_shards=2)
        tokens = RNG.integers(0, 16, size=(8, 8))
        ids = [engine.submit("bert", row) for row in tokens]
        report = engine.run()
        assert report.n_requests == 8
        assert {c.shard for c in report.completed} == {0, 1}
        assert report.tenant_ids == ["default"]
        assert report.tenant_cycles == {"default": report.total_cycles}
        # No tenant SLO section in the single-tenant summary.
        assert "tenant" not in report.summary()
        for request_id, row in zip(ids, tokens):
            assert engine.result(request_id) is not None

    def test_submit_while_in_flight_via_step(self):
        engine, _ = self.engine()
        tokens = RNG.integers(0, 16, size=(6, 8))
        first = [engine.submit("bert", row) for row in tokens[:2]]
        records = engine.step()
        assert [c.request.request_id for c in records] == first
        # The first batch has executed; admit more and keep stepping —
        # submission never had to wait for a drain.
        later = [engine.submit("bert", row) for row in tokens[2:]]
        assert engine.pending == 4
        served = []
        while True:
            records = engine.step()
            if not records:
                break
            served.extend(c.request.request_id for c in records)
        assert sorted(served) == later
        for request_id in first + later:
            assert engine.result(request_id) is not None

    def test_run_with_streaming_request_source(self):
        engine, _ = self.engine()
        tokens = RNG.integers(0, 16, size=(6, 8))

        def stream():
            for i, row in enumerate(tokens):
                yield {
                    "model": "bert",
                    "inputs": row,
                    "arrival": i * 1e-5,
                    "tenant": "streamer",
                }

        report = engine.run(request_source=stream())
        assert report.n_requests == 6
        assert report.tenant_ids == ["streamer"]
        served = sorted(c.request.request_id for c in report.completed)
        for request_id in served:
            assert engine.result(request_id) is not None

    def test_source_rejects_inference_request_instances(self):
        # Caller-built InferenceRequest ids would silently stop
        # matching result() after the engine re-ids them, so the type
        # is rejected outright — use dicts or tuples.
        engine, _ = self.engine()
        item = InferenceRequest(
            request_id=0, model="bert", inputs=RNG.integers(0, 16, size=8)
        )
        with pytest.raises(TypeError):
            engine.run(request_source=[item])

    def test_pending_is_accurate_inside_a_run(self):
        # A callback reading engine.pending mid-run must see requests
        # still waiting in the loop's admission feed (arrival 5.0 is
        # buffered, not yet admitted, while the first batch executes).
        pool = array_pool(1)
        engine = InferenceEngine(pool, max_batch_size=2, flush_timeout=1e-4)
        model = tiny_bert()
        seen = []

        def probing_infer(x, backend):
            seen.append(engine.pending)
            return model.infer(x, backend)

        engine.register("bert", infer_fn=probing_infer)
        rows = RNG.integers(0, 16, size=(2, 8))
        engine.submit("bert", rows[0], arrival=0.0)
        engine.submit("bert", rows[1], arrival=5.0)  # far future: stays buffered
        engine.run()
        assert seen[0] == 1  # the future request is still counted
        assert engine.pending == 0

    def test_request_source_must_be_time_sorted(self):
        engine, _ = self.engine()
        rows = RNG.integers(0, 16, size=(2, 8))
        bad = [
            {"model": "bert", "inputs": rows[0], "arrival": 1.0},
            {"model": "bert", "inputs": rows[1], "arrival": 0.5},
        ]
        with pytest.raises(ValueError):
            engine.run(request_source=bad)

    def test_request_source_items_validated_like_submit(self):
        engine, _ = self.engine()
        row = RNG.integers(0, 16, size=8)
        with pytest.raises(ValueError):
            engine.run(
                request_source=[{"model": "bert", "inputs": row, "arrival": -1.0}]
            )
        engine.reset()
        with pytest.raises(ValueError):  # tuple too long: priority needs a dict
            engine.run(request_source=[("bert", row, 0.0, "t", 5)])
        engine.reset()
        with pytest.raises(KeyError):
            engine.run(request_source=[("nope", row)])

    def test_source_dict_rejects_unknown_keys(self):
        engine, _ = self.engine()
        row = RNG.integers(0, 16, size=8)
        with pytest.raises(ValueError, match="dealine"):
            engine.run(
                request_source=[
                    {"model": "bert", "inputs": row, "dealine": 1e-3}  # typo
                ]
            )

    def test_source_lookahead_does_not_shift_default_arrivals(self):
        # Regression: peeking a future stream item (arrival 9.0) must
        # not contaminate the default arrival of a request submitted by
        # a callback while the first batch is in flight.
        pool = array_pool(1)
        engine = InferenceEngine(pool, max_batch_size=1, flush_timeout=0.0)
        model = tiny_bert()
        engine.register("probe", model)
        follow = {}

        def submitting_infer(x, backend):
            if "id" not in follow:
                follow["id"] = engine.submit("probe", x[0])  # default arrival
            return model.infer(x, backend)

        engine.register("bert", infer_fn=submitting_infer)
        rows = RNG.integers(0, 16, size=(2, 8))
        report = engine.run(
            request_source=[
                {"model": "bert", "inputs": rows[0], "arrival": 0.0},
                {"model": "bert", "inputs": rows[1], "arrival": 9.0},
            ]
        )
        records = {c.request.request_id: c for c in report.completed}
        assert follow["id"] in records
        assert records[follow["id"]].request.arrival == 0.0
        assert records[follow["id"]].finish < 9.0  # served before the late item

    def test_source_interleaves_with_buffered_submissions(self):
        engine, _ = self.engine()
        rows = RNG.integers(0, 16, size=(4, 8))
        buffered = [
            engine.submit("bert", rows[0], arrival=0.0),
            engine.submit("bert", rows[1], arrival=3e-4),
        ]
        source = [
            ("bert", rows[2], 1e-4),
            ("bert", rows[3], 2e-4),
        ]
        report = engine.run(request_source=source)
        assert report.n_requests == 4
        for request_id in buffered:
            assert engine.result(request_id) is not None

    def test_report_names_only_this_runs_tenants(self):
        # Regression: namespaces persist on the shard traces, but a
        # run's report must not list tenants served in earlier steps
        # or runs with a zero cycle delta.
        engine, _ = self.engine()
        engine.submit("bert", RNG.integers(0, 16, size=8), tenant="early")
        assert engine.step()  # "early" served outside any run()
        engine.submit("bert", RNG.integers(0, 16, size=8), tenant="late")
        report = engine.run()
        assert report.tenant_ids == ["late"]
        assert sum(report.tenant_cycles.values()) == report.total_cycles > 0

    def test_functional_backend_tenants_have_zero_cycles(self):
        engine = InferenceEngine(
            ClusterDispatcher([FloatBackend()]), max_batch_size=2, flush_timeout=1e-4
        )
        engine.register("bert", tiny_bert())
        engine.submit("bert", RNG.integers(0, 16, size=8), tenant="t1")
        report = engine.run()
        assert report.tenant_cycles == {"t1": 0}
        assert report.total_cycles == 0


class TestTraceNamespaces:
    def event(self, cycles, label="l"):
        return TraceEvent(kind="gemm", label=label, cycles=cycles, ops=1)

    def test_namespace_attribution(self):
        trace = Trace(retain_events=False)
        trace.record(self.event(5))  # outside any namespace
        with trace.namespace("a"):
            trace.record(self.event(7, label="x"))
            trace.record(self.event(2, label="y"))
        with trace.namespace("b"):
            trace.record(self.event(3, label="x"))
        assert trace.total_cycles == 17
        assert trace.cycles_by_namespace() == {"a": 9, "b": 3}
        assert trace.cycles_by_label(namespace="a") == {"x": 7, "y": 2}
        assert trace.cycles_by_label(namespace="b") == {"x": 3}
        assert trace.cycles_by_label(namespace="ghost") == {}
        # Global label aggregates are unchanged by namespacing.
        assert trace.cycles_by_label() == {"l": 5, "x": 10, "y": 2}
        assert trace.events_retained == 0

    def test_nested_namespaces_innermost_wins(self):
        trace = Trace()
        with trace.namespace("outer"):
            trace.record(self.event(1))
            with trace.namespace("inner"):
                trace.record(self.event(2))
            trace.record(self.event(4))
        assert trace.cycles_by_namespace() == {"outer": 5, "inner": 2}

    def test_clear_resets_namespaces(self):
        trace = Trace()
        with trace.namespace("a"):
            trace.record(self.event(1))
        trace.clear()
        assert trace.cycles_by_namespace() == {}
        assert trace.cycles_by_label(namespace="a") == {}
