"""Quantization between floating point and fixed-point raw integers."""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.fixedpoint.qformat import QFormat

ArrayLike = Union[float, int, np.ndarray]


def quantize(values: ArrayLike, fmt: QFormat, rounding: str = "nearest") -> np.ndarray:
    """Quantize real ``values`` to raw fixed-point integers.

    Values outside the representable range saturate to the format limits,
    matching the saturating writeback of the PE output buffer.

    Parameters
    ----------
    values:
        Scalar or array of real numbers.
    fmt:
        Target fixed-point format.
    rounding:
        ``'nearest'`` (round half away from zero, the HLS default used by
        the paper's toolchain) or ``'floor'`` (truncation).

    Returns
    -------
    numpy.ndarray
        Raw integers in ``fmt.storage_dtype()``.
    """
    values = np.asarray(values, dtype=np.float64)
    # atleast_1d so the in-place ufunc chain below works for scalars
    # too; the original shape is restored on return.
    scaled = np.atleast_1d(values * (1 << fmt.frac_bits))
    if rounding == "nearest":
        # Round half away from zero as floor(|x| + 0.5) with the sign
        # restored: one branch-free pass over the data (this sits on the
        # quantize-dequantize hot path of every backend operation).
        raw = np.abs(scaled)
        raw += 0.5
        np.floor(raw, out=raw)
        np.copysign(raw, scaled, out=raw)
    elif rounding == "floor":
        raw = np.floor(scaled)
    else:
        raise ValueError(f"unknown rounding mode: {rounding!r}")
    np.clip(raw, fmt.raw_min, fmt.raw_max, out=raw)
    return raw.astype(fmt.storage_dtype()).reshape(values.shape)


def dequantize(raw: ArrayLike, fmt: QFormat) -> np.ndarray:
    """Convert raw fixed-point integers back to real values."""
    return np.asarray(raw, dtype=np.float64) * fmt.scale


def requantize(raw: ArrayLike, src: QFormat, dst: QFormat) -> np.ndarray:
    """Re-scale raw integers from one Q-format to another with saturation.

    This models the shift-and-saturate stage between the PE accumulator
    (a wide product-aligned format) and the INT16 output buffer.
    """
    raw = np.asarray(raw, dtype=np.int64)
    shift = src.frac_bits - dst.frac_bits
    if shift > 0:
        # Round-to-nearest on the discarded bits (add half then shift).
        half = np.int64(1) << (shift - 1)
        rescaled = (raw + half) >> shift
    elif shift < 0:
        rescaled = raw << (-shift)
    else:
        rescaled = raw
    rescaled = np.clip(rescaled, dst.raw_min, dst.raw_max)
    return rescaled.astype(dst.storage_dtype())


def quantization_error(values: ArrayLike, fmt: QFormat) -> float:
    """Maximum absolute round-trip error of ``values`` under ``fmt``.

    Useful for choosing fractional-bit budgets: for in-range values the
    error is bounded by half an LSB under nearest rounding.
    """
    values = np.asarray(values, dtype=np.float64)
    round_trip = dequantize(quantize(values, fmt), fmt)
    return float(np.max(np.abs(round_trip - values))) if values.size else 0.0
