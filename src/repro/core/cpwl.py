"""CPWL approximation engine.

Combines a :class:`~repro.core.segment_table.SegmentTable` with the
fixed-point datapath to produce the exact value the array would compute
for a nonlinear operation: quantize the input, derive segment indices the
way the L3 data-addressing module does, gather quantized ``(K, B)``, and
execute the Matrix Hadamard Product in saturating INT16 arithmetic.

Also provides approximation-error analysis used by the granularity study
(Table III) and the approximation ablation (comparing CPWL against
Taylor and Chebyshev alternatives, Section III-A's motivation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.functions import NonlinearFunction, get_function
from repro.core.segment_table import (
    QuantizedSegmentTable,
    SegmentTable,
    build_segment_table,
)
from repro.fixedpoint import (
    QFormat,
    dequantize,
    fixed_hadamard_mac,
    quantize,
)
from repro.fixedpoint.qformat import INT16


@dataclass
class ApproximationError:
    """Error statistics of an approximation against the reference function."""

    max_abs: float
    mean_abs: float
    rmse: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"max|e|={self.max_abs:.3e} mean|e|={self.mean_abs:.3e} "
            f"rmse={self.rmse:.3e}"
        )


def approximation_error(
    approx: np.ndarray, reference: np.ndarray
) -> ApproximationError:
    """Compute error statistics of ``approx`` against ``reference``."""
    approx = np.asarray(approx, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    err = np.abs(approx - reference)
    return ApproximationError(
        max_abs=float(err.max()) if err.size else 0.0,
        mean_abs=float(err.mean()) if err.size else 0.0,
        rmse=float(np.sqrt(np.mean(err**2))) if err.size else 0.0,
    )


class CPWLApproximator:
    """End-to-end CPWL evaluator for one nonlinear function.

    Parameters
    ----------
    function:
        Registered function name or :class:`NonlinearFunction`.
    granularity:
        Segment length (the paper's approximation granularity knob).
    fmt:
        Fixed-point format of the array datapath (INT16 by default).
        Pass ``None`` to evaluate purely in float (used to separate CPWL
        error from quantization error in the ablation).
    domain:
        Optional approximation-domain override.
    """

    def __init__(
        self,
        function: "str | NonlinearFunction",
        granularity: float,
        fmt: Optional[QFormat] = INT16,
        domain: Optional[tuple[float, float]] = None,
    ) -> None:
        self.function = (
            get_function(function) if isinstance(function, str) else function
        )
        self.table: SegmentTable = build_segment_table(
            self.function, granularity, domain=domain
        )
        self.fmt = fmt
        self.qtable: Optional[QuantizedSegmentTable] = (
            self.table.quantized(fmt) if fmt is not None else None
        )

    @property
    def granularity(self) -> float:
        """Segment length of the underlying table."""
        return self.table.granularity

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the approximation, returning float values.

        With a fixed-point format configured this is bit-faithful to the
        array: the result is the dequantized INT16 output of the MHP.
        """
        x = np.asarray(x, dtype=np.float64)
        if self.fmt is None:
            return self.table.evaluate(x)
        x_raw = quantize(x, self.fmt)
        y_raw = self.evaluate_raw(x_raw)
        return dequantize(y_raw, self.fmt)

    def evaluate_raw(self, x_raw: np.ndarray) -> np.ndarray:
        """Evaluate on raw fixed-point inputs, returning raw outputs.

        This is the exact sequence the hardware performs: segment index
        through the L3 addressing datapath (shift or scale path, both
        relative to the saturated domain-origin register — see
        :func:`repro.core.ipf.segment_indices`), gather of quantized
        ``(K, B)``, then the saturating two-term MAC ``y = k*x + b*1``.
        """
        if self.fmt is None or self.qtable is None:
            raise RuntimeError("evaluate_raw requires a fixed-point format")
        from repro.core.ipf import segment_indices

        segments = segment_indices(np.asarray(x_raw), self.table, self.fmt)
        k_raw, b_raw = self.qtable.lookup_raw(segments)
        return fixed_hadamard_mac(x_raw, k_raw, b_raw, self.fmt)

    def error_on(self, x: np.ndarray) -> ApproximationError:
        """Error of the (possibly quantized) approximation on samples."""
        return approximation_error(self(x), self.function(x))

    def error_profile(self, n_points: int = 4096) -> ApproximationError:
        """Error over a dense uniform sweep of the approximation domain."""
        xs = np.linspace(self.table.x_min, self.table.x_max, n_points)
        return self.error_on(xs)


def taylor_approximation(
    function: "str | NonlinearFunction",
    x: np.ndarray,
    order: int = 3,
    center: float = 0.0,
) -> np.ndarray:
    """Taylor-series baseline used in the approximation ablation.

    The paper argues CPWL beats Taylor/Chebyshev because those require
    extra computational circuitry (powers of ``x``); this helper lets the
    ablation bench also compare *accuracy* at matched cost.  Derivatives
    are estimated numerically so the helper works for any registered
    function.
    """
    fn = get_function(function) if isinstance(function, str) else function
    x = np.asarray(x, dtype=np.float64)
    h = 1e-4
    # Numerical derivatives at the expansion center via central differences
    # on a small stencil (sufficient for smooth activation functions).
    derivs = [float(fn(np.array([center]))[0])]
    stencil = np.arange(-order, order + 1)
    samples = fn(center + stencil * h)
    for k in range(1, order + 1):
        coeffs = _central_difference_coefficients(k, order)
        derivs.append(float(np.dot(coeffs, samples) / h**k))
    result = np.zeros_like(x)
    term = np.ones_like(x)
    factorial = 1.0
    for k, d in enumerate(derivs):
        if k > 0:
            term = term * (x - center)
            factorial *= k
        result = result + d * term / factorial
    return result


def chebyshev_approximation(
    function: "str | NonlinearFunction",
    x: np.ndarray,
    degree: int = 7,
    domain: Optional[tuple[float, float]] = None,
) -> np.ndarray:
    """Chebyshev-fit baseline used in the approximation ablation."""
    fn = get_function(function) if isinstance(function, str) else function
    lo, hi = domain if domain is not None else fn.domain
    nodes = np.polynomial.chebyshev.chebpts2(max(degree + 1, 2))
    xs = 0.5 * (nodes + 1.0) * (hi - lo) + lo
    coeffs = np.polynomial.chebyshev.chebfit(
        2.0 * (xs - lo) / (hi - lo) - 1.0, fn(xs), degree
    )
    x = np.asarray(x, dtype=np.float64)
    t = np.clip(2.0 * (x - lo) / (hi - lo) - 1.0, -1.0, 1.0)
    return np.polynomial.chebyshev.chebval(t, coeffs)


def _central_difference_coefficients(derivative: int, order: int) -> np.ndarray:
    """Finite-difference weights on the stencil ``-order .. order``.

    Solves the Vandermonde moment system so the stencil reproduces the
    ``derivative``-th derivative exactly for polynomials up to the stencil
    size.
    """
    stencil = np.arange(-order, order + 1, dtype=np.float64)
    size = stencil.size
    moments = np.vander(stencil, size, increasing=True).T
    rhs = np.zeros(size)
    rhs[derivative] = float(math.factorial(derivative))
    return np.linalg.solve(moments, rhs)
