"""Model zoo: small trainable stand-ins for the paper's three families.

Each module pairs a *trainable* small model (used by the Table III
accuracy experiment) with the *workload descriptor* of the full-size
published network (used by the performance experiments — the descriptor
encodes exact layer shapes, hence exact op counts, without weights).
"""

from repro.nn.models.resnet import BottleneckBlock, ResidualBlock, SmallResNet
from repro.nn.models.bert import TinyBERT
from repro.nn.models.gcn import GCN

__all__ = ["SmallResNet", "ResidualBlock", "BottleneckBlock", "TinyBERT", "GCN"]
