"""FPGA device descriptions.

The paper targets the Xilinx Virtex-7 XC7VX485T (Section V-A).  The
device limits let the design-space sweeps flag configurations that
cannot actually fit — notably, the paper's own 16×16 totals (Table II)
exceed the XC7VX485T LUT and DSP capacity, an observation EXPERIMENTS.md
records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.resources import ArrayResources


@dataclass(frozen=True)
class FPGADevice:
    """Capacity of one FPGA part."""

    name: str
    lut: int
    ff: int
    bram_36k: int
    dsp: int

    def fits(self, resources: ArrayResources) -> bool:
        """Whether a design's resource vector fits the part."""
        return (
            resources.lut <= self.lut
            and resources.ff <= self.ff
            and resources.bram <= self.bram_36k
            and resources.dsp <= self.dsp
        )

    def utilization(self, resources: ArrayResources) -> dict:
        """Fractional utilization per resource class."""
        return {
            "lut": resources.lut / self.lut,
            "ff": resources.ff / self.ff,
            "bram": resources.bram / self.bram_36k,
            "dsp": resources.dsp / self.dsp,
        }


#: The paper's target part (Virtex-7 datasheet DS180).
VIRTEX7_XC7VX485T = FPGADevice(
    name="Virtex-7 XC7VX485T",
    lut=303_600,
    ff=607_200,
    bram_36k=1_030,
    dsp=2_800,
)

#: A larger Virtex UltraScale+ part (used by FTRANS [19]) for context.
VIRTEX_ULTRASCALE_VU9P = FPGADevice(
    name="Virtex UltraScale+ VU9P",
    lut=1_182_240,
    ff=2_364_480,
    bram_36k=2_160,
    dsp=6_840,
)
