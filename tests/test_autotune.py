"""Autotuning subsystem: traces, replay determinism, search, the front.

The two load-bearing contracts are property-based:

* **lossless persistence** — any :class:`TrafficTrace` survives a
  save→load round trip on a JSON :class:`~repro.store.FileStore`
  fabric unchanged (hypothesis over request contents);
* **bit-identical replay** — the same trace under the same
  :class:`TuningConfig` and the same seeded
  :class:`~repro.serving.faults.FaultPlan` produces reports with
  equal :func:`report_fingerprint` digests (hypothesis over fault
  seeds).

Around those: recorder capture (including ``request_source`` traffic),
synthesis shapes, config-space operators, search determinism and its
independence from ``n_workers``, front dominance/resume/persistence,
the ``cost_aware`` occupancy-penalty knob (pinned no-op at 0.0, load
spreading above it), and the report's machine-readable
``objective_section``.
"""

import json
import multiprocessing
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autotune import (
    ConfigSpace,
    EndpointProfile,
    EndpointSpec,
    EvaluationFailedError,
    FrontEntry,
    Objective,
    TracedRequest,
    TraceRecorder,
    TrafficTrace,
    TuningConfig,
    TuningFront,
    WorkloadCostSpec,
    default_space,
    evaluate,
    evolutionary_search,
    load_front,
    load_trace,
    objective_from_report,
    pool_cost,
    random_search,
    replay_trace,
    report_fingerprint,
    save_front,
    save_trace,
    scalar_score,
    shard_cost,
    synthesize_trace,
)
from repro.nn.models import TinyBERT
from repro.serving import (
    ClusterSpec,
    CostAwarePlacement,
    GenerationAdapter,
    InferenceEngine,
)
from repro.autotune.search import _chunk_entry
from repro.serving.faults import FaultPlan
from repro.store import FileStore, InProcessLRU, get_store, set_store
from repro.systolic import SystolicConfig

MODEL_KWARGS = dict(
    vocab=16, seq_len=8, dim=8, heads=2, ff_dim=16, n_layers=1,
    causal=True, seed=0,
)
COST = WorkloadCostSpec(seq_len=8, dim=8, heads=2, ff_dim=16, n_layers=1)
ENDPOINTS = (
    EndpointSpec(name="bert", factory=TinyBERT, kwargs=MODEL_KWARGS, cost=COST),
)
GEN_ENDPOINTS = (
    EndpointSpec(
        name="gen", factory=TinyBERT, kwargs=MODEL_KWARGS, generation=True
    ),
)

BIG = SystolicConfig(pe_rows=8, pe_cols=8, macs_per_pe=16, clock_hz=250e6)
MID = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4, clock_hz=250e6)
SLOW = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4, clock_hz=100e6)
TINY = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=2, clock_hz=100e6)
SKEWED_POOL = (BIG, MID, SLOW, TINY)
CATALOG = (BIG, MID, TINY)

SMALL_TRACE = synthesize_trace(
    "small",
    (EndpointProfile("bert", seq_len=8),),
    n_requests=8,
    horizon=1e-4,
    seed=7,
    shape="bursty",
    deadline_slack=1e-3,
)
SMALL_CONFIG = TuningConfig(
    pool=(MID, SLOW), placement="least_loaded",
    max_batch_size=4, flush_timeout=1e-4,
)


def _broken_factory(**kwargs):
    raise RuntimeError("this endpoint cannot be built")


traced_requests = st.builds(
    TracedRequest,
    model=st.sampled_from(["bert", "gen"]),
    inputs=st.lists(st.integers(0, 15), min_size=1, max_size=8).map(tuple),
    dtype=st.just("int64"),
    arrival=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    tenant=st.sampled_from(["default", "team-a"]),
    priority=st.none() | st.integers(-3, 3),
    deadline=st.none() | st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    max_new_tokens=st.none() | st.integers(1, 8),
    stop_token=st.none() | st.integers(0, 15),
)


class TestTraceRoundTrip:
    @given(st.lists(traced_requests, max_size=6), st.none() | st.integers(0, 99))
    @settings(max_examples=25, deadline=None)
    def test_save_load_lossless_on_filestore(self, requests, seed):
        trace = TrafficTrace(name="prop", requests=tuple(requests), seed=seed)
        with tempfile.TemporaryDirectory() as root:
            store = FileStore(root, serializer="json")
            save_trace(trace, store=store)
            loaded = load_trace("prop", store=store)
        assert loaded == trace

    @given(traced_requests)
    @settings(max_examples=25, deadline=None)
    def test_request_survives_json(self, request):
        data = json.loads(json.dumps(request.to_dict()))
        assert TracedRequest.from_dict(data) == request

    def test_requests_sorted_by_arrival(self):
        late = TracedRequest("bert", (1,), "int64", arrival=2.0)
        early = TracedRequest("bert", (2,), "int64", arrival=1.0)
        trace = TrafficTrace(name="t", requests=(late, early))
        assert [r.arrival for r in trace.requests] == [1.0, 2.0]

    def test_trace_properties(self):
        trace = TrafficTrace(
            name="t",
            requests=(
                TracedRequest("b", (1,), "int64", 0.5, tenant="x"),
                TracedRequest("a", (2,), "int64", 1.5, max_new_tokens=3),
            ),
        )
        assert trace.n_requests == 2
        assert trace.models == ["a", "b"]
        assert trace.tenants == ["default", "x"]
        assert trace.horizon == 1.5
        assert not trace.requests[0].is_generation
        assert trace.requests[1].is_generation
        np.testing.assert_array_equal(
            trace.requests[0].inputs_array(), np.array([1], dtype=np.int64)
        )

    def test_version_mismatch_rejected(self):
        data = TrafficTrace(name="t", requests=()).to_dict()
        data["version"] = 999
        with pytest.raises(ValueError, match="version 999"):
            TrafficTrace.from_dict(data)

    def test_load_missing_trace_is_none(self):
        with tempfile.TemporaryDirectory() as root:
            assert load_trace("absent", store=FileStore(root)) is None

    def test_save_load_on_process_global_store(self):
        trace = TrafficTrace(
            name="global", requests=(TracedRequest("b", (1,), "int64", 0.0),)
        )
        previous = get_store()
        try:
            set_store(InProcessLRU())
            save_trace(trace)
            assert load_trace("global") == trace
            assert load_trace("absent") is None
        finally:
            set_store(previous)


class TestRecorder:
    def _engine(self, recorder):
        dispatcher = ClusterSpec.homogeneous(MID, 2).build()
        engine = InferenceEngine(
            dispatcher, max_batch_size=4, flush_timeout=1e-4, recorder=recorder
        )
        model = TinyBERT(**MODEL_KWARGS)
        engine.register("bert", model)
        engine.register("gen", generation_adapter=GenerationAdapter(model))
        return engine

    def test_captures_submissions(self):
        recorder = TraceRecorder(name="live")
        engine = self._engine(recorder)
        rng = np.random.default_rng(0)
        engine.submit("bert", rng.integers(0, 16, 8), 0.0, tenant="default")
        engine.submit(
            "bert", rng.integers(0, 16, 8), 1e-5, priority=2, deadline=1e-3
        )
        engine.submit_generation(
            "gen", rng.integers(0, 16, 4), 4, 2e-5, stop_token=3
        )
        engine.run()
        assert len(recorder) == 3
        trace = recorder.trace()
        assert trace.name == "live"
        assert [r.model for r in trace.requests] == ["bert", "bert", "gen"]
        assert trace.requests[1].priority == 2
        assert trace.requests[1].deadline == 1e-3
        gen = trace.requests[2]
        assert gen.is_generation
        assert gen.max_new_tokens == 4 and gen.stop_token == 3

    def test_captures_request_source_traffic(self):
        recorder = TraceRecorder()
        engine = self._engine(recorder)
        rows = [
            {"model": "bert", "inputs": np.full(8, i, dtype=np.int64),
             "arrival": i * 1e-5}
            for i in range(3)
        ]
        report = engine.run(request_source=iter(rows))
        assert report.n_requests == 3
        assert len(recorder) == 3
        assert recorder.trace("streamed").name == "streamed"

    def test_clear_resets_log(self):
        recorder = TraceRecorder()
        engine = self._engine(recorder)
        engine.submit("bert", np.zeros(8, dtype=np.int64), 0.0)
        assert len(recorder) == 1
        recorder.clear()
        assert len(recorder) == 0

    def test_captured_trace_replays(self):
        recorder = TraceRecorder()
        engine = self._engine(recorder)
        rng = np.random.default_rng(1)
        for i in range(4):
            engine.submit("bert", rng.integers(0, 16, 8), i * 1e-5)
        engine.run()
        report = replay_trace(recorder.trace(), SMALL_CONFIG, ENDPOINTS)
        assert report.n_requests == 4


class TestSynthesis:
    def test_same_seed_bit_identical(self):
        kwargs = dict(
            endpoints=(EndpointProfile("bert", seq_len=8),),
            n_requests=12, horizon=1e-3, seed=5, shape="bursty",
        )
        assert synthesize_trace("a", **kwargs) == synthesize_trace("a", **kwargs)

    @pytest.mark.parametrize("shape", ["bursty", "skewed", "conversational"])
    def test_shapes_produce_valid_traces(self, shape):
        trace = synthesize_trace(
            "t",
            (EndpointProfile("hot", seq_len=8, weight=4.0),
             EndpointProfile("cold", seq_len=8, weight=1.0)),
            n_requests=40, horizon=1e-3, seed=2, shape=shape,
            tenants=("a", "b"), deadline_slack=5e-4,
        )
        assert trace.n_requests == 40
        arrivals = [r.arrival for r in trace.requests]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= a <= 1e-3 for a in arrivals)
        assert all(r.deadline == pytest.approx(r.arrival + 5e-4)
                   for r in trace.requests)
        assert set(trace.tenants) <= {"a", "b"}

    def test_skewed_shape_concentrates_on_hot_endpoint(self):
        trace = synthesize_trace(
            "t",
            (EndpointProfile("hot", seq_len=8, weight=4.0),
             EndpointProfile("cold", seq_len=8, weight=1.0)),
            n_requests=60, horizon=1e-3, seed=0, shape="skewed",
        )
        hot = sum(1 for r in trace.requests if r.model == "hot")
        assert hot >= 48  # weight 4 squared: 16/17 of the mass

    def test_conversational_shape_shares_prefixes(self):
        trace = synthesize_trace(
            "t", (EndpointProfile("bert", seq_len=8),),
            n_requests=40, horizon=1e-3, seed=1, shape="conversational",
        )
        prefixes = {r.inputs[:4] for r in trace.requests}
        assert len(prefixes) < 40  # sessions re-use the first half

    def test_generation_endpoints_emit_generation_traffic(self):
        trace = synthesize_trace(
            "t", (EndpointProfile("gen", seq_len=8, max_new_tokens=4,
                                  stop_token=2),),
            n_requests=5, horizon=1e-3, seed=0,
        )
        assert all(r.is_generation and r.stop_token == 2
                   for r in trace.requests)

    def test_rejects_bad_arguments(self):
        profile = EndpointProfile("bert", seq_len=8)
        with pytest.raises(ValueError, match="at least one endpoint"):
            synthesize_trace("t", (), 4, 1e-3, 0)
        with pytest.raises(ValueError, match="unknown workload shape"):
            synthesize_trace("t", (profile,), 4, 1e-3, 0, shape="steady")


class TestReplayDeterminism:
    @given(st.integers(0, 10_000))
    @settings(max_examples=5, deadline=None)
    def test_replay_twice_bit_identical_under_faults(self, fault_seed):
        faults = FaultPlan.from_seed(
            fault_seed, n_shards=SMALL_CONFIG.n_shards,
            horizon=SMALL_TRACE.horizon + 1e-3,
        )
        first = replay_trace(SMALL_TRACE, SMALL_CONFIG, ENDPOINTS, faults=faults)
        second = replay_trace(SMALL_TRACE, SMALL_CONFIG, ENDPOINTS, faults=faults)
        assert report_fingerprint(first) == report_fingerprint(second)

    def test_replay_completes_the_trace(self):
        report = replay_trace(SMALL_TRACE, SMALL_CONFIG, ENDPOINTS)
        assert report.n_requests == SMALL_TRACE.n_requests
        assert report.shed_count == 0 and report.failed_count == 0

    def test_generation_trace_replays_with_radix_cache(self):
        trace = synthesize_trace(
            "gen", (EndpointProfile("gen", seq_len=4, max_new_tokens=3),),
            n_requests=4, horizon=1e-4, seed=0, shape="conversational",
        )
        config = TuningConfig(
            pool=(MID,), max_batch_size=2, flush_timeout=1e-4,
            radix_budget_bytes=1 << 16,
        )
        report = replay_trace(trace, config, ENDPOINTS + GEN_ENDPOINTS)
        assert report.n_requests == 4
        assert report.tokens_per_second() > 0
        assert (report_fingerprint(report)
                == report_fingerprint(
                    replay_trace(trace, config, ENDPOINTS + GEN_ENDPOINTS)))

    def test_crash_heavy_faults_stay_deterministic(self):
        faults = FaultPlan.from_seed(
            5, n_shards=2, horizon=SMALL_TRACE.horizon + 2e-5,
            crash_rate=1.0, slowdown_rate=1.0,
        )
        first = replay_trace(SMALL_TRACE, SMALL_CONFIG, ENDPOINTS, faults=faults)
        second = replay_trace(SMALL_TRACE, SMALL_CONFIG, ENDPOINTS, faults=faults)
        assert len(first.fault_events) > 0
        assert report_fingerprint(first) == report_fingerprint(second)

    def test_prefix_cache_replay_path(self):
        endpoints = (
            EndpointSpec(name="bert", factory=TinyBERT, kwargs=MODEL_KWARGS,
                         prefix_len=4, cost=COST),
        )
        trace = synthesize_trace(
            "conv", (EndpointProfile("bert", seq_len=8),),
            n_requests=6, horizon=1e-4, seed=2, shape="conversational",
        )
        config = TuningConfig(
            pool=(MID,), max_batch_size=2, flush_timeout=1e-4,
            prefix_budget_bytes=1 << 16,
        )
        report = replay_trace(trace, config, endpoints)
        assert report.n_requests == 6
        assert (report_fingerprint(report)
                == report_fingerprint(replay_trace(trace, config, endpoints)))

    def test_different_configs_score_independently(self):
        small = evaluate(SMALL_TRACE, TuningConfig(pool=(TINY,)), ENDPOINTS)
        large = evaluate(SMALL_TRACE, TuningConfig(pool=SKEWED_POOL), ENDPOINTS)
        assert large.cost > small.cost
        assert small.n_requests == large.n_requests == SMALL_TRACE.n_requests


class TestOccupancyPenalty:
    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError, match="occupancy_penalty"):
            CostAwarePlacement(occupancy_penalty=-0.5)

    def _run(self, placement):
        dispatcher = ClusterSpec.heterogeneous(SKEWED_POOL).build()
        engine = InferenceEngine(
            dispatcher, max_batch_size=1, flush_timeout=1e-5,
            placement=placement,
        )
        engine.register(
            "bert", TinyBERT(**MODEL_KWARGS), cost_model=COST.build()
        )
        rng = np.random.default_rng(3)
        for i in range(24):
            engine.submit("bert", rng.integers(0, 16, 8), i * 1e-7)
        return engine.run()

    def test_zero_penalty_pinned_to_default_cost_aware(self):
        # The knob's off position is bit-identical to the registry
        # default: eta + 0.0 * backlog == eta exactly in IEEE.
        baseline = self._run("cost_aware")
        pinned = self._run(CostAwarePlacement(occupancy_penalty=0.0))
        assert report_fingerprint(pinned) == report_fingerprint(baseline)
        assert CostAwarePlacement().occupancy_penalty == 0.0

    def test_penalty_spreads_burst_load(self):
        trace = synthesize_trace(
            "spread", (EndpointProfile("bert", seq_len=8),),
            n_requests=32, horizon=1e-5, seed=3, shape="bursty",
            deadline_slack=1e-3,
        )

        def peak_fraction(penalty):
            config = TuningConfig(
                pool=SKEWED_POOL, placement="cost_aware",
                occupancy_penalty=penalty, max_batch_size=1,
                flush_timeout=1e-5,
            )
            report = replay_trace(trace, config, ENDPOINTS)
            return max(report.shard_busy.values()) / sum(
                report.shard_busy.values()
            ), report_fingerprint(report)

        greedy_peak, greedy_fp = peak_fraction(0.0)
        spread_peak, spread_fp = peak_fraction(1.0)
        assert spread_fp != greedy_fp
        assert spread_peak < greedy_peak

    def test_penalty_named_in_policy_and_config(self):
        assert "occ=1.5" in CostAwarePlacement(occupancy_penalty=1.5).name
        config = TuningConfig(
            pool=(MID,), placement="cost_aware", occupancy_penalty=1.5
        )
        assert "occ=1.5" in config.describe()


class TestTuningConfig:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_sampled_configs_round_trip_json(self, seed):
        space = default_space(CATALOG)
        config = space.sample(np.random.default_rng(seed))
        data = json.loads(json.dumps(config.to_dict()))
        assert TuningConfig.from_dict(data) == config

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_sample_and_mutate_stay_in_space(self, seed):
        rng = np.random.default_rng(seed)
        space = default_space(CATALOG, max_shards=3)
        config = space.sample(rng)
        for candidate in (config, space.mutate(config, rng),
                          space.crossover(config, space.sample(rng), rng)):
            assert 1 <= candidate.n_shards <= 3
            assert all(shard in CATALOG for shard in candidate.pool)
            assert candidate.placement in space.placements
            assert candidate.max_batch_size in space.batch_sizes
            assert candidate.flush_timeout in space.flush_timeouts
            if candidate.placement != "cost_aware":
                assert candidate.occupancy_penalty == 0.0

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="at least one shard"):
            TuningConfig(pool=())
        with pytest.raises(ValueError, match="unknown placement"):
            TuningConfig(pool=(MID,), placement="psychic")
        with pytest.raises(ValueError, match="occupancy_penalty"):
            TuningConfig(pool=(MID,), occupancy_penalty=-1.0)
        with pytest.raises(ValueError, match="max_batch_size"):
            TuningConfig(pool=(MID,), max_batch_size=0)

    def test_space_validation_errors(self):
        with pytest.raises(ValueError, match="catalog"):
            ConfigSpace(catalog=())
        with pytest.raises(ValueError, match="max_shards"):
            ConfigSpace(catalog=CATALOG, max_shards=0)
        with pytest.raises(ValueError, match="unknown placement"):
            ConfigSpace(catalog=CATALOG, placements=("psychic",))

    def test_describe_lists_pool_and_knobs(self):
        text = TuningConfig(pool=(BIG, TINY), max_batch_size=4).describe()
        assert "8x8x16@250MHz" in text and "4x4x2@100MHz" in text
        assert "placement=round_robin" in text and "batch<= 4" in text


class TestObjective:
    def test_objective_section_is_machine_readable(self):
        report = replay_trace(SMALL_TRACE, SMALL_CONFIG, ENDPOINTS)
        section = report.objective_section()
        assert section["n_requests"] == report.n_requests
        assert section["shed"] == report.shed_count
        assert section["failed"] == report.failed_count
        assert section["p99"] == report.p99
        assert section["total_cycles"] == report.total_cycles
        assert 0.0 <= section["slo_attainment"] <= 1.0
        assert section["shed_rate"] == 0.0
        assert json.dumps(section)  # JSON-safe throughout

    def test_objective_section_without_deadlines(self):
        trace = synthesize_trace(
            "nodl", (EndpointProfile("bert", seq_len=8),),
            n_requests=3, horizon=1e-4, seed=0,
        )
        report = replay_trace(trace, SMALL_CONFIG, ENDPOINTS)
        assert report.objective_section()["slo_attainment"] is None
        # None reads as "no SLO defined", scored as perfect attainment.
        assert objective_from_report(report, SMALL_CONFIG.pool).slo_attainment == 1.0

    def test_pool_cost_is_additive_and_monotone(self):
        assert pool_cost((MID, TINY)) == pytest.approx(
            shard_cost(MID) + shard_cost(TINY)
        )
        assert shard_cost(BIG) > shard_cost(TINY) > 0

    def test_objective_round_trips(self):
        objective = Objective(
            cost=12.5, slo_attainment=0.75, p99=3e-4, tokens_per_sec=100.0,
            n_requests=9, shed=2, failed=1,
        )
        assert Objective.from_dict(
            json.loads(json.dumps(objective.to_dict()))
        ) == objective
        assert objective.as_tuple() == (12.5, 0.75, 3e-4, 100.0)

    def test_scalar_score_orders_honestly(self):
        served = Objective(10.0, 1.0, 1e-4, 0.0, n_requests=10)
        shedding = Objective(10.0, 1.0, 1e-4, 0.0, n_requests=5, shed=5)
        all_shed = Objective(10.0, 1.0, 0.0, 0.0, n_requests=0, shed=10)
        assert scalar_score(served) < scalar_score(shedding)
        assert scalar_score(all_shed) == float("inf")
        # Cheaper-but-equal wins; slower tail loses.
        assert scalar_score(Objective(5.0, 1.0, 1e-4, 0.0, n_requests=10)) \
            < scalar_score(served)
        assert scalar_score(Objective(10.0, 1.0, 2e-4, 0.0, n_requests=10)) \
            > scalar_score(served)


class TestFront:
    def _entry(self, cost, slo, p99, tok, batch=8):
        return FrontEntry(
            config=TuningConfig(pool=(MID,), max_batch_size=batch),
            objective=Objective(cost, slo, p99, tok, n_requests=1),
        )

    def test_dominated_entries_fall_off(self):
        good = self._entry(1.0, 1.0, 1e-4, 10.0, batch=2)
        dominated = self._entry(2.0, 0.5, 2e-4, 5.0, batch=4)
        incomparable = self._entry(0.5, 0.1, 5e-5, 1.0, batch=8)
        front = TuningFront.from_entries(
            "t", (good, dominated, incomparable)
        )
        assert front.n_entries == 2
        assert dominated not in front.entries
        assert front.best() == good

    def test_duplicate_configs_deduped_on_merge(self):
        entry = self._entry(1.0, 1.0, 1e-4, 10.0)
        front = TuningFront.from_entries("t", (entry,), evaluated=1)
        merged = front.merge((entry,), evaluated=1)
        assert merged.n_entries == 1
        assert merged.evaluated == 2

    def test_best_on_empty_front_raises(self):
        with pytest.raises(ValueError, match="empty"):
            TuningFront.from_entries("t", ()).best()

    def test_save_load_round_trip_on_filestore(self):
        front = TuningFront.from_entries(
            "t", (self._entry(1.0, 0.9, 1e-4, 3.0),), evaluated=4
        )
        with tempfile.TemporaryDirectory() as root:
            store = FileStore(root, serializer="json")
            save_front(front, store=store)
            assert load_front("t", store=store) == front
            save_front(front, store=store, name="alias")
            assert load_front("alias", store=store) == front
            assert load_front("absent", store=store) is None

    def test_save_load_on_process_global_store(self):
        front = TuningFront.from_entries(
            "glob", (self._entry(1.0, 0.9, 1e-4, 3.0),), evaluated=1
        )
        previous = get_store()
        try:
            set_store(InProcessLRU())
            save_front(front)
            assert load_front("glob") == front
            assert load_front("absent") is None
        finally:
            set_store(previous)

    def test_version_mismatch_rejected(self):
        data = TuningFront.from_entries("t", ()).to_dict()
        data["version"] = 999
        with pytest.raises(ValueError, match="version 999"):
            TuningFront.from_dict(data)

    def test_describe_reports_survivors(self):
        front = TuningFront.from_entries(
            "demo", (self._entry(1.0, 0.9, 1e-4, 3.0),), evaluated=7
        )
        text = front.describe()
        assert "1 non-dominated of 7 evaluated" in text
        assert "placement=round_robin" in text


class TestSearch:
    SPACE = ConfigSpace(
        catalog=(MID, TINY), max_shards=2,
        batch_sizes=(2, 4), flush_timeouts=(1e-4,),
    )

    def test_random_search_is_seed_deterministic(self):
        runs = [
            random_search(SMALL_TRACE, self.SPACE, ENDPOINTS,
                          n_candidates=3, seed=11)
            for _ in range(2)
        ]
        assert runs[0].to_dict() == runs[1].to_dict()
        assert runs[0].evaluated == 3
        assert runs[0].n_entries >= 1

    def test_result_is_independent_of_n_workers(self):
        serial = random_search(SMALL_TRACE, self.SPACE, ENDPOINTS,
                               n_candidates=4, seed=5, n_workers=1)
        fanned = random_search(SMALL_TRACE, self.SPACE, ENDPOINTS,
                               n_candidates=4, seed=5, n_workers=2)
        assert serial.to_dict() == fanned.to_dict()

    def test_resume_accumulates_into_the_front(self):
        first = random_search(SMALL_TRACE, self.SPACE, ENDPOINTS,
                              n_candidates=2, seed=1)
        resumed = random_search(SMALL_TRACE, self.SPACE, ENDPOINTS,
                                n_candidates=2, seed=2, front=first)
        assert resumed.evaluated == 4
        # Everything on the resumed front is at least as good as the
        # first run's best (dominance never regresses on resume).
        assert resumed.best().score <= first.best().score

    def test_evolutionary_search_runs_and_merges(self):
        front = evolutionary_search(
            SMALL_TRACE, self.SPACE, ENDPOINTS,
            generations=2, population=3, seed=4,
        )
        assert front.evaluated == 6
        assert front.n_entries >= 1
        again = evolutionary_search(
            SMALL_TRACE, self.SPACE, ENDPOINTS,
            generations=2, population=3, seed=4,
        )
        assert front.to_dict() == again.to_dict()

    def test_evolutionary_resume_seeds_population(self):
        first = random_search(SMALL_TRACE, self.SPACE, ENDPOINTS,
                              n_candidates=2, seed=9)
        resumed = evolutionary_search(
            SMALL_TRACE, self.SPACE, ENDPOINTS,
            generations=1, population=2, seed=9, front=first,
        )
        assert resumed.evaluated == 4
        assert resumed.best().score <= first.best().score

    def test_argument_validation(self):
        with pytest.raises(ValueError, match="n_candidates"):
            random_search(SMALL_TRACE, self.SPACE, ENDPOINTS,
                          n_candidates=0, seed=0)
        with pytest.raises(ValueError, match="generations"):
            evolutionary_search(SMALL_TRACE, self.SPACE, ENDPOINTS,
                                generations=0, population=2, seed=0)
        with pytest.raises(ValueError, match="population"):
            evolutionary_search(SMALL_TRACE, self.SPACE, ENDPOINTS,
                                generations=1, population=1, seed=0)

    def test_chunk_entry_delivers_scores_over_the_pipe(self):
        parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
        _chunk_entry((SMALL_TRACE, [SMALL_CONFIG], ENDPOINTS, None), child_conn)
        objectives = parent_conn.recv()
        parent_conn.close()
        assert len(objectives) == 1
        assert objectives[0] == evaluate(SMALL_TRACE, SMALL_CONFIG, ENDPOINTS)

    def test_worker_death_raises_evaluation_failed(self):
        broken = (
            EndpointSpec(name="bert", factory=_broken_factory, kwargs={}),
        )
        with pytest.raises(EvaluationFailedError, match="worker"):
            random_search(SMALL_TRACE, self.SPACE, broken,
                          n_candidates=2, seed=0, n_workers=2)
