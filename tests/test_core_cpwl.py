"""Unit tests for the CPWL core: functions, tables, approximator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CPWLApproximator,
    FUNCTION_LIBRARY,
    SegmentTable,
    approximation_error,
    build_segment_table,
    get_function,
)
from repro.core.cpwl import chebyshev_approximation, taylor_approximation
from repro.core.segment_table import is_power_of_two
from repro.fixedpoint import INT16, quantize
from repro.fixedpoint.qformat import INT32


class TestFunctionLibrary:
    def test_expected_functions_registered(self):
        for name in ("gelu", "relu", "sigmoid", "tanh", "exp", "reciprocal", "rsqrt"):
            assert name in FUNCTION_LIBRARY

    def test_unknown_function_raises_with_known_list(self):
        with pytest.raises(KeyError, match="gelu"):
            get_function("not-a-function")

    def test_gelu_known_values(self):
        gelu = get_function("gelu")
        assert gelu(np.array([0.0]))[0] == pytest.approx(0.0)
        assert gelu(np.array([10.0]))[0] == pytest.approx(10.0, abs=1e-6)
        assert gelu(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-6)

    def test_sigmoid_limits(self):
        sig = get_function("sigmoid")
        out = sig(np.array([-50.0, 0.0, 50.0]))
        assert np.allclose(out, [0.0, 0.5, 1.0], atol=1e-9)

    def test_tanh_odd(self):
        tanh = get_function("tanh")
        xs = np.linspace(-4, 4, 21)
        assert np.allclose(tanh(xs), -tanh(-xs))

    def test_reciprocal_domain_positive(self):
        rec = get_function("reciprocal")
        assert rec.domain[0] > 0


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("value", [0.25, 0.5, 1.0, 2.0, 0.0625])
    def test_powers(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0.1, 0.75, 3.0, 0.3, -0.5, 0.0])
    def test_non_powers(self, value):
        assert not is_power_of_two(value)


class TestSegmentTable:
    def test_segment_count(self):
        table = build_segment_table("gelu", 0.25)
        assert table.n_segments == 64  # domain (-8, 8) / 0.25

    def test_chord_endpoints_exact(self):
        table = build_segment_table("gelu", 0.5)
        gelu = get_function("gelu")
        starts = table.x_min + table.granularity * np.arange(table.n_segments)
        approx = table.evaluate(starts)
        assert np.allclose(approx, gelu(starts), atol=1e-9)

    def test_capping_low(self):
        table = build_segment_table("gelu", 0.25)
        segments = table.segment_of(np.array([-100.0]))
        assert segments[0] == 0

    def test_capping_high(self):
        table = build_segment_table("gelu", 0.25)
        segments = table.segment_of(np.array([100.0]))
        assert segments[0] == table.n_segments - 1

    def test_capped_extension_linear(self):
        # Outside the domain the boundary segment's line extends.
        table = build_segment_table("relu", 0.5)
        assert table.evaluate(np.array([20.0]))[0] == pytest.approx(20.0)
        assert table.evaluate(np.array([-20.0]))[0] == pytest.approx(0.0)

    def test_shift_path_flag(self):
        assert build_segment_table("gelu", 0.25).shift_path
        assert not build_segment_table("gelu", 0.1).shift_path

    def test_storage_bytes(self):
        table = build_segment_table("gelu", 0.25)
        assert table.storage_bytes == 64 * 4

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            build_segment_table("gelu", 0.0)
        with pytest.raises(ValueError):
            build_segment_table("gelu", -1.0)

    def test_invalid_domain(self):
        with pytest.raises(ValueError):
            build_segment_table("gelu", 0.25, domain=(1.0, 1.0))

    def test_quantized_lookup_shapes(self):
        table = build_segment_table("gelu", 0.25).quantized(INT16)
        seg = np.array([[0, 1], [2, 3]])
        k, b = table.lookup_raw(seg)
        assert k.shape == seg.shape
        assert b.shape == seg.shape

    def test_error_decreases_with_granularity(self):
        xs = np.linspace(-6, 6, 2000)
        gelu = get_function("gelu")
        errors = []
        for g in (1.0, 0.5, 0.25):
            table = build_segment_table("gelu", g)
            errors.append(np.max(np.abs(table.evaluate(xs) - gelu(xs))))
        assert errors[0] > errors[1] > errors[2]

    @given(st.floats(min_value=-7.9, max_value=7.9, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_segment_contains_input(self, x):
        table = build_segment_table("gelu", 0.25)
        seg = int(table.segment_of(np.array([x]))[0])
        lo = table.x_min + seg * table.granularity
        assert lo - 1e-9 <= x < lo + table.granularity + 1e-9


class TestCPWLApproximator:
    def test_float_mode_matches_table(self):
        approx = CPWLApproximator("gelu", 0.25, fmt=None)
        xs = np.linspace(-4, 4, 100)
        assert np.allclose(approx(xs), approx.table.evaluate(xs))

    def test_fixed_mode_close_to_reference(self):
        approx = CPWLApproximator("gelu", 0.25)
        err = approx.error_profile()
        assert err.max_abs < 0.05

    def test_error_monotone_in_granularity(self):
        errs = [
            CPWLApproximator("tanh", g, fmt=None).error_profile().max_abs
            for g in (0.1, 0.5, 1.0)
        ]
        assert errs[0] < errs[1] < errs[2]

    def test_evaluate_raw_requires_fmt(self):
        approx = CPWLApproximator("gelu", 0.25, fmt=None)
        with pytest.raises(RuntimeError):
            approx.evaluate_raw(np.array([0]))

    def test_raw_path_matches_float_call(self):
        approx = CPWLApproximator("gelu", 0.25)
        xs = np.linspace(-3, 3, 50)
        from repro.fixedpoint import dequantize

        raw_out = dequantize(approx.evaluate_raw(quantize(xs, INT16)), INT16)
        assert np.allclose(raw_out, approx(xs))

    def test_relu_exact_on_aligned_grid(self):
        approx = CPWLApproximator("relu", 0.25)
        xs = np.linspace(-4, 4, 101)
        assert np.allclose(approx(xs), np.maximum(xs, 0), atol=INT16.scale)

    def test_wider_format_reduces_error(self):
        xs = np.linspace(-4, 4, 500)
        e16 = CPWLApproximator("gelu", 0.1, fmt=INT16).error_on(xs).rmse
        e32 = CPWLApproximator("gelu", 0.1, fmt=INT32).error_on(xs).rmse
        assert e32 <= e16


class TestApproximationBaselines:
    def test_error_stats_fields(self):
        err = approximation_error(np.array([1.0, 2.0]), np.array([1.1, 1.9]))
        assert err.max_abs == pytest.approx(0.1)
        assert err.mean_abs == pytest.approx(0.1)
        assert err.rmse == pytest.approx(0.1)

    def test_taylor_good_near_center(self):
        xs = np.linspace(-0.3, 0.3, 50)
        approx = taylor_approximation("tanh", xs, order=3)
        assert np.max(np.abs(approx - np.tanh(xs))) < 0.01

    def test_taylor_bad_far_from_center(self):
        xs = np.array([4.0])
        approx = taylor_approximation("tanh", xs, order=3)
        assert abs(approx[0] - np.tanh(4.0)) > 0.5

    def test_chebyshev_uniformly_decent(self):
        xs = np.linspace(-7.5, 7.5, 200)
        approx = chebyshev_approximation("tanh", xs, degree=15)
        assert np.max(np.abs(approx - np.tanh(xs))) < 0.1

    def test_cpwl_beats_matched_taylor_globally(self):
        # The paper's argument: at matched (low) compute cost, CPWL wins
        # over whole-domain polynomial expansion.
        xs = np.linspace(-6, 6, 400)
        cpwl = CPWLApproximator("gelu", 0.25, fmt=None)(xs)
        taylor = taylor_approximation("gelu", xs, order=3)
        gelu = get_function("gelu")(xs)
        assert np.max(np.abs(cpwl - gelu)) < np.max(np.abs(taylor - gelu))
