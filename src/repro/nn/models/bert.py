"""Transformer encoder (the paper's BERT family).

:class:`TinyBERT` is a two-layer post-norm encoder with learned token
and position embeddings, GELU feed-forwards, LayerNorms and softmax
attention — all four of Fig. 1(b)'s nonlinear op types — trainable in
seconds on the synthetic sequence tasks.  The full BERT-base layer
shapes live in :mod:`repro.nn.workload`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.executor import DecodeKV
from repro.nn.layers import Embedding, Linear, Module, TransformerEncoderLayer


class TinyBERT(Module):
    """Encoder-only classifier for integer token sequences ``(N, T)``.

    ``causal=True`` turns every attention layer causal (position ``i``
    attends to positions ``<= i`` only), which makes the whole encoder
    row-causal: hidden row ``i`` at every depth depends only on tokens
    ``<= i``.  That is the property KV-prefix reuse needs — a request
    sharing a cached prompt can skip the prefix rows of every GEMM and
    still produce bit-identical outputs via :meth:`infer_suffix`.  The
    default (bidirectional) model is unchanged.
    """

    def __init__(
        self,
        vocab: int = 32,
        seq_len: int = 16,
        dim: int = 32,
        heads: int = 4,
        ff_dim: int = 64,
        n_layers: int = 2,
        n_classes: int = 2,
        seed: int = 0,
        causal: bool = False,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.vocab = vocab
        self.seq_len = seq_len
        self.dim = dim
        self.heads = heads
        self.ff_dim = ff_dim
        self.n_layers = n_layers
        self.n_classes = n_classes
        self.causal = bool(causal)
        self.token_emb = Embedding(vocab, dim, rng)
        self.pos_emb = Tensor(
            rng.normal(0, 0.1, size=(seq_len, dim)), requires_grad=True
        )
        self.layers = [
            TransformerEncoderLayer(dim, heads, ff_dim, rng, causal=causal)
            for _ in range(n_layers)
        ]
        self.classifier = Linear(dim, n_classes, rng)

    def forward(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens)
        x = self.token_emb.forward_indices(tokens) + self.pos_emb
        for layer in self.layers:
            x = layer(x)
        pooled = x.mean(axis=1)
        return self.classifier(pooled)

    def infer(self, tokens: np.ndarray, backend, kv_tap=None) -> np.ndarray:
        """Batched inference; ``kv_tap`` captures per-layer prefix K/V.

        ``kv_tap`` (a :class:`repro.nn.executor.KVTap`) records each
        attention layer's merged key/value activations plus the final
        hidden prefix rows during a normal cold pass, at zero extra
        compute — the payload a :class:`~repro.serving.prefix_cache.PrefixCache`
        entry retains.
        """
        tokens = np.asarray(tokens)
        x = self.token_emb.infer_indices(tokens) + self.pos_emb.data
        for layer in self.layers:
            x = layer.infer(x, backend, kv_tap=kv_tap)
        if kv_tap is not None:
            kv_tap.capture_final(x)
        pooled = x.mean(axis=1)
        return self.classifier.infer(pooled, backend)

    def infer_suffix(self, tokens: np.ndarray, prefix, backend) -> np.ndarray:
        """Inference reusing a cached prompt: suffix rows only.

        ``tokens`` is the full ``(N, T)`` batch whose first
        ``prefix.prefix_len`` columns match the cached prompt;
        ``prefix`` is a captured :class:`~repro.nn.executor.KVTap` (or
        any object with ``prefix_len``, per-layer ``layers[i].k/.v``
        and ``final_hidden``).  Only the suffix rows flow through the
        encoder — each layer attends against its cached prefix K/V —
        and the cached final hidden rows complete the mean-pool, so the
        classifier sees exactly the cold path's pooled activations.
        Bit-identity with :meth:`infer` is property-tested.
        """
        if not self.causal:
            raise ValueError("prefix reuse requires causal=True")
        tokens = np.asarray(tokens)
        p = prefix.prefix_len
        if not 0 < p < tokens.shape[-1]:
            raise ValueError(
                f"prefix length {p} must be in (0, {tokens.shape[-1]})"
            )
        if len(prefix.layers) != len(self.layers) or prefix.final_hidden is None:
            raise ValueError("prefix payload does not match this model's depth")
        n = tokens.shape[0]
        x = self.token_emb.infer_indices(tokens[:, p:]) + self.pos_emb.data[p:]
        for layer, kv in zip(self.layers, prefix.layers):
            x = layer.infer_suffix(x, kv.k, kv.v, backend)
        final_prefix = np.broadcast_to(prefix.final_hidden, (n,) + prefix.final_hidden.shape)
        full = np.concatenate([final_prefix, x], axis=1)
        pooled = full.mean(axis=1)
        return self.classifier.infer(pooled, backend)

    def predict(self, tokens: np.ndarray, backend) -> np.ndarray:
        """Hard class predictions."""
        return np.argmax(self.infer(tokens, backend), axis=-1)

    # -- autoregressive generation --------------------------------------
    def lm_logits(self, hidden: np.ndarray, backend) -> np.ndarray:
        """Next-token logits from hidden rows via the tied embedding.

        ``hidden`` is ``(N, D)``; the head is the transposed token
        embedding table — zero new parameters (the model's RNG draw
        order is untouched) and one traced ``(N, D, V)`` GEMM.
        """
        return backend.matmul(np.asarray(hidden), self.token_emb.table.data.T)

    def infer_logits(self, tokens: np.ndarray, backend) -> np.ndarray:
        """Full-sequence next-token logits (the recompute reference).

        Runs the whole ``(N, T)`` batch through every layer and reads
        the last row's logits — the naive per-token reference that
        :meth:`decode_step` must match bit-for-bit.
        """
        tokens = np.asarray(tokens)
        n, t = tokens.shape
        if not 0 < t <= self.seq_len:
            raise ValueError(f"sequence length {t} must be in (0, {self.seq_len}]")
        x = self.token_emb.infer_indices(tokens) + self.pos_emb.data[:t]
        for layer in self.layers:
            x = layer.infer(x, backend)
        return self.lm_logits(x[:, -1, :], backend)

    def prefill(
        self, tokens: np.ndarray, backend, cached=None
    ) -> "tuple[np.ndarray, DecodeKV]":
        """Process the prompt and return ``(last-row logits, KV state)``.

        ``tokens`` is ``(N, P)``.  With ``cached`` (a captured
        :class:`~repro.nn.executor.KVTap` covering the first ``C < P``
        prompt columns, shared across the batch) only the remaining
        suffix rows are computed — bit-identical to the cold pass
        because causal K/V rows are suffix-independent.
        """
        if not self.causal:
            raise ValueError("generation requires causal=True")
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ValueError(f"prompt batch must be 2-D, got shape {tokens.shape}")
        n, p = tokens.shape
        if not 0 < p <= self.seq_len:
            raise ValueError(f"prompt length {p} must be in (0, {self.seq_len}]")
        state = DecodeKV(self.n_layers)
        if cached is None:
            x = self.token_emb.infer_indices(tokens) + self.pos_emb.data[:p]
            for layer in self.layers:
                x = layer.infer(x, backend, kv_tap=state)
        else:
            c = cached.prefix_len
            if not 0 < c < p:
                raise ValueError(f"cached prefix length {c} must be in (0, {p})")
            state.seed(cached, n)
            x = self.token_emb.infer_indices(tokens[:, c:]) + self.pos_emb.data[c:p]
            for i, layer in enumerate(self.layers):
                x, k_s, v_s = layer.infer_suffix_kv(
                    x, state.k[i], state.v[i], backend
                )
                state.extend(i, k_s, v_s)
        return self.lm_logits(x[:, -1, :], backend), state

    def decode_step(self, state: DecodeKV, tokens: np.ndarray, backend) -> np.ndarray:
        """One decode iteration: feed one token per sequence, get logits.

        ``tokens`` is ``(N,)`` — each sequence's latest token, placed at
        position ``state.pos``.  The step's K/V rows are appended onto
        ``state`` (incremental capture), so repeated calls walk the
        position table exactly like a growing full-sequence pass.
        """
        if not self.causal:
            raise ValueError("generation requires causal=True")
        tokens = np.asarray(tokens)
        if tokens.ndim != 1:
            raise ValueError(f"decode tokens must be 1-D, got shape {tokens.shape}")
        pos = state.pos
        if pos < 1:
            raise ValueError("decode_step needs a prefilled state")
        if pos >= self.seq_len:
            raise ValueError(
                f"position {pos} exhausts the {self.seq_len}-entry position table"
            )
        x = self.token_emb.infer_indices(tokens[:, None]) + self.pos_emb.data[
            pos : pos + 1
        ]
        for i, layer in enumerate(self.layers):
            x, k_s, v_s = layer.decode_step(x, state.k[i], state.v[i], backend)
            state.extend(i, k_s, v_s)
        return self.lm_logits(x[:, 0, :], backend)

    def generate(
        self,
        tokens: np.ndarray,
        max_new_tokens: int,
        backend,
        stop_token=None,
    ) -> "list[np.ndarray]":
        """Greedy decode: prefill then step until length or stop token.

        Returns one 1-D generated-token array per sequence, truncated
        just after the first ``stop_token`` when one is given.  Rows
        run in lockstep (batch execution is bit-identical to running
        each sequence alone), so a stopped row keeps decoding until the
        whole batch finishes — its extra tokens are simply dropped.
        """
        if not self.causal:
            raise ValueError("generation requires causal=True")
        tokens = np.asarray(tokens)
        if max_new_tokens < 1:
            raise ValueError(f"max_new_tokens must be >= 1, got {max_new_tokens}")
        n, p = tokens.shape
        if p + max_new_tokens > self.seq_len:
            raise ValueError(
                f"prompt ({p}) + max_new_tokens ({max_new_tokens}) exceeds "
                f"the {self.seq_len}-entry position table"
            )
        logits, state = self.prefill(tokens, backend)
        steps = [np.argmax(logits, axis=-1)]
        for _ in range(max_new_tokens - 1):
            if stop_token is not None and all(
                any(int(s[j]) == stop_token for s in steps) for j in range(n)
            ):
                break
            logits = self.decode_step(state, steps[-1], backend)
            steps.append(np.argmax(logits, axis=-1))
        stacked = np.stack(steps, axis=1)
        results = []
        for row in stacked:
            if stop_token is not None:
                hits = np.nonzero(row == stop_token)[0]
                if hits.size:
                    row = row[: hits[0] + 1]
            results.append(row)
        return results
