"""What a candidate deployment is worth: hardware cost vs served quality.

The autotuner scores every replay into one :class:`Objective` —
``(cost, slo_attainment, p99, tokens_per_sec)`` — combining the two
sides of the paper's trade-off:

* **cost** prices the pool from the paper's hardware models: each
  shard's design point costs its estimated full-activity power
  (:func:`repro.hardware.power.power_watts`, which already folds in
  the resource vector) plus a small rent on the discrete FPGA
  resources that gate deployability (DSP slices and BRAM, from
  :func:`repro.hardware.resources.total_resources`).  Cost depends
  only on the pool — it is what you pay whether or not traffic shows
  up;
* **quality** reads the replayed
  :meth:`~repro.serving.report.ServingReport.objective_section`:
  overall SLO attainment, tail latency, and generated-token
  throughput.

:func:`scalar_score` collapses an objective to the single
lower-is-better number the search drivers rank by (and the bench
gates): ``cost x p99 / (slo_attainment x served_fraction)`` — a
deployment is better when it is cheaper, faster at the tail, or
answers more of its traffic within deadline.  Shed and failed
requests shrink the served fraction, so refusing traffic can never
read as "fast and cheap".  The Pareto front keeps the full four axes;
the scalar only orders candidates inside one search round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.hardware.power import power_watts
from repro.hardware.resources import total_resources
from repro.systolic.config import SystolicConfig

#: Watt-equivalents charged per DSP slice / BRAM block of the pool.
DSP_WEIGHT = 0.01
BRAM_WEIGHT = 0.005

#: Floors keeping :func:`scalar_score` finite and honest on degenerate
#: replays: an all-shedding config divides by the attainment floor
#: (scoring badly) instead of riding its empty-percentile p99 of zero
#: to a spurious win.
MIN_ATTAINMENT = 1e-3
MIN_P99 = 1e-9


def shard_cost(config: SystolicConfig) -> float:
    """One design point's cost, in watt-equivalents."""
    resources = total_resources(config)
    return (
        power_watts(config)
        + DSP_WEIGHT * resources.dsp
        + BRAM_WEIGHT * resources.bram
    )


def pool_cost(pool: Sequence[SystolicConfig]) -> float:
    """The deployment's cost: sum of its shards' costs."""
    return sum(shard_cost(config) for config in pool)


@dataclass(frozen=True)
class Objective:
    """The scored outcome of replaying one trace under one config."""

    #: Pool hardware cost, watt-equivalents (:func:`pool_cost`).
    cost: float
    #: Fraction of deadline-carrying requests that met their deadline
    #: (1.0 when the trace carries no deadlines).
    slo_attainment: float
    #: 99th-percentile request latency, simulated seconds.
    p99: float
    #: Generated-token throughput, tokens per simulated second
    #: (0.0 for traces without generation traffic).
    tokens_per_sec: float
    #: Requests completed during the replay.
    n_requests: int = 0
    #: Requests refused at admission during the replay.
    shed: int = 0
    #: Requests that failed (fault injection) during the replay.
    failed: int = 0

    def as_tuple(self):
        return (self.cost, self.slo_attainment, self.p99, self.tokens_per_sec)

    def to_dict(self) -> Dict[str, float]:
        return {
            "cost": self.cost,
            "slo_attainment": self.slo_attainment,
            "p99": self.p99,
            "tokens_per_sec": self.tokens_per_sec,
            "n_requests": self.n_requests,
            "shed": self.shed,
            "failed": self.failed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "Objective":
        return cls(
            cost=float(data["cost"]),
            slo_attainment=float(data["slo_attainment"]),
            p99=float(data["p99"]),
            tokens_per_sec=float(data["tokens_per_sec"]),
            n_requests=int(data.get("n_requests", 0)),
            shed=int(data.get("shed", 0)),
            failed=int(data.get("failed", 0)),
        )


def objective_from_report(report, pool: Sequence[SystolicConfig]) -> "Objective":
    """Price ``pool`` and read the replayed report's quality numbers."""
    section = report.objective_section()
    attainment = section["slo_attainment"]
    return Objective(
        cost=pool_cost(pool),
        slo_attainment=1.0 if attainment is None else float(attainment),
        p99=float(section["p99"]),
        tokens_per_sec=float(section["tokens_per_second"]),
        n_requests=int(section["n_requests"]),
        shed=int(section["shed"]),
        failed=int(section["failed"]),
    )


def scalar_score(objective: Objective) -> float:
    """Collapse an objective to one lower-is-better ranking number.

    ``cost x p99 / (slo_attainment x served_fraction)`` — dimensions:
    watt-equivalents x seconds per unit of honored demand ("how much
    hardware-time does a met deadline cost here").  The served
    fraction counts shed and failed requests against the config, and
    the floors keep an all-shedding replay (empty percentiles) from
    scoring as free.
    """
    total = objective.n_requests + objective.shed + objective.failed
    if total and objective.n_requests == 0:
        # Nothing served: the percentiles are empty, not excellent.
        return float("inf")
    served = objective.n_requests / total if total else 1.0
    attainment = max(objective.slo_attainment * served, MIN_ATTAINMENT)
    return objective.cost * max(objective.p99, MIN_P99) / attainment
