"""Multi-tenant serving: two tenants, different shares, per-tenant SLOs.

Serves the same TinyBERT endpoint to a premium tenant ("gold",
weight 3, strict-priority rank 10, 2 ms latency SLO) and a best-effort
tenant ("free", weight 1, rank 0, 10 ms SLO) contending for one
SystolicArray shard.  Shows weighted-round-robin arbitration shaping
per-tenant latency, the per-tenant SLO section of the serving report,
the lossless per-tenant cycle attribution from the trace namespaces,
and the same burst replayed under the strict-priority policy.

    python examples/multitenant_demo.py
"""

import numpy as np

from repro.nn.models import TinyBERT
from repro.serving import InferenceEngine, ClusterDispatcher
from repro.systolic import SystolicArray, SystolicConfig

GRANULARITY = 0.25


def build_engine(policy: str) -> InferenceEngine:
    config = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
    pool = ClusterDispatcher.from_arrays([SystolicArray(config)], GRANULARITY)
    engine = InferenceEngine(
        pool, max_batch_size=2, flush_timeout=1e-4, policy=policy
    )
    engine.register(
        "bert", TinyBERT(vocab=16, seq_len=8, dim=8, heads=2, ff_dim=16, n_layers=1)
    )
    engine.register_tenant("gold", weight=3.0, priority=10, slo_latency=2e-3)
    engine.register_tenant("free", weight=1.0, priority=0, slo_latency=10e-3)
    return engine


def serve_burst(engine: InferenceEngine, tokens: np.ndarray):
    """Same-instant burst: even rows are gold traffic, odd rows free."""
    ids = {}
    for i, row in enumerate(tokens):
        tenant = "gold" if i % 2 == 0 else "free"
        ids[engine.submit("bert", row, tenant=tenant)] = tenant
    return ids, engine.run()


def main() -> None:
    rng = np.random.default_rng(0)
    tokens = rng.integers(0, 16, size=(12, 8))

    # -- weighted round-robin: shares shape latency ----------------------
    engine = build_engine("weighted_round_robin")
    ids, report = serve_burst(engine, tokens)
    print("=== weighted_round_robin (gold weight 3 : free weight 1) ===")
    print(report.summary())  # multi-tenant summaries embed the SLO section

    gold_mean = report.tenant_latencies("gold").mean()
    free_mean = report.tenant_latencies("free").mean()
    print(
        f"\nmean latency gold {gold_mean * 1e6:,.1f} us vs "
        f"free {free_mean * 1e6:,.1f} us "
        f"(weight 3 buys the premium tenant earlier slots)"
    )
    attributed = sum(report.tenant_cycles.values())
    print(
        f"cycle attribution: {report.tenant_cycles} "
        f"sums to {attributed:,} == engine total {report.total_cycles:,}"
    )
    for request_id in ids:
        engine.result(request_id)  # hand outputs over (released once)

    # -- strict priority: the premium tenant always runs first -----------
    engine = build_engine("strict_priority")
    _, report = serve_burst(engine, tokens)
    print("\n=== strict_priority (gold rank 10 > free rank 0) ===")
    order = [
        (c.request.tenant, c.batch_index)
        for c in sorted(report.completed, key=lambda c: (c.start, c.batch_index))
    ]
    print("execution order:", " -> ".join(t for t, _ in order))
    print("\nPer-tenant SLO section:")
    print(report.slo_section())


if __name__ == "__main__":
    main()
