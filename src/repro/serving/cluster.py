"""The cluster placement API: heterogeneous shard pools + dispatch policies.

PR 1's dispatcher handed batches to shards blind round-robin.  This
module makes the dispatch boundary explicit and heterogeneous-aware:

* :class:`ShardSpec` / :class:`ClusterSpec` declare a pool of shards
  whose :class:`~repro.systolic.config.SystolicConfig` design points may
  differ — grid sizes, MAC counts, clocks, even quantization formats
  (the paper's design-space premise: array configurations trade cycles
  for resources).  ``ClusterSpec.build()`` materialises the pool as a
  :class:`ClusterDispatcher` of ``ArrayBackend`` shards.
* :class:`ClusterDispatcher` owns the pool state placement consumes:
  per-shard design point, clock, cycle trace, and the discrete-event
  **busy-until** horizon the engine maintains as batches execute.
* :class:`PlacementPolicy` is the pluggable decision: given a
  :class:`BatchProfile` (what is about to run) and the pool's
  :class:`ShardView` list (who could run it, how busy, how fast),
  return the shard index.  Three policies ship:

  - :class:`RoundRobinPlacement` (``"round_robin"``, the default) —
    the PR 1 counter, pinned bit-identical to the historical
    batch→shard mapping by a regression test;
  - :class:`LeastLoadedPlacement` (``"least_loaded"``) — fewest
    in-flight estimated cycles (the busy-until backlog scaled by the
    shard clock) wins; ties break to the lowest shard index;
  - :class:`CostAwarePlacement` (``"cost_aware"``) — estimates each
    candidate's *finish time* for this batch shape from the
    closed-form cycle model (``SystolicConfig.estimate_gemm_cycles``
    and friends) plus the shard's current backlog, and picks the
    earliest.

Cost estimates resolve per model endpoint: an explicit
``cost_model`` callable registered with the endpoint (see
:func:`workload_cost_model` for deriving one from a
:class:`~repro.nn.workload.Workload` builder) wins; otherwise the
engine's :class:`CalibratingCostModel` supplies estimates from cycles
it has already observed for the same (model, shape) — exact on repeat
shapes, scaled across batch sizes and design points, and absent (the
policy then degenerates to earliest-available) before first contact.

Everything here is deterministic: policies see only simulated state,
so a request stream reproduces the same placements every run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.systolic.config import SystolicConfig


# ---------------------------------------------------------------------------
# Cluster declaration
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ShardSpec:
    """Declaration of one shard: an array design point plus CPWL knobs.

    Attributes
    ----------
    config:
        The shard's :class:`SystolicConfig` design point.  Different
        shards of one cluster may use different grids, MAC counts,
        clocks or formats.  Note a shard's *format* changes its
        numerics: heterogeneous-format pools produce
        placement-dependent outputs, so keep formats uniform when
        bit-stable results matter.
    granularity:
        CPWL approximation granularity of the shard's backend.
    name:
        Optional label used in reports and ``describe()``.
    """

    config: SystolicConfig
    granularity: float = 0.25
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.granularity <= 0:
            raise ValueError(
                f"shard granularity must be positive, got {self.granularity}"
            )


@dataclass(frozen=True)
class ClusterSpec:
    """A declared pool of (possibly heterogeneous) shards.

    Build dispatchers from it::

        spec = ClusterSpec.heterogeneous([big_config, small_config])
        engine = InferenceEngine(spec.build(), placement="cost_aware")
    """

    shards: Tuple[ShardSpec, ...]

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError("cluster needs at least one shard")

    @classmethod
    def homogeneous(
        cls, config: SystolicConfig, n_shards: int, granularity: float = 0.25
    ) -> "ClusterSpec":
        """``n_shards`` identical shards of one design point."""
        return cls(tuple(ShardSpec(config, granularity) for _ in range(n_shards)))

    @classmethod
    def heterogeneous(
        cls,
        configs: Sequence[SystolicConfig],
        granularity: float = 0.25,
    ) -> "ClusterSpec":
        """One shard per design point in ``configs``."""
        return cls(tuple(ShardSpec(config, granularity) for config in configs))

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def build(self) -> "ClusterDispatcher":
        """Materialise the pool: one ``SystolicArray`` backend per shard."""
        from repro.nn.executor import ArrayBackend
        from repro.systolic.array import SystolicArray

        backends = [
            ArrayBackend(SystolicArray(spec.config), spec.granularity)
            for spec in self.shards
        ]
        return ClusterDispatcher(backends, specs=self.shards)

    def describe(self) -> str:
        """One line per shard: name and design point."""
        lines = []
        for index, spec in enumerate(self.shards):
            name = spec.name or f"shard{index}"
            clock = spec.config.clock_hz / 1e6
            lines.append(f"{name}: {spec.config.describe()} @ {clock:.0f} MHz")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# What placement sees
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ShardView:
    """One shard's state at a placement decision.

    ``busy_until`` is the simulated time the shard finishes everything
    already placed on it (the discrete-event backlog horizon);
    ``config``/``clock_hz`` are ``None`` for functional (untraced)
    backends, which have no cycle model.  ``breaker`` is the shard's
    circuit-breaker state at the decision instant (``"closed"`` /
    ``"half_open"`` / ``"open"``): cost-ranking policies filter
    ``"open"`` shards out before pricing and treat ``"half_open"``
    shards pessimistically, so a flapping fast shard no longer
    re-captures every batch the instant its quarantine elapses.
    """

    index: int
    busy_until: float
    clock_hz: Optional[float] = None
    config: Optional[SystolicConfig] = None
    breaker: str = "closed"

    def backlog_seconds(self, now: float) -> float:
        """Seconds of already-placed work outstanding at ``now``."""
        return max(0.0, self.busy_until - now)

    def backlog_cycles(self, now: float) -> float:
        """The backlog expressed in this shard's cycles (its occupancy)."""
        seconds = self.backlog_seconds(now)
        return seconds * self.clock_hz if self.clock_hz else seconds


@dataclass(frozen=True)
class BatchProfile:
    """What the engine knows about a batch at placement time.

    ``estimator(profile, config)`` returns the estimated cycles of the
    batch on ``config`` (or None when unknown) — resolved by the engine
    to the endpoint's declared cost model or its calibrating default.

    ``prefix_key``/``resident_shards`` carry the batch's prefix-cache
    context: the prompt digest (None for prefix-less batches) and the
    shards whose cache already holds that prompt, which
    :class:`PrefixAffinePlacement` steers towards.
    """

    model: str
    tenant: str
    batch_size: int
    sample_shape: Tuple[int, ...]
    ready_time: float
    estimator: Optional[
        Callable[["BatchProfile", SystolicConfig], Optional[float]]
    ] = None
    prefix_key: Optional[str] = None
    resident_shards: Tuple[int, ...] = ()

    def estimate_cycles(self, config: Optional[SystolicConfig]) -> Optional[float]:
        """Estimated cycles of this batch on ``config`` (None if unknown)."""
        if config is None or self.estimator is None:
            return None
        return self.estimator(self, config)


@dataclass(frozen=True)
class PlacementDecision:
    """One entry of the report's placement-decision log."""

    batch_index: int
    model: str
    tenant: str
    batch_size: int
    shard: int
    policy: str
    ready_time: float
    start: float
    finish: float
    batch_cycles: int = 0
    #: 0-based execution attempt (0 = first placement; > 0 = a retry
    #: after earlier attempts failed on faulted shards).
    attempt: int = 0
    #: Shard of the immediately preceding failed attempt, when this
    #: decision is a retry re-placement (None on first attempts).
    recovered_from: Optional[int] = None

    @property
    def queue_delay(self) -> float:
        """Time the ready batch waited for its chosen shard."""
        return self.start - self.ready_time


# ---------------------------------------------------------------------------
# Shard health: the closed -> open -> half-open circuit breaker
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BreakerConfig:
    """Knobs of one shard's circuit breaker.

    ``failure_threshold`` consecutive failures open the breaker for
    ``quarantine`` simulated seconds; after the quarantine the shard is
    *half-open* — one probe batch is admitted, and a probe failure
    re-opens with the quarantine multiplied by ``quarantine_factor``
    (capped at ``quarantine_cap``), while a success closes the breaker
    and resets the quarantine.
    """

    failure_threshold: int = 1
    quarantine: float = 1e-3
    quarantine_factor: float = 2.0
    quarantine_cap: float = 1e-1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.quarantine <= 0 or self.quarantine_cap <= 0:
            raise ValueError("quarantine durations must be positive")
        if self.quarantine_factor < 1.0:
            raise ValueError(
                f"quarantine_factor must be >= 1, got {self.quarantine_factor}"
            )


@dataclass(frozen=True)
class BreakerTransition:
    """One breaker state change, for the report's fault section."""

    shard: int
    at: float
    from_state: str
    to_state: str


class ShardHealth:
    """Per-shard failure tracking with a circuit breaker.

    States (:attr:`state`): ``"closed"`` (healthy, admits batches),
    ``"open"`` (quarantined until :attr:`open_until`; placement filters
    the shard out), ``"half_open"`` (quarantine elapsed; the next batch
    is the re-admission probe).  Transitions are driven by the engine
    calling :meth:`record_failure` / :meth:`record_success` and by
    :meth:`available` observing simulated time pass :attr:`open_until`
    — all in simulated time, so health trajectories are deterministic.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        shard: int,
        config: Optional[BreakerConfig] = None,
        on_transition: Optional[Callable[[BreakerTransition], None]] = None,
    ) -> None:
        self.shard = shard
        self.config = config if config is not None else BreakerConfig()
        self.state = self.CLOSED
        self.open_until = 0.0
        self.consecutive_failures = 0
        self.failures = 0
        self.successes = 0
        self._quarantine = self.config.quarantine
        self._on_transition = on_transition

    def _transition(self, to_state: str, at: float) -> None:
        if to_state == self.state:
            return
        if self._on_transition is not None:
            self._on_transition(
                BreakerTransition(
                    shard=self.shard, at=at, from_state=self.state, to_state=to_state
                )
            )
        self.state = to_state

    def available(self, now: float) -> bool:
        """Can a batch be placed here at ``now``?

        Lazily performs the open -> half-open transition when the
        quarantine has elapsed, so the first placement query past
        :attr:`open_until` admits the probe batch.
        """
        if self.state == self.OPEN and now >= self.open_until:
            self._transition(self.HALF_OPEN, self.open_until)
        return self.state != self.OPEN

    def record_failure(self, now: float) -> None:
        """One failed attempt on this shard at simulated ``now``."""
        self.failures += 1
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN:
            # Failed probe: back to quarantine, doubled (capped).
            self._quarantine = min(
                self._quarantine * self.config.quarantine_factor,
                self.config.quarantine_cap,
            )
            self.open_until = now + self._quarantine
            self._transition(self.OPEN, now)
        elif (
            self.state == self.CLOSED
            and self.consecutive_failures >= self.config.failure_threshold
        ):
            self.open_until = now + self._quarantine
            self._transition(self.OPEN, now)
        elif self.state == self.OPEN and now + self._quarantine > self.open_until:
            # A straggler failure while already quarantined (a batch
            # placed before the breaker opened): extend, don't shorten.
            self.open_until = now + self._quarantine

    def record_success(self, now: float) -> None:
        """One completed batch on this shard at simulated ``now``.

        A successful probe closes the breaker but only *decays* the
        quarantine one factor step toward its base instead of resetting
        it outright: a flapping shard (fail, recover, fail, ...) keeps
        an escalated quarantine across flaps, while a genuinely
        recovered shard works its way back to the base quarantine over
        a few clean successes.
        """
        self.successes += 1
        self.consecutive_failures = 0
        self._quarantine = max(
            self.config.quarantine, self._quarantine / self.config.quarantine_factor
        )
        if self.state != self.CLOSED:
            self._transition(self.CLOSED, now)

    @property
    def quarantine(self) -> float:
        """The quarantine the *next* breaker opening would impose."""
        return self._quarantine

    def reset(self) -> None:
        self.state = self.CLOSED
        self.open_until = 0.0
        self.consecutive_failures = 0
        self.failures = 0
        self.successes = 0
        self._quarantine = self.config.quarantine


# ---------------------------------------------------------------------------
# Placement policies
# ---------------------------------------------------------------------------
class PlacementPolicy:
    """Decides which shard executes a ready batch.

    ``place`` is called once per batch, at batch-ready time, with the
    full pool state; it must return a valid shard index.  Policies may
    keep state (the round-robin counter) but must stay deterministic
    functions of the simulated inputs.
    """

    name = "placement"

    def place(self, batch: BatchProfile, shards: Sequence[ShardView]) -> int:
        raise NotImplementedError

    @staticmethod
    def admissible(shards: Sequence[ShardView]) -> Sequence[ShardView]:
        """Candidates with open-breaker shards filtered out.

        Cost ranking must never price a quarantined shard — an open
        fast shard would otherwise win on estimated finish time the
        instant it is offered.  When *every* shard is open the original
        list is returned unchanged (the engine parks batches before it
        ever offers an all-open pool, so this is pure defense).
        """
        healthy = [view for view in shards if view.breaker != ShardHealth.OPEN]
        return healthy if healthy else shards

    def reset(self) -> None:
        """Forget accumulated state (new serving epoch)."""


class RoundRobinPlacement(PlacementPolicy):
    """The historical default: a counter over the pool, blind to load.

    Bit-identical to the PR 1/PR 3 acquire-time mapping — the i-th
    executed batch lands on shard ``i % n_shards`` — which the
    regression tests pin, so homogeneous-pool callers see unchanged
    placements, latencies and reports.
    """

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def place(self, batch: BatchProfile, shards: Sequence[ShardView]) -> int:
        # Index into the *views* rather than returning the counter
        # directly: over the full pool the two are identical (view i
        # has index i, preserving the pinned i % n mapping), but when
        # the engine health-filters the candidate list the counter must
        # cycle over the shards actually offered.
        pos = self._next % len(shards)
        self._next = (pos + 1) % len(shards)
        return shards[pos].index

    def reset(self) -> None:
        self._next = 0


class LeastLoadedPlacement(PlacementPolicy):
    """Fewest in-flight estimated cycles wins; ties to the lowest index.

    Occupancy is the shard's busy-until backlog at the batch's ready
    time, expressed in that shard's own cycles (seconds x clock), so a
    fast shard with a short queue beats a slow shard with the same
    queue in seconds.  In a *mixed* pool (some shards functional, with
    no cycle model) cycles and seconds are incomparable, so the whole
    pool is compared in backlog seconds instead.  Blind to the
    *incoming* batch's cost — see :class:`CostAwarePlacement` for that.
    """

    name = "least_loaded"

    def place(self, batch: BatchProfile, shards: Sequence[ShardView]) -> int:
        shards = self.admissible(shards)
        in_cycles = all(s.clock_hz for s in shards)

        def backlog(view: ShardView) -> float:
            return (
                view.backlog_cycles(batch.ready_time)
                if in_cycles
                else view.backlog_seconds(batch.ready_time)
            )

        # A half-open shard is a re-admission probe, not a healthy
        # candidate: charge it the pool's deepest backlog on top of its
        # own, so it only wins (and gets probed) once the healthy pool
        # is at least that busy — never instantly on an idle fast shard.
        worst = max((backlog(view) for view in shards), default=0.0)

        def occupancy(view: ShardView) -> Tuple[float, int, int]:
            probing = view.breaker == ShardHealth.HALF_OPEN
            return (
                backlog(view) + (worst if probing else 0.0),
                1 if probing else 0,
                view.index,
            )

        return min(shards, key=occupancy).index


class CostAwarePlacement(PlacementPolicy):
    """Earliest estimated finish time for *this* batch shape wins.

    For each candidate: ``finish = max(ready, busy_until) + est_cycles /
    clock`` with ``est_cycles`` from the batch profile's cost model
    (closed-form ``gemm_cycles``/plan-cache estimates, an endpoint's
    declared workload model, or the engine's calibrated observations).
    A shard *without* an estimate (functional backends, or a design
    point the model has never priced) is charged the most expensive
    known service time — pessimistic, so an unpriceable shard cannot
    win on ignorance against shards with real estimates.  With no cost
    information anywhere the policy degenerates to earliest-available —
    still occupancy-aware, never worse than round-robin on backlog.
    Ties break by backlog then index.

    ``occupancy_penalty`` counters the greedy policy's
    load-concentration failure mode: on a skewed pool the fastest
    shard's ETA stays lowest even with a deep queue, so it absorbs
    nearly everything while slower shards idle (the ``{1.0, 0.17, 0,
    0}`` utilization pattern of the placement bench).  A penalty
    ``k > 0`` charges each candidate ``k x`` its already-queued
    backlog *on top of* the real ETA, steering marginal batches onto
    idle slower shards once the fast shard's queue grows.  The default
    ``0.0`` is the pinned historical behavior, bit for bit; the knob
    is searchable through
    :attr:`repro.autotune.TuningConfig.occupancy_penalty`.
    """

    name = "cost_aware"

    def __init__(self, occupancy_penalty: float = 0.0):
        if occupancy_penalty < 0:
            raise ValueError(
                f"occupancy_penalty must be >= 0, got {occupancy_penalty}"
            )
        self.occupancy_penalty = float(occupancy_penalty)
        if self.occupancy_penalty > 0:
            self.name = f"cost_aware(occ={self.occupancy_penalty:g})"

    def place(self, batch: BatchProfile, shards: Sequence[ShardView]) -> int:
        shards = self.admissible(shards)
        services = {}
        for view in shards:
            estimate = batch.estimate_cycles(view.config)
            if estimate is not None and view.clock_hz:
                services[view.index] = estimate / view.clock_hz
        unknown_service = max(services.values(), default=0.0)

        def finish(view: ShardView) -> Tuple[float, int, float, int]:
            service = services.get(view.index, unknown_service)
            # A half-open shard is priced as if the probe re-runs
            # elsewhere (it may well fail): its ETA carries the most
            # expensive known service on top, so a quarantine-flapping
            # fast shard stops winning every batch on raw speed.
            probing = view.breaker == ShardHealth.HALF_OPEN
            if probing:
                service += unknown_service
            eta = max(batch.ready_time, view.busy_until) + service
            eta += self.occupancy_penalty * view.backlog_seconds(batch.ready_time)
            return (eta, 1 if probing else 0, view.busy_until, view.index)

        return min(shards, key=finish).index


class PrefixAffinePlacement(PlacementPolicy):
    """Prefer the shard whose prefix cache already holds the batch's prompt.

    Wraps any inner policy.  A batch whose prompt is resident somewhere
    (``BatchProfile.resident_shards``) is placed on a resident shard —
    the least-backlogged one at the batch's ready time, ties to the
    lowest index — because a cache hit skips far more cycles than
    marginal queueing costs; re-computing the prompt on another shard
    would discard the reuse entirely.  Batches without a resident
    prompt (including every prefix-less batch) fall through to the
    inner policy untouched, and affinity overrides do not advance the
    inner policy's state, so prefix-less traffic sees the inner
    placement bit-identically.

    The engine wraps its configured policy in this automatically when
    constructed with a :class:`~repro.serving.prefix_cache.PrefixCache`.
    """

    def __init__(self, inner: "PlacementPolicy"):
        self.inner = inner
        self.name = f"prefix_affine({inner.name})"

    def place(self, batch: BatchProfile, shards: Sequence[ShardView]) -> int:
        if batch.resident_shards:
            candidates = [
                view for view in shards if view.index in set(batch.resident_shards)
            ]
            if candidates:
                return min(
                    candidates, key=lambda view: (view.busy_until, view.index)
                ).index
        return self.inner.place(batch, shards)

    def reset(self) -> None:
        self.inner.reset()


class LookaheadPlacement(PlacementPolicy):
    """Joint list scheduling of the *entire ready set* per round.

    Greedy per-batch cost_aware commits each batch at its ready
    instant, so on a skewed pool the fastest shard's ETA wins batch
    after batch and the rest of the pool idles.  This policy receives
    every currently-ready batch at once (:meth:`plan`) and runs
    longest-processing-time list scheduling over the pool's busy
    horizons: batches are ordered by descending best-case service time
    (ties by submission order), each is assigned to the shard with the
    earliest estimated finish *given the assignments already made this
    round*, and the chosen shard's planning horizon advances by the
    batch's service estimate.  The LPT order is the classic 4/3-
    approximation for makespan on uniform machines — big batches claim
    the fast shards first, small batches back-fill idle slower shards.

    Everything is deterministic: estimates come from the same cost
    models greedy placement prices with, ties break by shard index, and
    placement still never changes arithmetic — only *where* each batch
    runs, so outputs stay bit-identical to per-batch placement on
    format-uniform pools.

    :meth:`place` (single-batch calls: retries, decode steps, parked
    re-admissions) degenerates to greedy cost_aware against the live
    horizons — exactly the behavior look-ahead improves on, applied
    only where there is no ready *set* to plan over.
    """

    name = "lookahead"

    def __init__(self, occupancy_penalty: float = 0.0):
        self._greedy = CostAwarePlacement(occupancy_penalty=occupancy_penalty)

    def place(self, batch: BatchProfile, shards: Sequence[ShardView]) -> int:
        return self._greedy.place(batch, shards)

    def plan(
        self, batches: Sequence[BatchProfile], shards: Sequence[ShardView]
    ) -> List[int]:
        """Assign every ready batch a shard; returns one index per batch."""
        candidates = list(self.admissible(shards))
        horizons = {view.index: view.busy_until for view in candidates}

        def services_of(batch: BatchProfile) -> Dict[int, float]:
            services = {}
            for view in candidates:
                estimate = batch.estimate_cycles(view.config)
                if estimate is not None and view.clock_hz:
                    services[view.index] = estimate / view.clock_hz
            return services

        priced = [services_of(batch) for batch in batches]
        # LPT order: biggest batch (by its best-case service anywhere)
        # first; ties keep submission order for determinism.
        order = sorted(
            range(len(batches)),
            key=lambda i: (-min(priced[i].values(), default=0.0), i),
        )
        assignment: List[int] = [0] * len(batches)
        for i in order:
            batch, services = batches[i], priced[i]
            unknown_service = max(services.values(), default=0.0)

            def finish(view: ShardView) -> Tuple[float, int, float, int]:
                service = services.get(view.index, unknown_service)
                probing = view.breaker == ShardHealth.HALF_OPEN
                if probing:
                    service += unknown_service
                eta = max(batch.ready_time, horizons[view.index]) + service
                return (eta, 1 if probing else 0, horizons[view.index], view.index)

            best = min(candidates, key=finish)
            assignment[i] = best.index
            horizons[best.index] = max(
                batch.ready_time, horizons[best.index]
            ) + services.get(best.index, unknown_service)
        return assignment


_PLACEMENTS = {
    "round_robin": RoundRobinPlacement,
    "rr": RoundRobinPlacement,
    "least_loaded": LeastLoadedPlacement,
    "cost_aware": CostAwarePlacement,
    "lookahead": LookaheadPlacement,
}


def make_placement_policy(
    policy: Union[str, PlacementPolicy],
) -> PlacementPolicy:
    """Resolve a placement-policy name (or pass an instance through)."""
    if isinstance(policy, PlacementPolicy):
        return policy
    try:
        return _PLACEMENTS[policy]()
    except KeyError:
        raise ValueError(
            f"unknown placement policy {policy!r}; "
            f"available: {sorted(set(_PLACEMENTS))}"
        ) from None


# ---------------------------------------------------------------------------
# Cost models
# ---------------------------------------------------------------------------
def _cycle_key(config: SystolicConfig) -> SystolicConfig:
    """Design point with the clock normalised out (cycles don't scale)."""
    return replace(config, clock_hz=1.0)


def config_to_dict(config: SystolicConfig) -> Dict[str, object]:
    """JSON-safe dict of a design point (see :func:`config_from_dict`)."""
    return {
        "pe_rows": config.pe_rows,
        "pe_cols": config.pe_cols,
        "macs_per_pe": config.macs_per_pe,
        "clock_hz": config.clock_hz,
        "nonlinear_enabled": config.nonlinear_enabled,
        "l3_out_width": config.l3_out_width,
        "l3_in_width": config.l3_in_width,
        "segment_capacity": config.segment_capacity,
        "fmt": {
            "total_bits": config.fmt.total_bits,
            "frac_bits": config.fmt.frac_bits,
        },
    }


def config_from_dict(data: Dict[str, object]) -> SystolicConfig:
    """Rebuild a design point serialized by :func:`config_to_dict`."""
    from repro.fixedpoint import QFormat

    fmt = data.get("fmt", {})
    return SystolicConfig(
        pe_rows=int(data["pe_rows"]),
        pe_cols=int(data["pe_cols"]),
        macs_per_pe=int(data["macs_per_pe"]),
        clock_hz=float(data["clock_hz"]),
        fmt=QFormat(int(fmt["total_bits"]), int(fmt["frac_bits"])),
        nonlinear_enabled=bool(data["nonlinear_enabled"]),
        l3_out_width=(
            None if data["l3_out_width"] is None else int(data["l3_out_width"])
        ),
        l3_in_width=int(data["l3_in_width"]),
        segment_capacity=int(data["segment_capacity"]),
    )


class CalibratingCostModel:
    """Batch-cycle estimator from cycles the engine has already traced.

    Estimates resolve in confidence order:

    1. **exact** — the same (model, batch size, sample shape) was
       observed on the same design point (clock excluded: cycle counts
       don't depend on it);
    2. **per-row scaling** — the same (model, sample shape) was
       observed on the design point at another batch size; batching
       only adds GEMM rows, so cycles scale ~linearly per request;
    3. **cross-config scaling** — the shape was only observed on a
       *different* design point; scale its per-row cycles by the
       closed-form GEMM cycle ratio between the two design points (a
       coarse proxy, refined to exact the first time the shape actually
       runs on the shard);
    4. **None** — never seen anywhere; the policy falls back to
       earliest-available.

    Observation and estimation are deterministic (insertion-ordered),
    and state is O(distinct (model, shape, design-point) triples).
    """

    #: Square GEMM edge used for the cross-config cycle-ratio proxy.
    PROXY_DIM = 256

    def __init__(self) -> None:
        self._exact: Dict[tuple, float] = {}
        # (model, shape) -> {cycle_key: per_row_cycles}
        self._per_row: Dict[tuple, Dict[SystolicConfig, float]] = {}
        self._proxy: Dict[Tuple[SystolicConfig, SystolicConfig], float] = {}

    def observe(
        self,
        model: str,
        batch_size: int,
        sample_shape: Tuple[int, ...],
        config: SystolicConfig,
        cycles: int,
    ) -> None:
        """Record the traced cycles of one executed batch."""
        if cycles <= 0 or batch_size <= 0:
            return
        key = _cycle_key(config)
        self._exact[(model, batch_size, sample_shape, key)] = float(cycles)
        self._per_row.setdefault((model, sample_shape), {})[key] = cycles / batch_size

    def _ratio(self, target: SystolicConfig, source: SystolicConfig) -> float:
        """Closed-form cycle ratio target/source for a proxy GEMM."""
        pair = (target, source)
        if pair not in self._proxy:
            dim = self.PROXY_DIM
            self._proxy[pair] = target.estimate_gemm_cycles(
                dim, dim, dim
            ) / source.estimate_gemm_cycles(dim, dim, dim)
        return self._proxy[pair]

    def estimate(
        self, profile: BatchProfile, config: SystolicConfig
    ) -> Optional[float]:
        """Estimated cycles of ``profile`` on ``config`` (None if unknown)."""
        key = _cycle_key(config)
        exact = self._exact.get(
            (profile.model, profile.batch_size, profile.sample_shape, key)
        )
        if exact is not None:
            return exact
        observed = self._per_row.get((profile.model, profile.sample_shape))
        if not observed:
            return None
        if key in observed:
            return observed[key] * profile.batch_size
        # First (insertion-order) observation on any design point,
        # scaled by the closed-form proxy ratio — deterministic.
        source_key, per_row = next(iter(observed.items()))
        return per_row * profile.batch_size * self._ratio(key, source_key)

    # The engine passes the estimator around as a plain callable.
    __call__ = estimate

    @property
    def version(self) -> int:
        """Monotonic refinement stamp: the number of distinct
        observations held.  Deterministic under a ``to_dict`` round
        trip (the snapshot replays exactly these observations), so two
        workers comparing versions through the store fabric agree on
        which snapshot is fresher."""
        return len(self._exact)

    def reset(self) -> None:
        self._exact.clear()
        self._per_row.clear()

    # -- persistence -----------------------------------------------------
    #: Schema version of :meth:`to_dict` payloads.
    STATE_VERSION = 1

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot of the calibration state.

        Serialize it (``json.dumps``) next to the serving process's
        other state so a restarted engine prices placements from day
        one instead of re-learning every (model, shape, design point)
        from scratch::

            state = engine.calibrator.to_dict()
            ...                       # persist, restart
            engine.calibrator.load_dict(state)

        Observations are stored in insertion order, so a round trip
        reproduces estimates *exactly* — including the insertion-order
        dependent cross-config scaling path.
        """
        return {
            "version": self.STATE_VERSION,
            "observations": [
                {
                    "model": model,
                    "batch_size": batch_size,
                    "sample_shape": list(shape),
                    "config": config_to_dict(key),
                    "cycles": cycles,
                }
                for (model, batch_size, shape, key), cycles in self._exact.items()
            ],
        }

    def load_dict(self, data: Dict[str, object]) -> None:
        """Restore a :meth:`to_dict` snapshot into this instance.

        Replays the stored observations in order on top of any current
        state (call :meth:`reset` first for an exact restore).
        """
        version = data.get("version")
        if version != self.STATE_VERSION:
            raise ValueError(
                f"unsupported calibration-state version {version!r}; "
                f"expected {self.STATE_VERSION}"
            )
        for obs in data["observations"]:
            self.observe(
                str(obs["model"]),
                int(obs["batch_size"]),
                tuple(int(d) for d in obs["sample_shape"]),
                config_from_dict(obs["config"]),
                obs["cycles"],
            )

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CalibratingCostModel":
        """A fresh model restored from a :meth:`to_dict` snapshot."""
        model = cls()
        model.load_dict(data)
        return model


# ---------------------------------------------------------------------------
# Calibration persistence via the cache store
# ---------------------------------------------------------------------------
#: Store namespace holding serialized calibration snapshots.
CALIBRATION_NAMESPACE = "serving.calibration"


def save_calibration(
    calibrator: CalibratingCostModel,
    store=None,
    name: str = "default",
) -> None:
    """Persist ``calibrator`` state into a cache store namespace.

    With a shared backend (a :class:`repro.store.FileStore` fabric) the
    snapshot survives the process and is visible to every worker; the
    default process-global store makes it an in-process checkpoint.
    The payload is the JSON-safe :meth:`CalibratingCostModel.to_dict`
    snapshot, so both store serializers can carry it.  The entry is
    version-stamped with :attr:`CalibratingCostModel.version` so a
    :class:`~repro.store.tiered.TieredStore` read revalidates a stale
    local copy against a fresher snapshot another worker saved.
    """
    if store is None:
        from repro.store import get_store

        store = get_store()
    store.put(CALIBRATION_NAMESPACE, name, calibrator.to_dict(),
              version=calibrator.version)


def load_calibration(
    store=None,
    name: str = "default",
) -> Optional[CalibratingCostModel]:
    """Restore a :func:`save_calibration` snapshot, or None if absent."""
    if store is None:
        from repro.store import get_store

        store = get_store()
    data = store.get(CALIBRATION_NAMESPACE, name)
    if data is None:
        return None
    return CalibratingCostModel.from_dict(data)


def workload_cost_model(
    builder: Callable[[int, Tuple[int, ...]], object],
) -> Callable[[BatchProfile, SystolicConfig], float]:
    """Endpoint cost model from a :class:`~repro.nn.workload.Workload` builder.

    ``builder(batch_size, sample_shape)`` returns the batch's op
    inventory; the returned callable maps it to total cycles on a
    design point via the closed-form cycle model, memoised per
    (batch size, sample shape, design point).  Design points without
    the nonlinear datapath are charged their GEMMs only.
    """
    cache: Dict[tuple, float] = {}

    def estimate(profile: BatchProfile, config: SystolicConfig) -> float:
        key = (profile.batch_size, profile.sample_shape, _cycle_key(config))
        if key not in cache:
            workload = builder(profile.batch_size, profile.sample_shape)
            try:
                total = float(workload.latency_breakdown(config).total)
            except RuntimeError:
                # No nonlinear datapath on this design point: GEMMs only.
                total = float(
                    sum(
                        config.estimate_gemm_cycles(op.m, op.k, op.n) * op.count
                        for op in workload.gemm_ops
                    )
                )
            cache[key] = total
        return cache[key]

    return estimate


# ---------------------------------------------------------------------------
# The dispatcher: pool state + trace aggregation
# ---------------------------------------------------------------------------
class ClusterDispatcher:
    """A pool of execution backends with placement-relevant state.

    A shard is one inference backend — typically an
    :class:`~repro.nn.executor.ArrayBackend` wrapping its own
    :class:`~repro.systolic.array.SystolicArray`, so every shard
    carries an independent design point and cycle trace.  The engine
    asks a :class:`PlacementPolicy` where each ready batch runs
    (:meth:`shard_views` is the pool state it decides on) and maintains
    :attr:`busy_until` as the discrete-event loop advances;
    :meth:`acquire` survives for legacy callers that want the blind
    round-robin iterator.

    Parameters
    ----------
    backends:
        One inference backend per shard.  Backends exposing an
        ``array`` attribute (the hardware-routed ones) contribute cycle
        traces and design points; others execute functionally with
        wall-clock timing.
    specs:
        Optional :class:`ShardSpec` declarations (kept when the pool
        was built from a :class:`ClusterSpec`).
    """

    def __init__(
        self,
        backends: Sequence[object],
        specs: Optional[Sequence[ShardSpec]] = None,
    ):
        if not backends:
            raise ValueError("dispatcher needs at least one backend shard")
        if specs is not None and len(specs) != len(backends):
            raise ValueError(
                f"got {len(specs)} shard specs for {len(backends)} backends"
            )
        self.backends: List[object] = list(backends)
        self.specs: Optional[Tuple[ShardSpec, ...]] = (
            tuple(specs) if specs is not None else None
        )
        #: Simulated time each shard finishes everything placed on it.
        self.busy_until: Dict[int, float] = {}
        #: Shards retired by the autoscaler: kept in the pool (their
        #: traces and in-flight horizons survive) but hidden from
        #: :meth:`shard_views`, so placement never offers them.
        self._offline: set = set()
        self._next = 0

    @classmethod
    def from_arrays(
        cls, arrays: Sequence[object], granularity: float
    ) -> "ClusterDispatcher":
        """Build a pool of :class:`ArrayBackend` shards over ``arrays``."""
        from repro.nn.executor import ArrayBackend

        return cls([ArrayBackend(array, granularity) for array in arrays])

    @property
    def n_shards(self) -> int:
        return len(self.backends)

    def acquire(self) -> Tuple[int, object]:
        """Next ``(shard_index, backend)`` in round-robin order (legacy)."""
        shard = self._next
        self._next = (self._next + 1) % len(self.backends)
        return shard, self.backends[shard]

    def array_of(self, shard: int) -> Optional[object]:
        """The shard's systolic array, if it is hardware-routed."""
        return getattr(self.backends[shard], "array", None)

    def config_of(self, shard: int) -> Optional[SystolicConfig]:
        """The shard's design point (None for functional backends)."""
        array = self.array_of(shard)
        return None if array is None else array.config

    def clock_hz(self, shard: int) -> Optional[float]:
        """Clock of the shard's array (None for functional backends)."""
        config = self.config_of(shard)
        return None if config is None else config.clock_hz

    # -- elastic pool membership -----------------------------------------
    def add_shard(self, spec: ShardSpec) -> int:
        """Grow the pool by one shard built from ``spec``; its index.

        The new shard joins live: it appears in the next
        :meth:`shard_views` snapshot with an empty busy horizon.
        """
        from repro.nn.executor import ArrayBackend
        from repro.systolic.array import SystolicArray

        self.backends.append(ArrayBackend(SystolicArray(spec.config), spec.granularity))
        if self.specs is not None:
            self.specs = self.specs + (spec,)
        index = len(self.backends) - 1
        self._offline.discard(index)
        return index

    def retire_shard(self, index: int) -> None:
        """Take a shard offline: hidden from placement, state kept.

        In-flight work (the busy horizon) is unaffected — retirement
        only stops *new* placements, so draining is graceful.
        """
        if not 0 <= index < self.n_shards:
            raise ValueError(f"no shard {index} in a {self.n_shards}-shard pool")
        self._offline.add(index)

    def activate_shard(self, index: int) -> None:
        """Bring a retired shard back into placement rotation."""
        if not 0 <= index < self.n_shards:
            raise ValueError(f"no shard {index} in a {self.n_shards}-shard pool")
        self._offline.discard(index)

    def offline_shards(self) -> frozenset:
        """Indices currently hidden from placement."""
        return frozenset(self._offline)

    @property
    def n_live_shards(self) -> int:
        return self.n_shards - len(self._offline)

    def shard_views(self) -> List[ShardView]:
        """Pool state snapshot for a placement decision.

        Retired (offline) shards are omitted: they exist, their traces
        and horizons persist, but no policy may place on them.
        """
        return [
            ShardView(
                index=shard,
                busy_until=self.busy_until.get(shard, 0.0),
                clock_hz=self.clock_hz(shard),
                config=self.config_of(shard),
            )
            for shard in range(self.n_shards)
            if shard not in self._offline
        ]

    def describe(self) -> str:
        """One line per shard: design point and clock."""
        lines = []
        for shard in range(self.n_shards):
            config = self.config_of(shard)
            name = (
                self.specs[shard].name
                if self.specs is not None and self.specs[shard].name
                else f"shard{shard}"
            )
            if config is None:
                kind = type(self.backends[shard]).__name__
                lines.append(f"{name}: functional backend ({kind})")
            else:
                lines.append(
                    f"{name}: {config.describe()} @ {config.clock_hz / 1e6:.0f} MHz"
                )
        return "\n".join(lines)

    def shard_cycles(self) -> Dict[int, int]:
        """Aggregate traced cycles per hardware-routed shard."""
        cycles: Dict[int, int] = {}
        for shard in range(self.n_shards):
            array = self.array_of(shard)
            if array is not None:
                cycles[shard] = array.total_cycles
        return cycles

    def namespace_cycles(self) -> Dict[str, int]:
        """Traced cycles per trace namespace, summed over the pool.

        The engine executes every batch inside the owning tenant's
        namespace (see :meth:`repro.systolic.trace.Trace.namespace`),
        so this is the pool-wide per-tenant cycle account — available
        even in aggregate-only retention mode.
        """
        totals: Dict[str, int] = {}
        for shard in range(self.n_shards):
            array = self.array_of(shard)
            if array is None:
                continue
            for name, cycles in array.trace.cycles_by_namespace().items():
                totals[name] = totals.get(name, 0) + cycles
        return totals

    def reset(self) -> None:
        """Clear traces, busy horizons, offline marks and the
        round-robin pointer.  Shards the autoscaler added stay in the
        pool (membership is state, not statistics) but re-enter live."""
        for shard in range(self.n_shards):
            array = self.array_of(shard)
            if array is not None:
                array.reset()
        self.busy_until.clear()
        self._offline.clear()
        self._next = 0
