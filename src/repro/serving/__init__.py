"""Batched inference serving on top of the (ONE-)SA simulator.

This subpackage turns the single-call simulator into a multi-request
serving system:

* request/completion records (:mod:`repro.serving.request`);
* deterministic dynamic batching with max-batch-size and flush-timeout
  knobs (:mod:`repro.serving.batcher`) — co-pending requests for the
  same model are stacked so their GEMMs share tiles, which the
  vectorized :func:`repro.fixedpoint.fixed_matmul` executes in one
  call, bit-identical to per-request inference;
* round-robin sharding across a pool of
  :class:`~repro.systolic.array.SystolicArray` instances with per-array
  trace aggregation (:mod:`repro.serving.dispatcher`);
* the engine tying queue, batcher and shards together
  (:mod:`repro.serving.engine`);
* serving-level reporting — latency percentiles, throughput,
  cycles/request (:mod:`repro.serving.report`).

See ``examples/serving_demo.py`` for an end-to-end tour.
"""

from repro.serving.batcher import Batch, DynamicBatcher
from repro.serving.dispatcher import ShardedDispatcher
from repro.serving.engine import InferenceEngine, ModelEndpoint
from repro.serving.report import ServingReport
from repro.serving.request import CompletedRequest, InferenceRequest

__all__ = [
    "Batch",
    "DynamicBatcher",
    "ShardedDispatcher",
    "InferenceEngine",
    "ModelEndpoint",
    "ServingReport",
    "CompletedRequest",
    "InferenceRequest",
]
