"""Bench A3 — ablation: fused vs standalone Intermediate Parameter Fetching.

The L3 data-addressing module taps the *producing* operation's output
stream (Fig. 5 reuses the output-C path), so in the fused schedule IPF
costs only pipeline latency.  This ablation quantifies what a naive
standalone IPF pass (stream the whole matrix back through the L3
output port) would cost instead, across matrix sizes.
"""

import pytest

from repro.evaluation.reporting import format_table
from repro.systolic.config import SystolicConfig
from repro.systolic.timing import nonlinear_cycles


def sweep():
    config = SystolicConfig(pe_rows=8, pe_cols=8, macs_per_pe=16)
    rows = []
    for dim in (32, 128, 512):
        fused = nonlinear_cycles(config, dim, dim, fused_ipf=True).total
        standalone = nonlinear_cycles(config, dim, dim, fused_ipf=False).total
        rows.append(
            {
                "dim": dim,
                "fused_cycles": fused,
                "standalone_cycles": standalone,
                "overhead": standalone / fused,
            }
        )
    return rows


def test_ablation_fused_ipf(benchmark, print_artifact):
    rows = benchmark(sweep)
    print_artifact(
        format_table(
            ["dim", "fused_cycles", "standalone_cycles", "overhead"],
            [[r["dim"], r["fused_cycles"], r["standalone_cycles"], r["overhead"]] for r in rows],
            title="Ablation: fused vs standalone IPF (8x8x16 ONE-SA)",
        )
    )
    by = {r["dim"]: r for r in rows}
    # Standalone IPF would dominate nonlinear latency at scale: the
    # addressing pass runs at the narrow L3 output width while the MHP
    # consumes operands at the full P*m/2 rate.
    assert by[512]["overhead"] > 5
    assert by[128]["overhead"] > 3
    # Overhead grows with matrix size (fixed pipeline latency amortizes).
    assert by[512]["overhead"] > by[32]["overhead"]
