"""Trace bookkeeping and run-everything summary tests."""

import numpy as np
import pytest

from repro.evaluation.summary import QUICK_TASKS, full_report
from repro.systolic.timing import CycleBreakdown
from repro.systolic.trace import Trace, TraceEvent


class TestTrace:
    def make_trace(self):
        trace = Trace()
        trace.record(TraceEvent("gemm", "layer1", cycles=100, ops=1000))
        trace.record(TraceEvent("gemm", "layer2", cycles=50, ops=600))
        trace.record(TraceEvent("mhp", "layer1.gelu", cycles=25, ops=64))
        return trace

    def test_total_cycles(self):
        assert self.make_trace().total_cycles == 175

    def test_cycles_by_kind(self):
        by = self.make_trace().cycles_by_kind()
        assert by == {"gemm": 150, "mhp": 25}

    def test_ops_by_kind(self):
        by = self.make_trace().ops_by_kind()
        assert by == {"gemm": 1600, "mhp": 64}

    def test_cycles_by_label(self):
        by = self.make_trace().cycles_by_label()
        assert by["layer1"] == 100
        assert by["layer1.gelu"] == 25

    def test_clear_and_len(self):
        trace = self.make_trace()
        assert len(trace) == 3
        trace.clear()
        assert len(trace) == 0
        assert trace.total_cycles == 0

    def test_event_with_breakdown(self):
        bd = CycleBreakdown(fill=1, compute=2, drain=3)
        event = TraceEvent("gemm", "x", cycles=bd.total, ops=1, breakdown=bd)
        assert event.cycles == 6


class TestSummary:
    def test_quick_report_contains_all_artifacts(self):
        report = full_report(quick=True)
        expected = {
            "fig1",
            "table1",
            "table2",
            "table3",
            "fig8_linear",
            "fig8_nonlinear",
            "fig8_cliff",
            "table4",
            "table5",
        }
        assert set(report) == expected
        # Every artifact is non-trivial text.
        assert all(len(text) > 20 for text in report.values())

    def test_quick_table3_covers_three_families(self):
        report = full_report(quick=True)
        for task in QUICK_TASKS:
            assert task in report["table3"]

    def test_cliff_sentence_mentions_paper_number(self):
        report = full_report(quick=True)
        assert "84.8%" in report["fig8_cliff"]
