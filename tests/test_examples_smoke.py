"""Smoke tests: every example script must run to completion.

The examples are part of the public deliverable; these tests execute
each one's ``main()`` in-process (stdout captured by pytest) so a
regression in any public API surfaces immediately.
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> None:
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        module = importlib.import_module(name)
        importlib.reload(module)
        module.main()
    finally:
        sys.path.remove(str(EXAMPLES_DIR))


def test_quickstart_runs():
    run_example("quickstart")


def test_resnet_example_runs():
    run_example("resnet_on_onesa")


def test_bert_example_runs():
    run_example("bert_on_onesa")


def test_gcn_example_runs():
    run_example("gcn_on_onesa")


def test_serving_demo_runs():
    run_example("serving_demo")


def test_multitenant_demo_runs():
    run_example("multitenant_demo")


def test_heterogeneous_demo_runs():
    run_example("heterogeneous_demo")


def test_generation_demo_runs():
    run_example("generation_demo")


def test_autotune_demo_runs():
    run_example("autotune_demo")


def test_design_space_example_runs():
    run_example("design_space_exploration")


def test_granularity_search_example_runs():
    run_example("granularity_search")


def test_run_all_experiments_quick():
    sys.path.insert(0, str(EXAMPLES_DIR))
    sys.argv = ["run_all_experiments.py", "--quick"]
    try:
        module = importlib.import_module("run_all_experiments")
        importlib.reload(module)
        module.main()
    finally:
        sys.path.remove(str(EXAMPLES_DIR))


def test_examples_have_docstrings_and_main():
    for path in EXAMPLES_DIR.glob("*.py"):
        source = path.read_text()
        assert '"""' in source.partition("\n")[2] or source.startswith('"""'), path
        assert "def main()" in source, path
