"""Synthetic-dataset substrate tests."""

import numpy as np
import pytest

from repro.data import (
    TASK_REGISTRY,
    get_task,
    make_graph_task,
    make_image_task,
    make_sequence_task,
)
from repro.data.registry import tasks_for_family


class TestImageTask:
    def test_shapes_and_labels(self):
        t = make_image_task("t", n_classes=5, n_train=64, n_test=32, shape=(3, 8, 8))
        assert t.x_train.shape == (64, 3, 8, 8)
        assert t.x_test.shape == (32, 3, 8, 8)
        assert t.y_train.min() >= 0 and t.y_train.max() < 5

    def test_deterministic_given_seed(self):
        a = make_image_task("t", seed=7)
        b = make_image_task("t", seed=7)
        assert np.array_equal(a.x_train, b.x_train)
        assert np.array_equal(a.y_test, b.y_test)

    def test_different_seeds_differ(self):
        a = make_image_task("t", seed=1)
        b = make_image_task("t", seed=2)
        assert not np.array_equal(a.x_train, b.x_train)

    def test_values_bounded_for_int16(self):
        t = make_image_task("t", noise=5.0)
        assert np.abs(t.x_train).max() <= 4.0

    def test_borderline_fraction_mixes(self):
        clean = make_image_task("t", borderline_fraction=0.0, seed=0)
        mixed = make_image_task("t", borderline_fraction=0.9, seed=0)
        assert not np.array_equal(clean.x_train, mixed.x_train)


class TestSequenceTask:
    def test_shapes(self):
        t = make_sequence_task("t", n_train=32, n_test=16, seq_len=12, vocab=20)
        assert t.x_train.shape == (32, 12)
        assert t.x_train.max() < 20
        assert t.seq_len == 12

    def test_signal_learnable(self):
        """With zero noise, class keywords must appear in sequences."""
        t = make_sequence_task("t", noise=0.0, seed=0)
        assert t.x_train.dtype.kind in "iu"

    def test_deterministic(self):
        a = make_sequence_task("t", seed=3)
        b = make_sequence_task("t", seed=3)
        assert np.array_equal(a.x_test, b.x_test)


class TestGraphTask:
    def test_shapes_and_masks(self):
        t = make_graph_task("g", n_nodes=50, n_classes=3, n_features=8)
        assert t.features.shape == (50, 8)
        assert t.a_hat.shape == (50, 50)
        assert t.train_mask.sum() + t.test_mask.sum() == 50
        assert not np.any(t.train_mask & t.test_mask)

    def test_adjacency_symmetric_normalized(self):
        t = make_graph_task("g", n_nodes=40)
        assert np.allclose(t.a_hat, t.a_hat.T)
        assert np.linalg.eigvalsh(t.a_hat).max() <= 1.0 + 1e-9

    def test_deterministic(self):
        a = make_graph_task("g", seed=5)
        b = make_graph_task("g", seed=5)
        assert np.array_equal(a.a_hat, b.a_hat)


class TestRegistry:
    def test_twelve_tasks_registered(self):
        """Table III evaluates 4 tasks per family, 3 families."""
        assert len(TASK_REGISTRY) == 12

    def test_four_per_family(self):
        for family in ("cnn", "bert", "gcn"):
            assert len(tasks_for_family(family)) == 4

    def test_get_task_builds(self):
        t = get_task("qmnist")
        assert t.n_classes == 10

    def test_unknown_task(self):
        with pytest.raises(KeyError, match="qmnist"):
            get_task("imagenet")

    def test_paper_baselines_recorded(self):
        assert TASK_REGISTRY["cola"].paper_baseline == pytest.approx(0.565)
        assert TASK_REGISTRY["qmnist"].paper_baseline == pytest.approx(1.0)

    def test_difficulty_ordering_in_registry(self):
        """Within each family, paper baselines order the difficulty."""
        cnn = tasks_for_family("cnn")
        assert cnn["qmnist"].paper_baseline > cnn["cifar100"].paper_baseline
        bert = tasks_for_family("bert")
        assert bert["sst2"].paper_baseline > bert["cola"].paper_baseline
