"""Chaos suite: the fault-tolerance invariants of the serving runtime.

The load-bearing contract, pinned over explicit plans and seeded
sweeps: **every admitted, non-shed request either completes exactly
once, bit-identical to a fault-free run, or is reported failed with a
reason** — and the fault counters reconcile exactly (every ``retry``
action produces exactly one follow-up attempt; completed + failed
partition the admitted requests).

Everything runs in simulated time off deterministic plans, so each
test is exactly as reproducible as a healthy run: no sleeps, no real
clocks, no flaky timing.
"""

import numpy as np
import pytest

from repro.nn.executor import ArrayBackend
from repro.nn.models import TinyBERT
from repro.serving import (
    BreakerConfig,
    ClusterDispatcher,
    ClusterSpec,
    ElasticConfig,
    FabricFault,
    FaultPlan,
    InferenceEngine,
    ModelSpec,
    RetryPolicy,
    ShardCrash,
    ShardSlowdown,
    WorkerDeath,
    WorkerFailedError,
    corrupt_fabric_entries,
    serve_multiproc,
)
from repro.store import FileStore, InProcessLRU, StoreLockTimeout, TieredStore
from repro.systolic import SystolicArray, SystolicConfig

pytestmark = pytest.mark.chaos

CONFIG = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=8)
MODEL_KWARGS = dict(
    vocab=16, seq_len=8, dim=8, heads=2, ff_dim=16, n_layers=1,
    causal=True, seed=0,
)


def _pool(n_shards):
    return ClusterDispatcher.from_arrays(
        [SystolicArray(CONFIG) for _ in range(n_shards)], 0.25
    )


def _engine(n_shards, faults=None, retry_policy=None, breaker=None, **kw):
    kw.setdefault("max_batch_size", 4)
    kw.setdefault("flush_timeout", 1e-4)
    engine = InferenceEngine(
        _pool(n_shards),
        faults=faults,
        retry_policy=retry_policy,
        breaker=breaker,
        **kw,
    )
    engine.register("bert", TinyBERT(**MODEL_KWARGS))
    return engine


def _tokens(n, seed=0):
    return np.random.default_rng(seed).integers(0, 16, size=(n, 8))


def _run(engine, tokens, **submit_kw):
    ids = [engine.submit("bert", row, arrival=i * 1e-5, **submit_kw)
           for i, row in enumerate(tokens)]
    return ids, engine.run()


def _outputs_by_input(report):
    """Output bytes keyed by input bytes — the placement-free identity
    of a request, comparable across runs with different engine ids."""
    return {
        record.request.inputs.tobytes(): record.outputs.tobytes()
        for record in report.completed
    }


def _check_invariants(ids, report):
    """The chaos contract: exactly-once completion and exact counters."""
    completed_ids = [record.request.request_id for record in report.completed]
    failed_ids = [record.request.request_id for record in report.failed]
    shed_ids = [record.request.request_id for record in report.shed]
    # Exactly once: completed / failed / shed partition the submitted set.
    assert len(completed_ids) == len(set(completed_ids))
    assert sorted(completed_ids + failed_ids + shed_ids) == sorted(ids)
    # Every retry action produced exactly one follow-up attempt: a
    # completed placement past attempt 0, or another crashed attempt.
    retry_actions = sum(
        1 for event in report.fault_events if event.action == "retry"
    )
    assert retry_actions == report.retries


class TestPlanConstruction:
    def test_from_seed_reproducible(self):
        kw = dict(n_shards=4, horizon=1.0, crash_rate=1.0,
                  n_workers=2, death_rate=1.0)
        assert FaultPlan.from_seed(7, **kw) == FaultPlan.from_seed(7, **kw)
        assert FaultPlan.from_seed(7, **kw) != FaultPlan.from_seed(8, **kw)

    def test_event_validation(self):
        with pytest.raises(ValueError, match="at < until"):
            ShardCrash(shard=0, at=2.0, until=1.0)
        with pytest.raises(ValueError, match="at < until"):
            ShardSlowdown(shard=0, at=-1.0, until=1.0, factor=2.0)
        with pytest.raises(ValueError, match="factor"):
            ShardSlowdown(shard=0, at=0.0, until=1.0, factor=0.5)
        with pytest.raises(ValueError, match="nonzero"):
            WorkerDeath(worker=0, at=1.0, exit_code=0)
        with pytest.raises(ValueError, match="fabric fault kind"):
            FabricFault(kind="gremlins", namespace="ns")
        with pytest.raises(ValueError, match="horizon"):
            FaultPlan.from_seed(0, n_shards=1, horizon=0.0)

    def test_retry_policy_backoff_capped(self):
        policy = RetryPolicy(backoff_base=1e-4, backoff_factor=2.0,
                             backoff_cap=3e-4)
        assert policy.backoff(0) == 1e-4
        assert policy.backoff(1) == 2e-4
        assert policy.backoff(10) == 3e-4  # capped, never unbounded
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)

    def test_for_shard_block_remaps_and_drops(self):
        plan = FaultPlan(events=(
            ShardCrash(shard=2, at=0.0, until=1.0),
            ShardCrash(shard=5, at=0.0, until=1.0),
            ShardSlowdown(shard=3, at=0.0, until=1.0, factor=2.0),
            WorkerDeath(worker=1, at=0.5),
            FabricFault(kind="corrupt", namespace="ns"),
        ))
        block = plan.for_shard_block(2, 2)  # global shards 2..3
        assert block.crashes(0) and block.crashes(0)[0].shard == 0
        assert not block.crashes(3)  # shard 5 dropped
        assert block.slowdown_factor(1, 0.5) == 2.0
        assert block.worker_death(1) is not None  # worker events kept
        assert block.fabric_faults("corrupt")  # fabric events kept

    def test_without_worker_death(self):
        plan = FaultPlan(events=(WorkerDeath(worker=0, at=0.5),
                                 WorkerDeath(worker=1, at=0.5)))
        stripped = plan.without_worker_death(1)
        assert stripped.worker_death(1) is None
        assert stripped.worker_death(0) is not None


class TestFaultFreeEquivalence:
    def test_empty_plan_is_a_noop(self):
        tokens = _tokens(8)
        ids_plain, plain = _run(_engine(2), tokens)
        ids_chaos, chaos = _run(_engine(2, faults=FaultPlan()), tokens)
        assert ids_plain == ids_chaos
        assert not chaos.has_fault_activity
        assert _outputs_by_input(plain) == _outputs_by_input(chaos)
        # The timeline is untouched too, not just the outputs.
        assert [c.finish for c in plain.completed] == [
            c.finish for c in chaos.completed
        ]


class TestCrashRecovery:
    def test_crashed_shard_recovers_bit_identical(self):
        tokens = _tokens(16)
        ids, baseline = _run(_engine(2), tokens)
        horizon = max(c.finish for c in baseline.completed)
        # Shard 0 is dead for the entire run: every batch placed there
        # fails DOA, the breaker opens, and everything re-places on
        # shard 1.
        plan = FaultPlan(events=(ShardCrash(shard=0, at=0.0, until=2 * horizon),))
        chaos_ids, chaos = _run(_engine(2, faults=plan), tokens)
        _check_invariants(chaos_ids, chaos)
        assert not chaos.failed  # a healthy shard existed throughout
        assert chaos.retries > 0
        assert chaos.recovered_requests > 0
        assert chaos.replacements > 0  # retries moved off the dead shard
        assert all(c.shard == 1 for c in chaos.completed)
        assert _outputs_by_input(baseline) == _outputs_by_input(chaos)
        # The breaker opened on the dead shard and was never re-closed
        # by traffic (everything healthy ran on shard 1).
        opens = [t for t in chaos.breaker_transitions if t.to_state == "open"]
        assert opens and all(t.shard == 0 for t in opens)
        assert "faults" in chaos.summary()

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_seeded_chaos_invariants(self, seed):
        tokens = _tokens(12, seed=seed)
        ids, baseline = _run(_engine(3), tokens)
        horizon = max(c.finish for c in baseline.completed)
        plan = FaultPlan.from_seed(
            seed, n_shards=3, horizon=horizon,
            crash_rate=0.9, slowdown_rate=0.5, max_slowdown=3.0,
        )
        chaos_ids, chaos = _run(
            _engine(3, faults=plan, retry_policy=RetryPolicy(max_retries=6)),
            tokens,
        )
        _check_invariants(chaos_ids, chaos)
        # Whatever completed is bit-identical to the fault-free run.
        reference = _outputs_by_input(baseline)
        for key, out in _outputs_by_input(chaos).items():
            assert out == reference[key]

    def test_seeded_chaos_reproducible(self):
        tokens = _tokens(10)
        plan = FaultPlan.from_seed(5, n_shards=2, horizon=5e-3, crash_rate=1.0)
        _, first = _run(_engine(2, faults=plan), tokens)
        _, second = _run(_engine(2, faults=plan), tokens)
        assert _outputs_by_input(first) == _outputs_by_input(second)
        assert len(first.fault_events) == len(second.fault_events)
        assert [c.finish for c in first.completed] == [
            c.finish for c in second.completed
        ]


class TestBreakerLifecycle:
    def test_all_shards_down_parks_then_probe_recovers(self):
        # One shard, dead at t=0 for 5e-4 s.  The first attempt fails
        # DOA and opens the breaker; with no healthy alternative the
        # retry parks until the quarantine expires, and the half-open
        # probe (after the outage) succeeds and closes the breaker.
        plan = FaultPlan(events=(ShardCrash(shard=0, at=0.0, until=5e-4),))
        engine = _engine(1, faults=plan,
                         retry_policy=RetryPolicy(max_retries=10))
        ids, report = _run(engine, _tokens(4))
        _check_invariants(ids, report)
        assert not report.failed
        parks = [e for e in report.fault_events if e.action == "park"]
        assert parks
        states = [(t.from_state, t.to_state) for t in report.breaker_transitions]
        assert ("closed", "open") in states
        assert ("open", "half_open") in states
        assert ("half_open", "closed") in states

    def test_failed_probe_doubles_quarantine(self):
        # A crashed shard parks work until its outage ends (the DOA
        # handler holds busy_until through the window), so a *second*
        # overlapping outage is what kills the re-admission probe: the
        # re-open must then quarantine for twice as long (capped).
        breaker = BreakerConfig(quarantine=1e-4, quarantine_cap=1e-1)
        plan = FaultPlan(events=(
            ShardCrash(shard=0, at=0.0, until=2.5e-4),
            ShardCrash(shard=0, at=2e-4, until=6e-4),
        ))
        engine = _engine(1, faults=plan, breaker=breaker,
                         retry_policy=RetryPolicy(max_retries=10))
        ids, report = _run(engine, _tokens(2))
        _check_invariants(ids, report)
        assert not report.failed
        reopens = [
            t for t in report.breaker_transitions
            if t.from_state == "half_open" and t.to_state == "open"
        ]
        assert reopens  # at least one probe failed inside the outage
        health = engine.shard_health[0]
        assert health.state == "closed"  # recovered by the end
        assert health.failures >= 2


class TestRetryBudgets:
    def test_max_retries_exhausts_to_failure(self):
        # A DOA failure holds the shard busy through its outage, so a
        # retry on a single window always lands at recovery time and
        # succeeds.  Chained overlapping outages keep every retry
        # landing inside a dead window: the budget must bound the loop
        # and report every request failed — termination is the meat of
        # this test.
        plan = FaultPlan(events=(
            ShardCrash(shard=0, at=0.0, until=1.0),
            ShardCrash(shard=0, at=0.5, until=2.0),
            ShardCrash(shard=0, at=1.5, until=3.0),
        ))
        engine = _engine(1, faults=plan,
                         retry_policy=RetryPolicy(max_retries=2))
        ids, report = _run(engine, _tokens(4))
        _check_invariants(ids, report)
        assert not report.completed
        assert report.failed_by_reason() == {"max_retries": 4}
        assert all(r.attempts == 3 for r in report.failed)  # 1 + 2 retries
        abandons = [e for e in report.fault_events if e.action == "abandon"]
        assert abandons
        assert "failed requests" in report.fault_section()

    def test_doomed_retry_is_shed_not_looped(self):
        # A request whose deadline precedes the backoff wake time is
        # failed immediately ("retry_deadline"), not retried into a
        # guaranteed miss.
        plan = FaultPlan(events=(ShardCrash(shard=0, at=0.0, until=1e6),))
        engine = _engine(
            1, faults=plan,
            retry_policy=RetryPolicy(max_retries=3, backoff_base=10.0,
                                     backoff_cap=10.0),
        )
        ids, report = _run(engine, _tokens(2), deadline=1.0)
        _check_invariants(ids, report)
        assert not report.completed
        assert report.failed_by_reason() == {"retry_deadline": 2}
        assert all(r.attempts == 1 for r in report.failed)


class TestSlowdowns:
    def test_slowdown_stretches_timeline_only(self):
        tokens = _tokens(8)
        ids, baseline = _run(_engine(1), tokens)
        plan = FaultPlan(events=(
            ShardSlowdown(shard=0, at=0.0, until=1e6, factor=3.0),
        ))
        chaos_ids, chaos = _run(_engine(1, faults=plan), tokens)
        _check_invariants(chaos_ids, chaos)
        assert not chaos.failed and not chaos.fault_events
        assert _outputs_by_input(baseline) == _outputs_by_input(chaos)
        assert chaos.makespan > baseline.makespan
        # Total cycles are untouched — a straggler is slow, not wasteful.
        assert chaos.total_cycles == baseline.total_cycles


class TestWorkerSupervision:
    """Worker-death chaos through real fork + exit-code detection."""

    def _serve(self, requests, **kw):
        kw.setdefault("n_workers", 2)
        kw.setdefault("max_batch_size", 4)
        kw.setdefault("flush_timeout", 1e-4)
        return serve_multiproc(
            ClusterSpec.homogeneous(CONFIG, 2),
            [ModelSpec(name="bert", factory=TinyBERT, kwargs=MODEL_KWARGS)],
            requests,
            **kw,
        )

    def _requests(self, n):
        rng = np.random.default_rng(0)
        return [
            {"model": "bert", "inputs": rng.integers(0, 16, size=8),
             "arrival": i * 1e-5}
            for i in range(n)
        ]

    def test_unsupervised_death_raises(self):
        plan = FaultPlan(events=(WorkerDeath(worker=1, at=5e-5, exit_code=7),))
        with pytest.raises(WorkerFailedError) as excinfo:
            self._serve(self._requests(8), fault_plan=plan)
        assert excinfo.value.worker == 1
        assert excinfo.value.exit_code == 7
        assert excinfo.value.shard_block == (1,)
        assert "worker 1" in str(excinfo.value)

    def test_supervised_restart_completes_exactly_once(self):
        requests = self._requests(8)
        healthy = self._serve(requests)
        plan = FaultPlan(events=(WorkerDeath(worker=1, at=5e-5),))
        result = self._serve(requests, fault_plan=plan,
                             supervise=True, max_restarts=1)
        merged = result.merged
        assert merged.worker_restarts == 1
        assert merged.worker_redistributions == 0
        assert merged.n_requests == len(requests)
        assert not merged.failed
        assert _outputs_by_input(merged) == _outputs_by_input(healthy.merged)
        assert "supervision" in merged.fault_section()

    def test_supervised_redistribution_completes_exactly_once(self):
        requests = self._requests(8)
        healthy = self._serve(requests)
        plan = FaultPlan(events=(WorkerDeath(worker=1, at=5e-5),))
        result = self._serve(requests, fault_plan=plan,
                             supervise=True, max_restarts=0)
        merged = result.merged
        assert merged.worker_restarts == 0
        assert merged.worker_redistributions == 1
        assert merged.n_requests == len(requests)
        assert not merged.failed
        assert _outputs_by_input(merged) == _outputs_by_input(healthy.merged)
        # The re-run landed on the donor's block: every completion is
        # on global shard 0, and the donor's shards carry the extra
        # busy time of the serial re-run.
        assert {c.shard for c in merged.completed} == {0}


class TestFabricChaos:
    def test_corruption_quarantined_as_misses(self, tmp_path):
        root = str(tmp_path / "fabric")
        store = FileStore(root)
        for i in range(3):
            store.put("serving.plans", f"k{i}", {"plan": i})
        plan = FaultPlan(events=(
            FabricFault(kind="corrupt", namespace="serving.plans"),
        ))
        assert corrupt_fabric_entries(plan, root) == 3
        fresh = FileStore(root)  # a different worker's view of the root
        for i in range(3):
            assert fresh.get("serving.plans", f"k{i}") is None
        stats = fresh.stats("serving.plans")
        assert stats["corruptions"] == 3
        assert stats["entries"] == 0  # quarantined out of the index
        # The namespace still works — corruption cost misses, not the
        # namespace.
        assert fresh.put("serving.plans", "k0", {"plan": "rebuilt"})
        assert fresh.get("serving.plans", "k0") == {"plan": "rebuilt"}

    def test_lock_timeout_degrades_tiered_to_local(self, tmp_path):
        import fcntl
        import os

        root = str(tmp_path / "fabric")
        shared = FileStore(root, lock_timeout=0.05)
        tiered = TieredStore(InProcessLRU(), shared)
        tiered.put("ns", "warm", 1)  # healthy write-through
        # Wedge the namespace lock from "another worker".
        lock_path = os.path.join(root, "ns", ".lock")
        holder = open(lock_path, "a+")
        fcntl.flock(holder.fileno(), fcntl.LOCK_EX)
        try:
            with pytest.raises(StoreLockTimeout):
                shared.get("ns", "warm")
            # The tiered store degrades instead of raising: local tier
            # keeps serving, shared-tier ops are skipped.
            assert tiered.get("ns", "warm") == 1  # local hit
            assert tiered.put("ns", "fresh", 2)
            assert tiered.degraded
            assert tiered.degraded_ops >= 1
            assert tiered.get("ns", "fresh") == 2
        finally:
            fcntl.flock(holder.fileno(), fcntl.LOCK_UN)
            holder.close()
        # Degraded mode latches across the lock release until recover().
        skipped = tiered.degraded_ops
        tiered.put("ns", "while-degraded", 3)
        assert tiered.degraded_ops > skipped
        assert shared.get("ns", "while-degraded") is None  # never written
        assert tiered.recover()
        tiered.put("ns", "after-recovery", 4)
        assert shared.get("ns", "after-recovery") == 4  # write-through is back


class TestElasticChaos:
    """The elastic runtime under fire: with look-ahead, stealing and
    autoscaling all on, seeded crashes and slowdowns must not breach
    the exactly-once, bit-identical completion-or-reported-failure
    contract — re-placement moves work and resizing moves capacity,
    neither ever changes arithmetic or double-answers a request."""

    ELASTIC = ElasticConfig(
        lookahead=True, steal=True, autoscale=True,
        autoscale_window=4, autoscale_cooldown=0.0, min_shards=2,
    )

    def _elastic_engine(self, faults=None):
        return _engine(
            4,
            faults=faults,
            placement="lookahead",
            breaker=BreakerConfig(failure_threshold=1),
            elastic=self.ELASTIC,
        )

    def test_elastic_outputs_match_healthy_run_under_faults(self):
        tokens = _tokens(24, seed=5)
        _, healthy = _run(self._elastic_engine(), tokens)
        plan = FaultPlan(events=(
            ShardCrash(shard=0, at=0.0, until=5e-4),
            ShardSlowdown(shard=1, at=0.0, until=1e-3, factor=8.0),
        ))
        ids, chaotic = _run(self._elastic_engine(faults=plan), tokens)
        _check_invariants(ids, chaotic)
        healthy_outputs = _outputs_by_input(healthy)
        for inputs, outputs in _outputs_by_input(chaotic).items():
            assert outputs == healthy_outputs[inputs]

    @pytest.mark.parametrize("seed", range(4))
    def test_seeded_sweep_with_all_elastic_knobs(self, seed):
        tokens = _tokens(20, seed=seed)
        plan = FaultPlan.from_seed(
            seed, n_shards=4, horizon=1e-3,
            crash_rate=0.6, slowdown_rate=0.6,
        )
        ids, report = _run(self._elastic_engine(faults=plan), tokens)
        _check_invariants(ids, report)
        repeat_ids, repeat = _run(self._elastic_engine(faults=plan), tokens)
        _check_invariants(repeat_ids, repeat)
        assert _outputs_by_input(report) == _outputs_by_input(repeat)

    def test_steal_and_scaling_logs_replay_identically(self):
        plan = FaultPlan(events=(
            ShardSlowdown(shard=0, at=0.0, until=1e-3, factor=8.0),
        ))
        tokens = _tokens(16, seed=9)
        _, first = _run(self._elastic_engine(faults=plan), tokens)
        _, second = _run(self._elastic_engine(faults=plan), tokens)
        assert first.steals == second.steals
        assert first.scaling_events == second.scaling_events

    def test_autoscaler_never_strands_work_when_shards_crash(self):
        """Shrinking under headroom + a crash on a survivor: parked
        batches must still drain (the all-down wake ignores retired
        shards, not crashed ones)."""
        plan = FaultPlan(events=(
            ShardCrash(shard=1, at=0.0, until=3e-4),
        ))
        tokens = _tokens(20, seed=13)
        ids, report = _run(self._elastic_engine(faults=plan), tokens)
        _check_invariants(ids, report)
        assert len(report.completed) + len(report.failed) == len(ids)
