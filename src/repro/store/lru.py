"""The default in-process backend: per-namespace bounded LRU dicts.

One :class:`InProcessLRU` holds any number of namespaces, each an
``OrderedDict`` evicting least-recently-used entries under the
namespace's :class:`~repro.store.base.NamespaceLimit`.  Values are
stored by reference — zero copies, identity-preserving — which is what
makes the refactored cache sites *bit-identical* to their pre-store
selves: a ``plan_gemm`` repeat returns the same schedule object, a
parameter-cache hit the same frozen array.

The eviction policy replicates the historical caches exactly: a new
entry is rejected only when it alone exceeds the byte budget, an
existing key is replaced in place (old bytes released first), and LRU
entries evict until both the entry and byte budgets hold — the
incoming entry, at MRU position, is never the one evicted.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.store.base import (
    MISSING,
    CacheStore,
    NamespaceLimit,
    NamespaceStats,
    namespace_default,
)


class _Namespace:
    """One namespace's entries, budget and counters."""

    __slots__ = ("entries", "limit", "stats")

    def __init__(self, limit: NamespaceLimit) -> None:
        # key -> (value, nbytes, version)
        self.entries: "OrderedDict[object, Tuple[object, int, Optional[int]]]" = (
            OrderedDict()
        )
        self.limit = limit
        self.stats = NamespaceStats()


class InProcessLRU(CacheStore):
    """Per-process store over per-namespace bounded ``OrderedDict`` LRUs."""

    def __init__(self) -> None:
        self._namespaces: Dict[str, _Namespace] = {}

    def _ns(self, namespace: str) -> _Namespace:
        ns = self._namespaces.get(namespace)
        if ns is None:
            ns = self._namespaces[namespace] = _Namespace(
                namespace_default(namespace)
            )
        return ns

    # -- core ------------------------------------------------------------
    def get(self, namespace: str, key, default=None, touch: bool = True):
        ns = self._ns(namespace)
        entry = ns.entries.get(key)
        if entry is None:
            ns.stats.misses += 1
            return default
        if touch:
            ns.entries.move_to_end(key)
        ns.stats.hits += 1
        return entry[0]

    def put(
        self,
        namespace: str,
        key,
        value,
        nbytes: int = 0,
        version: Optional[int] = None,
    ) -> bool:
        ns = self._ns(namespace)
        nbytes = int(nbytes)
        limit = ns.limit
        if limit.max_bytes is not None and nbytes > limit.max_bytes:
            ns.stats.rejections += 1
            return False
        old = ns.entries.pop(key, None)
        if old is not None:
            ns.stats.bytes -= old[1]
            ns.stats.entries -= 1
        self._evict_for(ns, incoming_bytes=nbytes)
        ns.entries[key] = (value, nbytes, version)
        ns.stats.bytes += nbytes
        ns.stats.entries += 1
        ns.stats.insertions += 1
        return True

    def version_of(self, namespace: str, key) -> Optional[int]:
        entry = self._ns(namespace).entries.get(key)
        return None if entry is None else entry[2]

    def _evict_for(self, ns: _Namespace, incoming_bytes: int) -> None:
        """Evict LRU entries until budgets hold with one entry of
        ``incoming_bytes`` about to land."""
        limit = ns.limit
        while ns.entries and (
            (
                limit.max_entries is not None
                and ns.stats.entries + 1 > limit.max_entries
            )
            or (
                limit.max_bytes is not None
                and ns.stats.bytes + incoming_bytes > limit.max_bytes
            )
        ):
            _, (_, evicted_bytes, _) = ns.entries.popitem(last=False)
            ns.stats.bytes -= evicted_bytes
            ns.stats.entries -= 1
            ns.stats.evictions += 1

    def contains(self, namespace: str, key) -> bool:
        return key in self._ns(namespace).entries

    def touch(self, namespace: str, key) -> None:
        ns = self._ns(namespace)
        if key in ns.entries:
            ns.entries.move_to_end(key)

    def delete(self, namespace: str, key) -> bool:
        ns = self._ns(namespace)
        entry = ns.entries.pop(key, None)
        if entry is None:
            return False
        ns.stats.bytes -= entry[1]
        ns.stats.entries -= 1
        return True

    def clear(self, namespace: Optional[str] = None) -> None:
        targets = (
            [self._ns(namespace)] if namespace is not None
            else list(self._namespaces.values())
        )
        for ns in targets:
            ns.entries.clear()
            ns.stats.entries = 0
            ns.stats.bytes = 0

    # -- enumeration -----------------------------------------------------
    def keys(self, namespace: str) -> List[object]:
        return list(self._ns(namespace).entries.keys())

    def values(self, namespace: str) -> List[object]:
        return [entry[0] for entry in self._ns(namespace).entries.values()]

    def nbytes_of(self, namespace: str, key) -> int:
        entry = self._ns(namespace).entries.get(key)
        return 0 if entry is None else entry[1]

    # -- budgets and stats ----------------------------------------------
    def set_limit(
        self,
        namespace: str,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        ns = self._ns(namespace)
        ns.limit = NamespaceLimit(max_entries=max_entries, max_bytes=max_bytes)
        # A shrink below current occupancy evicts immediately, exactly
        # like the historical set_*_capacity functions.
        limit = ns.limit
        while ns.entries and (
            (limit.max_entries is not None and ns.stats.entries > limit.max_entries)
            or (limit.max_bytes is not None and ns.stats.bytes > limit.max_bytes)
        ):
            _, (_, evicted_bytes, _) = ns.entries.popitem(last=False)
            ns.stats.bytes -= evicted_bytes
            ns.stats.entries -= 1
            ns.stats.evictions += 1

    def limit(self, namespace: str) -> NamespaceLimit:
        return self._ns(namespace).limit

    def stats(self, namespace: Optional[str] = None) -> Dict[str, object]:
        if namespace is not None:
            ns = self._ns(namespace)
            return ns.stats.as_dict(ns.limit)
        return {
            name: ns.stats.as_dict(ns.limit)
            for name, ns in sorted(self._namespaces.items())
        }

    def reset_stats(self, namespace: Optional[str] = None) -> None:
        targets = (
            [self._ns(namespace)] if namespace is not None
            else list(self._namespaces.values())
        )
        for ns in targets:
            ns.stats.reset_counters()
