"""ONE-SA core: capped piecewise linearization of nonlinear operations.

This subpackage implements the paper's primary contribution (Section III):

* a library of the scalar nonlinear functions that appear in the evaluated
  networks (:mod:`repro.core.functions`);
* construction of CPWL segment tables with power-of-two-friendly
  granularities (:mod:`repro.core.segment_table`);
* the CPWL approximation engine with error analysis
  (:mod:`repro.core.cpwl`);
* the two architecture-level events the array executes:
  Intermediate Parameter Fetching (:mod:`repro.core.ipf`) and the
  Matrix Hadamard Product (:mod:`repro.core.mhp`);
* composite operations (softmax, layer normalization, batch
  normalization) decomposed into CPWL primitives plus linear reductions
  (:mod:`repro.core.nonlinear_ops`);
* granularity selection utilities (:mod:`repro.core.granularity`).
"""

from repro.core.functions import (
    FUNCTION_LIBRARY,
    NonlinearFunction,
    get_function,
    register_function,
)
from repro.core.segment_table import SegmentTable, build_segment_table
from repro.core.cpwl import CPWLApproximator, approximation_error
from repro.core.ipf import IPFResult, fetch_parameters, segment_indices
from repro.core.mhp import matrix_hadamard_product
from repro.core.nonlinear_ops import (
    approximator_cache_info,
    clear_approximator_cache,
    cpwl_batchnorm,
    cpwl_gelu,
    cpwl_layernorm,
    cpwl_relu,
    cpwl_sigmoid,
    cpwl_softmax,
    cpwl_tanh,
    set_approximator_cache_capacity,
)
from repro.core.granularity import (
    GranularityChoice,
    recommend_granularity,
    sweep_granularity,
)

__all__ = [
    "NonlinearFunction",
    "FUNCTION_LIBRARY",
    "get_function",
    "register_function",
    "SegmentTable",
    "build_segment_table",
    "CPWLApproximator",
    "approximation_error",
    "IPFResult",
    "segment_indices",
    "fetch_parameters",
    "matrix_hadamard_product",
    "cpwl_gelu",
    "cpwl_relu",
    "cpwl_sigmoid",
    "cpwl_tanh",
    "cpwl_softmax",
    "cpwl_layernorm",
    "cpwl_batchnorm",
    "approximator_cache_info",
    "clear_approximator_cache",
    "set_approximator_cache_capacity",
    "GranularityChoice",
    "recommend_granularity",
    "sweep_granularity",
]
