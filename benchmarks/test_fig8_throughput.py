"""Bench E5/E10 — Fig. 8: GOPS/GNFS sweeps and the throughput cliff.

Reproduced claims:

* throughput grows with PEs and MACs up to a "throughput cliff";
* the MAC count has the stronger influence on throughput;
* small matrices on large arrays are drain-dominated — the Section V-C
  example (32×32 on 16×16 PEs) spends ~85% of cycles transmitting
  results (paper: 84.8%, we measure ~86%);
* the same trends hold for the newly enabled nonlinear computation.
"""

import pytest

from repro.evaluation.perf_sweep import (
    figure8_linear,
    figure8_nonlinear,
    format_figure8,
    throughput_cliff_example,
)


def test_fig8_linear(benchmark, print_artifact):
    points = benchmark(figure8_linear)
    print_artifact(format_figure8(points, "GOPS"))

    by = {(p.pe_dim, p.macs, p.matrix_dim): p for p in points}

    # Throughput grows with MACs (512-dim problems, 8x8 array).
    assert by[(8, 16, 512)].achieved > 4 * by[(8, 2, 512)].achieved
    # "The number of MACs exerts a more pronounced influence": per
    # doubling of compute resources, MAC scaling yields at least the
    # gain of PE scaling (quadrupling the grid = two doublings).
    gain_macs = by[(8, 8, 512)].achieved / by[(8, 4, 512)].achieved
    gain_pes = by[(16, 4, 512)].achieved / by[(8, 4, 512)].achieved
    assert gain_macs >= 0.95 * gain_pes**0.5
    # Cliff: small inputs on the largest array sit far below peak.
    assert by[(16, 32, 32)].efficiency < 0.05
    # Large inputs on moderate arrays approach peak.
    assert by[(8, 16, 512)].efficiency > 0.95


def test_fig8_nonlinear(benchmark, print_artifact):
    points = benchmark(figure8_nonlinear)
    print_artifact(format_figure8(points, "GNFS"))

    by = {(p.pe_dim, p.macs, p.matrix_dim): p for p in points}
    # GNFS scales with both PEs and MACs for large matrices.
    assert by[(8, 16, 512)].achieved > 1.8 * by[(4, 16, 512)].achieved
    assert by[(8, 16, 512)].achieved > 3.0 * by[(8, 4, 512)].achieved
    # And shows the same small-matrix cliff.
    assert by[(16, 32, 32)].efficiency < 0.6
    assert by[(16, 32, 512)].efficiency > 0.9


def test_throughput_cliff_example(benchmark, print_artifact):
    example = benchmark(throughput_cliff_example)
    print_artifact(
        "Section V-C drain example (32x32 input, 16x16 PEs):\n"
        + "\n".join(f"  {k}: {v}" for k, v in example.items())
    )
    assert example["drain_fraction"] == pytest.approx(0.848, abs=0.05)
