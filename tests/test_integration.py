"""Cross-module integration tests: end-to-end paper-pipeline checks."""

import numpy as np
import pytest

from repro.core.granularity import PAPER_GRANULARITIES
from repro.data import get_task
from repro.evaluation.accuracy import format_table3, table3_accuracy
from repro.nn.executor import CPWLBackend, FloatBackend, QuantizedFloatBackend
from repro.nn.models import GCN, SmallResNet, TinyBERT
from repro.nn.training import accuracy, train_classifier, train_gcn
from repro.systolic import SystolicArray, SystolicConfig


class TestEndToEndCNN:
    @pytest.fixture(scope="class")
    def trained(self):
        task = get_task("qmnist")
        model = SmallResNet(in_channels=1, n_classes=task.n_classes, seed=0)
        train_classifier(model, task.x_train, task.y_train, epochs=6, lr=3e-3)
        return model, task

    def test_baseline_accuracy(self, trained):
        model, task = trained
        acc = accuracy(model.predict(task.x_test, QuantizedFloatBackend()), task.y_test)
        assert acc > 0.95

    def test_default_granularity_negligible_loss(self, trained):
        """The paper's headline: at granularity 0.25 the loss is negligible."""
        model, task = trained
        base = accuracy(model.predict(task.x_test, QuantizedFloatBackend()), task.y_test)
        cpwl = accuracy(model.predict(task.x_test, CPWLBackend(0.25)), task.y_test)
        assert abs(cpwl - base) <= 0.02

    def test_all_granularities_run(self, trained):
        model, task = trained
        for g in PAPER_GRANULARITIES:
            preds = model.predict(task.x_test[:32], CPWLBackend(g))
            assert preds.shape == (32,)


class TestEndToEndBERT:
    @pytest.fixture(scope="class")
    def trained(self):
        task = get_task("sst2")
        model = TinyBERT(
            vocab=task.vocab, seq_len=task.seq_len, n_classes=task.n_classes, seed=0
        )
        train_classifier(
            model, task.x_train, task.y_train, epochs=8, lr=2e-3,
            forward=lambda b: model.forward(b),
        )
        return model, task

    def test_default_granularity_negligible_loss(self, trained):
        model, task = trained
        base = accuracy(model.predict(task.x_test, QuantizedFloatBackend()), task.y_test)
        cpwl = accuracy(model.predict(task.x_test, CPWLBackend(0.25)), task.y_test)
        assert base > 0.85
        assert abs(cpwl - base) <= 0.03


class TestEndToEndGCN:
    def test_gcn_insensitive_to_granularity(self):
        """Table III: GCN accuracy barely moves across granularities."""
        task = get_task("cora")
        model = GCN(task.features.shape[1], hidden=16, n_classes=task.n_classes, seed=0)
        train_gcn(model, task.features, task.a_hat, task.labels, task.train_mask, epochs=120)
        base = accuracy(
            model.predict(task.features, task.a_hat, QuantizedFloatBackend())[task.test_mask],
            task.labels[task.test_mask],
        )
        for g in (0.25, 1.0):
            acc = accuracy(
                model.predict(task.features, task.a_hat, CPWLBackend(g))[task.test_mask],
                task.labels[task.test_mask],
            )
            assert abs(acc - base) <= 0.03


class TestTable3Harness:
    def test_subset_run_and_format(self):
        rows = table3_accuracy(tasks=["qmnist", "cora"], granularities=(0.25,))
        assert len(rows) == 2
        assert all(0.25 in row.deltas for row in rows)
        text = format_table3(rows)
        assert "QMNIST" in text and "Original" in text

    def test_empty_rows_format(self):
        assert format_table3([]) == "(no rows)"


class TestArrayLevelInference:
    def test_whole_network_cycle_account(self):
        """A trained CNN inferred on the array yields a coherent trace:
        GEMM cycles dominate, nonlinear events present, latency sane."""
        from repro.nn.executor import ArrayBackend

        task = get_task("qmnist")
        model = SmallResNet(in_channels=1, n_classes=task.n_classes, seed=0)
        train_classifier(
            model, task.x_train[:64], task.y_train[:64], epochs=1, lr=3e-3
        )
        config = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
        array = SystolicArray(config)
        backend = ArrayBackend(array, 0.25)
        preds = model.predict(task.x_test[:4], backend)
        assert preds.shape == (4,)
        kinds = array.trace.cycles_by_kind()
        assert kinds["gemm"] > kinds.get("mhp", 0)
        assert array.elapsed_seconds() > 0

    def test_cross_backend_prediction_consistency(self):
        """Float, INT16 and the fine-granularity CPWL backends should
        agree on nearly all predictions for a well-trained model."""
        task = get_task("qmnist")
        model = SmallResNet(in_channels=1, n_classes=task.n_classes, seed=0)
        train_classifier(model, task.x_train, task.y_train, epochs=6, lr=3e-3)
        x = task.x_test[:128]
        float_preds = model.predict(x, FloatBackend())
        int16_preds = model.predict(x, QuantizedFloatBackend())
        cpwl_preds = model.predict(x, CPWLBackend(0.1))
        assert (float_preds == int16_preds).mean() > 0.97
        assert (int16_preds == cpwl_preds).mean() > 0.97
