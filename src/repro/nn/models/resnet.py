"""Residual CNN (the paper's CNN family, represented by ResNet).

:class:`SmallResNet` is a compact residual network trainable in seconds
on the synthetic image tasks, with exactly the op types of Fig. 1(a):
im2col GEMMs, batchnorm, ReLU and a final softmax.  The full-size
ResNet-50 used in the performance experiments lives as a workload
descriptor in :mod:`repro.nn.workload`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
)


class ResidualBlock(Module):
    """Two 3×3 conv-BN stages with an identity (or 1×1-projected) skip."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator,
        stride: int = 1,
    ):
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, rng, stride=stride, padding=1)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, rng, padding=1)
        self.bn2 = BatchNorm2d(out_channels)
        self.relu = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.proj = Conv2d(in_channels, out_channels, 1, rng, stride=stride)
            self.proj_bn = BatchNorm2d(out_channels)
        else:
            self.proj = None
            self.proj_bn = None

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        skip = x
        if self.proj is not None:
            skip = self.proj_bn(self.proj(x))
        return self.relu(out + skip)

    def infer(self, x: np.ndarray, backend) -> np.ndarray:
        out = backend.relu(self.bn1.infer(self.conv1.infer(x, backend), backend))
        out = self.bn2.infer(self.conv2.infer(out, backend), backend)
        skip = x
        if self.proj is not None:
            skip = self.proj_bn.infer(self.proj.infer(x, backend), backend)
        return backend.relu(out + skip)


class BottleneckBlock(Module):
    """ResNet-50-style bottleneck: 1×1 reduce → 3×3 → 1×1 expand.

    The 1×1 convolutions dominate the block's GEMM count (small reduction
    dimension, wide output), which is exactly the shape regime where the
    array's output-stationary tiling issues many small tiles — the
    workload the traced-path benchmarks exercise.  ``in_channels`` must
    equal ``expansion * mid_channels`` for the identity skip; otherwise a
    1×1 projection (with stride) is inserted, as in the reference
    architecture.
    """

    expansion = 4

    def __init__(
        self,
        in_channels: int,
        mid_channels: int,
        rng: np.random.Generator,
        stride: int = 1,
    ):
        super().__init__()
        out_channels = self.expansion * mid_channels
        self.conv1 = Conv2d(in_channels, mid_channels, 1, rng)
        self.bn1 = BatchNorm2d(mid_channels)
        self.conv2 = Conv2d(mid_channels, mid_channels, 3, rng, stride=stride, padding=1)
        self.bn2 = BatchNorm2d(mid_channels)
        self.conv3 = Conv2d(mid_channels, out_channels, 1, rng)
        self.bn3 = BatchNorm2d(out_channels)
        self.relu = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.proj = Conv2d(in_channels, out_channels, 1, rng, stride=stride)
            self.proj_bn = BatchNorm2d(out_channels)
        else:
            self.proj = None
            self.proj_bn = None

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.relu(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        skip = x
        if self.proj is not None:
            skip = self.proj_bn(self.proj(x))
        return self.relu(out + skip)

    def infer(self, x: np.ndarray, backend) -> np.ndarray:
        out = backend.relu(self.bn1.infer(self.conv1.infer(x, backend), backend))
        out = backend.relu(self.bn2.infer(self.conv2.infer(out, backend), backend))
        out = self.bn3.infer(self.conv3.infer(out, backend), backend)
        skip = x
        if self.proj is not None:
            skip = self.proj_bn.infer(self.proj.infer(x, backend), backend)
        return backend.relu(out + skip)


class SmallResNet(Module):
    """Residual CNN for ``(N, C, H, W)`` images (8×8 by default).

    Architecture: conv stem → two residual blocks (the second downsamples)
    → global average pool → linear classifier.  Logits are returned; the
    loss applies softmax, and the inference path exposes
    ``predict_proba`` for the end-to-end softmax-on-array check.
    """

    def __init__(
        self,
        in_channels: int = 1,
        n_classes: int = 10,
        width: int = 8,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.stem = Conv2d(in_channels, width, 3, rng, padding=1)
        self.stem_bn = BatchNorm2d(width)
        self.relu = ReLU()
        self.block1 = ResidualBlock(width, width, rng)
        self.block2 = ResidualBlock(width, 2 * width, rng, stride=2)
        self.pool = AvgPool2d(4)
        self.flatten = Flatten()
        self.fc = Linear(2 * width, n_classes, rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.stem_bn(self.stem(x)))
        out = self.block1(out)
        out = self.block2(out)
        out = self.flatten(self.pool(out))
        return self.fc(out)

    def infer(self, x: np.ndarray, backend) -> np.ndarray:
        out = backend.relu(self.stem_bn.infer(self.stem.infer(x, backend), backend))
        out = self.block1.infer(out, backend)
        out = self.block2.infer(out, backend)
        out = self.flatten.infer(self.pool.infer(out, backend), backend)
        return self.fc.infer(out, backend)

    def predict_proba(self, x: np.ndarray, backend) -> np.ndarray:
        """Class probabilities with the softmax also on the backend."""
        return backend.softmax(self.infer(x, backend), axis=-1)

    def predict(self, x: np.ndarray, backend) -> np.ndarray:
        """Hard class predictions."""
        return np.argmax(self.infer(x, backend), axis=-1)
