"""Unit tests for the fixed-point substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint import (
    INT16,
    QFormat,
    accumulator_to_output,
    dequantize,
    fixed_add,
    fixed_hadamard_mac,
    fixed_mac,
    fixed_matmul,
    fixed_mul,
    quantization_error,
    quantize,
    requantize,
    saturate,
)


class TestQFormat:
    def test_default_is_int16_q8(self):
        assert INT16.total_bits == 16
        assert INT16.frac_bits == 8

    def test_range(self):
        fmt = QFormat(16, 8)
        assert fmt.raw_min == -32768
        assert fmt.raw_max == 32767
        assert fmt.min_value == -128.0
        assert fmt.max_value == pytest.approx(127.99609375)

    def test_scale(self):
        assert QFormat(16, 8).scale == 1 / 256
        assert QFormat(16, 0).scale == 1.0

    def test_int_bits(self):
        assert QFormat(16, 8).int_bits == 7

    def test_storage_dtype(self):
        assert QFormat(8, 4).storage_dtype() == np.int8
        assert QFormat(16, 8).storage_dtype() == np.int16
        assert QFormat(32, 16).storage_dtype() == np.int32
        assert QFormat(48, 16).storage_dtype() == np.int64

    def test_accumulator_format(self):
        acc = INT16.accumulator()
        assert acc.total_bits == 32
        assert acc.frac_bits == 16

    def test_invalid_formats_rejected(self):
        with pytest.raises(ValueError):
            QFormat(1, 0)
        with pytest.raises(ValueError):
            QFormat(16, 16)
        with pytest.raises(ValueError):
            QFormat(16, -1)

    def test_describe_mentions_format(self):
        assert "Q16.8" in INT16.describe()


class TestQuantize:
    def test_roundtrip_exact_for_representable(self):
        values = np.array([0.0, 1.0, -1.0, 0.5, -127.0, 100.25])
        assert np.allclose(dequantize(quantize(values, INT16), INT16), values)

    def test_rounding_nearest(self):
        # 0.001953125 is half an LSB: rounds away from zero.
        raw = quantize(np.array([1 / 512]), INT16)
        assert raw[0] == 1

    def test_rounding_floor(self):
        raw = quantize(np.array([0.9 / 256]), INT16, rounding="floor")
        assert raw[0] == 0

    def test_unknown_rounding_rejected(self):
        with pytest.raises(ValueError):
            quantize(np.array([1.0]), INT16, rounding="stochastic")

    def test_saturation(self):
        raw = quantize(np.array([1e6, -1e6]), INT16)
        assert raw[0] == INT16.raw_max
        assert raw[1] == INT16.raw_min

    def test_quantization_error_bound(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(-100, 100, size=1000)
        assert quantization_error(values, INT16) <= INT16.scale / 2 + 1e-12

    def test_scalar_input(self):
        assert quantize(1.0, INT16) == 256

    def test_empty_input(self):
        assert quantization_error(np.array([]), INT16) == 0.0

    @given(st.floats(min_value=-127, max_value=127, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_error_within_half_lsb(self, value):
        err = abs(float(dequantize(quantize(value, INT16), INT16)) - value)
        assert err <= INT16.scale / 2 + 1e-12


class TestRequantize:
    def test_identity(self):
        raw = np.array([100, -200], dtype=np.int16)
        assert np.array_equal(requantize(raw, INT16, INT16), raw)

    def test_downshift_rounds(self):
        wide = QFormat(32, 16)
        raw = np.array([1 << 15], dtype=np.int64)  # 0.5 in Q32.16
        out = requantize(raw, wide, INT16)
        assert dequantize(out, INT16) == pytest.approx(0.5)

    def test_upshift(self):
        narrow = QFormat(16, 4)
        raw = np.array([16], dtype=np.int16)  # 1.0 in Q16.4
        out = requantize(raw, narrow, INT16)
        assert dequantize(out, INT16) == pytest.approx(1.0)

    def test_saturates_on_narrow(self):
        wide = QFormat(32, 8)
        raw = np.array([1 << 24], dtype=np.int64)  # 65536.0
        out = requantize(raw, wide, INT16)
        assert out[0] == INT16.raw_max


class TestArithmetic:
    def test_saturate_clamps(self):
        out = saturate(np.array([40000, -40000, 5]), INT16)
        assert list(out) == [32767, -32768, 5]

    def test_fixed_add_matches_float(self):
        a = quantize(np.array([1.5, -2.0]), INT16)
        b = quantize(np.array([0.25, 0.5]), INT16)
        out = dequantize(fixed_add(a, b, INT16), INT16)
        assert np.allclose(out, [1.75, -1.5])

    def test_fixed_add_saturates(self):
        a = quantize(np.array([127.0]), INT16)
        out = fixed_add(a, a, INT16)
        assert out[0] == INT16.raw_max

    def test_fixed_mul_matches_float(self):
        a = quantize(np.array([1.5]), INT16)
        b = quantize(np.array([2.0]), INT16)
        assert dequantize(fixed_mul(a, b, INT16), INT16)[0] == pytest.approx(3.0)

    def test_mac_accumulates_wide(self):
        acc = np.zeros(1, dtype=np.int64)
        a = quantize(np.array([100.0]), INT16)
        b = quantize(np.array([100.0]), INT16)
        # One product is 10000 — far over INT16 range — but the wide
        # accumulator must carry it without saturation.
        acc = fixed_mac(acc, a, b, INT16)
        acc = fixed_mac(acc, quantize(np.array([-100.0]), INT16), b, INT16)
        out = accumulator_to_output(acc, INT16)
        assert dequantize(out, INT16)[0] == pytest.approx(0.0)

    def test_matmul_matches_float_for_small_values(self):
        rng = np.random.default_rng(1)
        a = rng.uniform(-2, 2, size=(5, 7))
        b = rng.uniform(-2, 2, size=(7, 3))
        out = dequantize(
            fixed_matmul(quantize(a, INT16), quantize(b, INT16), INT16), INT16
        )
        assert np.allclose(out, a @ b, atol=0.1)

    def test_matmul_shape_validation(self):
        with pytest.raises(ValueError):
            fixed_matmul(np.zeros((2, 3)), np.zeros((4, 2)), INT16)
        with pytest.raises(ValueError):
            fixed_matmul(np.zeros(3), np.zeros((3, 2)), INT16)

    def test_matmul_saturates_output_only(self):
        # Products that overflow INT16 but cancel must not clip early.
        a = quantize(np.array([[120.0, -120.0]]), INT16)
        b = quantize(np.array([[100.0], [100.0]]), INT16)
        out = dequantize(fixed_matmul(a, b, INT16), INT16)
        assert out[0, 0] == pytest.approx(0.0)

    def test_hadamard_mac_is_kx_plus_b(self):
        x = quantize(np.array([[2.0, -1.0]]), INT16)
        k = quantize(np.array([[0.5, 3.0]]), INT16)
        b = quantize(np.array([[1.0, -0.5]]), INT16)
        out = dequantize(fixed_hadamard_mac(x, k, b, INT16), INT16)
        assert np.allclose(out, [[2.0, -3.5]])

    @given(
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_hadamard_against_float_reference(self, xs):
        x = np.array(xs)
        k = np.linspace(-1, 1, x.size)
        b = np.linspace(0.5, -0.5, x.size)
        out = dequantize(
            fixed_hadamard_mac(
                quantize(x, INT16), quantize(k, INT16), quantize(b, INT16), INT16
            ),
            INT16,
        )
        assert np.allclose(out, x * k + b, atol=0.1)


class TestBatchedFixedMatmul:
    """The N-D stacked GEMM must be bit-identical to the per-matrix loop."""

    def test_3d_stack_matches_loop(self):
        rng = np.random.default_rng(2)
        a = quantize(rng.normal(size=(6, 5, 4)), INT16)
        b = quantize(rng.normal(size=(6, 4, 3)), INT16)
        stacked = fixed_matmul(a, b, INT16)
        assert stacked.shape == (6, 5, 3)
        for i in range(6):
            assert np.array_equal(stacked[i], fixed_matmul(a[i], b[i], INT16))

    def test_broadcast_leading_axes(self):
        rng = np.random.default_rng(3)
        a = quantize(rng.normal(size=(2, 3, 4, 5)), INT16)
        b = quantize(rng.normal(size=(5, 6)), INT16)
        out = fixed_matmul(a, b, INT16)
        assert out.shape == (2, 3, 4, 6)
        assert np.array_equal(out[1, 2], fixed_matmul(a[1, 2], b, INT16))

    def test_saturating_stack_matches_loop(self):
        # Large cancelling products exercise the wide accumulator and
        # the saturating writeback on the stacked path too.
        rng = np.random.default_rng(4)
        a = quantize(rng.uniform(-120, 120, size=(8, 7, 9)), INT16)
        b = quantize(rng.uniform(-120, 120, size=(8, 9, 2)), INT16)
        stacked = fixed_matmul(a, b, INT16)
        loop = np.stack([fixed_matmul(x, y, INT16) for x, y in zip(a, b)])
        assert np.array_equal(stacked, loop)

    def test_wide_format_falls_back_exactly(self):
        # INT32 exceeds the float64-exact accumulator bound, so the
        # int64 path runs; results still match the 2-D calls.
        fmt = QFormat(32, 16)
        rng = np.random.default_rng(5)
        a = quantize(rng.normal(size=(3, 4, 4)), fmt)
        b = quantize(rng.normal(size=(3, 4, 4)), fmt)
        stacked = fixed_matmul(a, b, fmt)
        for i in range(3):
            assert np.array_equal(stacked[i], fixed_matmul(a[i], b[i], fmt))

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_stack_equals_loop_property(self, m, k, n, batch):
        rng = np.random.default_rng(m * 1000 + k * 100 + n * 10 + batch)
        a = quantize(rng.uniform(-50, 50, size=(batch, m, k)), INT16)
        b = quantize(rng.uniform(-50, 50, size=(batch, k, n)), INT16)
        stacked = fixed_matmul(a, b, INT16)
        loop = np.stack([fixed_matmul(x, y, INT16) for x, y in zip(a, b)])
        assert np.array_equal(stacked, loop)
