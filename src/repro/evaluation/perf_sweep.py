"""Fig. 8 — linear (GOPS) and nonlinear (GNFS) throughput sweeps.

The paper sweeps PE count (log4 axis: 4…256), MACs per PE (log2 axis:
2…32) and input matrix dimension (32 / 128 / 512), plotting achieved
throughput against the theoretical maximum and observing

* throughput rises with both PEs and MACs up to a "throughput cliff",
* MAC count has the stronger influence, and
* small matrices on large arrays are drain-dominated (the 84.8%
  transmit-cycle example of Section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.evaluation.reporting import format_table
from repro.systolic.config import SystolicConfig
from repro.systolic.timing import (
    gemm_cycles,
    gemm_throughput_gops,
    nonlinear_throughput_gnfs,
    peak_gnfs,
    peak_gops,
)

#: The paper's swept axes.
PE_DIMS = (2, 4, 8, 16)  # grids: 4, 16, 64, 256 PEs
MAC_COUNTS = (2, 4, 8, 16, 32)
MATRIX_DIMS = (32, 128, 512)


@dataclass(frozen=True)
class SweepPoint:
    """One design point × problem size measurement."""

    pe_dim: int
    n_pes: int
    macs: int
    matrix_dim: int
    achieved: float  # GOPS (linear) or GNFS (nonlinear)
    maximum: float

    @property
    def efficiency(self) -> float:
        return self.achieved / self.maximum if self.maximum else 0.0


def figure8_linear(
    pe_dims: Sequence[int] = PE_DIMS,
    mac_counts: Sequence[int] = MAC_COUNTS,
    matrix_dims: Sequence[int] = MATRIX_DIMS,
) -> List[SweepPoint]:
    """Fig. 8(a): achieved GOPS of square GEMMs across the design space."""
    points = []
    for pe_dim in pe_dims:
        for macs in mac_counts:
            config = SystolicConfig(pe_rows=pe_dim, pe_cols=pe_dim, macs_per_pe=macs)
            for dim in matrix_dims:
                points.append(
                    SweepPoint(
                        pe_dim=pe_dim,
                        n_pes=config.n_pes,
                        macs=macs,
                        matrix_dim=dim,
                        achieved=gemm_throughput_gops(config, dim, dim, dim),
                        maximum=peak_gops(config),
                    )
                )
    return points


def figure8_nonlinear(
    pe_dims: Sequence[int] = PE_DIMS,
    mac_counts: Sequence[int] = MAC_COUNTS,
    matrix_dims: Sequence[int] = MATRIX_DIMS,
) -> List[SweepPoint]:
    """Fig. 8(b): achieved GNFS of square MHPs across the design space."""
    points = []
    for pe_dim in pe_dims:
        for macs in mac_counts:
            config = SystolicConfig(pe_rows=pe_dim, pe_cols=pe_dim, macs_per_pe=macs)
            for dim in matrix_dims:
                points.append(
                    SweepPoint(
                        pe_dim=pe_dim,
                        n_pes=config.n_pes,
                        macs=macs,
                        matrix_dim=dim,
                        achieved=nonlinear_throughput_gnfs(config, dim, dim),
                        maximum=peak_gnfs(config),
                    )
                )
    return points


def throughput_cliff_example() -> Dict[str, float]:
    """The Section V-C drain-share example: 32×32 input, 16×16 PEs.

    Returns the measured drain fraction (paper: 84.8%) and the full
    cycle decomposition.
    """
    config = SystolicConfig(pe_rows=16, pe_cols=16, macs_per_pe=16)
    breakdown = gemm_cycles(config, 32, 32, 32)
    return {
        "drain_fraction": breakdown.drain_fraction,
        "fill": float(breakdown.fill),
        "compute": float(breakdown.compute),
        "drain": float(breakdown.drain),
        "total": float(breakdown.total),
        "paper_drain_fraction": 0.848,
    }


def format_figure8(points: Sequence[SweepPoint], metric: str) -> str:
    """Text rendering: one row per (PEs, MACs), one column per dim."""
    dims = sorted({p.matrix_dim for p in points})
    keys = sorted({(p.pe_dim, p.macs) for p in points})
    index = {(p.pe_dim, p.macs, p.matrix_dim): p for p in points}
    rows = []
    for pe_dim, macs in keys:
        any_point = index[(pe_dim, macs, dims[0])]
        row = [f"{pe_dim}x{pe_dim}", macs] + [
            round(index[(pe_dim, macs, d)].achieved, 2) for d in dims
        ]
        row.append(round(any_point.maximum, 2))
        rows.append(row)
    headers = ["PEs", "MACs"] + [f"{d} dims ({metric})" for d in dims] + ["max"]
    return format_table(headers, rows, title=f"Fig. 8 {metric} sweep")
