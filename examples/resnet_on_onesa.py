"""CNN example: train the ResNet stand-in, infer it on ONE-SA.

Trains the small residual CNN on the CIFAR-10 stand-in task, then runs
inference three ways — exact float, INT16 with exact nonlinearities,
and the full CPWL pipeline at several granularities — reproducing one
CNN row of the paper's Table III, plus the Fig. 1(a) op-mix of the
full-size ResNet-50 workload.

    python examples/resnet_on_onesa.py
"""

import numpy as np

from repro.data import get_task
from repro.evaluation.reporting import format_table
from repro.nn.executor import CPWLBackend, FloatBackend, QuantizedFloatBackend
from repro.nn.models import SmallResNet
from repro.nn.profiler import op_mix
from repro.nn.training import accuracy, train_classifier
from repro.nn.workload import resnet50_workload
from repro.systolic.config import ONE_SA_PAPER_CONFIG


def main() -> None:
    task = get_task("cifar10")
    print(f"Task: {task.name} ({task.n_classes} classes, "
          f"{len(task.y_train)} train / {len(task.y_test)} test)")

    model = SmallResNet(in_channels=task.x_train.shape[1],
                        n_classes=task.n_classes, seed=0)
    log = train_classifier(model, task.x_train, task.y_train, epochs=8, lr=3e-3)
    print(f"Trained {log.accuracies[-1] * 100:.1f}% train accuracy "
          f"in {len(log.losses)} epochs")

    rows = []
    base = accuracy(model.predict(task.x_test, QuantizedFloatBackend()), task.y_test)
    rows.append(["float64", f"{accuracy(model.predict(task.x_test, FloatBackend()), task.y_test) * 100:.1f}%"])
    rows.append(["INT16 exact nonlinear (baseline)", f"{base * 100:.1f}%"])
    for g in (0.1, 0.25, 0.5, 0.75, 1.0):
        acc = accuracy(model.predict(task.x_test, CPWLBackend(g)), task.y_test)
        rows.append([f"ONE-SA CPWL, granularity {g}", f"{acc * 100:.1f}% ({(acc - base) * 100:+.1f})"])
    print("\n" + format_table(["inference path", "test accuracy"], rows,
                              title="CNN accuracy under CPWL (Table III row)"))

    # Fig. 1(a) view of the full-size workload.
    wl = resnet50_workload(image_size=32)
    print("\nResNet-50 (CIFAR) op mix on general-purpose hardware:")
    for kind, share in op_mix(wl).items():
        print(f"  {kind:<10} {share * 100:5.1f}%")
    latency = wl.latency_seconds(ONE_SA_PAPER_CONFIG)
    print(f"\nFull ResNet-50 (224x224) on ONE-SA (64 PEs, 16 MACs): "
          f"{resnet50_workload().latency_seconds(ONE_SA_PAPER_CONFIG) * 1e3:.2f} ms/inference")


if __name__ == "__main__":
    main()
