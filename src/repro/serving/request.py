"""Request and completion records of the serving engine.

A request carries one *sample* (no batch axis): the dynamic batcher
stacks samples of co-pending requests for the same model along a new
leading axis before inference, and unpacks the stacked output row by
row on completion.  Timestamps are simulated seconds on the serving
clock, so latency accounting is deterministic and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serving.tenancy import DEFAULT_TENANT


@dataclass(frozen=True)
class GenerationRequest:
    """Autoregressive generation parameters riding on a request.

    Attributes
    ----------
    prompt:
        The 1-D integer token prompt (frozen copy; also the request's
        ``inputs``).
    max_new_tokens:
        Upper bound on generated tokens (>= 1; the prefill's greedy
        token is the first).
    stop_token:
        Token id that terminates the sequence early, or None.  The
        stop token itself is included in the output.
    """

    prompt: np.ndarray
    max_new_tokens: int
    stop_token: "int | None" = None

    def __post_init__(self) -> None:
        prompt = np.asarray(self.prompt, dtype=np.int64)
        if prompt.ndim != 1 or prompt.shape[0] < 1:
            raise ValueError(
                f"prompt must be a non-empty 1-D token row, got shape {prompt.shape}"
            )
        if self.max_new_tokens < 1:
            raise ValueError(
                f"max_new_tokens must be >= 1, got {self.max_new_tokens}"
            )
        prompt = np.array(prompt, copy=True)
        prompt.setflags(write=False)
        object.__setattr__(self, "prompt", prompt)


@dataclass(frozen=True)
class InferenceRequest:
    """One queued inference call.

    Attributes
    ----------
    request_id:
        Engine-assigned monotonically increasing identifier.
    model:
        Name of the registered model endpoint the request targets.
    inputs:
        One sample *without* the batch axis (e.g. a ``(T,)`` token row
        for a sequence model, a ``(C, H, W)`` image for a CNN).
    arrival:
        Simulated arrival time in seconds.
    tenant:
        Id of the tenant the request belongs to (defaults to the
        engine's implicit single tenant).
    priority:
        Priority under the strict-priority policy, or None to inherit
        the tenant's configured priority — resolved at *scheduling*
        time, so registering the tenant after submitting still takes
        effect (mirroring how WRR weights are read lazily).
    deadline:
        Absolute simulated time the response is due, or None.  A
        request finishing after its deadline is still executed and
        answered, but counts as a deadline miss in the report's SLO
        accounting.
    prefix_key:
        Content digest of the request's shared prompt, set by the
        engine when its endpoint has a prefix adapter and the engine
        carries a :class:`~repro.serving.prefix_cache.PrefixCache`.
        Batch assembly keys groups on it, so requests with different
        prompts (or none) never share a batch — cache hits and misses
        cannot silently mix.
    generation:
        :class:`GenerationRequest` parameters when this request asks
        for autoregressive decode (set by
        :meth:`~repro.serving.engine.InferenceEngine.submit_generation`),
        else None.  A generation request's ``outputs`` are its
        generated token row rather than a model-head slice.
    """

    request_id: int
    model: str
    inputs: np.ndarray
    arrival: float = 0.0
    tenant: str = DEFAULT_TENANT
    priority: "int | None" = None
    deadline: "float | None" = None
    prefix_key: "str | None" = None
    generation: "GenerationRequest | None" = None


@dataclass(frozen=True)
class CompletedRequest:
    """A finished request with its placement and timing.

    Attributes
    ----------
    request:
        The original :class:`InferenceRequest`.
    outputs:
        This request's slice of the batched model output.
    shard:
        Index of the dispatcher shard that executed the batch.
    batch_index:
        Index of the batch (within one :meth:`InferenceEngine.run`).
    batch_size:
        Number of requests packed into that batch.
    start, finish:
        Simulated execution window of the batch.
    batch_cycles:
        Cycles the whole batch spent on the shard's array (0 for
        backends without a cycle model).
    attempts:
        Execution attempts the request's batch took to complete (1 =
        first try; > 1 means the batch was retried after shard faults
        and this completion came from a re-placement).
    """

    request: InferenceRequest
    outputs: np.ndarray
    shard: int
    batch_index: int
    batch_size: int
    start: float
    finish: float
    batch_cycles: int = 0
    attempts: int = 1

    @property
    def latency(self) -> float:
        """Arrival-to-completion time in simulated seconds."""
        return self.finish - self.request.arrival

    @property
    def queue_delay(self) -> float:
        """Time spent waiting for batching and a free shard."""
        return self.start - self.request.arrival

    @property
    def deadline_missed(self) -> bool:
        """True when the request had an *explicit* deadline and
        finished past it.

        A record cannot see tenant configs, so misses against a
        tenant-level ``slo_latency`` (requests submitted without their
        own deadline) are scored only by the report, which can:
        :meth:`ServingReport.deadline_misses` /
        :meth:`ServingReport.slo_attainment`.
        """
        deadline = self.request.deadline
        return deadline is not None and self.finish > deadline


@dataclass(frozen=True)
class ShedRecord:
    """A request refused at admission (never executed).

    Attributes
    ----------
    request:
        The shed :class:`InferenceRequest`.  Its id never produces an
        output; :meth:`InferenceEngine.result` raises ``KeyError``.
    reason:
        ``"queue_full"`` (the tenant was at its
        :attr:`~repro.serving.tenancy.TenantConfig.max_queue_depth`) or
        ``"deadline_doomed"`` (its effective deadline was unmeetable
        even starting immediately on the fastest shard).
    at:
        Simulated time of the admission decision (the request's
        arrival, in the discrete-event loop).
    """

    request: InferenceRequest
    reason: str
    at: float


@dataclass(frozen=True)
class FailureRecord:
    """An *admitted* request the engine could not complete.

    Distinct from :class:`ShedRecord` (refused at admission, never
    owed an answer): a failed request was admitted, executed at least
    once, and lost to faults — the fault-tolerance invariant demands
    every admitted request end up in exactly one of
    :attr:`~repro.serving.report.ServingReport.completed` or
    :attr:`~repro.serving.report.ServingReport.failed`.

    Attributes
    ----------
    request:
        The failed :class:`InferenceRequest`; its id never yields an
        output from :meth:`~repro.serving.engine.InferenceEngine.result`.
    reason:
        ``"max_retries"`` (the batch exhausted its
        :class:`~repro.serving.faults.RetryPolicy` budget),
        ``"retry_deadline"`` (the backoff wake time already exceeded
        the request's effective deadline — a doomed retry is dropped,
        not looped), or ``"worker_lost"`` (the worker process serving
        it died and supervision did not re-run it).
    at:
        Simulated time the failure was decided.
    shard:
        Shard of the last failed attempt (None when not shard-bound).
    attempts:
        Execution attempts consumed before giving up.
    """

    request: InferenceRequest
    reason: str
    at: float
    shard: "int | None" = None
    attempts: int = 1
