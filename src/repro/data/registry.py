"""Named stand-in tasks for the paper's benchmark datasets.

Table III evaluates four benchmarks per network family.  Each entry
below maps a paper benchmark to a synthetic task whose *relative
difficulty* mirrors the paper's baseline accuracies (QMNIST ≈ 100% down
to CoLA's 56.5% Matthews-like hardness).  Difficulty is encoded through
noise, class count and signal sparsity — see
:mod:`repro.data.synthetic` for the knobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.data.synthetic import (
    GraphTask,
    ImageTask,
    SequenceTask,
    make_graph_task,
    make_image_task,
    make_sequence_task,
)


@dataclass(frozen=True)
class TaskSpec:
    """One registered stand-in task."""

    name: str
    family: str  # 'cnn' | 'bert' | 'gcn'
    paper_dataset: str
    paper_baseline: float  # the Table III "Original" column
    build: Callable[[int], object]  # seed -> task


def _image(name: str, **kwargs) -> Callable[[int], ImageTask]:
    return lambda seed=0: make_image_task(name, seed=seed, **kwargs)


def _sequence(name: str, **kwargs) -> Callable[[int], SequenceTask]:
    return lambda seed=0: make_sequence_task(name, seed=seed, **kwargs)


def _graph(name: str, **kwargs) -> Callable[[int], GraphTask]:
    return lambda seed=0: make_graph_task(name, seed=seed, **kwargs)


TASK_REGISTRY: Dict[str, TaskSpec] = {
    # --- CNN family (Table III rows 1-4) --------------------------------
    "qmnist": TaskSpec(
        "qmnist", "cnn", "QMNIST", 1.000, _image("qmnist", noise=0.25, n_classes=10)
    ),
    "fashion": TaskSpec(
        "fashion",
        "cnn",
        "Fashion-MNIST",
        0.912,
        _image("fashion", noise=0.48, n_classes=10),
    ),
    "cifar10": TaskSpec(
        "cifar10",
        "cnn",
        "CIFAR-10",
        0.962,
        _image("cifar10", noise=0.6, n_classes=10, shape=(3, 8, 8)),
    ),
    "cifar100": TaskSpec(
        "cifar100",
        "cnn",
        "CIFAR-100",
        0.851,
        _image("cifar100", noise=0.5, n_classes=20, shape=(3, 8, 8)),
    ),
    # --- BERT family (GLUE-like) ----------------------------------------
    "sst2": TaskSpec(
        "sst2", "bert", "SST-2", 0.923, _sequence("sst2", noise=0.15)
    ),
    "qnli": TaskSpec(
        "qnli", "bert", "QNLI", 0.907, _sequence("qnli", noise=0.2)
    ),
    "stsb": TaskSpec(
        "stsb",
        "bert",
        "STS-B",
        0.887,
        _sequence("stsb", noise=0.12, n_classes=3),
    ),
    "cola": TaskSpec(
        "cola",
        "bert",
        "CoLA",
        0.565,
        _sequence("cola", noise=0.75, signal_tokens=2),
    ),
    # --- GCN family ------------------------------------------------------
    "reddit": TaskSpec(
        "reddit",
        "gcn",
        "Reddit",
        0.927,
        _graph("reddit", n_nodes=300, p_in=0.09, feature_noise=1.6),
    ),
    "cora": TaskSpec(
        "cora",
        "gcn",
        "CORA",
        0.843,
        _graph("cora", n_nodes=200, n_classes=7, feature_noise=1.1),
    ),
    "pubmed": TaskSpec(
        "pubmed",
        "gcn",
        "Pubmed",
        0.745,
        _graph("pubmed", n_nodes=200, n_classes=3, feature_noise=2.3, p_in=0.05, p_out=0.02),
    ),
    "citeseer": TaskSpec(
        "citeseer",
        "gcn",
        "Citeseer",
        0.646,
        _graph("citeseer", n_nodes=200, n_classes=6, feature_noise=2.9, p_in=0.06),
    ),
}


def get_task(name: str, seed: int = 0):
    """Build a registered stand-in task by name."""
    try:
        spec = TASK_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(TASK_REGISTRY))
        raise KeyError(f"unknown task {name!r}; known: {known}") from None
    return spec.build(seed)


def tasks_for_family(family: str) -> Dict[str, TaskSpec]:
    """The registered tasks of one network family, in Table III order."""
    return {
        name: spec for name, spec in TASK_REGISTRY.items() if spec.family == family
    }
