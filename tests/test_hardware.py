"""Tests for the FPGA resource, power, device and Pareto models."""

import numpy as np
import pytest

from repro.hardware import (
    ArrayResources,
    VIRTEX7_XC7VX485T,
    l3_resources,
    pareto_front,
    pe_resources,
    power_watts,
    total_resources,
)
from repro.hardware.pareto import is_on_front
from repro.hardware.power import energy_joules, phase_weighted_activity
from repro.hardware.resources import fabric_resources, resource_ratio
from repro.systolic.config import SystolicConfig


def design(dim, macs=16, nonlinear=True):
    return SystolicConfig(
        pe_rows=dim, pe_cols=dim, macs_per_pe=macs, nonlinear_enabled=nonlinear
    )


class TestPEResources:
    def test_table1_sa_pe(self):
        r = pe_resources(16, nonlinear=False)
        assert (r.bram, r.lut, r.ff, r.dsp) == (1, 824, 1862, 16)

    def test_table1_one_sa_pe(self):
        r = pe_resources(16, nonlinear=True)
        assert (r.bram, r.lut, r.ff, r.dsp) == (1, 826, 2380, 16)

    def test_one_sa_pe_ff_overhead_is_27_percent(self):
        """Section IV-C: the ONE-SA PE costs ~27% more FFs."""
        sa = pe_resources(16, nonlinear=False)
        one = pe_resources(16, nonlinear=True)
        assert one.ff / sa.ff == pytest.approx(1.278, abs=0.01)

    def test_dsp_linear_in_macs(self):
        assert pe_resources(32).dsp == 32
        assert pe_resources(2).dsp == 2

    def test_ff_growth_band_when_doubling_macs(self):
        """Fig. 9 text: doubling MACs grows FFs by ~2.6%-53.8%."""
        for m in (2, 4, 8, 16):
            ratio = pe_resources(2 * m).ff / pe_resources(m).ff
            assert 1.026 <= ratio <= 1.538

    def test_bram_flat_in_macs(self):
        assert pe_resources(2).bram == pe_resources(32).bram == 1

    def test_invalid_macs(self):
        with pytest.raises(ValueError):
            pe_resources(0)


class TestL3Resources:
    def test_table1_sa_l3(self):
        r = l3_resources(8, 16, nonlinear_output=False)
        assert (r.bram, r.lut, r.ff, r.dsp) == (0, 174, 566, 0)

    def test_table1_one_sa_l3(self):
        r = l3_resources(8, 16, nonlinear_output=True)
        assert (r.bram, r.lut, r.ff, r.dsp) == (2, 1021, 1209, 0)

    def test_paper_l3_ratios(self):
        """Section IV-C: ONE-SA L3 needs 4.87x more LUTs, 1.14x more FFs."""
        sa = l3_resources(8, 16)
        one = l3_resources(8, 16, nonlinear_output=True)
        assert (one.lut - sa.lut) / sa.lut == pytest.approx(4.87, abs=0.01)
        assert (one.ff - sa.ff) / sa.ff == pytest.approx(1.14, abs=0.01)


class TestTotalResources:
    @pytest.mark.parametrize(
        "dim,expected",
        [
            (4, (470, 67976, 66924, 256)),
            (8, (822, 179247, 179247, 1024)),
            (16, (1366, 730225, 552539, 4096)),
        ],
    )
    def test_table2_sa_exact(self, dim, expected):
        r = total_resources(design(dim, nonlinear=False))
        assert (r.bram, r.lut, r.ff, r.dsp) == expected

    @pytest.mark.parametrize(
        "dim,expected",
        [
            (4, (472, 68855, 75855, 256)),
            (8, (824, 180222, 213042, 1024)),
            (16, (1368, 731584, 685790, 4096)),
        ],
    )
    def test_table2_one_sa_exact(self, dim, expected):
        r = total_resources(design(dim, nonlinear=True))
        assert (r.bram, r.lut, r.ff, r.dsp) == expected

    def test_ff_overhead_band(self):
        """Table II: ONE-SA adds 13.3%-24.1% FFs, nothing else notable."""
        for dim in (4, 8, 16):
            sa = total_resources(design(dim, nonlinear=False))
            one = total_resources(design(dim, nonlinear=True))
            ratio = resource_ratio(one, sa)
            assert 1.13 <= ratio["ff"] <= 1.25
            assert ratio["lut"] < 1.015
            assert ratio["dsp"] == 1.0
            assert one.bram - sa.bram == 2

    def test_fig9_lut_linear_in_pes(self):
        luts = [total_resources(design(d)).lut for d in (2, 4, 8, 16)]
        assert all(b > a for a, b in zip(luts, luts[1:]))
        # Approximately linear in PE count: ratio of ratios near 1.
        growth = luts[3] / luts[1]
        assert 10 < growth < 16  # 16x PEs -> about linear

    def test_fig9_bram_slow_growth(self):
        brams = [total_resources(design(d)).bram for d in (4, 8, 16)]
        assert brams[2] / brams[0] < 4  # much slower than the 16x PE growth

    def test_fig9_dsp_linear_in_macs(self):
        assert total_resources(design(8, 32)).dsp == 2 * total_resources(design(8, 16)).dsp

    def test_fabric_interpolation_smooth(self):
        f8 = fabric_resources(64)
        f6 = fabric_resources(36)
        f4 = fabric_resources(16)
        assert f4.lut < f6.lut < f8.lut

    def test_fabric_invalid(self):
        with pytest.raises(ValueError):
            fabric_resources(0)

    def test_resources_addition_and_scaling(self):
        a = ArrayResources(1, 2, 3, 4)
        b = ArrayResources(10, 20, 30, 40)
        assert (a + b).lut == 22
        assert a.scaled(2).dsp == 8
        assert a.as_dict()["ff"] == 3


class TestDevice:
    def test_paper_point_fits(self):
        assert VIRTEX7_XC7VX485T.fits(total_resources(design(8)))

    def test_16x16_exceeds_device(self):
        """The paper's own 16x16 totals exceed the XC7VX485T (see
        EXPERIMENTS.md) — the model must flag that."""
        assert not VIRTEX7_XC7VX485T.fits(total_resources(design(16)))

    def test_utilization_fractions(self):
        util = VIRTEX7_XC7VX485T.utilization(total_resources(design(8)))
        assert 0 < util["lut"] < 1
        assert 0 < util["dsp"] < 1


class TestPower:
    def test_anchor_reproduced(self):
        """Table IV: 7.61 W at the 64-PE / 16-MAC point."""
        assert power_watts(design(8)) == pytest.approx(7.61, abs=0.01)

    def test_power_monotone_in_size(self):
        p = [power_watts(design(d)) for d in (2, 4, 8, 16)]
        assert all(b > a for a, b in zip(p, p[1:]))

    def test_power_monotone_in_macs(self):
        assert power_watts(design(8, 32)) > power_watts(design(8, 16))

    def test_activity_scales_dynamic(self):
        idle = power_watts(design(8), activity=0.0)
        busy = power_watts(design(8), activity=1.0)
        assert idle < busy
        from repro.hardware.power import STATIC_WATTS

        assert idle == pytest.approx(STATIC_WATTS)

    def test_activity_validation(self):
        with pytest.raises(ValueError):
            power_watts(design(8), activity=1.5)

    def test_clock_scaling(self):
        half = power_watts(design(8), clock_hz=125e6)
        full = power_watts(design(8), clock_hz=250e6)
        assert half < full

    def test_mhp_phase_draws_less(self):
        """Fig. 10(b): nonlinear execution toggles fewer PEs."""
        gemm = phase_weighted_activity(design(8), 1.0, 0.0)
        mhp = phase_weighted_activity(design(8), 0.0, 1.0)
        assert mhp < gemm

    def test_phase_weighting_blends(self):
        mixed = phase_weighted_activity(design(8), 0.5, 0.5)
        gemm = phase_weighted_activity(design(8), 1.0, 0.0)
        mhp = phase_weighted_activity(design(8), 0.0, 1.0)
        assert mhp < mixed < gemm

    def test_zero_shares(self):
        assert phase_weighted_activity(design(8), 0.0, 0.0) == 0.0

    def test_energy(self):
        assert energy_joules(design(8), 2.0, 0.85) == pytest.approx(2 * 7.61)
        with pytest.raises(ValueError):
            energy_joules(design(8), -1.0, 0.5)


class TestPareto:
    def test_front_extraction(self):
        points = [(1, 10), (2, 5), (3, 6), (4, 1), (5, 5)]
        front = pareto_front(points, (lambda p: p[0], lambda p: p[1]))
        assert front == [(1, 10), (2, 5), (4, 1)]

    def test_duplicates_survive(self):
        points = [(1, 1), (1, 1)]
        front = pareto_front(points, (lambda p: p[0], lambda p: p[1]))
        assert len(front) == 2

    def test_empty(self):
        assert pareto_front([], (lambda p: p,)) == []

    def test_is_on_front(self):
        points = [(1, 10), (2, 5), (4, 1)]
        assert is_on_front((2, 5), points, (lambda p: p[0], lambda p: p[1]))
        assert not is_on_front((3, 6), points + [(3, 6)], (lambda p: p[0], lambda p: p[1]))
