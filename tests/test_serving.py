"""Serving engine tests: batching, sharding, reporting, equivalence.

The load-bearing contract: results served through the batched engine
are bit-identical to single-request ``infer`` on the same backend, for
every backend.
"""

import numpy as np
import pytest

from repro.nn.executor import (
    ArrayBackend,
    CPWLBackend,
    FloatBackend,
    QuantizedFloatBackend,
)
from repro.nn.models import GCN, SmallResNet, TinyBERT
from repro.nn.models.gcn import normalized_adjacency
from repro.serving import (
    DynamicBatcher,
    InferenceEngine,
    InferenceRequest,
    ClusterDispatcher,
)
from repro.systolic import SystolicArray, SystolicConfig

RNG = np.random.default_rng(0)


def req(i, model="m", arrival=0.0):
    return InferenceRequest(
        request_id=i, model=model, inputs=np.zeros(1), arrival=arrival
    )


class TestDynamicBatcher:
    def test_full_batch_flushes_at_filling_arrival(self):
        batcher = DynamicBatcher(max_batch_size=2, flush_timeout=10.0)
        batches = batcher.plan([req(0, arrival=0.0), req(1, arrival=1.0)])
        assert len(batches) == 1
        assert batches[0].size == 2
        assert batches[0].ready_time == 1.0

    def test_timeout_flushes_partial_batch(self):
        batcher = DynamicBatcher(max_batch_size=8, flush_timeout=0.5)
        batches = batcher.plan([req(0, arrival=0.0), req(1, arrival=2.0)])
        assert len(batches) == 2
        assert batches[0].ready_time == 0.5  # deadline of the first
        assert batches[1].ready_time == 2.5

    def test_models_batch_separately(self):
        batcher = DynamicBatcher(max_batch_size=4, flush_timeout=1.0)
        batches = batcher.plan(
            [req(0, "a"), req(1, "b"), req(2, "a"), req(3, "b")]
        )
        assert len(batches) == 2
        assert {b.model for b in batches} == {"a", "b"}
        for b in batches:
            assert all(r.model == b.model for r in b.requests)

    def test_fifo_order_within_batch(self):
        batcher = DynamicBatcher(max_batch_size=4, flush_timeout=1.0)
        (batch,) = batcher.plan([req(2), req(0), req(1)])
        assert [r.request_id for r in batch.requests] == [0, 1, 2]

    def test_oversize_stream_splits(self):
        batcher = DynamicBatcher(max_batch_size=3, flush_timeout=1.0)
        batches = batcher.plan([req(i) for i in range(7)])
        assert [b.size for b in batches] == [3, 3, 1]

    def test_zero_timeout_keeps_same_instant_burst_together(self):
        # Regression: a deadline firing exactly at an arrival must not
        # flush the batch before that request joins — otherwise a
        # same-instant burst with flush_timeout=0 degenerates to
        # one-request batches.
        batcher = DynamicBatcher(max_batch_size=8, flush_timeout=0.0)
        batches = batcher.plan([req(i, arrival=0.0) for i in range(4)])
        assert len(batches) == 1
        assert batches[0].size == 4
        # Distinct arrival times still do not coalesce at timeout 0.
        staggered = batcher.plan([req(i, arrival=0.1 * i) for i in range(3)])
        assert [b.size for b in staggered] == [1, 1, 1]

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            DynamicBatcher(max_batch_size=0)
        with pytest.raises(ValueError):
            DynamicBatcher(flush_timeout=-1.0)


class TestClusterDispatcher:
    def test_round_robin_order(self):
        d = ClusterDispatcher(["b0", "b1", "b2"])
        shards = [d.acquire()[0] for _ in range(6)]
        assert shards == [0, 1, 2, 0, 1, 2]

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            ClusterDispatcher([])

    def test_from_arrays_builds_array_backends(self):
        cfg = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
        d = ClusterDispatcher.from_arrays(
            [SystolicArray(cfg), SystolicArray(cfg)], 0.25
        )
        assert d.n_shards == 2
        assert d.array_of(0) is not d.array_of(1)
        assert d.clock_hz(0) == cfg.clock_hz
        assert d.shard_cycles() == {0: 0, 1: 0}

    def test_functional_backends_have_no_cycles(self):
        d = ClusterDispatcher([FloatBackend()])
        assert d.array_of(0) is None
        assert d.shard_cycles() == {}


def tiny_bert():
    return TinyBERT(vocab=16, seq_len=8, dim=8, heads=2, ff_dim=16, n_layers=1)


class TestEngineEquivalence:
    """Batched serving must be bit-identical to single-request infer."""

    def _serve_and_compare(self, backend_pool, reference_backend, exact=True):
        """``exact=True`` asserts bit identity (the fixed-point paths);
        float-family backends tolerate BLAS blocking differences of a
        few ULPs between stacked and single GEMM calls."""
        model = tiny_bert()
        engine = InferenceEngine(
            ClusterDispatcher(backend_pool), max_batch_size=4, flush_timeout=1e-4
        )
        engine.register("bert", model)
        tokens = RNG.integers(0, 16, size=(10, 8))
        ids = [engine.submit("bert", row) for row in tokens]
        report = engine.run()
        assert report.n_requests == 10
        assert report.n_batches >= 3  # max_batch_size caps packing
        for request_id, row in zip(ids, tokens):
            single = model.infer(row[None, :], reference_backend)[0]
            served = engine.result(request_id)
            if exact:
                assert np.array_equal(served, single)
            else:
                assert np.allclose(served, single, atol=1e-9, rtol=0)

    def test_float_backend(self):
        self._serve_and_compare([FloatBackend()], FloatBackend(), exact=False)

    def test_quantized_float_backend(self):
        self._serve_and_compare(
            [QuantizedFloatBackend()], QuantizedFloatBackend(), exact=False
        )

    def test_cpwl_backend(self):
        self._serve_and_compare(
            [CPWLBackend(0.25), CPWLBackend(0.25)], CPWLBackend(0.25)
        )

    def test_array_backend(self):
        cfg = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
        pool = [
            ArrayBackend(SystolicArray(cfg), 0.25),
            ArrayBackend(SystolicArray(cfg), 0.25),
        ]
        ref = ArrayBackend(SystolicArray(cfg), 0.25)
        self._serve_and_compare(pool, ref)

    def test_resnet_requests(self):
        model = SmallResNet(in_channels=1, n_classes=3, seed=0)
        model.eval()
        backend = CPWLBackend(0.25)
        engine = InferenceEngine(
            ClusterDispatcher([backend]), max_batch_size=4, flush_timeout=1e-4
        )
        engine.register("resnet", model)
        images = RNG.normal(size=(4, 1, 8, 8))
        ids = [engine.submit("resnet", img) for img in images]
        engine.run()
        for request_id, img in zip(ids, images):
            single = model.infer(img[None], backend)[0]
            assert np.array_equal(engine.result(request_id), single)

    def test_gcn_requests_batch_over_shared_graph(self):
        adjacency = (RNG.uniform(size=(6, 6)) > 0.6).astype(float)
        adjacency = np.maximum(adjacency, adjacency.T)
        a_hat = normalized_adjacency(adjacency)
        model = GCN(in_features=5, hidden=4, n_classes=3, seed=0)
        backend = CPWLBackend(0.25)
        engine = InferenceEngine(
            ClusterDispatcher([backend]), max_batch_size=4, flush_timeout=1e-4
        )
        engine.register(
            "gcn", infer_fn=lambda feats, be: model.infer(feats, a_hat, be)
        )
        feature_sets = RNG.normal(size=(3, 6, 5))
        ids = [engine.submit("gcn", f) for f in feature_sets]
        engine.run()
        for request_id, feats in zip(ids, feature_sets):
            single = model.infer(feats, a_hat, backend)
            assert np.array_equal(engine.result(request_id), single)


class TestEngineMechanics:
    def test_unknown_model_rejected(self):
        engine = InferenceEngine(ClusterDispatcher([FloatBackend()]))
        with pytest.raises(KeyError):
            engine.submit("nope", np.zeros(3))

    def test_register_needs_exactly_one_target(self):
        engine = InferenceEngine(ClusterDispatcher([FloatBackend()]))
        with pytest.raises(ValueError):
            engine.register("m")
        with pytest.raises(ValueError):
            engine.register("m", tiny_bert(), infer_fn=lambda x, b: x)

    def test_batches_round_robin_across_shards(self):
        cfg = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
        pool = ClusterDispatcher.from_arrays(
            [SystolicArray(cfg), SystolicArray(cfg)], 0.25
        )
        engine = InferenceEngine(pool, max_batch_size=2, flush_timeout=1e-4)
        engine.register("bert", tiny_bert())
        for row in RNG.integers(0, 16, size=(8, 8)):
            engine.submit("bert", row)
        report = engine.run()
        shards = {c.shard for c in report.completed}
        assert shards == {0, 1}
        assert all(cycles > 0 for cycles in report.shard_cycles.values())

    def test_report_metrics_consistent(self):
        cfg = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
        pool = ClusterDispatcher.from_arrays([SystolicArray(cfg)], 0.25)
        engine = InferenceEngine(pool, max_batch_size=4, flush_timeout=1e-4)
        engine.register("bert", tiny_bert())
        for row in RNG.integers(0, 16, size=(6, 8)):
            engine.submit("bert", row)
        report = engine.run()
        assert report.p50 <= report.p90 <= report.p99
        assert report.throughput_rps > 0
        assert report.cycles_per_request > 0
        assert report.makespan > 0
        assert "requests served" in report.summary()
        latencies = report.latencies
        assert np.all(latencies >= 0)

    def test_staggered_arrivals_respect_flush_timeout(self):
        engine = InferenceEngine(
            ClusterDispatcher([FloatBackend()]),
            max_batch_size=8,
            flush_timeout=0.5,
        )
        engine.register("bert", tiny_bert())
        rows = RNG.integers(0, 16, size=(3, 8))
        engine.submit("bert", rows[0], arrival=0.0)
        engine.submit("bert", rows[1], arrival=0.1)  # joins the batch
        engine.submit("bert", rows[2], arrival=5.0)  # after the deadline
        report = engine.run()
        assert report.n_batches == 2
        sizes = sorted(c.batch_size for c in report.completed)
        assert sizes == [1, 2, 2]

    def test_pending_and_reset(self):
        engine = InferenceEngine(ClusterDispatcher([FloatBackend()]))
        engine.register("bert", tiny_bert())
        engine.submit("bert", RNG.integers(0, 16, size=8))
        assert engine.pending == 1
        engine.reset()
        assert engine.pending == 0

    def test_two_runs_accumulate_results(self):
        engine = InferenceEngine(ClusterDispatcher([FloatBackend()]))
        engine.register("bert", tiny_bert())
        first = engine.submit("bert", RNG.integers(0, 16, size=8))
        engine.run()
        second = engine.submit("bert", RNG.integers(0, 16, size=8))
        engine.run()
        assert engine.result(first) is not None
        assert engine.result(second) is not None

    def test_result_releases_output_by_default(self):
        # A long-lived engine must not pin every response it ever
        # produced: result() hands the output over once.
        engine = InferenceEngine(ClusterDispatcher([FloatBackend()]))
        engine.register("bert", tiny_bert())
        request_id = engine.submit("bert", RNG.integers(0, 16, size=8))
        engine.run()
        kept = engine.result(request_id, keep=True)
        assert np.array_equal(engine.result(request_id), kept)  # released here
        with pytest.raises(KeyError):
            engine.result(request_id)


class TestServingTraceMemoryContract:
    """The engine's bounded-memory contract for long-lived serving."""

    def _engine(self, **kw):
        cfg = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
        pool = ClusterDispatcher.from_arrays(
            [SystolicArray(cfg), SystolicArray(cfg)], 0.25
        )
        engine = InferenceEngine(pool, max_batch_size=4, flush_timeout=1e-4, **kw)
        engine.register("bert", tiny_bert())
        return engine, pool

    def test_shard_traces_aggregate_only_by_default(self):
        engine, pool = self._engine()
        for row in RNG.integers(0, 16, size=(6, 8)):
            engine.submit("bert", row)
        report = engine.run()
        assert report.total_cycles > 0
        for shard in range(pool.n_shards):
            trace = pool.array_of(shard).trace
            assert trace.events_retained == 0  # bounded memory
            assert len(trace) > 0  # ...but every op was accounted
        assert sum(report.shard_cycles.values()) == sum(
            pool.array_of(s).total_cycles for s in range(pool.n_shards)
        )

    def test_opt_in_retains_full_event_log(self):
        engine, pool = self._engine(retain_trace_events=True)
        engine.submit("bert", RNG.integers(0, 16, size=8))
        engine.run()
        assert any(
            pool.array_of(s).trace.events_retained > 0
            for s in range(pool.n_shards)
        )

    def test_sustained_run_memory_stays_flat(self):
        # 60 requests over 10 runs: retained events stay at zero while
        # the cycle account keeps growing monotonically.
        engine, pool = self._engine()
        seen_cycles = 0
        for _ in range(10):
            for row in RNG.integers(0, 16, size=(6, 8)):
                engine.submit("bert", row)
            engine.run()
            total = sum(pool.array_of(s).total_cycles for s in range(pool.n_shards))
            assert total > seen_cycles
            seen_cycles = total
            assert all(
                pool.array_of(s).trace.events_retained == 0
                for s in range(pool.n_shards)
            )
