"""Quantization between floating point and fixed-point raw integers."""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.fixedpoint.qformat import QFormat

ArrayLike = Union[float, int, np.ndarray]


def quantize(
    values: ArrayLike,
    fmt: QFormat,
    rounding: str = "nearest",
    dtype: "np.dtype | type | None" = None,
) -> np.ndarray:
    """Quantize real ``values`` to raw fixed-point integers.

    Values outside the representable range saturate to the format limits,
    matching the saturating writeback of the PE output buffer.

    Parameters
    ----------
    values:
        Scalar or array of real numbers.
    fmt:
        Target fixed-point format.
    rounding:
        ``'nearest'`` (round half away from zero, the HLS default used by
        the paper's toolchain) or ``'floor'`` (truncation).
    dtype:
        Output dtype.  ``None`` (default) uses ``fmt.storage_dtype()``.
        Passing ``np.float64`` returns the *same raw integers* held in
        float64 — every in-range raw value is exactly representable —
        which skips the integer materialization pass; the GEMM hot path
        uses this because :func:`repro.fixedpoint.fixed_matmul` computes
        on the BLAS float path anyway.

    Returns
    -------
    numpy.ndarray
        Raw integers in ``dtype`` (``fmt.storage_dtype()`` by default).
    """
    values = np.asarray(values, dtype=np.float64)
    # 0-d inputs decay to numpy scalars under arithmetic, which the
    # in-place ufunc chain below cannot write into; lift them to 1-d
    # and restore the shape on return.
    scalar_input = values.ndim == 0
    scaled = np.atleast_1d(values) * (1 << fmt.frac_bits) if scalar_input else (
        values * (1 << fmt.frac_bits)
    )
    if rounding == "nearest":
        # Round half away from zero as trunc(x + copysign(0.5, x)): a
        # branch-free in-place pass chain (this sits on the quantize-
        # dequantize hot path of every backend operation).
        raw = np.copysign(0.5, scaled)
        raw += scaled
        np.trunc(raw, out=raw)
    elif rounding == "floor":
        raw = np.floor(scaled)
    else:
        raise ValueError(f"unknown rounding mode: {rounding!r}")
    np.clip(raw, fmt.raw_min, fmt.raw_max, out=raw)
    if dtype is not None and np.dtype(dtype) == np.float64:
        return raw.reshape(()) if scalar_input else raw
    target = fmt.storage_dtype() if dtype is None else np.dtype(dtype)
    raw = raw.astype(target)
    return raw.reshape(()) if scalar_input else raw


def dequantize(raw: ArrayLike, fmt: QFormat) -> np.ndarray:
    """Convert raw fixed-point integers back to real values."""
    return np.asarray(raw, dtype=np.float64) * fmt.scale


def requantize(raw: ArrayLike, src: QFormat, dst: QFormat) -> np.ndarray:
    """Re-scale raw integers from one Q-format to another with saturation.

    This models the shift-and-saturate stage between the PE accumulator
    (a wide product-aligned format) and the INT16 output buffer.
    """
    raw = np.asarray(raw, dtype=np.int64)
    shift = src.frac_bits - dst.frac_bits
    if shift > 0:
        # Round-to-nearest on the discarded bits (add half then shift).
        half = np.int64(1) << (shift - 1)
        rescaled = (raw + half) >> shift
    elif shift < 0:
        rescaled = raw << (-shift)
    else:
        rescaled = raw
    rescaled = np.clip(rescaled, dst.raw_min, dst.raw_max)
    return rescaled.astype(dst.storage_dtype())


def quantization_error(values: ArrayLike, fmt: QFormat) -> float:
    """Maximum absolute round-trip error of ``values`` under ``fmt``.

    Useful for choosing fractional-bit budgets: for in-range values the
    error is bounded by half an LSB under nearest rounding.
    """
    values = np.asarray(values, dtype=np.float64)
    round_trip = dequantize(quantize(values, fmt), fmt)
    return float(np.max(np.abs(round_trip - values))) if values.size else 0.0
