"""The cache-store contract every reuse site routes through.

Before this subsystem, each reuse mechanism in the repo — CPWL
approximator tables, GEMM/MHP plan schedules, quantized parameter
derivations, KV-prefix payloads, cost-model calibration — was a private
``OrderedDict`` with its own eviction loop, capacity knob and counter
set, trapped inside one Python process.  :class:`CacheStore` is the one
interface they now share:

* **namespaces** partition one store into independent LRU domains
  (``"systolic.gemm_plans"``, ``"serving.prefix.shard0"``, ...); keys
  never collide across namespaces and budgets apply per namespace;
* **budgets** bound each namespace by entry count and/or bytes
  (:class:`NamespaceLimit`); inserting evicts least-recently-used
  entries until the budget holds, and an entry alone exceeding a byte
  budget is rejected outright — the exact policy the historical caches
  implemented, pinned bit-identical by the contract suite;
* **stats** are uniform (:class:`NamespaceStats`): occupancy, bytes,
  hits, misses, insertions, evictions, rejections per namespace, so a
  :class:`~repro.serving.report.ServingReport` can surface one
  ``cache_section()`` across every reuse layer.

Two backends ship: :class:`~repro.store.lru.InProcessLRU` (the default;
per-process, zero-copy, bit-identical to the pre-store caches) and
:class:`~repro.store.filestore.FileStore` (on-disk, lock-guarded,
shareable between worker processes).
:class:`~repro.store.tiered.TieredStore` composes the two into the
read-through/write-through fabric multi-worker serving uses.

A process-global default store (:func:`get_store` / :func:`set_store`)
backs the historical module-level caches; :class:`StoreConfig` replaces
their scattered ``set_*_capacity`` knobs with one declaration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


#: Sentinel distinguishing "no cached value" from a cached ``None``.
MISSING = object()


class StoreLockTimeout(TimeoutError):
    """A bounded lock acquisition on a shared store gave up.

    Raised by :class:`~repro.store.filestore.FileStore` when another
    process holds a namespace lock past the store's ``lock_timeout``.
    :class:`~repro.store.tiered.TieredStore` catches it and degrades to
    local-only operation instead of letting one wedged fabric lock
    stall a serving worker indefinitely.
    """


def _validate_limit(name: str, value: Optional[int]) -> Optional[int]:
    if value is None:
        return None
    value = int(value)
    if value < 1:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


@dataclass(frozen=True)
class NamespaceLimit:
    """Eviction budget of one namespace: entry count and/or bytes.

    ``None`` means unbounded on that axis.  Both bounds may be active
    at once; eviction runs until *both* hold.
    """

    max_entries: Optional[int] = None
    max_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "max_entries", _validate_limit("max_entries", self.max_entries)
        )
        object.__setattr__(
            self, "max_bytes", _validate_limit("max_bytes", self.max_bytes)
        )


class NamespaceStats:
    """Mutable counter block of one namespace (uniform across backends)."""

    __slots__ = (
        "entries",
        "bytes",
        "hits",
        "misses",
        "insertions",
        "evictions",
        "rejections",
        "corruptions",
    )

    def __init__(self) -> None:
        self.entries = 0
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.rejections = 0
        self.corruptions = 0

    def reset_counters(self) -> None:
        """Zero the event counters; occupancy (entries/bytes) is kept."""
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.rejections = 0
        self.corruptions = 0

    def as_dict(self, limit: NamespaceLimit) -> Dict[str, object]:
        return {
            "entries": self.entries,
            "bytes": self.bytes,
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "rejections": self.rejections,
            "corruptions": self.corruptions,
            "max_entries": limit.max_entries,
            "max_bytes": limit.max_bytes,
        }


# ---------------------------------------------------------------------------
# Namespace defaults: cache sites declare their historical capacities
# once, at import, and every store instance resolves them lazily.
# ---------------------------------------------------------------------------
_NAMESPACE_DEFAULTS: Dict[str, NamespaceLimit] = {}


def register_namespace(
    namespace: str,
    max_entries: Optional[int] = None,
    max_bytes: Optional[int] = None,
) -> NamespaceLimit:
    """Declare the default budget of ``namespace`` (idempotent).

    Cache sites call this at import so any store — including a fresh
    one installed by :func:`set_store` — enforces the same historical
    capacity without per-instance configuration.  An explicit
    :meth:`CacheStore.set_limit` on a store instance overrides the
    registered default for that instance only.
    """
    limit = NamespaceLimit(max_entries=max_entries, max_bytes=max_bytes)
    _NAMESPACE_DEFAULTS[namespace] = limit
    return limit


def namespace_default(namespace: str) -> NamespaceLimit:
    """The registered default budget of ``namespace`` (unbounded if none)."""
    return _NAMESPACE_DEFAULTS.get(namespace, NamespaceLimit())


class CacheStore:
    """Get/put/evict over namespaced keys under per-namespace budgets.

    The contract (pinned by ``tests/test_store.py`` for every backend):

    * :meth:`get` returns the cached value or ``default``; a hit
      refreshes LRU recency unless ``touch=False`` (a *peek*, used by
      callers that verify content before granting reuse).
    * :meth:`put` makes ``(namespace, key)`` resident, charging
      ``nbytes`` against the namespace's byte budget; least-recently
      -used entries evict until the budget holds, an entry alone
      exceeding the byte budget is rejected (``False``), and
      re-putting an existing key replaces it (old bytes released
      first) at most-recently-used position.
    * *Mutable* entries may carry a **version stamp** (``put(...,
      version=N)``, a writer-monotonic integer); :meth:`version_of`
      reads it back.  Versions exist for read-through invalidation:
      :class:`~repro.store.tiered.TieredStore` revalidates a local hit
      against the shared tier's version and re-reads when the shared
      copy is newer.  Unversioned entries (``version=None``, the
      default) keep the historical never-revalidate behavior.
    * :meth:`contains` / :meth:`keys` / :meth:`values` are pure reads:
      no recency effect, no counter effect.
    * Namespaces are fully isolated: keys, budgets, eviction and stats
      of one namespace never affect another.
    """

    # -- core ------------------------------------------------------------
    def get(self, namespace: str, key, default=None, touch: bool = True):
        raise NotImplementedError

    def put(
        self,
        namespace: str,
        key,
        value,
        nbytes: int = 0,
        version: Optional[int] = None,
    ) -> bool:
        raise NotImplementedError

    def version_of(self, namespace: str, key) -> Optional[int]:
        """Version stamp of a resident entry (``None`` when absent or
        unversioned).  Backends that do not track versions may rely on
        this default."""
        return None

    def contains(self, namespace: str, key) -> bool:
        raise NotImplementedError

    def touch(self, namespace: str, key) -> None:
        """Refresh ``key``'s recency (no-op when absent, no counters)."""
        raise NotImplementedError

    def delete(self, namespace: str, key) -> bool:
        """Drop one entry; True when it was resident."""
        raise NotImplementedError

    def clear(self, namespace: Optional[str] = None) -> None:
        """Drop every entry (of one namespace, or all); counters kept."""
        raise NotImplementedError

    # -- enumeration -----------------------------------------------------
    def keys(self, namespace: str) -> List[object]:
        """Resident keys in LRU → MRU order."""
        raise NotImplementedError

    def values(self, namespace: str) -> List[object]:
        """Resident values in LRU → MRU order."""
        raise NotImplementedError

    def nbytes_of(self, namespace: str, key) -> int:
        """Declared byte charge of a resident entry (0 when absent)."""
        raise NotImplementedError

    # -- budgets and stats ----------------------------------------------
    def set_limit(
        self,
        namespace: str,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        """Bound ``namespace``; shrinking evicts LRU overflow immediately."""
        raise NotImplementedError

    def limit(self, namespace: str) -> NamespaceLimit:
        """The namespace's effective budget (instance override or default)."""
        raise NotImplementedError

    def stats(self, namespace: Optional[str] = None) -> Dict[str, object]:
        """One namespace's counter dict, or ``{namespace: dict}`` for all."""
        raise NotImplementedError

    def reset_stats(self, namespace: Optional[str] = None) -> None:
        """Zero event counters (occupancy is kept)."""
        raise NotImplementedError


# ---------------------------------------------------------------------------
# The process-global default store.
# ---------------------------------------------------------------------------
_GLOBAL_STORE: Optional[CacheStore] = None


def get_store() -> CacheStore:
    """The process-global store backing the module-level cache sites.

    Defaults to a fresh :class:`~repro.store.lru.InProcessLRU` on first
    use — per-process and bit-identical to the historical private
    caches.  :func:`set_store` swaps in a different backend (e.g. a
    :class:`~repro.store.tiered.TieredStore` over a shared
    :class:`~repro.store.filestore.FileStore` in a serving worker).
    """
    global _GLOBAL_STORE
    if _GLOBAL_STORE is None:
        from repro.store.lru import InProcessLRU

        _GLOBAL_STORE = InProcessLRU()
    return _GLOBAL_STORE


def set_store(store: Optional[CacheStore]) -> CacheStore:
    """Install ``store`` as the process-global store (None → fresh default).

    Returns the store now in effect.  Registered namespace defaults
    apply to the new store automatically (they are resolved lazily),
    so capacities survive the swap; entries do not migrate.
    """
    global _GLOBAL_STORE
    _GLOBAL_STORE = store
    return get_store()


# ---------------------------------------------------------------------------
# One declaration for every cache site's budget.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class StoreConfig:
    """Budgets of all five cache sites in one declaration.

    Replaces the scattered ``set_approximator_cache_capacity`` /
    ``set_plan_cache_capacity`` / ``set_mhp_plan_cache_capacity``
    knobs (which survive as thin wrappers): :meth:`apply` configures
    the process-global store's namespaces in one call, and the
    constructor-bound sites (:class:`~repro.nn.executor.ParamCache`
    size, :class:`~repro.serving.prefix_cache.PrefixCache` shard
    budget) read their fields at construction —
    :func:`repro.serving.multiproc.serve_multiproc` threads one
    ``StoreConfig`` through every worker.
    """

    approximator_capacity: int = 256
    gemm_plan_capacity: int = 512
    mhp_plan_capacity: int = 512
    param_cache_entries: int = 256
    prefix_shard_budget_bytes: int = 32 << 20

    def __post_init__(self) -> None:
        for name in (
            "approximator_capacity",
            "gemm_plan_capacity",
            "mhp_plan_capacity",
            "param_cache_entries",
            "prefix_shard_budget_bytes",
        ):
            _validate_limit(name, getattr(self, name))

    def apply(self, store: Optional[CacheStore] = None) -> CacheStore:
        """Configure the global-store namespaces (or ``store``'s) and
        return the store configured."""
        from repro.core.nonlinear_ops import APPROXIMATOR_NAMESPACE
        from repro.systolic.gemm import GEMM_PLAN_NAMESPACE
        from repro.systolic.mhp_dataflow import MHP_PLAN_NAMESPACE

        target = store if store is not None else get_store()
        target.set_limit(APPROXIMATOR_NAMESPACE, max_entries=self.approximator_capacity)
        target.set_limit(GEMM_PLAN_NAMESPACE, max_entries=self.gemm_plan_capacity)
        target.set_limit(MHP_PLAN_NAMESPACE, max_entries=self.mhp_plan_capacity)
        return target
