"""Documentation checks: links resolve, fenced Python parses, doctests pass.

Keeps ``docs/*.md`` and the READMEs from rotting: every relative link
must point at a real file, every fenced ``python`` block must at least
compile against current syntax, and blocks written as interpreter
sessions (``>>>``) are executed as doctests against the live package —
so an API rename breaks CI here instead of silently breaking the docs.
Fast (no benchmarks), part of the tier-1 ``-m "not bench"`` run.
"""

import doctest
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [ROOT / "README.md", ROOT / "examples" / "README.md"]
    + list((ROOT / "docs").glob("*.md"))
)

FENCE = re.compile(r"^```(\w*)\n(.*?)^```", re.DOTALL | re.MULTILINE)
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")

doc_ids = [str(path.relative_to(ROOT)) for path in DOC_FILES]


def test_docs_tree_exists():
    assert (ROOT / "docs").is_dir()
    for name in ("architecture.md", "serving.md", "performance.md"):
        assert (ROOT / "docs" / name).is_file(), f"docs/{name} missing"
    assert (ROOT / "README.md").is_file()


@pytest.mark.parametrize("path", DOC_FILES, ids=doc_ids)
def test_relative_links_resolve(path):
    text = path.read_text()
    broken = []
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (path.parent / relative).exists():
            broken.append(target)
    assert not broken, f"{path.name}: broken relative links {broken}"


def python_fences(path):
    for match in FENCE.finditer(path.read_text()):
        language, body = match.group(1), match.group(2)
        if language == "python":
            yield body


@pytest.mark.parametrize("path", DOC_FILES, ids=doc_ids)
def test_python_fences_compile(path):
    for i, body in enumerate(python_fences(path)):
        if ">>>" in body:
            continue  # executed by the doctest check below
        try:
            compile(body, f"{path.name}[fence {i}]", "exec")
        except SyntaxError as exc:  # pragma: no cover - failure path
            pytest.fail(f"{path.name} fence {i} does not compile: {exc}")


@pytest.mark.parametrize("path", DOC_FILES, ids=doc_ids)
def test_doctest_fences_pass(path):
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(optionflags=doctest.ELLIPSIS)
    ran = 0
    for i, body in enumerate(python_fences(path)):
        if ">>>" not in body:
            continue
        test = parser.get_doctest(
            body, {}, name=f"{path.name}[fence {i}]", filename=str(path), lineno=0
        )
        result = runner.run(test, clear_globs=True)
        ran += result.attempted
        assert result.failed == 0, f"{path.name} fence {i}: doctest failures"
    if path.name == "serving.md":
        assert ran > 0  # the guide's doctest examples actually executed
