"""Cache-store contract suite: every backend, one behaviour.

The five refactored cache sites (approximator tables, GEMM/MHP plans,
parameter derivations, KV-prefix payloads, calibration snapshots) rely
on the exact semantics pinned here:

* LRU order and recency: hits refresh, peeks (``touch=False``) don't,
  eviction takes the least-recently-used entry first;
* budgets: entry-count and byte budgets evict until both hold, an
  entry alone exceeding the byte budget is rejected, replacing a key
  releases its old bytes first;
* namespace isolation: keys, budgets, eviction and stats of one
  namespace never leak into another;
* FileStore durability: values round-trip bit-exactly through both
  serializers, concurrent writer processes never corrupt the index,
  and a filename collision degrades to a verified miss;
* the property suite replays random operation sequences against a
  reference OrderedDict model — the historical cache implementation —
  so the InProcessLRU default stays bit-identical to the pre-store
  caches.
"""

import multiprocessing
import pickle
from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import (
    MISSING,
    CacheStore,
    FileStore,
    InProcessLRU,
    NamespaceLimit,
    StoreConfig,
    StoreLockTimeout,
    TieredStore,
    get_store,
    namespace_default,
    register_namespace,
    set_store,
)

NS = "test.namespace"
OTHER = "test.other"


@pytest.fixture(params=["lru", "file"])
def store(request, tmp_path):
    """Each contract test runs against every single-tier backend.

    TieredStore deliberately departs from single-tier budget contracts
    (its ``set_limit`` bounds the local tier only, and ``contains``
    consults both tiers), so it gets its own suite below.
    """
    if request.param == "lru":
        return InProcessLRU()
    return FileStore(str(tmp_path / "store"))


class TestContract:
    def test_get_put_roundtrip(self, store):
        assert store.get(NS, "k") is None
        assert store.get(NS, "k", default=42) == 42
        assert store.put(NS, "k", {"v": 1})
        assert store.get(NS, "k") == {"v": 1}
        assert store.contains(NS, "k")
        assert not store.contains(NS, "absent")

    def test_cached_none_distinguishable_via_sentinel(self, store):
        store.put(NS, "k", None)
        assert store.get(NS, "k", default=MISSING) is None
        assert store.get(NS, "absent", default=MISSING) is MISSING

    def test_lru_order_and_hit_refresh(self, store):
        for key in ("a", "b", "c"):
            store.put(NS, key, key.upper())
        assert store.values(NS) == ["A", "B", "C"]  # LRU -> MRU
        store.get(NS, "a")  # hit refreshes recency
        assert store.values(NS) == ["B", "C", "A"]

    def test_peek_does_not_refresh(self, store):
        for key in ("a", "b"):
            store.put(NS, key, key)
        store.get(NS, "a", touch=False)
        assert store.values(NS) == ["a", "b"]
        store.touch(NS, "a")  # explicit touch does
        assert store.values(NS) == ["b", "a"]

    def test_entry_budget_evicts_lru_first(self, store):
        store.set_limit(NS, max_entries=2)
        store.put(NS, "a", 1)
        store.put(NS, "b", 2)
        store.put(NS, "c", 3)
        assert not store.contains(NS, "a")
        assert store.values(NS) == [2, 3]

    def test_byte_budget_evicts_until_fit(self, store):
        store.set_limit(NS, max_bytes=100)
        store.put(NS, "a", "a", nbytes=40)
        store.put(NS, "b", "b", nbytes=40)
        store.put(NS, "c", "c", nbytes=40)  # evicts "a"
        assert not store.contains(NS, "a")
        stats = store.stats(NS)
        assert stats["bytes"] == 80
        assert stats["evictions"] == 1

    def test_oversized_entry_rejected(self, store):
        store.set_limit(NS, max_bytes=100)
        store.put(NS, "small", 1, nbytes=60)
        assert not store.put(NS, "huge", 2, nbytes=101)
        assert not store.contains(NS, "huge")
        assert store.contains(NS, "small")  # nothing was evicted for it
        assert store.stats(NS)["rejections"] == 1

    def test_replace_releases_old_bytes(self, store):
        store.set_limit(NS, max_bytes=100)
        store.put(NS, "a", 1, nbytes=80)
        store.put(NS, "a", 2, nbytes=90)  # would not fit alongside itself
        assert store.get(NS, "a") == 2
        stats = store.stats(NS)
        assert stats["bytes"] == 90
        assert stats["evictions"] == 0

    def test_set_limit_shrink_evicts_immediately(self, store):
        for i in range(4):
            store.put(NS, i, i)
        store.set_limit(NS, max_entries=2)
        assert store.stats(NS)["entries"] == 2
        assert store.values(NS) == [2, 3]

    def test_namespace_isolation(self, store):
        store.set_limit(NS, max_entries=1)
        store.put(NS, "k", "ns")
        store.put(OTHER, "k", "other")
        store.put(NS, "k2", "ns2")  # evicts within NS only
        assert store.get(OTHER, "k") == "other"
        assert store.stats(OTHER)["entries"] == 1
        assert store.stats(NS)["entries"] == 1

    def test_delete_and_clear(self, store):
        store.put(NS, "a", 1, nbytes=10)
        store.put(NS, "b", 2, nbytes=10)
        assert store.delete(NS, "a")
        assert not store.delete(NS, "a")
        store.get(NS, "b")
        store.clear(NS)
        stats = store.stats(NS)
        assert stats["entries"] == 0
        assert stats["bytes"] == 0
        assert stats["hits"] == 1  # counters survive clear
        assert store.nbytes_of(NS, "b") == 0

    def test_nbytes_of(self, store):
        store.put(NS, "a", 1, nbytes=17)
        assert store.nbytes_of(NS, "a") == 17
        assert store.nbytes_of(NS, "absent") == 0

    def test_stats_counters(self, store):
        store.put(NS, "a", 1)
        store.get(NS, "a")
        store.get(NS, "absent")
        stats = store.stats(NS)
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["insertions"] == 1
        store.reset_stats(NS)
        stats = store.stats(NS)
        assert stats["hits"] == stats["misses"] == stats["insertions"] == 0
        assert stats["entries"] == 1  # occupancy survives the reset

    def test_stats_all_namespaces(self, store):
        store.put(NS, "a", 1)
        store.put(OTHER, "b", 2)
        all_stats = store.stats()
        assert NS in all_stats and OTHER in all_stats
        assert all_stats[NS]["entries"] == 1

    def test_limit_validation(self, store):
        with pytest.raises(ValueError):
            store.set_limit(NS, max_entries=0)
        with pytest.raises(ValueError):
            store.set_limit(NS, max_bytes=-1)


class TestRegisteredDefaults:
    def test_registered_default_applies_to_fresh_store(self):
        register_namespace("test.registered", max_entries=2)
        try:
            store = InProcessLRU()
            assert store.limit("test.registered") == NamespaceLimit(max_entries=2)
            for i in range(3):
                store.put("test.registered", i, i)
            assert store.stats("test.registered")["entries"] == 2
        finally:
            register_namespace("test.registered")  # back to unbounded

    def test_unregistered_namespace_unbounded(self):
        assert namespace_default("test.never.registered") == NamespaceLimit()


class TestGlobalStore:
    def test_set_store_swaps_and_none_restores_default(self):
        previous = get_store()
        try:
            mine = InProcessLRU()
            assert set_store(mine) is mine
            assert get_store() is mine
            fresh = set_store(None)
            assert isinstance(fresh, InProcessLRU) and fresh is not mine
        finally:
            set_store(previous)

    def test_store_config_applies_capacities(self):
        previous = get_store()
        try:
            from repro.core.nonlinear_ops import APPROXIMATOR_NAMESPACE
            from repro.systolic.gemm import GEMM_PLAN_NAMESPACE

            store = set_store(None)
            config = StoreConfig(approximator_capacity=7, gemm_plan_capacity=9)
            assert config.apply() is store
            assert store.limit(APPROXIMATOR_NAMESPACE).max_entries == 7
            assert store.limit(GEMM_PLAN_NAMESPACE).max_entries == 9
        finally:
            set_store(previous)

    def test_store_config_validates(self):
        with pytest.raises(ValueError):
            StoreConfig(approximator_capacity=0)
        with pytest.raises(ValueError):
            StoreConfig(prefix_shard_budget_bytes=-5)


# ---------------------------------------------------------------------------
# FileStore specifics
# ---------------------------------------------------------------------------
def _hammer_filestore(args):
    """One writer process: insert a disjoint key range, read some back."""
    root, worker = args
    store = FileStore(root)
    for i in range(20):
        key = ("w", worker, i)
        store.put("shared.ns", key, {"worker": worker, "i": i}, nbytes=8)
    hits = sum(
        1
        for i in range(20)
        if store.get("shared.ns", ("w", worker, i)) is not None
    )
    return hits


class TestFileStore:
    def test_pickle_roundtrip_numpy(self, tmp_path):
        store = FileStore(str(tmp_path / "s"))
        value = {"arr": np.arange(12, dtype=np.int16).reshape(3, 4)}
        store.put(NS, ("k", 1), value)
        out = store.get(NS, ("k", 1))
        np.testing.assert_array_equal(out["arr"], value["arr"])
        assert out["arr"].dtype == np.int16

    def test_json_serializer_roundtrip(self, tmp_path):
        store = FileStore(str(tmp_path / "s"), serializer="json")
        store.put(NS, "snapshot", {"version": 1, "observations": [1, 2, 3]})
        assert store.get(NS, "snapshot") == {"version": 1, "observations": [1, 2, 3]}

    def test_bad_serializer_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            FileStore(str(tmp_path / "s"), serializer="yaml")

    def test_persistence_across_instances(self, tmp_path):
        root = str(tmp_path / "s")
        FileStore(root).put(NS, "k", [1, 2, 3], nbytes=24)
        reopened = FileStore(root)
        assert reopened.get(NS, "k") == [1, 2, 3]
        assert reopened.nbytes_of(NS, "k") == 24

    def test_filename_collision_is_verified_miss(self, tmp_path, monkeypatch):
        import repro.store.filestore as filestore_module

        store = FileStore(str(tmp_path / "s"))
        monkeypatch.setattr(
            filestore_module, "_key_filename", lambda key, suffix: f"same.{suffix}"
        )
        store.put(NS, "first", "value-one")
        # "second" maps to the same file but stores its own key; a get
        # for "first" now finds a mismatched stored key -> miss, never
        # the wrong value.
        store.put(NS, "second", "value-two")
        assert store.get(NS, "first") is None
        assert store.get(NS, "second") == "value-two"

    def test_concurrent_writers_keep_index_consistent(self, tmp_path):
        root = str(tmp_path / "shared")
        FileStore(root)  # create the root
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            pytest.skip("fork start method unavailable")
        with ctx.Pool(4) as pool:
            hits = pool.map(_hammer_filestore, [(root, w) for w in range(4)])
        assert hits == [20, 20, 20, 20]
        store = FileStore(root)
        stats = store.stats("shared.ns")
        assert stats["entries"] == 80
        assert stats["bytes"] == 80 * 8
        # Every entry wrote atomically: all values load and verify.
        assert len(store.values("shared.ns")) == 80

    def test_eviction_removes_data_files(self, tmp_path):
        store = FileStore(str(tmp_path / "s"))
        store.set_limit(NS, max_entries=2)
        for i in range(5):
            store.put(NS, i, i)
        assert store.values(NS) == [3, 4]
        ns_dir = tmp_path / "s" / NS
        data_files = [p for p in ns_dir.iterdir() if p.suffix == ".pkl"]
        assert len(data_files) == 2

    def test_lock_timeout_must_be_positive_or_none(self, tmp_path):
        with pytest.raises(ValueError, match="lock_timeout"):
            FileStore(str(tmp_path / "s"), lock_timeout=0)
        with pytest.raises(ValueError, match="lock_timeout"):
            FileStore(str(tmp_path / "s"), lock_timeout=-1.0)
        assert FileStore(str(tmp_path / "s"), lock_timeout=None).lock_timeout is None

    def test_held_namespace_lock_raises_store_lock_timeout(self, tmp_path):
        import fcntl
        import os

        root = str(tmp_path / "s")
        store = FileStore(root, lock_timeout=0.05)
        store.put(NS, "k", 1)
        holder = open(os.path.join(root, NS, ".lock"), "a+")
        fcntl.flock(holder.fileno(), fcntl.LOCK_EX)
        try:
            with pytest.raises(StoreLockTimeout, match=NS):
                store.get(NS, "k")
        finally:
            fcntl.flock(holder.fileno(), fcntl.LOCK_UN)
            holder.close()
        # StoreLockTimeout is a TimeoutError so generic handlers apply,
        # and release unwedges the store without reopening it.
        assert issubclass(StoreLockTimeout, TimeoutError)
        assert store.get(NS, "k") == 1

    def test_corrupt_entry_quarantined_as_miss(self, tmp_path):
        store = FileStore(str(tmp_path / "s"))
        ns_dir = tmp_path / "s" / NS
        store.put(NS, "good", [1, 2])
        before = {p for p in ns_dir.iterdir() if p.suffix == ".pkl"}
        store.put(NS, "bad", [3, 4])
        (bad_file,) = {
            p for p in ns_dir.iterdir() if p.suffix == ".pkl"
        } - before
        bad_file.write_bytes(b"\x00not a pickle\x00")
        # Corrupt bytes load as a miss, and the entry is quarantined:
        # counter bumped, file and index entry removed.
        assert store.get(NS, "bad", default="fallback") == "fallback"
        stats = store.stats(NS)
        assert stats["corruptions"] == 1
        assert stats["entries"] == 1
        assert not bad_file.exists()
        assert store.get(NS, "good") == [1, 2]  # neighbours untouched
        # The slot is reusable after quarantine.
        store.put(NS, "bad", [5, 6])
        assert store.get(NS, "bad") == [5, 6]
        assert store.stats(NS)["corruptions"] == 1


# ---------------------------------------------------------------------------
# TieredStore specifics
# ---------------------------------------------------------------------------
class TestTieredStore:
    def _tiered(self, tmp_path):
        shared = FileStore(str(tmp_path / "shared"))
        return TieredStore(InProcessLRU(), shared), shared

    def test_read_through_promotes(self, tmp_path):
        tiered, shared = self._tiered(tmp_path)
        shared.put(NS, "k", "fabric-value", nbytes=11)
        assert tiered.get(NS, "k") == "fabric-value"
        # Promoted: now a local hit with the declared byte charge.
        assert tiered.local.get(NS, "k") == "fabric-value"
        assert tiered.local.nbytes_of(NS, "k") == 11

    def test_write_through_reaches_both_tiers(self, tmp_path):
        tiered, shared = self._tiered(tmp_path)
        tiered.put(NS, "k", [1, 2])
        assert tiered.local.contains(NS, "k")
        assert shared.get(NS, "k") == [1, 2]

    def test_local_budget_does_not_shrink_fabric(self, tmp_path):
        tiered, shared = self._tiered(tmp_path)
        tiered.set_limit(NS, max_entries=1)
        tiered.put(NS, "a", 1)
        tiered.put(NS, "b", 2)  # evicts "a" locally only
        assert not tiered.local.contains(NS, "a")
        assert shared.contains(NS, "a")
        assert tiered.get(NS, "a") == 1  # read-through recovers it

    def test_hit_in_either_tier_counts_as_hit(self, tmp_path):
        tiered, shared = self._tiered(tmp_path)
        shared.put(NS, "k", 1)
        tiered.get(NS, "k")  # shared hit
        tiered.get(NS, "k")  # local hit after promotion
        tiered.get(NS, "absent")
        stats = tiered.stats(NS)
        assert stats["hits"] == 2
        assert stats["misses"] == 1

    def test_recover_on_healthy_store_is_noop(self, tmp_path):
        tiered, shared = self._tiered(tmp_path)
        tiered.put(NS, "k", 1)
        assert not tiered.degraded
        assert tiered.recover() is False  # nothing to recover from
        assert tiered.get(NS, "k") == 1
        assert shared.get(NS, "k") == 1  # write-through unaffected

    def test_degraded_mode_counts_every_skipped_shared_op(self, tmp_path):
        class _Wedged(InProcessLRU):
            """Shared tier whose every lock acquisition times out."""

            def get(self, *a, **kw):
                raise StoreLockTimeout("wedged")

            def put(self, *a, **kw):
                raise StoreLockTimeout("wedged")

        tiered = TieredStore(InProcessLRU(), _Wedged())
        # First shared-tier touch latches degraded; the call still
        # completes against the local tier.
        assert tiered.put(NS, "k", 1)
        assert tiered.degraded
        assert tiered.degraded_ops == 1
        # Subsequent ops never touch the shared tier again.
        assert tiered.get(NS, "k") == 1  # local hit, no shared call
        tiered.put(NS, "k2", 2)
        assert tiered.degraded_ops == 2
        assert tiered.get(NS, "absent", default="d") == "d"
        assert tiered.degraded_ops == 3


# ---------------------------------------------------------------------------
# Property test: the default backend is bit-identical to the historical
# OrderedDict caches.
# ---------------------------------------------------------------------------
class _ReferenceLRU:
    """The pre-store cache policy, verbatim: bounded OrderedDict."""

    def __init__(self, max_entries=None, max_bytes=None):
        self.entries = OrderedDict()  # key -> (value, nbytes)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.bytes = 0

    def get(self, key):
        if key not in self.entries:
            return None
        self.entries.move_to_end(key)
        return self.entries[key][0]

    def put(self, key, value, nbytes):
        if self.max_bytes is not None and nbytes > self.max_bytes:
            return False
        old = self.entries.pop(key, None)
        if old is not None:
            self.bytes -= old[1]
        while self.entries and (
            (self.max_entries is not None and len(self.entries) + 1 > self.max_entries)
            or (self.max_bytes is not None and self.bytes + nbytes > self.max_bytes)
        ):
            _, (_, evicted) = self.entries.popitem(last=False)
            self.bytes -= evicted
        self.entries[key] = (value, nbytes)
        self.bytes += nbytes
        return True

    def delete(self, key):
        old = self.entries.pop(key, None)
        if old is not None:
            self.bytes -= old[1]


_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("put"),
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=30),
        ),
        st.tuples(st.just("get"), st.integers(min_value=0, max_value=7)),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=7)),
    ),
    max_size=60,
)


class TestLRUMatchesHistoricalCaches:
    @given(
        ops=_ops,
        max_entries=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
        max_bytes=st.one_of(st.none(), st.integers(min_value=10, max_value=60)),
    )
    @settings(max_examples=120, deadline=None)
    def test_random_op_sequences_bit_identical(self, ops, max_entries, max_bytes):
        store = InProcessLRU()
        store.set_limit(NS, max_entries=max_entries, max_bytes=max_bytes)
        reference = _ReferenceLRU(max_entries=max_entries, max_bytes=max_bytes)
        for op in ops:
            if op[0] == "put":
                _, key, nbytes = op
                assert store.put(NS, key, key * 10, nbytes=nbytes) == (
                    reference.put(key, key * 10, nbytes)
                )
            elif op[0] == "get":
                _, key = op
                assert store.get(NS, op[1]) == reference.get(key)
            else:
                reference.delete(op[1])
                store.delete(NS, op[1])
            assert store.keys(NS) == list(reference.entries)
            assert store.stats(NS)["bytes"] == reference.bytes


# ---------------------------------------------------------------------------
# The refactored cache sites on the default backend
# ---------------------------------------------------------------------------
class TestRefactoredSites:
    def test_plan_cache_identity_preserved(self):
        from repro.systolic import SystolicConfig
        from repro.systolic.gemm import clear_plan_cache, plan_cache_info, plan_gemm

        clear_plan_cache()
        config = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
        first = plan_gemm(config, 16, 16, 16)
        second = plan_gemm(config, 16, 16, 16)
        assert first is second  # zero-copy, by reference
        info = plan_cache_info()
        assert info["hits"] >= 1 and info["size"] >= 1
        clear_plan_cache()
        info = plan_cache_info()
        assert info["size"] == 0 and info["hits"] == 0

    def test_approximator_cache_identity_preserved(self):
        from repro.core.nonlinear_ops import (
            approximator_cache_info,
            clear_approximator_cache,
            get_approximator,
        )

        clear_approximator_cache()
        first = get_approximator("gelu", 0.25)
        assert get_approximator("gelu", 0.25) is first
        assert approximator_cache_info()["size"] == 1

    def test_param_cache_private_store(self):
        from repro.nn.executor import ParamCache

        cache = ParamCache(maxsize=2)
        stats = cache.stats()
        assert stats["max_entries"] == 2
        assert stats["entries"] == 0

    def test_calibration_roundtrip_through_filestore(self, tmp_path):
        from repro.serving import (
            CalibratingCostModel,
            load_calibration,
            save_calibration,
        )
        from repro.systolic import SystolicConfig

        config = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
        calibrator = CalibratingCostModel()
        calibrator.observe("bert", 4, (8,), config, 1234)
        fabric = FileStore(str(tmp_path / "fabric"), serializer="json")
        save_calibration(calibrator, fabric)
        restored = load_calibration(fabric)
        from repro.serving.cluster import BatchProfile

        profile = BatchProfile(
            model="bert",
            batch_size=4,
            sample_shape=(8,),
            tenant="default",
            ready_time=0.0,
        )
        assert restored.estimate(profile, config) == calibrator.estimate(
            profile, config
        )

    def test_load_calibration_absent_returns_none(self, tmp_path):
        from repro.serving import load_calibration

        fabric = FileStore(str(tmp_path / "fabric"))
        assert load_calibration(fabric) is None
