"""Deprecated backward-compat shim over the cluster placement API.

The dispatch boundary moved to :mod:`repro.serving.cluster` when
placement became policy-driven (``ClusterSpec`` + ``PlacementPolicy``);
:class:`ShardedDispatcher` survives as a thin alias so PR 1-era code
(``ShardedDispatcher.from_arrays(...)``, manual ``acquire()`` loops)
keeps working unchanged — it *is* a :class:`ClusterDispatcher`, just
under its historical name.  Instantiating it now emits a
:class:`DeprecationWarning`; migrate to
:class:`~repro.serving.cluster.ClusterDispatcher` (or declare pools
via :class:`~repro.serving.cluster.ClusterSpec`).
"""

from __future__ import annotations

import warnings

from repro.serving.cluster import ClusterDispatcher


class ShardedDispatcher(ClusterDispatcher):
    """Deprecated name of :class:`~repro.serving.cluster.ClusterDispatcher`.

    Identical in every respect; construct pools via
    :class:`~repro.serving.cluster.ClusterSpec` (heterogeneous design
    points, named shards) or :class:`ClusterDispatcher` directly.
    """

    def __init__(self, *args, **kwargs):
        warnings.warn(
            "ShardedDispatcher is deprecated; use "
            "repro.serving.ClusterDispatcher (or build the pool from a "
            "ClusterSpec) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)
