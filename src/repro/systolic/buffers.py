"""Buffer and FIFO models of the three-level memory hierarchy.

The classic systolic array (Fig. 2) has an L3 buffer per stream (input,
weight, output), an L2 bank per array edge lane and an L1 register file
per PE.  ONE-SA extends the L3 buffers with the data-addressing module
(:mod:`repro.systolic.addressing`) and the k/b parameter store.

These classes carry *capacity accounting*: they track occupancy in
elements, raise on overflow, and count total traffic so the cycle-level
simulator and the tests can verify that the dataflow respects the
Table V buffer geometry.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable, List, Optional

import numpy as np


class BufferOverflowError(RuntimeError):
    """Raised when a write exceeds a buffer's configured capacity."""


@dataclass
class Fifo:
    """Bounded FIFO used inside the L3 data-addressing module (Fig. 5).

    Tracks pushes/pops and the high-water mark so tests can check the
    module never needs more storage than the 32 B FIFO region the L3
    geometry reserves.
    """

    name: str
    capacity: int
    _items: Deque = field(default_factory=deque)
    pushes: int = 0
    pops: int = 0
    high_water: int = 0

    def push(self, item) -> None:
        if len(self._items) >= self.capacity:
            raise BufferOverflowError(
                f"FIFO {self.name!r} overflow (capacity {self.capacity})"
            )
        self._items.append(item)
        self.pushes += 1
        self.high_water = max(self.high_water, len(self._items))

    def pop(self):
        if not self._items:
            raise IndexError(f"FIFO {self.name!r} underflow")
        self.pops += 1
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        return not self._items


@dataclass
class Buffer:
    """A capacity-checked scratch buffer holding fixed-point elements.

    ``capacity_elements`` is derived from the byte geometry in
    :class:`~repro.systolic.config.SystolicConfig`.  ``load``/``read``
    model whole-row transactions (the granularity the dataflow schedules
    use); traffic counters accumulate element counts for the energy and
    bandwidth accounting.
    """

    name: str
    capacity_elements: int
    occupancy: int = 0
    loads: int = 0
    reads: int = 0
    elements_in: int = 0
    elements_out: int = 0
    high_water: int = 0

    def load(self, n_elements: int) -> None:
        """Account an ``n_elements``-element write into the buffer."""
        if n_elements < 0:
            raise ValueError("n_elements must be non-negative")
        if self.occupancy + n_elements > self.capacity_elements:
            raise BufferOverflowError(
                f"buffer {self.name!r}: load of {n_elements} exceeds capacity "
                f"{self.capacity_elements} (occupancy {self.occupancy})"
            )
        self.occupancy += n_elements
        self.loads += 1
        self.elements_in += n_elements
        self.high_water = max(self.high_water, self.occupancy)

    def read(self, n_elements: int) -> None:
        """Account an ``n_elements``-element read (and drain) out."""
        if n_elements > self.occupancy:
            raise BufferOverflowError(
                f"buffer {self.name!r}: read of {n_elements} exceeds occupancy "
                f"{self.occupancy}"
            )
        self.occupancy -= n_elements
        self.reads += 1
        self.elements_out += n_elements

    def drain(self) -> None:
        """Empty the buffer (end of a tile's lifetime)."""
        self.occupancy = 0


@dataclass
class ParameterStore:
    """The L3-resident CPWL ``(k, b)`` store added by ONE-SA.

    Holds the quantized slope/intercept arrays of the currently loaded
    segment tables, bounded by ``capacity_segments`` (the
    ``segment_capacity`` of the design point).  ``resident`` maps a table
    identity to its segment count so the executor can decide when a
    table swap — and its preload traffic — is needed.
    """

    capacity_segments: int
    resident: dict = field(default_factory=dict)
    swaps: int = 0
    preloaded_segments: int = 0

    @property
    def used_segments(self) -> int:
        return sum(self.resident.values())

    def ensure(self, table_id: str, n_segments: int) -> bool:
        """Make a table resident; returns True when a preload happened.

        Eviction is least-recently-loaded; a table larger than the whole
        store is rejected (the granularity is "limited by the size of the
        L3 buffer", Section V-B).
        """
        if n_segments > self.capacity_segments:
            raise BufferOverflowError(
                f"segment table {table_id!r} needs {n_segments} segments; "
                f"parameter store holds {self.capacity_segments}"
            )
        if table_id in self.resident:
            return False
        while self.used_segments + n_segments > self.capacity_segments:
            evicted = next(iter(self.resident))
            del self.resident[evicted]
            self.swaps += 1
        self.resident[table_id] = n_segments
        self.preloaded_segments += n_segments
        return True


def build_hierarchy(config) -> dict:
    """Instantiate the full buffer hierarchy for a design point.

    Returns a dict with the three L3 buffers, the L2 bank lists and the
    per-PE L1 entries, all sized per :class:`SystolicConfig`.
    """
    eb = config.element_bytes
    l3_capacity = config.l3_bytes // eb
    l2_capacity = config.l2_bytes // eb
    l1_capacity = config.l1_bytes // eb
    hierarchy = {
        "l3": {
            name: Buffer(f"L3.{name}", l3_capacity)
            for name in ("input", "weight", "output")
        },
        # Input banks sit on the row lanes; weight and output banks on
        # the column lanes (identical counts on square grids).
        "l2": {
            name: [
                Buffer(f"L2.{name}[{i}]", l2_capacity)
                for i in range(
                    config.pe_rows if name == "input" else config.pe_cols
                )
            ]
            for name in ("input", "weight", "output")
        },
        "l1": [
            Buffer(f"L1[{i}]", l1_capacity) for i in range(config.n_pes)
        ],
        "params": ParameterStore(config.segment_capacity),
    }
    return hierarchy
