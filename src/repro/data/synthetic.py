"""Synthetic task generators for the three modalities.

Each generator produces a deterministic train/test split given a seed.
Difficulty is controlled by class count, within-class noise and (for
sequences/graphs) signal sparsity — the knobs that make the CPWL
granularity sensitivity vary the way Table III's hard tasks do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.nn.models.gcn import normalized_adjacency


@dataclass(frozen=True)
class ImageTask:
    """An image-classification stand-in (templates + noise)."""

    name: str
    x_train: np.ndarray  # (N, C, H, W)
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    n_classes: int


@dataclass(frozen=True)
class SequenceTask:
    """A token-sequence classification stand-in."""

    name: str
    x_train: np.ndarray  # (N, T) integer tokens
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    n_classes: int
    vocab: int
    seq_len: int


@dataclass(frozen=True)
class GraphTask:
    """A node-classification stand-in (stochastic block model)."""

    name: str
    features: np.ndarray  # (V, F)
    a_hat: np.ndarray  # (V, V) normalized adjacency
    labels: np.ndarray  # (V,)
    train_mask: np.ndarray
    test_mask: np.ndarray
    n_classes: int


def make_image_task(
    name: str,
    n_classes: int = 10,
    noise: float = 0.6,
    n_train: int = 512,
    n_test: int = 256,
    shape: Tuple[int, int, int] = (1, 8, 8),
    template_scale: float = 1.0,
    borderline_fraction: float = 0.0,
    seed: int = 0,
) -> ImageTask:
    """Class-template images with additive Gaussian noise.

    Each class has a smooth random template; samples are the template
    plus iid noise, clipped to a bounded range so INT16 quantization is
    well conditioned.  Raising ``noise`` or ``n_classes`` (or shrinking
    ``template_scale``, which tightens class margins) lowers the
    achievable accuracy and steepens the granularity sensitivity.

    ``borderline_fraction`` blends in samples drawn *between* the true
    class template and a random other class (natural image datasets
    have exactly this near-boundary mass), which is what makes accuracy
    respond gradually to small inference perturbations rather than
    being a step function.
    """
    rng = np.random.default_rng(seed)
    c, h, w = shape
    templates = template_scale * rng.normal(0.0, 1.0, size=(n_classes, c, h, w))
    # Smooth the templates so nearby pixels correlate (image-like).
    for axis in (2, 3):
        templates = 0.5 * templates + 0.25 * (
            np.roll(templates, 1, axis=axis) + np.roll(templates, -1, axis=axis)
        )

    def sample(n: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, n_classes, size=n)
        xs = templates[labels] + rng.normal(0.0, noise, size=(n, c, h, w))
        if borderline_fraction > 0:
            borderline = rng.random(n) < borderline_fraction
            others = (labels + rng.integers(1, n_classes, size=n)) % n_classes
            # Mix the sample toward another class, just shy of ambiguity.
            mix = rng.uniform(0.30, 0.48, size=n)[:, None, None, None]
            xs = np.where(
                borderline[:, None, None, None],
                (1 - mix) * xs + mix * templates[others],
                xs,
            )
        return np.clip(xs, -4.0, 4.0), labels

    x_train, y_train = sample(n_train)
    x_test, y_test = sample(n_test)
    return ImageTask(name, x_train, y_train, x_test, y_test, n_classes)


def make_sequence_task(
    name: str,
    n_classes: int = 2,
    vocab: int = 32,
    seq_len: int = 16,
    signal_tokens: int = 4,
    noise: float = 0.3,
    n_train: int = 512,
    n_test: int = 256,
    seed: int = 0,
) -> SequenceTask:
    """Keyword-signal sequences.

    Each class owns ``signal_tokens`` vocabulary items; a sample draws
    most positions from a shared background distribution and, with
    probability ``1 - noise`` per signal slot, plants class keywords.
    Higher ``noise`` (fewer planted keywords) makes the task harder.
    """
    rng = np.random.default_rng(seed)
    class_tokens = rng.permutation(vocab)[: n_classes * signal_tokens].reshape(
        n_classes, signal_tokens
    )

    def sample(n: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, n_classes, size=n)
        seqs = rng.integers(0, vocab, size=(n, seq_len))
        slots = rng.integers(0, seq_len, size=(n, signal_tokens))
        keep = rng.random((n, signal_tokens)) > noise
        for i in range(n):
            planted = class_tokens[labels[i]][keep[i]]
            seqs[i, slots[i][keep[i]]] = planted
        return seqs, labels

    x_train, y_train = sample(n_train)
    x_test, y_test = sample(n_test)
    return SequenceTask(
        name, x_train, y_train, x_test, y_test, n_classes, vocab, seq_len
    )


def make_graph_task(
    name: str,
    n_nodes: int = 200,
    n_classes: int = 4,
    n_features: int = 16,
    p_in: float = 0.08,
    p_out: float = 0.01,
    feature_noise: float = 1.0,
    train_fraction: float = 0.3,
    seed: int = 0,
) -> GraphTask:
    """Stochastic-block-model graph with community-informative features.

    Nodes in the same community connect with probability ``p_in``,
    across communities ``p_out``; features are a community centroid plus
    noise.  Lowering ``p_in / p_out`` contrast or raising
    ``feature_noise`` makes the task harder.
    """
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, n_classes, size=n_nodes)
    probs = np.where(labels[:, None] == labels[None, :], p_in, p_out)
    upper = np.triu(rng.random((n_nodes, n_nodes)) < probs, k=1)
    adjacency = (upper | upper.T).astype(np.float64)
    centroids = rng.normal(0.0, 1.0, size=(n_classes, n_features))
    features = centroids[labels] + rng.normal(
        0.0, feature_noise, size=(n_nodes, n_features)
    )
    features = np.clip(features, -4.0, 4.0)
    order = rng.permutation(n_nodes)
    n_train = int(train_fraction * n_nodes)
    train_mask = np.zeros(n_nodes, dtype=bool)
    train_mask[order[:n_train]] = True
    test_mask = ~train_mask
    return GraphTask(
        name,
        features,
        normalized_adjacency(adjacency),
        labels,
        train_mask,
        test_mask,
        n_classes,
    )
