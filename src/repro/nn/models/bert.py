"""Transformer encoder (the paper's BERT family).

:class:`TinyBERT` is a two-layer post-norm encoder with learned token
and position embeddings, GELU feed-forwards, LayerNorms and softmax
attention — all four of Fig. 1(b)'s nonlinear op types — trainable in
seconds on the synthetic sequence tasks.  The full BERT-base layer
shapes live in :mod:`repro.nn.workload`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.layers import Embedding, Linear, Module, TransformerEncoderLayer


class TinyBERT(Module):
    """Encoder-only classifier for integer token sequences ``(N, T)``.

    ``causal=True`` turns every attention layer causal (position ``i``
    attends to positions ``<= i`` only), which makes the whole encoder
    row-causal: hidden row ``i`` at every depth depends only on tokens
    ``<= i``.  That is the property KV-prefix reuse needs — a request
    sharing a cached prompt can skip the prefix rows of every GEMM and
    still produce bit-identical outputs via :meth:`infer_suffix`.  The
    default (bidirectional) model is unchanged.
    """

    def __init__(
        self,
        vocab: int = 32,
        seq_len: int = 16,
        dim: int = 32,
        heads: int = 4,
        ff_dim: int = 64,
        n_layers: int = 2,
        n_classes: int = 2,
        seed: int = 0,
        causal: bool = False,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.vocab = vocab
        self.seq_len = seq_len
        self.dim = dim
        self.heads = heads
        self.ff_dim = ff_dim
        self.n_layers = n_layers
        self.n_classes = n_classes
        self.causal = bool(causal)
        self.token_emb = Embedding(vocab, dim, rng)
        self.pos_emb = Tensor(
            rng.normal(0, 0.1, size=(seq_len, dim)), requires_grad=True
        )
        self.layers = [
            TransformerEncoderLayer(dim, heads, ff_dim, rng, causal=causal)
            for _ in range(n_layers)
        ]
        self.classifier = Linear(dim, n_classes, rng)

    def forward(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens)
        x = self.token_emb.forward_indices(tokens) + self.pos_emb
        for layer in self.layers:
            x = layer(x)
        pooled = x.mean(axis=1)
        return self.classifier(pooled)

    def infer(self, tokens: np.ndarray, backend, kv_tap=None) -> np.ndarray:
        """Batched inference; ``kv_tap`` captures per-layer prefix K/V.

        ``kv_tap`` (a :class:`repro.nn.executor.KVTap`) records each
        attention layer's merged key/value activations plus the final
        hidden prefix rows during a normal cold pass, at zero extra
        compute — the payload a :class:`~repro.serving.prefix_cache.PrefixCache`
        entry retains.
        """
        tokens = np.asarray(tokens)
        x = self.token_emb.infer_indices(tokens) + self.pos_emb.data
        for layer in self.layers:
            x = layer.infer(x, backend, kv_tap=kv_tap)
        if kv_tap is not None:
            kv_tap.capture_final(x)
        pooled = x.mean(axis=1)
        return self.classifier.infer(pooled, backend)

    def infer_suffix(self, tokens: np.ndarray, prefix, backend) -> np.ndarray:
        """Inference reusing a cached prompt: suffix rows only.

        ``tokens`` is the full ``(N, T)`` batch whose first
        ``prefix.prefix_len`` columns match the cached prompt;
        ``prefix`` is a captured :class:`~repro.nn.executor.KVTap` (or
        any object with ``prefix_len``, per-layer ``layers[i].k/.v``
        and ``final_hidden``).  Only the suffix rows flow through the
        encoder — each layer attends against its cached prefix K/V —
        and the cached final hidden rows complete the mean-pool, so the
        classifier sees exactly the cold path's pooled activations.
        Bit-identity with :meth:`infer` is property-tested.
        """
        if not self.causal:
            raise ValueError("prefix reuse requires causal=True")
        tokens = np.asarray(tokens)
        p = prefix.prefix_len
        if not 0 < p < tokens.shape[-1]:
            raise ValueError(
                f"prefix length {p} must be in (0, {tokens.shape[-1]})"
            )
        if len(prefix.layers) != len(self.layers) or prefix.final_hidden is None:
            raise ValueError("prefix payload does not match this model's depth")
        n = tokens.shape[0]
        x = self.token_emb.infer_indices(tokens[:, p:]) + self.pos_emb.data[p:]
        for layer, kv in zip(self.layers, prefix.layers):
            x = layer.infer_suffix(x, kv.k, kv.v, backend)
        final_prefix = np.broadcast_to(prefix.final_hidden, (n,) + prefix.final_hidden.shape)
        full = np.concatenate([final_prefix, x], axis=1)
        pooled = full.mean(axis=1)
        return self.classifier.infer(pooled, backend)

    def predict(self, tokens: np.ndarray, backend) -> np.ndarray:
        """Hard class predictions."""
        return np.argmax(self.infer(tokens, backend), axis=-1)
