"""Multi-tenant batched inference serving on top of the (ONE-)SA simulator.

This subpackage turns the single-call simulator into a multi-request,
multi-tenant serving system:

* request/completion records with tenant, priority and deadline fields
  (:mod:`repro.serving.request`);
* deterministic dynamic batching with max-batch-size and flush-timeout
  knobs (:mod:`repro.serving.batcher`) — co-pending requests of the
  same tenant and model are stacked so their GEMMs share tiles, which
  the vectorized :func:`repro.fixedpoint.fixed_matmul` executes in one
  call, bit-identical to per-request inference; the incremental
  :class:`~repro.serving.batcher.BatchAssembler` applies the same
  rules while requests keep arriving;
* tenant contracts — fair-share weight, strict priority, latency SLO
  (:mod:`repro.serving.tenancy`);
* per-tenant queues with pluggable fairness policies (weighted
  round-robin, strict priority) driving a discrete-event scheduler
  loop that admits requests while batches are in flight
  (:mod:`repro.serving.scheduler`);
* round-robin sharding across a pool of
  :class:`~repro.systolic.array.SystolicArray` instances with per-array
  trace aggregation and per-tenant namespace attribution
  (:mod:`repro.serving.dispatcher`);
* the engine tying admission, scheduler and shards together
  (:mod:`repro.serving.engine`);
* serving-level reporting — latency percentiles, throughput,
  cycles/request, per-tenant SLO attainment
  (:mod:`repro.serving.report`).

See ``examples/serving_demo.py`` and ``examples/multitenant_demo.py``
for end-to-end tours, and ``docs/serving.md`` for the operator guide.
"""

from repro.serving.batcher import Batch, BatchAssembler, DynamicBatcher
from repro.serving.dispatcher import ShardedDispatcher
from repro.serving.engine import InferenceEngine, ModelEndpoint
from repro.serving.report import ServingReport
from repro.serving.request import CompletedRequest, InferenceRequest
from repro.serving.scheduler import (
    SchedulingPolicy,
    StrictPriority,
    TenantScheduler,
    WeightedRoundRobin,
)
from repro.serving.tenancy import DEFAULT_TENANT, TenantConfig, TenantRegistry

__all__ = [
    "Batch",
    "BatchAssembler",
    "DynamicBatcher",
    "ShardedDispatcher",
    "InferenceEngine",
    "ModelEndpoint",
    "ServingReport",
    "CompletedRequest",
    "InferenceRequest",
    "SchedulingPolicy",
    "StrictPriority",
    "TenantScheduler",
    "WeightedRoundRobin",
    "DEFAULT_TENANT",
    "TenantConfig",
    "TenantRegistry",
]
