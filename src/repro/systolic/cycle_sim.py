"""Event-level (PE-by-PE) cycle simulator.

This simulator steps an actual grid of
:class:`~repro.systolic.pe.ProcessingElement` objects cycle by cycle,
with skewed operand wavefronts and one-cycle forwarding latency, for
both operating modes:

* **GEMM** — output-stationary: A rows stream from the west, B columns
  from the north, every PE accumulates one output element;
* **MHP** — diagonal dataflow: interleaved ``(x, 1)`` pairs stream along
  the rows and ``(k, b)`` pairs down the columns; the diagonal
  computation PEs consume them (C1 off) while all other PEs are pure
  transmission (C2 off).

It is deliberately small-scale (used on grids up to ~8×8 in the tests)
and exists to *validate* the fast paths: the functional results must be
bit-identical to :mod:`repro.systolic.gemm` / ``mhp_dataflow``, and the
measured cycle counts must match the closed-form
:mod:`repro.systolic.timing` model's compute phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.systolic.config import SystolicConfig
from repro.systolic.pe import PEMode, ProcessingElement


@dataclass
class CycleSimResult:
    """Output of one cycle-level run."""

    output: np.ndarray
    cycles: int
    mac_ops_by_pe: np.ndarray  # (rows, cols) MAC counters
    forwards_by_pe: np.ndarray  # (rows, cols) forward counters

    @property
    def active_pes(self) -> int:
        """PEs that performed at least one MAC."""
        return int(np.count_nonzero(self.mac_ops_by_pe))


class CycleSimulator:
    """Steps a PE grid with synchronous one-cycle links."""

    def __init__(self, config: SystolicConfig) -> None:
        self.config = config
        self.grid: List[List[ProcessingElement]] = [
            [
                ProcessingElement(row=i, col=j, macs=config.macs_per_pe, fmt=config.fmt)
                for j in range(config.pe_cols)
            ]
            for i in range(config.pe_rows)
        ]

    def _configure(self, mode_of) -> None:
        for row in self.grid:
            for pe in row:
                pe.configure(mode_of(pe.row, pe.col))

    def _run(self, west_inject, north_inject, n_cycles: int) -> int:
        """Advance the grid ``n_cycles`` with the given injectors.

        ``west_inject(i, cycle)`` / ``north_inject(j, cycle)`` return the
        operand chunk entering row ``i`` / column ``j`` edge at a cycle,
        or ``None``.  Returns the number of cycles stepped.
        """
        rows, cols = self.config.pe_rows, self.config.pe_cols
        for cycle in range(n_cycles):
            # Operands flow strictly east and south, so stepping PEs in
            # ascending (i, j) order within a cycle lets each PE read the
            # value its west/north neighbour just emitted — which is that
            # neighbour's register from the *previous* cycle, giving the
            # correct one-cycle hop latency.
            east_cur = [[None] * cols for _ in range(rows)]
            south_cur = [[None] * cols for _ in range(rows)]
            for i in range(rows):
                for j in range(cols):
                    west = east_cur[i][j - 1] if j > 0 else west_inject(i, cycle)
                    north = south_cur[i - 1][j] if i > 0 else north_inject(j, cycle)
                    east, south = self.grid[i][j].step(west, north)
                    east_cur[i][j] = east
                    south_cur[i][j] = south
        return n_cycles

    def _stats(self) -> tuple[np.ndarray, np.ndarray]:
        rows, cols = self.config.pe_rows, self.config.pe_cols
        macs = np.zeros((rows, cols), dtype=np.int64)
        fwd = np.zeros((rows, cols), dtype=np.int64)
        for i in range(rows):
            for j in range(cols):
                macs[i, j] = self.grid[i][j].stats.mac_ops
                fwd[i, j] = self.grid[i][j].stats.forwards
        return macs, fwd

    # ------------------------------------------------------------------
    # GEMM mode
    # ------------------------------------------------------------------
    def run_gemm_tile(self, a_raw: np.ndarray, b_raw: np.ndarray) -> CycleSimResult:
        """Compute one output tile ``A[MxK] @ B[KxN]`` (M, N <= grid).

        A's rows stream east in ``macs_per_pe``-element chunks, skewed by
        one cycle per row; B's columns stream south, skewed by one cycle
        per column.  After the last chunk has traversed the grid every
        PE(i, j) holds the accumulated dot product ``A[i, :] . B[:, j]``.
        """
        a_raw = np.asarray(a_raw, dtype=np.int64)
        b_raw = np.asarray(b_raw, dtype=np.int64)
        m_dim, k_dim = a_raw.shape
        k2, n_dim = b_raw.shape
        if k2 != k_dim:
            raise ValueError(f"shape mismatch: {a_raw.shape} @ {b_raw.shape}")
        rows, cols = self.config.pe_rows, self.config.pe_cols
        if m_dim > rows or n_dim > cols:
            raise ValueError(
                f"tile {m_dim}x{n_dim} exceeds the {rows}x{cols} grid; "
                "tile the problem first"
            )
        macs = self.config.macs_per_pe
        n_chunks = -(-k_dim // macs)
        # Zero-pad K to a whole number of chunks (zeros do not change sums).
        padded_k = n_chunks * macs
        a_pad = np.zeros((m_dim, padded_k), dtype=np.int64)
        a_pad[:, :k_dim] = a_raw
        b_pad = np.zeros((padded_k, n_dim), dtype=np.int64)
        b_pad[:k_dim, :] = b_raw

        self._configure(lambda i, j: PEMode.GEMM)

        def west_inject(i: int, cycle: int) -> Optional[np.ndarray]:
            if i >= m_dim:
                return None
            t = cycle - i  # one-cycle skew per row
            if 0 <= t < n_chunks:
                return a_pad[i, t * macs : (t + 1) * macs]
            return None

        def north_inject(j: int, cycle: int) -> Optional[np.ndarray]:
            if j >= n_dim:
                return None
            t = cycle - j
            if 0 <= t < n_chunks:
                return b_pad[t * macs : (t + 1) * macs, j]
            return None

        # Last chunk enters row m-1 at cycle (m-1) + n_chunks - 1 and needs
        # n_dim - 1 forwarding hops plus its own compute cycle.
        n_cycles = n_chunks + (m_dim - 1) + (n_dim - 1) + 1
        cycles = self._run(west_inject, north_inject, n_cycles)

        out = np.zeros((m_dim, n_dim), dtype=self.config.fmt.storage_dtype())
        for i in range(m_dim):
            for j in range(n_dim):
                out[i, j] = self.grid[i][j].writeback()
        mac_ops, forwards = self._stats()
        return CycleSimResult(
            output=out, cycles=cycles, mac_ops_by_pe=mac_ops, forwards_by_pe=forwards
        )

    # ------------------------------------------------------------------
    # MHP mode
    # ------------------------------------------------------------------
    def run_mhp(
        self, x_raw: np.ndarray, k_raw: np.ndarray, b_raw: np.ndarray
    ) -> CycleSimResult:
        """Run a Matrix Hadamard Product through the diagonal dataflow.

        Row ``r`` of the operand matrices is assigned to lane
        ``r % pe_rows``; its ``(x, 1)`` pairs enter that row from the
        west while the matching ``(k, b)`` pairs enter the lane's column
        from the north, one pair per cycle.  They meet at the diagonal
        computation PE after exactly ``lane`` forwarding hops on each
        path, so no extra skew is needed.
        """
        x_raw = np.atleast_2d(np.asarray(x_raw, dtype=np.int64))
        k_raw = np.atleast_2d(np.asarray(k_raw, dtype=np.int64))
        b_raw = np.atleast_2d(np.asarray(b_raw, dtype=np.int64))
        if not (x_raw.shape == k_raw.shape == b_raw.shape):
            raise ValueError("MHP operands must share a shape")
        m_dim, n_dim = x_raw.shape
        p = self.config.pe_rows
        one_raw = np.int64(1) << self.config.fmt.frac_bits

        self._configure(
            lambda i, j: PEMode.COMPUTATION if i == j else PEMode.TRANSMISSION
        )

        # Build per-lane element queues in row-major order.
        lane_x: List[np.ndarray] = []
        lane_k: List[np.ndarray] = []
        lane_b: List[np.ndarray] = []
        lane_row_order: List[np.ndarray] = []
        for lane in range(p):
            rows = np.arange(lane, m_dim, p)
            lane_row_order.append(rows)
            lane_x.append(x_raw[rows].reshape(-1))
            lane_k.append(k_raw[rows].reshape(-1))
            lane_b.append(b_raw[rows].reshape(-1))

        longest = max((arr.size for arr in lane_x), default=0)

        def west_inject(i: int, cycle: int) -> Optional[np.ndarray]:
            if cycle < lane_x[i].size:
                return np.array([lane_x[i][cycle], one_raw], dtype=np.int64)
            return None

        def north_inject(j: int, cycle: int) -> Optional[np.ndarray]:
            if cycle < lane_k[j].size:
                return np.array(
                    [lane_k[j][cycle], lane_b[j][cycle]], dtype=np.int64
                )
            return None

        # The deepest lane (p-1) needs p-1 hops after its last injection.
        n_cycles = longest + p + 1
        cycles = self._run(west_inject, north_inject, n_cycles)

        out = np.zeros((m_dim, n_dim), dtype=self.config.fmt.storage_dtype())
        for lane in range(p):
            rows = lane_row_order[lane]
            if rows.size == 0:
                continue
            produced = np.array(
                self.grid[lane][lane].output_buffer,
                dtype=self.config.fmt.storage_dtype(),
            )
            out[rows] = produced.reshape(rows.size, n_dim)
        mac_ops, forwards = self._stats()
        return CycleSimResult(
            output=out, cycles=cycles, mac_ops_by_pe=mac_ops, forwards_by_pe=forwards
        )
