"""Graph convolutional network (the paper's GNN family, Kipf & Welling).

Two :class:`~repro.nn.layers.GraphConv` layers with ReLU — the paper's
GCN [17].  The normalized adjacency ``A_hat = D^-1/2 (A + I) D^-1/2`` is
precomputed by :func:`normalized_adjacency` and both per-layer products
map to GEMMs on the array.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.layers import GraphConv, Module


def normalized_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """Symmetric GCN normalization ``D^-1/2 (A + I) D^-1/2``."""
    adjacency = np.asarray(adjacency, dtype=np.float64)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    a_tilde = adjacency + np.eye(adjacency.shape[0])
    degrees = a_tilde.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degrees, 1e-12))
    return a_tilde * inv_sqrt[:, None] * inv_sqrt[None, :]


class GCN(Module):
    """Two-layer GCN node classifier."""

    def __init__(
        self,
        in_features: int,
        hidden: int = 16,
        n_classes: int = 4,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.gc1 = GraphConv(in_features, hidden, rng)
        self.gc2 = GraphConv(hidden, n_classes, rng)

    def forward(self, features: np.ndarray, a_hat: np.ndarray) -> Tensor:
        h = self.gc1.forward(Tensor(features), a_hat).relu()
        return self.gc2.forward(h, a_hat)

    def infer(self, features: np.ndarray, a_hat: np.ndarray, backend) -> np.ndarray:
        h = backend.relu(self.gc1.infer(features, a_hat, backend))
        return self.gc2.infer(h, a_hat, backend)

    def predict(self, features: np.ndarray, a_hat: np.ndarray, backend) -> np.ndarray:
        """Hard per-node class predictions."""
        return np.argmax(self.infer(features, a_hat, backend), axis=-1)
