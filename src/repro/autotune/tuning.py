"""The knob vector the autotuner searches: one serving deployment, as data.

A :class:`TuningConfig` is everything the replay harness needs to
stand up a candidate deployment — pool composition (a tuple of
:class:`~repro.systolic.config.SystolicConfig` design points),
placement policy plus the ``cost_aware`` occupancy penalty, batcher
knobs, admission caps and cache byte budgets — as a frozen, JSON-safe
value (design points serialize through the existing
:func:`~repro.serving.cluster.config_to_dict`).  Two replays of the
same trace under equal configs are bit-identical, which is what makes
search results comparable and fronts resumable.

A :class:`ConfigSpace` bounds the search: a catalog of shard design
points plus discrete knob ranges, with seeded ``sample`` /
``mutate`` / ``crossover`` operators shared by the random and
evolutionary drivers in :mod:`repro.autotune.search`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.serving.cluster import config_from_dict, config_to_dict
from repro.serving.elastic import ElasticConfig
from repro.systolic.config import SystolicConfig

_PLACEMENT_CHOICES = ("round_robin", "least_loaded", "cost_aware", "lookahead")

#: Default search range — the pre-elastic trio, so existing seeded
#: searches draw the same stream; operators add ``"lookahead"`` (and
#: widen the elastic ranges) explicitly.
_BASELINE_PLACEMENTS = ("round_robin", "least_loaded", "cost_aware")


@dataclass(frozen=True)
class TuningConfig:
    """One candidate deployment: pool + placement + batching + caches.

    ``occupancy_penalty`` only takes effect under ``cost_aware``
    placement (it is the
    :class:`~repro.serving.cluster.CostAwarePlacement` knob);
    ``max_queue_depth`` caps every tenant's queue (None = uncapped);
    the cache budgets size the per-shard prefix cache and the radix KV
    cache when the replayed models opt into them (None = feature off).

    The elastic-runtime knobs (``steal``, ``autoscale`` and their
    thresholds) feed an :class:`~repro.serving.elastic.ElasticConfig`
    the replay harness hands the engine; ``placement="lookahead"``
    turns on joint per-round list scheduling.  All default off, so an
    untuned config replays the pinned baseline bit-identically.
    """

    pool: Tuple[SystolicConfig, ...]
    placement: str = "round_robin"
    occupancy_penalty: float = 0.0
    max_batch_size: int = 8
    flush_timeout: float = 1e-3
    max_queue_depth: Optional[int] = None
    prefix_budget_bytes: Optional[int] = None
    radix_budget_bytes: Optional[int] = None
    steal: bool = False
    autoscale: bool = False
    steal_drift_threshold: float = 1.5
    affinity_break_factor: float = 2.0

    def __post_init__(self) -> None:
        if not self.pool:
            raise ValueError("a tuning config needs at least one shard")
        if self.placement not in _PLACEMENT_CHOICES:
            raise ValueError(
                f"unknown placement {self.placement!r}; "
                f"available: {list(_PLACEMENT_CHOICES)}"
            )
        if self.occupancy_penalty < 0:
            raise ValueError(
                f"occupancy_penalty must be >= 0, got {self.occupancy_penalty}"
            )
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        # Threshold bounds are ElasticConfig's contract; fail at
        # construction, not at replay time.
        self.elastic()

    @property
    def n_shards(self) -> int:
        return len(self.pool)

    def elastic(self) -> ElasticConfig:
        """The engine-side elastic knobs this candidate deploys with."""
        return ElasticConfig(
            lookahead=self.placement == "lookahead",
            steal=self.steal,
            autoscale=self.autoscale,
            steal_drift_threshold=self.steal_drift_threshold,
            affinity_break_factor=self.affinity_break_factor,
        )

    def describe(self) -> str:
        """One line: pool grids, placement and batch knobs."""
        grids = ", ".join(
            f"{c.pe_rows}x{c.pe_cols}x{c.macs_per_pe}@{c.clock_hz / 1e6:.0f}MHz"
            for c in self.pool
        )
        placement = self.placement
        if self.placement == "cost_aware" and self.occupancy_penalty > 0:
            placement = f"cost_aware(occ={self.occupancy_penalty:g})"
        line = (
            f"[{grids}] placement={placement} "
            f"batch<= {self.max_batch_size} flush={self.flush_timeout:g}s"
        )
        elastic = self.elastic()
        if elastic.steal or elastic.autoscale:
            line += " " + elastic.describe()
        return line

    def to_dict(self) -> Dict[str, object]:
        return {
            "pool": [config_to_dict(config) for config in self.pool],
            "placement": self.placement,
            "occupancy_penalty": self.occupancy_penalty,
            "max_batch_size": self.max_batch_size,
            "flush_timeout": self.flush_timeout,
            "max_queue_depth": self.max_queue_depth,
            "prefix_budget_bytes": self.prefix_budget_bytes,
            "radix_budget_bytes": self.radix_budget_bytes,
            "steal": self.steal,
            "autoscale": self.autoscale,
            "steal_drift_threshold": self.steal_drift_threshold,
            "affinity_break_factor": self.affinity_break_factor,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TuningConfig":
        # Elastic knobs are read with defaults so pre-elastic snapshots
        # (recorded fronts, saved Pareto members) keep loading.
        return cls(
            pool=tuple(config_from_dict(item) for item in data["pool"]),
            placement=str(data["placement"]),
            occupancy_penalty=float(data["occupancy_penalty"]),
            max_batch_size=int(data["max_batch_size"]),
            flush_timeout=float(data["flush_timeout"]),
            max_queue_depth=(
                None
                if data["max_queue_depth"] is None
                else int(data["max_queue_depth"])
            ),
            prefix_budget_bytes=(
                None
                if data["prefix_budget_bytes"] is None
                else int(data["prefix_budget_bytes"])
            ),
            radix_budget_bytes=(
                None
                if data["radix_budget_bytes"] is None
                else int(data["radix_budget_bytes"])
            ),
            steal=bool(data.get("steal", False)),
            autoscale=bool(data.get("autoscale", False)),
            steal_drift_threshold=float(data.get("steal_drift_threshold", 1.5)),
            affinity_break_factor=float(data.get("affinity_break_factor", 2.0)),
        )


@dataclass(frozen=True)
class ConfigSpace:
    """Bounds of the search: a shard catalog plus discrete knob ranges.

    ``catalog`` is the set of deployable design points (what the
    operator can actually rack); a candidate pool is any multiset of
    1..``max_shards`` of them.  The remaining ranges enumerate the
    discrete values each knob may take — discrete on purpose, so the
    space is seed-reproducible and mutation is a neighbor hop, not a
    float perturbation that never revisits a value.
    """

    catalog: Tuple[SystolicConfig, ...]
    max_shards: int = 4
    placements: Tuple[str, ...] = _BASELINE_PLACEMENTS
    occupancy_penalties: Tuple[float, ...] = (0.0, 0.5, 1.0, 2.0)
    batch_sizes: Tuple[int, ...] = (2, 4, 8)
    flush_timeouts: Tuple[float, ...] = (1e-4, 1e-3)
    queue_depths: Tuple[Optional[int], ...] = (None,)
    prefix_budgets: Tuple[Optional[int], ...] = (None,)
    radix_budgets: Tuple[Optional[int], ...] = (None,)
    steal_choices: Tuple[bool, ...] = (False,)
    autoscale_choices: Tuple[bool, ...] = (False,)
    steal_thresholds: Tuple[float, ...] = (1.5,)
    affinity_break_factors: Tuple[float, ...] = (2.0,)

    def __post_init__(self) -> None:
        if not self.catalog:
            raise ValueError("the shard catalog must not be empty")
        if self.max_shards < 1:
            raise ValueError(f"max_shards must be >= 1, got {self.max_shards}")
        for placement in self.placements:
            if placement not in _PLACEMENT_CHOICES:
                raise ValueError(
                    f"unknown placement {placement!r}; "
                    f"available: {list(_PLACEMENT_CHOICES)}"
                )

    def sample(self, rng: np.random.Generator) -> TuningConfig:
        """One uniform draw from the space (all randomness from ``rng``)."""
        n_shards = int(rng.integers(1, self.max_shards + 1))
        pool = tuple(
            self.catalog[int(rng.integers(0, len(self.catalog)))]
            for _ in range(n_shards)
        )
        placement = str(self.placements[int(rng.integers(0, len(self.placements)))])
        return TuningConfig(
            pool=pool,
            placement=placement,
            occupancy_penalty=(
                float(_pick(rng, self.occupancy_penalties))
                if placement == "cost_aware"
                else 0.0
            ),
            max_batch_size=int(_pick(rng, self.batch_sizes)),
            flush_timeout=float(_pick(rng, self.flush_timeouts)),
            max_queue_depth=_pick(rng, self.queue_depths),
            prefix_budget_bytes=_pick(rng, self.prefix_budgets),
            radix_budget_bytes=_pick(rng, self.radix_budgets),
            steal=bool(_pick_or_only(rng, self.steal_choices)),
            autoscale=bool(_pick_or_only(rng, self.autoscale_choices)),
            steal_drift_threshold=float(
                _pick_or_only(rng, self.steal_thresholds)
            ),
            affinity_break_factor=float(
                _pick_or_only(rng, self.affinity_break_factors)
            ),
        )

    @property
    def _elastic_searchable(self) -> bool:
        """Any elastic range wider than its singleton default?"""
        return any(
            len(choices) > 1
            for choices in (
                self.steal_choices,
                self.autoscale_choices,
                self.steal_thresholds,
                self.affinity_break_factors,
            )
        )

    def mutate(
        self, config: TuningConfig, rng: np.random.Generator
    ) -> TuningConfig:
        """One neighbor hop: re-draw a single knob (or swap one shard).

        The elastic-knob move exists only when an elastic range is
        wider than its singleton default, so spaces that do not search
        the elastic runtime draw the exact pre-elastic stream.
        """
        move = int(rng.integers(0, 6 if self._elastic_searchable else 5))
        if move == 5:
            return replace(
                config,
                steal=bool(_pick(rng, self.steal_choices)),
                autoscale=bool(_pick(rng, self.autoscale_choices)),
                steal_drift_threshold=float(_pick(rng, self.steal_thresholds)),
                affinity_break_factor=float(
                    _pick(rng, self.affinity_break_factors)
                ),
            )
        if move == 0:
            # Swap one shard for a catalog neighbor; grow or shrink the
            # pool by one when the bounds allow it.
            pool = list(config.pool)
            action = int(rng.integers(0, 3))
            if action == 0 and len(pool) < self.max_shards:
                pool.append(self.catalog[int(rng.integers(0, len(self.catalog)))])
            elif action == 1 and len(pool) > 1:
                pool.pop(int(rng.integers(0, len(pool))))
            else:
                pool[int(rng.integers(0, len(pool)))] = self.catalog[
                    int(rng.integers(0, len(self.catalog)))
                ]
            return replace(config, pool=tuple(pool))
        if move == 1:
            placement = str(
                self.placements[int(rng.integers(0, len(self.placements)))]
            )
            return replace(
                config,
                placement=placement,
                occupancy_penalty=(
                    config.occupancy_penalty if placement == "cost_aware" else 0.0
                ),
            )
        if move == 2:
            if config.placement != "cost_aware":
                return replace(
                    config, max_batch_size=int(_pick(rng, self.batch_sizes))
                )
            return replace(
                config,
                occupancy_penalty=float(_pick(rng, self.occupancy_penalties)),
            )
        if move == 3:
            return replace(
                config, max_batch_size=int(_pick(rng, self.batch_sizes))
            )
        return replace(
            config, flush_timeout=float(_pick(rng, self.flush_timeouts))
        )

    def crossover(
        self,
        first: TuningConfig,
        second: TuningConfig,
        rng: np.random.Generator,
    ) -> TuningConfig:
        """A child taking the pool from one parent, each knob from either."""
        pool_parent, knob_parent = (
            (first, second) if rng.integers(0, 2) == 0 else (second, first)
        )
        placement = (
            first.placement if rng.integers(0, 2) == 0 else second.placement
        )
        return TuningConfig(
            pool=pool_parent.pool,
            placement=placement,
            occupancy_penalty=(
                knob_parent.occupancy_penalty
                if placement == "cost_aware"
                else 0.0
            ),
            max_batch_size=(
                first.max_batch_size
                if rng.integers(0, 2) == 0
                else second.max_batch_size
            ),
            flush_timeout=(
                first.flush_timeout
                if rng.integers(0, 2) == 0
                else second.flush_timeout
            ),
            max_queue_depth=knob_parent.max_queue_depth,
            prefix_budget_bytes=knob_parent.prefix_budget_bytes,
            radix_budget_bytes=knob_parent.radix_budget_bytes,
            steal=knob_parent.steal,
            autoscale=knob_parent.autoscale,
            steal_drift_threshold=knob_parent.steal_drift_threshold,
            affinity_break_factor=knob_parent.affinity_break_factor,
        )


def _pick(rng: np.random.Generator, choices: Sequence):
    """Uniform choice preserving None entries (np.choice would coerce)."""
    return choices[int(rng.integers(0, len(choices)))]


def _pick_or_only(rng: np.random.Generator, choices: Sequence):
    """Like :func:`_pick`, but a singleton range consumes no randomness —
    the default (elastic-off) space draws the exact pre-elastic stream."""
    if len(choices) == 1:
        return choices[0]
    return _pick(rng, choices)


def default_space(
    catalog: Sequence[SystolicConfig], max_shards: int = 4
) -> ConfigSpace:
    """A :class:`ConfigSpace` over ``catalog`` with the stock knob ranges."""
    return ConfigSpace(catalog=tuple(catalog), max_shards=max_shards)
