"""Bench E1 — Fig. 1: op-type computation breakdown.

Regenerates the two pie charts (as share tables) for the CIFAR-sized
ResNet and BERT-base, in both the CPU view (the paper's figure) and the
ONE-SA view (the motivation's "after" picture).
"""

import pytest

from repro.evaluation.breakdown import (
    PAPER_FIG1,
    figure1_breakdown,
    format_figure1,
)


def test_fig1_breakdown(benchmark, print_artifact):
    mixes = benchmark(figure1_breakdown, "cpu")
    print_artifact(format_figure1("cpu") + "\n\n" + format_figure1("array"))

    resnet = mixes["resnet50"]
    bert = mixes["bert-base"]
    paper_resnet = PAPER_FIG1["resnet50"]
    paper_bert = PAPER_FIG1["bert-base"]

    # GEMM dominates both networks, as in the paper.
    assert abs(resnet["gemm"] - paper_resnet["gemm"]) < 0.08
    assert abs(bert["gemm"] - paper_bert["gemm"]) < 0.08
    # ResNet: batchnorm is the largest nonlinear share (~21%).
    assert abs(resnet["batchnorm"] - paper_resnet["batchnorm"]) < 0.08
    assert resnet["batchnorm"] > resnet["relu"] > resnet["softmax"]
    # BERT: gelu > layernorm > softmax, each within a few points.
    assert abs(bert["gelu"] - paper_bert["gelu"]) < 0.03
    assert abs(bert["layernorm"] - paper_bert["layernorm"]) < 0.03
    assert abs(bert["softmax"] - paper_bert["softmax"]) < 0.03
