"""Bench A2 — ablation: CPWL vs Taylor vs Chebyshev approximation.

Section III-A argues for CPWL over Taylor expansion and Chebyshev
approximation on two grounds: (1) CPWL needs only the linear circuits
the PEs already have, and (2) at matched low compute cost its accuracy
is competitive.  The ablation measures max-error over the GELU domain
for each method and the per-element op cost of evaluating it.
"""

import numpy as np
import pytest

from repro.core.cpwl import (
    CPWLApproximator,
    chebyshev_approximation,
    taylor_approximation,
)
from repro.core.functions import get_function
from repro.evaluation.reporting import format_table


def sweep(function: str = "gelu"):
    xs = np.linspace(-6.0, 6.0, 2000)
    ref = get_function(function)(xs)
    rows = []
    for g in (0.1, 0.25, 0.5, 1.0):
        approx = CPWLApproximator(function, g, fmt=None)
        err = np.max(np.abs(approx(xs) - ref))
        # One MHP pass: 1 multiply + 1 add per element.
        rows.append({"method": f"cpwl(g={g})", "max_err": err, "ops_per_elem": 2})
    for order in (3, 5):
        err = np.max(np.abs(taylor_approximation(function, xs, order=order) - ref))
        # Horner evaluation: order multiplies + order adds.
        rows.append(
            {"method": f"taylor(o={order})", "max_err": err, "ops_per_elem": 2 * order}
        )
    for degree in (5, 9):
        err = np.max(np.abs(chebyshev_approximation(function, xs, degree=degree) - ref))
        rows.append(
            {"method": f"cheb(d={degree})", "max_err": err, "ops_per_elem": 2 * degree}
        )
    return rows


def test_ablation_approximation(benchmark, print_artifact):
    rows = benchmark(sweep)
    print_artifact(
        format_table(
            ["method", "max_err", "ops_per_elem"],
            [[r["method"], r["max_err"], r["ops_per_elem"]] for r in rows],
            title="Ablation: approximation method accuracy vs op cost (GELU)",
        )
    )
    by = {r["method"]: r for r in rows}

    # CPWL at the default granularity beats low-order Taylor globally
    # while costing a fraction of the ops.
    assert by["cpwl(g=0.25)"]["max_err"] < by["taylor(o=3)"]["max_err"]
    assert by["cpwl(g=0.25)"]["max_err"] < by["taylor(o=5)"]["max_err"]
    assert by["cpwl(g=0.25)"]["ops_per_elem"] < by["taylor(o=3)"]["ops_per_elem"]
    # And beats mid-degree Chebyshev at far lower cost.
    assert by["cpwl(g=0.25)"]["max_err"] < by["cheb(d=5)"]["max_err"]
    # CPWL error is monotone in granularity (the tuning knob).
    assert (
        by["cpwl(g=0.1)"]["max_err"]
        < by["cpwl(g=0.25)"]["max_err"]
        < by["cpwl(g=1.0)"]["max_err"]
    )
