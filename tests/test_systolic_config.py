"""Unit tests for the design-point configuration and buffer geometry."""

import numpy as np
import pytest

from repro.systolic.buffers import (
    Buffer,
    BufferOverflowError,
    Fifo,
    ParameterStore,
    build_hierarchy,
)
from repro.systolic.config import ONE_SA_PAPER_CONFIG, SA_PAPER_CONFIG, SystolicConfig


class TestSystolicConfig:
    def test_paper_config_geometry(self):
        cfg = ONE_SA_PAPER_CONFIG
        assert cfg.n_pes == 64
        assert cfg.macs_per_pe == 16
        assert cfg.nonlinear_enabled

    def test_table5_buffer_sizes(self):
        """The buffer geometry reproduces Table V exactly."""
        cfg = ONE_SA_PAPER_CONFIG
        assert cfg.l1_bytes == 32  # 0.031 KB
        assert cfg.pe_buffer_bytes == 96  # 0.094 KB
        assert cfg.l2_bytes == 512  # 0.5 KB
        assert cfg.l3_bytes == 288  # 0.28 KB
        assert cfg.n_l3_buffers == 3
        assert cfg.n_l2_banks == 24
        assert cfg.n_pes == 64

    def test_peak_rates(self):
        cfg = SystolicConfig(pe_rows=8, pe_cols=8, macs_per_pe=16)
        assert cfg.macs_per_cycle == 1024
        assert cfg.mhp_elements_per_cycle == 64.0

    def test_rectangular_grid_rejected_for_one_sa(self):
        # The diagonal MHP dataflow needs a square grid, so ONE-SA
        # design points must reject rectangular geometries.
        with pytest.raises(ValueError, match="square"):
            SystolicConfig(pe_rows=4, pe_cols=8)

    def test_rectangular_grid_allowed_for_plain_sa(self):
        cfg = SystolicConfig(pe_rows=4, pe_cols=8, nonlinear_enabled=False)
        assert cfg.n_pes == 32
        assert cfg.pe_rows == 4
        assert cfg.pe_cols == 8

    def test_rectangular_bank_geometry_counts_lanes(self):
        # Input banks per row lane, weight/output banks per column lane;
        # buffers sized for the longer edge.  Square grids keep Table V.
        cfg = SystolicConfig(
            pe_rows=4, pe_cols=8, macs_per_pe=16, nonlinear_enabled=False
        )
        assert cfg.n_l2_banks == 4 + 2 * 8
        assert cfg.l2_bytes == 2 * 8 * 16 * 2
        assert cfg.l3_bytes == 8 * 16 * 2 + 32
        h = build_hierarchy(cfg)
        assert len(h["l2"]["input"]) == 4
        assert len(h["l2"]["weight"]) == 8
        assert len(h["l2"]["output"]) == 8

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SystolicConfig(pe_rows=0, pe_cols=0)
        with pytest.raises(ValueError):
            SystolicConfig(macs_per_pe=0)
        with pytest.raises(ValueError):
            SystolicConfig(clock_hz=0)
        with pytest.raises(ValueError):
            SystolicConfig(l3_out_width=0)

    def test_with_size_derives_new_point(self):
        cfg = ONE_SA_PAPER_CONFIG.with_size(4, 8)
        assert cfg.pe_rows == 4
        assert cfg.macs_per_pe == 8
        assert cfg.nonlinear_enabled == ONE_SA_PAPER_CONFIG.nonlinear_enabled

    def test_describe_distinguishes_designs(self):
        assert "ONE-SA" in ONE_SA_PAPER_CONFIG.describe()
        assert ONE_SA_PAPER_CONFIG.describe() != SA_PAPER_CONFIG.describe()

    def test_total_buffer_bytes_sums_components(self):
        cfg = ONE_SA_PAPER_CONFIG
        expected = 3 * 288 + 24 * 512 + 64 * 96 + 64 * 32
        assert cfg.total_buffer_bytes == expected


class TestBuffers:
    def test_buffer_load_read_cycle(self):
        buf = Buffer("t", 100)
        buf.load(60)
        assert buf.occupancy == 60
        buf.read(50)
        assert buf.occupancy == 10
        assert buf.elements_in == 60
        assert buf.elements_out == 50
        assert buf.high_water == 60

    def test_buffer_overflow(self):
        buf = Buffer("t", 10)
        with pytest.raises(BufferOverflowError):
            buf.load(11)

    def test_buffer_underflow(self):
        buf = Buffer("t", 10)
        buf.load(2)
        with pytest.raises(BufferOverflowError):
            buf.read(3)

    def test_buffer_drain(self):
        buf = Buffer("t", 10)
        buf.load(5)
        buf.drain()
        assert buf.occupancy == 0

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            Buffer("t", 10).load(-1)

    def test_fifo_order(self):
        fifo = Fifo("f", 4)
        for i in range(3):
            fifo.push(i)
        assert [fifo.pop() for _ in range(3)] == [0, 1, 2]
        assert fifo.high_water == 3

    def test_fifo_overflow(self):
        fifo = Fifo("f", 1)
        fifo.push(1)
        with pytest.raises(BufferOverflowError):
            fifo.push(2)

    def test_fifo_underflow(self):
        with pytest.raises(IndexError):
            Fifo("f", 1).pop()


class TestParameterStore:
    def test_preload_once(self):
        store = ParameterStore(128)
        assert store.ensure("gelu@0.25", 64)
        assert not store.ensure("gelu@0.25", 64)
        assert store.used_segments == 64

    def test_eviction_on_pressure(self):
        store = ParameterStore(100)
        store.ensure("a", 60)
        store.ensure("b", 60)  # evicts a
        assert store.swaps == 1
        assert "a" not in store.resident
        assert "b" in store.resident

    def test_oversized_table_rejected(self):
        store = ParameterStore(32)
        with pytest.raises(BufferOverflowError):
            store.ensure("big", 64)


class TestHierarchy:
    def test_build_hierarchy_structure(self):
        h = build_hierarchy(ONE_SA_PAPER_CONFIG)
        assert set(h["l3"]) == {"input", "weight", "output"}
        assert len(h["l2"]["input"]) == 8
        assert len(h["l1"]) == 64
        assert h["params"].capacity_segments == ONE_SA_PAPER_CONFIG.segment_capacity

    def test_hierarchy_capacities_match_config(self):
        cfg = ONE_SA_PAPER_CONFIG
        h = build_hierarchy(cfg)
        assert h["l3"]["input"].capacity_elements == cfg.l3_bytes // 2
        assert h["l2"]["weight"][0].capacity_elements == cfg.l2_bytes // 2
        assert h["l1"][0].capacity_elements == cfg.l1_bytes // 2
