"""Pareto-front extraction for the latency/power design-space plots.

Fig. 10 scatter-plots every design point (PE count × MAC count) in the
latency-power plane and highlights the Pareto frontier; this module
provides the generic minimization front used by that experiment and the
design-space exploration example.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def pareto_front(
    points: Iterable[T],
    objectives: Sequence[Callable[[T], float]],
) -> List[T]:
    """Return the points not dominated on the given objectives.

    A point dominates another when it is no worse on every objective and
    strictly better on at least one; all objectives are minimized.
    Output preserves the input order of the surviving points.
    """
    items = list(points)
    values = [tuple(obj(p) for p in items) for obj in objectives]
    # values[k][i] is objective k of item i; transpose for per-item tuples.
    per_item = list(zip(*values)) if items else []

    def dominates(a: tuple, b: tuple) -> bool:
        return all(x <= y for x, y in zip(a, b)) and any(
            x < y for x, y in zip(a, b)
        )

    front = []
    for i, item in enumerate(items):
        if not any(
            dominates(per_item[j], per_item[i]) for j in range(len(items)) if j != i
        ):
            front.append(item)
    return front


def is_on_front(
    point: T,
    points: Iterable[T],
    objectives: Sequence[Callable[[T], float]],
) -> bool:
    """Whether ``point`` is Pareto-optimal within ``points``."""
    mine = tuple(obj(point) for obj in objectives)
    for other in points:
        theirs = tuple(obj(other) for obj in objectives)
        if theirs == mine:
            continue
        if all(t <= m for t, m in zip(theirs, mine)) and any(
            t < m for t, m in zip(theirs, mine)
        ):
            return False
    return True
