"""Power model (replaces the Xilinx Power Estimator reports).

Total power is static plus per-resource dynamic power::

    P = P_static + activity * (f / f0) * (w_lut LUT + w_ff FF
                                          + w_bram BRAM + w_dsp DSP)

The per-resource weights are typical Virtex-7 XPE coefficients at the
reference clock; a single global calibration factor then pins the model
to the paper's published operating point — 7.61 W for the 64-PE /
16-MAC ONE-SA of Table IV.  Across the swept design space (4–256 PEs,
2–32 MACs) the model spans roughly 4–15 W, the band Fig. 10 shows.
"""

from __future__ import annotations

from repro.hardware.resources import ArrayResources, total_resources
from repro.systolic.config import SystolicConfig

#: Static power of the Virtex-7 fabric (W).
STATIC_WATTS = 0.9

#: Reference clock of the dynamic-power weights (Hz).
REFERENCE_CLOCK_HZ = 250e6

#: Per-resource dynamic weights at the reference clock (W per unit).
DYNAMIC_WEIGHTS = {
    "lut": 8.0e-6,
    "ff": 4.0e-6,
    "bram": 2.5e-3,
    "dsp": 1.6e-3,
}

#: Published anchor: Table IV reports 7.61 W for ONE-SA with 64 PEs and
#: 16 MACs per PE while running the evaluated networks.
_ANCHOR_CONFIG = SystolicConfig(pe_rows=8, pe_cols=8, macs_per_pe=16)
_ANCHOR_WATTS = 7.61
_ANCHOR_ACTIVITY = 0.85  # sustained network inference, mostly GEMM


def _raw_dynamic(resources: ArrayResources) -> float:
    """Uncalibrated dynamic power of a resource vector at f0, activity 1."""
    return (
        DYNAMIC_WEIGHTS["lut"] * resources.lut
        + DYNAMIC_WEIGHTS["ff"] * resources.ff
        + DYNAMIC_WEIGHTS["bram"] * resources.bram
        + DYNAMIC_WEIGHTS["dsp"] * resources.dsp
    )


def _calibration_factor() -> float:
    """Global factor that makes the model exact at the Table IV anchor."""
    anchor_dynamic = _raw_dynamic(total_resources(_ANCHOR_CONFIG))
    target_dynamic = _ANCHOR_WATTS - STATIC_WATTS
    return target_dynamic / (anchor_dynamic * _ANCHOR_ACTIVITY)


_CALIBRATION = _calibration_factor()


def power_watts(
    config: SystolicConfig,
    activity: float = _ANCHOR_ACTIVITY,
    clock_hz: "float | None" = None,
) -> float:
    """Estimated total power of a design point.

    Parameters
    ----------
    config:
        The design point (its resource vector drives dynamic power).
    activity:
        Average switching activity / utilization in [0, 1].  GEMM-heavy
        inference sustains high activity; MHP phases toggle only the
        diagonal PEs, which callers model by passing the phase-weighted
        activity (see :func:`phase_weighted_activity`).
    clock_hz:
        Clock override; defaults to the design point's own clock.
    """
    if not 0.0 <= activity <= 1.0:
        raise ValueError(f"activity must be in [0, 1], got {activity}")
    clock = config.clock_hz if clock_hz is None else clock_hz
    dynamic = (
        _CALIBRATION
        * activity
        * (clock / REFERENCE_CLOCK_HZ)
        * _raw_dynamic(total_resources(config))
    )
    return STATIC_WATTS + dynamic


def phase_weighted_activity(
    config: SystolicConfig,
    gemm_cycle_share: float,
    mhp_cycle_share: float,
    idle_share: float = 0.0,
    base_activity: float = _ANCHOR_ACTIVITY,
) -> float:
    """Average activity over an execution's GEMM / MHP / idle phases.

    During MHP only the ``pe_rows`` diagonal PEs (of ``n_pes``) switch,
    plus the always-on buffer fabric (modelled at 30% of dynamic), so a
    nonlinear-heavy workload draws measurably less power — the effect
    behind the lower nonlinear power points of Fig. 10(b).
    """
    shares = gemm_cycle_share + mhp_cycle_share + idle_share
    if shares <= 0:
        return 0.0
    diag_fraction = config.pe_rows / config.n_pes
    mhp_activity = base_activity * (0.3 + 0.7 * diag_fraction)
    idle_activity = 0.05 * base_activity
    weighted = (
        gemm_cycle_share * base_activity
        + mhp_cycle_share * mhp_activity
        + idle_share * idle_activity
    )
    return weighted / shares


def energy_joules(config: SystolicConfig, seconds: float, activity: float) -> float:
    """Energy of an execution window at the given average activity."""
    if seconds < 0:
        raise ValueError("seconds must be non-negative")
    return power_watts(config, activity=activity) * seconds
