"""Equivalence suite pinning the plan-cached whole-matrix refactor.

The traced execution path was rebuilt around cached plans, whole-operand
compute and analytic trace synthesis.  These tests pin the refactor to
the seed semantics: bit-identical raw outputs, identical schedules and
identical per-op cycle accounting versus the retained per-tile /
per-lane / per-pair references.
"""

import numpy as np
import pytest

from repro.fixedpoint import INT16, fixed_hadamard_mac, quantize
from repro.nn.executor import ArrayBackend
from repro.systolic import SystolicArray, SystolicConfig
from repro.systolic.cycle_sim import CycleSimulator
from repro.systolic.gemm import (
    clear_plan_cache,
    execute_gemm,
    execute_gemm_per_tile,
    plan_cache_info,
    plan_gemm,
    set_plan_cache_capacity,
)
from repro.systolic.mhp_dataflow import (
    execute_mhp,
    execute_mhp_per_lane,
    mhp_plan_cache_info,
    plan_mhp,
)
from repro.systolic.rearrange import rearrange_cycles, rearrange_for_mhp
from repro.systolic.trace import Trace, TraceEvent


def small_config(**kw):
    return SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4, **kw)


def rect_config():
    return SystolicConfig(pe_rows=2, pe_cols=8, macs_per_pe=4, nonlinear_enabled=False)


class TestWholeMatrixGemmEquivalence:
    @pytest.mark.parametrize(
        "config, m, k, n",
        [
            (small_config(), 9, 13, 7),
            (small_config(), 4, 4, 4),
            (small_config(), 33, 17, 29),
            (rect_config(), 9, 13, 17),
            (rect_config(), 7, 4, 11),
        ],
        ids=["square", "single-tile", "ragged", "rect", "rect-ragged"],
    )
    def test_whole_matrix_matches_per_tile(self, config, m, k, n):
        rng = np.random.default_rng(m * 1000 + n)
        a = quantize(rng.normal(size=(m, k)), INT16)
        b = quantize(rng.normal(size=(k, n)), INT16)
        out_whole, sched_whole = execute_gemm(config, a, b)
        out_tiled, sched_tiled = execute_gemm_per_tile(
            config, a, b, use_plan_cache=False
        )
        assert np.array_equal(out_whole, out_tiled)
        assert out_whole.dtype == out_tiled.dtype
        assert sched_whole.breakdown == sched_tiled.breakdown
        assert sched_whole.n_tiles == len(sched_tiled.tiles)
        assert sched_whole.input_traffic == sched_tiled.input_traffic

    def test_saturating_operands_still_identical(self):
        # Drive the accumulator into saturation territory: whole-matrix
        # and per-tile must saturate identically on writeback.
        rng = np.random.default_rng(5)
        a = quantize(rng.normal(scale=60.0, size=(12, 20)), INT16)
        b = quantize(rng.normal(scale=60.0, size=(20, 9)), INT16)
        out_whole, _ = execute_gemm(small_config(), a, b)
        out_tiled, _ = execute_gemm_per_tile(small_config(), a, b)
        assert np.array_equal(out_whole, out_tiled)


class TestGemmPlanCache:
    def setup_method(self):
        clear_plan_cache()
        set_plan_cache_capacity()

    def teardown_method(self):
        clear_plan_cache()
        set_plan_cache_capacity()

    def test_repeat_shapes_hit_cache(self):
        config = small_config()
        first = plan_gemm(config, 64, 32, 16)
        again = plan_gemm(config, 64, 32, 16)
        assert again is first  # steady-state planning is a dict hit
        info = plan_cache_info()
        assert info["hits"] >= 1
        assert info["size"] == 1

    def test_distinct_configs_do_not_collide(self):
        sq = plan_gemm(small_config(), 8, 8, 8)
        rect = plan_gemm(rect_config(), 8, 8, 8)
        assert sq is not rect
        assert sq.breakdown != rect.breakdown or sq.config != rect.config

    def test_uncached_plan_builds_fresh(self):
        config = small_config()
        cached = plan_gemm(config, 16, 16, 16)
        fresh = plan_gemm(config, 16, 16, 16, use_cache=False)
        assert fresh is not cached
        assert fresh.breakdown == cached.breakdown

    def test_capacity_bounds_occupancy(self):
        config = small_config()
        set_plan_cache_capacity(4)
        for m in range(1, 11):
            plan_gemm(config, m, 8, 8)
        assert plan_cache_info()["size"] == 4
        # Least-recently-used shapes were evicted, the newest retained.
        assert plan_gemm(config, 10, 8, 8) is plan_gemm(config, 10, 8, 8)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            set_plan_cache_capacity(0)


class TestLazyTileEnumeration:
    def test_len_iter_getitem_agree(self):
        schedule = plan_gemm(small_config(), 10, 8, 6, use_cache=False)
        tiles = schedule.tiles
        assert len(tiles) == schedule.n_tiles == 6
        listed = list(tiles)
        assert [t.index for t in listed] == list(range(6))
        for i, tile in enumerate(listed):
            assert tiles[i] == tile
        assert tiles[-1] == listed[-1]
        assert tiles[1:3] == listed[1:3]

    def test_out_of_range_raises(self):
        tiles = plan_gemm(small_config(), 8, 8, 8, use_cache=False).tiles
        with pytest.raises(IndexError):
            tiles[len(tiles)]

    def test_tiles_cover_output_exactly_once(self):
        schedule = plan_gemm(rect_config(), 7, 4, 11, use_cache=False)
        covered = np.zeros((7, 11), dtype=int)
        for t in schedule.tiles:
            covered[t.row_start : t.row_end, t.col_start : t.col_end] += 1
        assert np.all(covered == 1)

    def test_enumeration_is_allocation_free_metadata(self):
        # A huge schedule must be cheap to *hold*; only iteration pays.
        schedule = plan_gemm(small_config(), 4096, 4096, 4096, use_cache=False)
        assert schedule.n_tiles == 1024 * 1024
        assert schedule.tiles[12345].index == 12345


class TestMhpEquivalence:
    def test_whole_matrix_matches_per_lane(self):
        rng = np.random.default_rng(1)
        config = small_config()
        x = quantize(rng.normal(size=(10, 6)), INT16)
        k = quantize(rng.normal(size=(10, 6)), INT16)
        b = quantize(rng.normal(size=(10, 6)), INT16)
        out_whole, sched_whole = execute_mhp(config, x, k, b)
        out_lane, sched_lane = execute_mhp_per_lane(config, x, k, b)
        assert np.array_equal(out_whole, out_lane)
        assert np.array_equal(out_whole, fixed_hadamard_mac(x, k, b, INT16))
        assert sched_whole.breakdown == sched_lane.breakdown

    def test_mhp_plan_cache_hit(self):
        config = small_config()
        first = plan_mhp(config, 12, 12)
        assert plan_mhp(config, 12, 12) is first
        assert mhp_plan_cache_info()["size"] >= 1

    def test_lazy_lane_rows_cover_rows(self):
        schedule = plan_mhp(small_config(), 10, 5, use_cache=False)
        all_rows = np.sort(np.concatenate(schedule.lane_rows))
        assert np.array_equal(all_rows, np.arange(10))


class TestBatchedArrayBackendEquivalence:
    def _backends(self):
        config = small_config()
        return (
            ArrayBackend(SystolicArray(config), 0.25),
            ArrayBackend(SystolicArray(config), 0.25),
        )

    def test_stacked_matmul_matches_per_pair_loop(self):
        rng = np.random.default_rng(2)
        batched, looped = self._backends()
        a = rng.normal(size=(6, 5, 7))
        b = rng.normal(size=(6, 7, 4))

        out_batched = batched.matmul(a, b)
        out_looped = np.stack(
            [looped.matmul(a[i], b[i]) for i in range(a.shape[0])]
        )
        assert np.array_equal(out_batched, out_looped)

        # Trace content must be identical: same event count, same
        # per-kind cycle totals, same per-event cycles/ops.
        t_batched, t_looped = batched.array.trace, looped.array.trace
        assert len(t_batched) == len(t_looped) == 6
        assert t_batched.total_cycles == t_looped.total_cycles
        assert t_batched.cycles_by_kind() == t_looped.cycles_by_kind()
        assert t_batched.ops_by_kind() == t_looped.ops_by_kind()
        for eb, el in zip(t_batched.events, t_looped.events):
            assert (eb.kind, eb.cycles, eb.ops) == (el.kind, el.cycles, el.ops)
            assert eb.breakdown == el.breakdown

    def test_broadcast_leading_axes(self):
        rng = np.random.default_rng(3)
        batched, looped = self._backends()
        a = rng.normal(size=(2, 3, 4, 5))
        b = rng.normal(size=(5, 6))
        out = batched.matmul(a, b)
        assert out.shape == (2, 3, 4, 6)
        assert np.array_equal(out[1, 2], looped.matmul(a[1, 2], b))
        assert len(batched.array.trace) == 6

    def test_batched_result_breakdown_scales(self):
        config = small_config()
        array = SystolicArray(config)
        rng = np.random.default_rng(4)
        a = quantize(rng.normal(size=(3, 4, 4)), INT16)
        b = quantize(rng.normal(size=(3, 4, 4)), INT16)
        result = array.gemm_raw_batched(a, b)
        single = array.gemm_raw(a[0], b[0])
        assert result.breakdown.total == 3 * single.breakdown.total

    def test_batched_rejects_bad_shapes(self):
        array = SystolicArray(small_config())
        with pytest.raises(ValueError):
            array.gemm_raw_batched(np.zeros((2, 3, 4)), np.zeros((3, 4, 2)))
        with pytest.raises(ValueError):
            array.gemm_raw_batched(np.zeros((2, 3, 4)), np.zeros((2, 5, 2)))
        with pytest.raises(ValueError):
            array.gemm_raw_batched(np.zeros((3, 4)), np.zeros((4, 2)))


class TestCycleSimCrossCheck:
    """The event-level PE grid still agrees with the whole-matrix path."""

    @pytest.mark.parametrize(
        "config", [small_config(), rect_config()], ids=["square", "rect"]
    )
    def test_single_tile_matches_cycle_sim(self, config):
        rng = np.random.default_rng(6)
        m, n = config.pe_rows, config.pe_cols
        a = quantize(rng.normal(size=(m, 10)), INT16)
        b = quantize(rng.normal(size=(10, n)), INT16)
        fast, _ = execute_gemm(config, a, b)
        sim = CycleSimulator(config).run_gemm_tile(a, b)
        assert np.array_equal(fast, sim.output)

    def test_multi_tile_blocks_match_cycle_sim(self):
        config = rect_config()
        rng = np.random.default_rng(7)
        a = quantize(rng.normal(size=(5, 6)), INT16)
        b = quantize(rng.normal(size=(6, 11)), INT16)
        whole, schedule = execute_gemm(config, a, b)
        for tile in schedule.tiles:
            sim = CycleSimulator(config).run_gemm_tile(
                a[tile.row_start : tile.row_end, :],
                b[:, tile.col_start : tile.col_end],
            )
            assert np.array_equal(
                whole[tile.row_start : tile.row_end, tile.col_start : tile.col_end],
                sim.output,
            )


class TestRearrangeMetadataOnly:
    def test_hot_path_builds_no_streams(self):
        array = SystolicArray(small_config())
        x = quantize(np.random.default_rng(8).normal(size=(6, 6)), INT16)
        result = array.apply_nonlinear_raw("gelu", x, 0.25)
        assert result.streams is None

    def test_flag_materializes_streams(self):
        array = SystolicArray(small_config())
        rng = np.random.default_rng(9)
        x = quantize(rng.normal(size=(6, 6)), INT16)
        plain = array.apply_nonlinear_raw("gelu", x, 0.25)
        streamed = array.apply_nonlinear_raw(
            "gelu", x, 0.25, materialize_streams=True
        )
        assert np.array_equal(plain.raw, streamed.raw)
        assert streamed.streams is not None
        # The materialized pass agrees with the closed-form cycle cost
        # and carries the operands losslessly.
        assert streamed.streams.cycles == rearrange_cycles(
            6, 6, port_width=array.config.l3_in_width
        )
        from repro.systolic.rearrange import deinterleave

        xs, ones = deinterleave(streamed.streams.input_stream)
        assert np.array_equal(xs, x)
        assert np.all(ones == 1 << INT16.frac_bits)

    def test_rearrange_cycles_matches_constructed(self):
        out = rearrange_for_mhp(
            np.zeros((5, 4)), np.zeros((5, 4)), np.zeros((5, 4)), 4, 256,
            port_width=16,
        )
        assert out.cycles == rearrange_cycles(5, 4, port_width=16)


class TestTraceAggregateMode:
    def _event(self, kind="gemm", label="l", cycles=10, ops=100):
        return TraceEvent(kind, label, cycles=cycles, ops=ops)

    def test_aggregate_only_is_memory_bounded(self):
        trace = Trace(retain_events=False)
        for i in range(10_000):
            trace.record(self._event(cycles=i % 7, ops=1))
        assert trace.events_retained == 0
        assert len(trace) == 10_000
        assert trace.total_cycles == sum(i % 7 for i in range(10_000))
        assert trace.ops_by_kind() == {"gemm": 10_000}

    def test_bounded_log_keeps_most_recent(self):
        trace = Trace(max_events=4)
        for i in range(10):
            trace.record(self._event(label=f"op{i}"))
        assert trace.events_retained == 4
        assert [e.label for e in trace.events] == ["op6", "op7", "op8", "op9"]
        # Aggregates still cover the full history.
        assert trace.total_cycles == 100
        assert len(trace) == 10

    def test_aggregates_match_event_scan(self):
        trace = Trace()
        rng = np.random.default_rng(10)
        for _ in range(200):
            kind = ("gemm", "mhp", "ipf")[int(rng.integers(3))]
            trace.record(
                self._event(
                    kind=kind,
                    label=f"{kind}.x",
                    cycles=int(rng.integers(1, 50)),
                    ops=int(rng.integers(1, 500)),
                )
            )
        assert trace.total_cycles == sum(e.cycles for e in trace.events)
        by_kind = {}
        for e in trace.events:
            by_kind[e.kind] = by_kind.get(e.kind, 0) + e.cycles
        assert trace.cycles_by_kind() == by_kind

    def test_configure_switches_modes_in_place(self):
        trace = Trace()
        for _ in range(5):
            trace.record(self._event())
        trace.configure(retain_events=False)
        # Already-collected events survive the switch; only future
        # appends stop.
        assert trace.events_retained == 5
        trace.record(self._event())
        assert trace.events_retained == 5
        assert trace.total_cycles == 60
        trace.configure(retain_events=True, max_events=2)
        trace.record(self._event())
        trace.record(self._event())
        trace.record(self._event())
        assert trace.events_retained == 2
        assert trace.total_cycles == 90

    def test_clear_preserves_mode(self):
        trace = Trace(retain_events=False)
        trace.record(self._event())
        trace.clear()
        assert trace.total_cycles == 0
        assert len(trace) == 0
        trace.record(self._event())
        assert trace.events_retained == 0

    def test_invalid_max_events(self):
        with pytest.raises(ValueError):
            Trace(max_events=0)
        with pytest.raises(ValueError):
            Trace().configure(max_events=-1)

    def test_array_o1_aggregates_follow_mode(self):
        array = SystolicArray(small_config(), retain_trace_events=False)
        array.matmul(np.ones((8, 8)), np.ones((8, 8)))
        array.apply_nonlinear("gelu", np.zeros((4, 4)), 0.25)
        assert array.total_cycles > 0
        assert array.trace.events_retained == 0
        summary = array.utilization_summary()
        assert sum(summary.values()) == pytest.approx(1.0)
        array.reset()
        assert array.total_cycles == 0
        array.matmul(np.ones((4, 4)), np.ones((4, 4)))
        assert array.trace.events_retained == 0  # mode survives reset
