"""Fixed-point arithmetic substrate.

ONE-SA (and the conventional systolic array it extends) computes in INT16
fixed point: the paper quantizes both the networks and the array datapath to
INT16 (Section V-A).  This subpackage provides the Q-format descriptor,
quantization/dequantization with saturation, and the saturating arithmetic
primitives (add/mul/MAC) that the processing-element model builds on.

The representation convention throughout the package: a *raw* fixed-point
tensor is a numpy integer array holding the scaled integers; the
:class:`QFormat` records how to interpret them.  Wider accumulators are
modelled with int64, matching the multi-layer accumulator inside each PE.
"""

from repro.fixedpoint.qformat import INT16, INT32, QFormat
from repro.fixedpoint.quantize import (
    dequantize,
    quantize,
    quantization_error,
    requantize,
)
from repro.fixedpoint.arithmetic import (
    accumulator_to_output,
    fixed_add,
    fixed_hadamard_mac,
    fixed_mac,
    fixed_matmul,
    fixed_mul,
    saturate,
)

__all__ = [
    "QFormat",
    "INT16",
    "INT32",
    "quantize",
    "dequantize",
    "requantize",
    "quantization_error",
    "saturate",
    "fixed_add",
    "fixed_mul",
    "fixed_mac",
    "fixed_matmul",
    "fixed_hadamard_mac",
    "accumulator_to_output",
]
