"""Tests for the SystolicArray facade, dataflow schedules and modules."""

import numpy as np
import pytest

from repro.core.nonlinear_ops import get_approximator
from repro.core.segment_table import build_segment_table
from repro.fixedpoint import INT16, dequantize, fixed_hadamard_mac, fixed_matmul, quantize
from repro.systolic import ONE_SA_PAPER_CONFIG, SystolicArray, SystolicConfig
from repro.systolic.addressing import DataAddressing
from repro.systolic.buffers import ParameterStore
from repro.systolic.gemm import execute_gemm, plan_gemm
from repro.systolic.mhp_dataflow import execute_mhp, naive_mhp_cycles, plan_mhp
from repro.systolic.pe import PEMode
from repro.systolic.rearrange import deinterleave, rearrange_for_mhp


def small_config(**kw):
    return SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4, **kw)


class TestGemmSchedule:
    def test_tile_enumeration_covers_output(self):
        schedule = plan_gemm(small_config(), 10, 8, 6)
        covered = np.zeros((10, 6), dtype=int)
        for t in schedule.tiles:
            covered[t.row_start : t.row_end, t.col_start : t.col_end] += 1
        assert np.all(covered == 1)

    def test_tile_count(self):
        schedule = plan_gemm(small_config(), 10, 8, 6)
        assert len(schedule.tiles) == 3 * 2  # ceil(10/4) * ceil(6/4)

    def test_macs_property(self):
        schedule = plan_gemm(small_config(), 4, 5, 6)
        assert schedule.macs == 4 * 5 * 6

    def test_traffic_accounting(self):
        schedule = plan_gemm(small_config(), 8, 8, 8)
        assert schedule.output_traffic == 64
        assert schedule.input_traffic == 2 * 2 * 64  # both operands restreamed

    def test_execute_matches_reference(self):
        rng = np.random.default_rng(0)
        a = quantize(rng.normal(size=(9, 13)), INT16)
        b = quantize(rng.normal(size=(13, 7)), INT16)
        out, schedule = execute_gemm(small_config(), a, b)
        assert np.array_equal(out, fixed_matmul(a, b, INT16))
        assert schedule.breakdown.total > 0

    def test_execute_validates_shapes(self):
        with pytest.raises(ValueError):
            execute_gemm(small_config(), np.zeros((2, 3)), np.zeros((4, 5)))
        with pytest.raises(ValueError):
            execute_gemm(small_config(), np.zeros(3), np.zeros((3, 2)))


class TestRectangularGridSchedule:
    """Regression: rectangular (plain-SA) grids must tile rows with
    pe_rows and columns with pe_cols, not pe_rows for both."""

    def rect_config(self):
        return SystolicConfig(
            pe_rows=2, pe_cols=8, macs_per_pe=4, nonlinear_enabled=False
        )

    def test_tile_shapes_follow_grid(self):
        schedule = plan_gemm(self.rect_config(), 6, 5, 16)
        assert len(schedule.tiles) == 3 * 2  # ceil(6/2) * ceil(16/8)
        for t in schedule.tiles:
            rows, cols = t.shape
            assert rows <= 2
            assert cols <= 8
        full = [t for t in schedule.tiles if t.shape == (2, 8)]
        assert full, "expected at least one full 2x8 tile"

    def test_tiles_cover_output_exactly_once(self):
        schedule = plan_gemm(self.rect_config(), 7, 4, 11)
        covered = np.zeros((7, 11), dtype=int)
        for t in schedule.tiles:
            covered[t.row_start : t.row_end, t.col_start : t.col_end] += 1
        assert np.all(covered == 1)

    def test_input_traffic_uses_both_dims(self):
        schedule = plan_gemm(self.rect_config(), 8, 8, 16)
        # A restreamed once per tile column (ceil(16/8) = 2 passes),
        # B once per tile row (ceil(8/2) = 4 passes).
        assert schedule.input_traffic == 2 * 8 * 8 + 4 * 8 * 16

    def test_execute_matches_reference_on_rect_grid(self):
        rng = np.random.default_rng(7)
        a = quantize(rng.normal(size=(9, 13)), INT16)
        b = quantize(rng.normal(size=(13, 17)), INT16)
        out, schedule = execute_gemm(self.rect_config(), a, b)
        assert np.array_equal(out, fixed_matmul(a, b, INT16))
        assert schedule.breakdown.total > 0

    def test_square_schedule_unchanged(self):
        # The rectangular fix must not disturb square-grid schedules.
        sq = plan_gemm(small_config(), 10, 8, 6)
        assert len(sq.tiles) == 3 * 2
        assert sq.input_traffic == 2 * 10 * 8 + 3 * 8 * 6

    def test_drain_width_follows_column_lanes(self):
        from repro.systolic.timing import effective_out_width

        # Results drain through the pe_cols column lanes: a tall
        # narrow grid must not report more drain bandwidth than it
        # has lanes, and a short wide grid must use all of them.
        tall = SystolicConfig(
            pe_rows=8, pe_cols=2, nonlinear_enabled=False, l3_out_width=8
        )
        assert effective_out_width(tall) == 2
        wide = SystolicConfig(pe_rows=2, pe_cols=8, nonlinear_enabled=False)
        assert effective_out_width(wide) == 2  # 8 // 4 column lanes
        assert effective_out_width(small_config()) == 1  # square unchanged


class TestMHPSchedule:
    def test_lane_assignment_covers_rows(self):
        schedule = plan_mhp(small_config(), 10, 5)
        all_rows = np.sort(np.concatenate(schedule.lane_rows))
        assert np.array_equal(all_rows, np.arange(10))

    def test_pe_roles(self):
        schedule = plan_mhp(small_config(), 8, 8)
        assert schedule.pe_role(2, 2) is PEMode.COMPUTATION
        assert schedule.pe_role(2, 3) is PEMode.TRANSMISSION
        assert schedule.computation_pes == 4
        assert schedule.transmission_pes == 12

    def test_stream_length_doubles_elements(self):
        schedule = plan_mhp(small_config(), 6, 6)
        assert schedule.stream_elements_per_channel == 72

    def test_execute_matches_reference(self):
        rng = np.random.default_rng(1)
        x = quantize(rng.normal(size=(10, 6)), INT16)
        k = quantize(rng.normal(size=(10, 6)), INT16)
        b = quantize(rng.normal(size=(10, 6)), INT16)
        out, _ = execute_mhp(small_config(), x, k, b)
        assert np.array_equal(out, fixed_hadamard_mac(x, k, b, INT16))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            execute_mhp(small_config(), np.zeros((2, 2)), np.zeros((2, 3)), np.zeros((2, 2)))

    def test_naive_dataflow_slower(self):
        """The ablation baseline: naive MHP ignores the MAC count."""
        c = SystolicConfig(pe_rows=8, pe_cols=8, macs_per_pe=16)
        naive = naive_mhp_cycles(c, 256, 256).total
        improved = plan_mhp(c, 256, 256).breakdown.total
        assert improved < naive
        # With one MAC pair per PE the two dataflows converge.
        c1 = SystolicConfig(pe_rows=8, pe_cols=8, macs_per_pe=2)
        assert (
            abs(naive_mhp_cycles(c1, 256, 256).total - plan_mhp(c1, 256, 256).breakdown.total)
            / naive_mhp_cycles(c1, 256, 256).total
            < 0.05
        )


class TestRearrange:
    def test_interleave_roundtrip(self):
        rng = np.random.default_rng(2)
        x = quantize(rng.normal(size=(5, 4)), INT16)
        k = quantize(rng.normal(size=(5, 4)), INT16)
        b = quantize(rng.normal(size=(5, 4)), INT16)
        out = rearrange_for_mhp(x, k, b, pe_rows=4, one_raw=256)
        xs, ones = deinterleave(out.input_stream)
        ks, bs = deinterleave(out.weight_stream)
        assert np.array_equal(xs, x)
        assert np.all(ones == 256)
        assert np.array_equal(ks, k)
        assert np.array_equal(bs, b)

    def test_row_assignment_round_robin(self):
        out = rearrange_for_mhp(
            np.zeros((6, 2)), np.zeros((6, 2)), np.zeros((6, 2)), pe_rows=4, one_raw=256
        )
        assert list(out.row_assignment) == [0, 1, 2, 3, 0, 1]

    def test_cycle_cost_positive(self):
        out = rearrange_for_mhp(
            np.zeros((4, 4)), np.zeros((4, 4)), np.zeros((4, 4)), pe_rows=4, one_raw=256
        )
        assert out.cycles == -(-64 // 16)

    def test_odd_stream_rejected(self):
        with pytest.raises(ValueError):
            deinterleave(np.zeros((2, 3)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rearrange_for_mhp(
                np.zeros((2, 2)), np.zeros((2, 3)), np.zeros((2, 2)), 4, 256
            )


class TestDataAddressing:
    def test_requires_preload(self):
        module = DataAddressing(INT16)
        with pytest.raises(RuntimeError):
            module.run(np.zeros((2, 2), dtype=np.int16))

    def test_run_reports_capping(self):
        module = DataAddressing(INT16)
        qtable = build_segment_table("gelu", 0.25).quantized(INT16)
        module.preload(qtable, ParameterStore(256))
        xs = np.array([[-100.0, 0.0, 100.0]])
        result, stats = module.run(quantize(xs, INT16))
        assert stats.capped_low >= 1
        assert stats.capped_high >= 1
        assert stats.shift_path
        assert stats.elements == 3
        assert stats.cycles >= 1

    def test_fifo_high_water_bounded(self):
        module = DataAddressing(INT16, port_width=4, fifo_depth=16)
        qtable = build_segment_table("gelu", 0.25).quantized(INT16)
        module.preload(qtable, ParameterStore(256))
        _, stats = module.run(quantize(np.random.default_rng(0).normal(size=(16, 16)), INT16))
        assert stats.fifo_high_water <= 16

    def test_preload_counts_once(self):
        module = DataAddressing(INT16)
        store = ParameterStore(256)
        qtable = build_segment_table("gelu", 0.25).quantized(INT16)
        assert module.preload(qtable, store)
        assert not module.preload(qtable, store)


class TestSystolicArray:
    def test_matmul_close_to_float(self):
        array = SystolicArray(small_config())
        rng = np.random.default_rng(3)
        a = rng.normal(size=(6, 10))
        b = rng.normal(size=(10, 4))
        out = array.matmul(a, b)
        assert np.max(np.abs(out - a @ b)) < 0.2

    def test_nonlinear_matches_cpwl_reference(self):
        """The full microarchitecture chain equals the fast CPWL path."""
        array = SystolicArray(small_config())
        xs = np.random.default_rng(4).normal(size=(8, 8))
        out = array.apply_nonlinear("gelu", xs, 0.25)
        ref_raw = get_approximator("gelu", 0.25, INT16).evaluate_raw(quantize(xs, INT16))
        assert np.allclose(out, dequantize(ref_raw, INT16))

    def test_plain_sa_rejects_nonlinear(self):
        array = SystolicArray(small_config(nonlinear_enabled=False))
        with pytest.raises(RuntimeError):
            array.apply_nonlinear("gelu", np.zeros((2, 2)), 0.25)

    def test_trace_records_events(self):
        array = SystolicArray(small_config())
        array.matmul(np.zeros((4, 4)), np.zeros((4, 4)))
        array.apply_nonlinear("gelu", np.zeros((4, 4)), 0.25)
        kinds = array.trace.cycles_by_kind()
        assert "gemm" in kinds
        assert "mhp" in kinds
        assert array.total_cycles > 0
        assert array.elapsed_seconds() > 0

    def test_table_preload_traced_once(self):
        array = SystolicArray(small_config())
        x = np.zeros((4, 4))
        array.apply_nonlinear("gelu", x, 0.25)
        array.apply_nonlinear("gelu", x, 0.25)
        preloads = [e for e in array.trace.events if e.kind == "preload"]
        assert len(preloads) == 1

    def test_reset_clears_state(self):
        array = SystolicArray(small_config())
        array.matmul(np.zeros((4, 4)), np.zeros((4, 4)))
        array.reset()
        assert array.total_cycles == 0
        assert len(array.trace) == 0

    def test_utilization_summary_fractions(self):
        array = SystolicArray(small_config())
        array.matmul(np.zeros((8, 8)), np.zeros((8, 8)))
        array.apply_nonlinear("relu", np.zeros((8, 8)), 0.5)
        summary = array.utilization_summary()
        assert sum(summary.values()) == pytest.approx(1.0)

    def test_paper_config_default(self):
        array = SystolicArray()
        assert array.config is ONE_SA_PAPER_CONFIG
