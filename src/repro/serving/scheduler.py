"""Multi-tenant scheduling of batched inference.

The scheduler owns per-tenant request queues (grouped into batches by a
:class:`~repro.serving.batcher.BatchAssembler`) and decides, each time
the engine's scheduler loop is ready to place work, *which tenant's*
ready batch executes next.  Admission (:meth:`TenantScheduler.admit`)
is decoupled from execution: requests can join their queues at any
point — including while a previously chosen batch is still in flight
on a shard — and are considered at the next scheduling decision.

Scheduling is work-conserving and deterministic:

* batches execute in ready-time order — a batch that became ready
  earlier is never overtaken, and batch compositions/ready times are
  exactly the PR-1 drain model's (same-instant ties run in admission
  order, arbitrated by the policy across tenants);
* when several tenants have batches ready *at the same simulated
  instant* (the contended case — e.g. a same-instant burst from many
  tenants), the configured :class:`SchedulingPolicy` arbitrates.

Two policies ship:

* :class:`WeightedRoundRobin` — smooth weighted round-robin over the
  contending tenants' :attr:`~repro.serving.tenancy.TenantConfig.weight`
  shares.  Only tenants with ready work participate in a round, so an
  idle tenant neither stalls selection nor accumulates credit it could
  later burst with.
* :class:`StrictPriority` — the contending tenant with the highest
  effective priority (the max of its ready requests' priorities, which
  default to the tenant's configured priority) always wins.  Ties
  break by oldest ready batch, then tenant id — note that when the
  policy is driven by :class:`TenantScheduler`, all contenders share
  the same ready instant by construction, so engine-level ties fall
  through to tenant id; the oldest-ready key matters when the policy
  is used directly with heterogeneous ready times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.serving.batcher import Batch, BatchAssembler, OpenGroup
from repro.serving.request import InferenceRequest
from repro.serving.tenancy import TenantConfig, TenantRegistry


@dataclass(frozen=True)
class TenantCandidate:
    """One tenant's stake in a scheduling decision.

    Attributes
    ----------
    config:
        The tenant's registered scheduling contract.
    effective_priority:
        Max priority over the tenant's ready requests (requests inherit
        the tenant priority unless overridden at submit).
    oldest_ready:
        Earliest ready time among the tenant's ready batches.
    n_ready:
        Number of batches the tenant has ready.
    """

    config: TenantConfig
    effective_priority: int
    oldest_ready: float
    n_ready: int

    @property
    def tenant_id(self) -> str:
        return self.config.tenant_id


class SchedulingPolicy:
    """Arbitration among tenants whose batches are ready together."""

    name = "policy"

    def select(self, candidates: Sequence[TenantCandidate]) -> str:
        """Return the tenant_id that executes next (candidates is
        non-empty, sorted by tenant id)."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget accumulated arbitration state (new serving epoch)."""


class WeightedRoundRobin(SchedulingPolicy):
    """Smooth weighted round-robin over contending tenants.

    Classic smooth-WRR: every contender's credit grows by its weight,
    the largest credit wins and is charged the round's total weight.
    Over N contended rounds a tenant with weight ``w`` of total ``W``
    wins ~``N * w / W`` of them, interleaved rather than bunched.
    Credits persist across rounds only for tenants that keep
    contending; an empty-queue tenant sits rounds out entirely.
    """

    name = "weighted_round_robin"

    def __init__(self) -> None:
        self._credit: Dict[str, float] = {}

    def select(self, candidates: Sequence[TenantCandidate]) -> str:
        contending = {c.tenant_id for c in candidates}
        # Tenants not contending drop their credit: fairness is over
        # time actually spent competing, not a bankable allowance.
        for tenant_id in list(self._credit):
            if tenant_id not in contending:
                del self._credit[tenant_id]
        total = sum(c.config.weight for c in candidates)
        best: Optional[TenantCandidate] = None
        best_credit = 0.0
        for candidate in sorted(candidates, key=lambda c: c.tenant_id):
            credit = self._credit.get(candidate.tenant_id, 0.0) + candidate.config.weight
            self._credit[candidate.tenant_id] = credit
            if best is None or credit > best_credit:
                best, best_credit = candidate, credit
        assert best is not None
        self._credit[best.tenant_id] -= total
        return best.tenant_id

    def reset(self) -> None:
        self._credit.clear()


class StrictPriority(SchedulingPolicy):
    """Highest effective priority wins; FIFO inside a priority level.

    The FIFO (oldest-ready) tie-break applies when the policy is driven
    directly with candidates of differing ready times; under the
    engine's scheduler every contender is tied at the same instant, so
    same-priority ties resolve by tenant id.
    """

    name = "strict_priority"

    def select(self, candidates: Sequence[TenantCandidate]) -> str:
        best = min(
            candidates,
            key=lambda c: (-c.effective_priority, c.oldest_ready, c.tenant_id),
        )
        return best.tenant_id


_POLICIES = {
    "weighted_round_robin": WeightedRoundRobin,
    "wrr": WeightedRoundRobin,
    "strict_priority": StrictPriority,
}


def make_policy(policy: Union[str, SchedulingPolicy]) -> SchedulingPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        return _POLICIES[policy]()
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {policy!r}; "
            f"available: {sorted(set(_POLICIES))}"
        ) from None


class TenantScheduler:
    """Per-tenant queues + batch assembly + policy arbitration.

    The engine drives it as a discrete-event loop: :meth:`admit` any
    time (submission order within one simulated instant is preserved),
    then repeatedly ask :meth:`earliest_ready` for the next decision
    point and :meth:`pop_ready` for the batch to execute at it.

    Parameters
    ----------
    tenants:
        Registry resolving tenant ids to their scheduling contracts.
    policy:
        Policy name (``"weighted_round_robin"`` / ``"strict_priority"``)
        or a :class:`SchedulingPolicy` instance.
    max_batch_size, flush_timeout:
        Batch-assembly knobs, per (tenant, model) group — see
        :class:`~repro.serving.batcher.BatchAssembler`.
    """

    def __init__(
        self,
        tenants: TenantRegistry,
        policy: Union[str, SchedulingPolicy] = "weighted_round_robin",
        max_batch_size: int = 8,
        flush_timeout: float = 1e-3,
    ) -> None:
        self.tenants = tenants
        self.policy = make_policy(policy)
        self.assembler = BatchAssembler(max_batch_size, flush_timeout)
        self._n_batches = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, request: InferenceRequest) -> None:
        """Queue one request under its tenant (any time, in-flight ok)."""
        self.tenants.get(request.tenant)  # materialise the tenant
        self.assembler.admit(request)

    @property
    def pending(self) -> int:
        """Requests admitted and not yet handed out in a batch."""
        return self.assembler.n_pending

    def tenant_pending(self, tenant: str) -> int:
        """One tenant's queued (admitted, unexecuted) request count.

        The admission-control engine checks this against the tenant's
        ``max_queue_depth`` before admitting.
        """
        return self.assembler.pending_of(tenant)

    # ------------------------------------------------------------------
    # Scheduling decisions
    # ------------------------------------------------------------------
    def earliest_ready(self) -> Optional[float]:
        """Next simulated time a batch is ready (None when idle)."""
        return self.assembler.earliest_ready()

    def pop_ready(self, now: float) -> Optional[Batch]:
        """The batch to execute at ``now`` (None if nothing is ready).

        Groups ready strictly before ``now`` come first (ready-time
        order); the policy arbitrates only among tenants tied at the
        earliest ready instant.
        """
        ready = self.assembler.ready_groups(now)
        if not ready:
            return None
        first_ready = ready[0].ready_time(self.assembler.flush_timeout)
        contenders = [
            g
            for g in ready
            if g.ready_time(self.assembler.flush_timeout) == first_ready
        ]
        group = self._arbitrate(contenders, first_ready)
        batch = self.assembler.pop(group, index=self._n_batches)
        self._n_batches += 1
        return batch

    def next_batch_index(self) -> int:
        """Claim the next engine-wide batch index.

        Decode iterations are formed by the engine's generation pool,
        not popped from the assembler, but they share this counter so
        ``(shard, batch_index)`` pairs stay unique across every kind of
        batch in one run.
        """
        index = self._n_batches
        self._n_batches += 1
        return index

    def _request_priority(self, request: InferenceRequest) -> int:
        """Effective priority: explicit on the request, else the
        tenant's configured priority *now* (lazy, like WRR weights, so
        registering a tenant after submitting still takes effect)."""
        if request.priority is not None:
            return request.priority
        return self.tenants.get(request.tenant).priority

    def _group_priority(self, group: OpenGroup) -> int:
        return max(self._request_priority(r) for r in group.requests)

    def _pick(self, groups: List[OpenGroup]) -> OpenGroup:
        """Within one tenant: highest-priority group first, then FIFO.

        A tenant that wins arbitration on the strength of a
        high-priority request must execute *that* group, not its
        oldest one — otherwise a low-priority batch could ride ahead
        of another tenant's higher-priority work.  With uniform
        priorities (the default) this is plain seq/FIFO order.
        """
        return min(
            groups,
            key=lambda g: (-self._group_priority(g), g.seq),
        )

    def _arbitrate(self, groups: List[OpenGroup], at: float) -> OpenGroup:
        by_tenant: Dict[str, List[OpenGroup]] = {}
        for group in groups:
            by_tenant.setdefault(group.tenant, []).append(group)
        # Always consult the policy, even for a lone contender: WRR's
        # stale-credit cleanup must observe solo rounds, or an idle
        # tenant's banked credit would survive a gap in which exactly
        # one tenant was active.
        candidates = []
        for tenant_id in sorted(by_tenant):
            tenant_groups = by_tenant[tenant_id]
            candidates.append(
                TenantCandidate(
                    config=self.tenants.get(tenant_id),
                    effective_priority=max(
                        self._group_priority(g) for g in tenant_groups
                    ),
                    oldest_ready=at,
                    n_ready=len(tenant_groups),
                )
            )
        winner = self.policy.select(candidates)
        return self._pick(by_tenant[winner])

    def reset(self) -> None:
        """Drop queued work and arbitration state (tenants survive)."""
        self.assembler.clear()
        self.policy.reset()
        self._n_batches = 0
