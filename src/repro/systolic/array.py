"""The user-facing systolic array.

:class:`SystolicArray` ties the microarchitecture modules together: it
executes GEMMs with the output-stationary schedule, and nonlinear
operations as the IPF → rearrange → MHP event chain, all bit-accurate in
the configured fixed-point format and with cycle accounting recorded in
an execution trace.

Typical use::

    from repro.systolic import SystolicArray, ONE_SA_PAPER_CONFIG

    array = SystolicArray(ONE_SA_PAPER_CONFIG)
    c = array.matmul(a, b)                    # float in, float out
    y = array.apply_nonlinear("gelu", x, granularity=0.25)
    print(array.trace.cycles_by_kind())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.nonlinear_ops import get_approximator
from repro.fixedpoint import dequantize, quantize
from repro.systolic.addressing import DataAddressing
from repro.systolic.buffers import build_hierarchy
from repro.systolic.config import ONE_SA_PAPER_CONFIG, SystolicConfig
from repro.systolic.gemm import GemmSchedule, execute_gemm
from repro.systolic.mhp_dataflow import MHPSchedule, execute_mhp
from repro.systolic.rearrange import rearrange_for_mhp
from repro.systolic.timing import CycleBreakdown, effective_out_width
from repro.systolic.trace import Trace, TraceEvent


@dataclass(frozen=True)
class ExecutionResult:
    """Result of one operation on the array."""

    kind: str
    raw: np.ndarray
    breakdown: CycleBreakdown
    schedule: object = None

    @property
    def cycles(self) -> int:
        return self.breakdown.total


class SystolicArray:
    """Functional + cycle-accounted model of one (ONE-)SA instance.

    Parameters
    ----------
    config:
        The design point.  Nonlinear operations require
        ``config.nonlinear_enabled`` (the ONE-SA datapath); a plain SA
        configuration raises on them, mirroring real hardware.
    """

    def __init__(self, config: SystolicConfig = ONE_SA_PAPER_CONFIG) -> None:
        self.config = config
        self.hierarchy = build_hierarchy(config)
        self.addressing = DataAddressing(
            config.fmt,
            port_width=effective_out_width(config),
        )
        self.trace = Trace()

    # ------------------------------------------------------------------
    # Linear operations
    # ------------------------------------------------------------------
    def gemm_raw(
        self, a_raw: np.ndarray, b_raw: np.ndarray, label: str = "gemm"
    ) -> ExecutionResult:
        """Bit-accurate GEMM on raw fixed-point operands."""
        out, schedule = execute_gemm(self.config, a_raw, b_raw)
        self.trace.record(
            TraceEvent(
                kind="gemm",
                label=label,
                cycles=schedule.breakdown.total,
                ops=schedule.macs,
                breakdown=schedule.breakdown,
            )
        )
        return ExecutionResult(
            kind="gemm", raw=out, breakdown=schedule.breakdown, schedule=schedule
        )

    def matmul(self, a: np.ndarray, b: np.ndarray, label: str = "gemm") -> np.ndarray:
        """Float convenience wrapper: quantize, run, dequantize."""
        fmt = self.config.fmt
        result = self.gemm_raw(quantize(a, fmt), quantize(b, fmt), label=label)
        return dequantize(result.raw, fmt)

    # ------------------------------------------------------------------
    # Nonlinear operations (the ONE-SA extension)
    # ------------------------------------------------------------------
    def apply_nonlinear_raw(
        self,
        function: str,
        x_raw: np.ndarray,
        granularity: float,
        label: Optional[str] = None,
        fused_ipf: bool = True,
        domain: "tuple[float, float] | None" = None,
    ) -> ExecutionResult:
        """Run one nonlinear op as the full IPF → rearrange → MHP chain.

        The chain exercises the microarchitecture modules (data
        addressing with the shift/scale path, the k/b parameter store,
        the data-rearrange pass and the diagonal MHP lanes); the result
        is bit-identical to
        :meth:`repro.core.cpwl.CPWLApproximator.evaluate_raw`, which the
        test suite asserts.
        """
        if not self.config.nonlinear_enabled:
            raise RuntimeError(
                "this design point is a conventional SA; nonlinear "
                "operations need nonlinear_enabled=True"
            )
        fmt = self.config.fmt
        label = label or function
        x_raw = np.atleast_2d(np.asarray(x_raw))
        approx = get_approximator(function, granularity, fmt, domain=domain)

        # --- IPF: preload (if needed) + addressing + parameter gather.
        preloaded = self.addressing.preload(approx.qtable, self.hierarchy["params"])
        if preloaded:
            self.trace.record(
                TraceEvent(
                    kind="preload",
                    label=f"{label}.table",
                    cycles=-(-approx.qtable.n_segments * 2 // self.config.l3_in_width),
                    ops=approx.qtable.n_segments,
                )
            )
        ipf_result, ipf_stats = self.addressing.run(x_raw)
        self.trace.record(
            TraceEvent(
                kind="ipf",
                label=f"{label}.ipf",
                cycles=0 if fused_ipf else ipf_stats.cycles,
                ops=ipf_stats.elements,
            )
        )

        # --- Rearrange: pair (k, b) and (x, 1) streams.
        one_raw = 1 << fmt.frac_bits
        rearranged = rearrange_for_mhp(
            x_raw,
            ipf_result.k_raw,
            ipf_result.b_raw,
            self.config.pe_rows,
            one_raw,
            port_width=self.config.l3_in_width,
        )

        # --- MHP on the diagonal computation PEs.
        out, schedule = execute_mhp(
            self.config, x_raw, ipf_result.k_raw, ipf_result.b_raw, fused_ipf=fused_ipf
        )
        self.trace.record(
            TraceEvent(
                kind="mhp",
                label=f"{label}.mhp",
                cycles=schedule.breakdown.total,
                ops=schedule.elements,
                breakdown=schedule.breakdown,
            )
        )
        return ExecutionResult(
            kind="mhp", raw=out, breakdown=schedule.breakdown, schedule=schedule
        )

    def apply_nonlinear(
        self,
        function: str,
        x: np.ndarray,
        granularity: float,
        label: Optional[str] = None,
        domain: "tuple[float, float] | None" = None,
    ) -> np.ndarray:
        """Float convenience wrapper around :meth:`apply_nonlinear_raw`."""
        fmt = self.config.fmt
        result = self.apply_nonlinear_raw(
            function, quantize(x, fmt), granularity, label=label, domain=domain
        )
        return dequantize(result.raw, fmt)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def total_cycles(self) -> int:
        """Cycles accumulated over all traced operations."""
        return self.trace.total_cycles

    def elapsed_seconds(self) -> float:
        """Wall-clock time of the traced work at the configured clock."""
        return self.total_cycles / self.config.clock_hz

    def utilization_summary(self) -> Dict[str, float]:
        """Share of traced cycles per operation kind."""
        total = self.total_cycles
        if not total:
            return {}
        return {
            kind: cycles / total
            for kind, cycles in self.trace.cycles_by_kind().items()
        }

    def reset(self) -> None:
        """Clear the trace and buffer accounting between experiments."""
        self.trace.clear()
        self.hierarchy = build_hierarchy(self.config)
        self.addressing = DataAddressing(
            self.config.fmt,
            port_width=effective_out_width(self.config),
        )
