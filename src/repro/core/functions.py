"""Scalar nonlinear function library.

Each entry describes one scalar nonlinearity used by the evaluated
networks, together with the *approximation domain* over which a CPWL
table is built and the capping behaviour outside it (Section III-A: out
of range segment indices are capped to the boundary segments, so the
boundary segments' lines extend to the whole real axis).

Functions are registered in :data:`FUNCTION_LIBRARY` so that segment
tables, the executor and the experiments can refer to them by name.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

import numpy as np

_SQRT_2 = math.sqrt(2.0)
_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


@dataclass(frozen=True)
class NonlinearFunction:
    """A scalar nonlinearity with its CPWL approximation domain.

    Parameters
    ----------
    name:
        Registry key, e.g. ``'gelu'``.
    fn:
        Vectorised float implementation (the reference being approximated).
    domain:
        ``(lo, hi)`` interval the CPWL table covers.  Inputs outside are
        served by the capped boundary segments.
    description:
        One-line human description.
    even / odd:
        Optional symmetry flags (used by tests to check table symmetry).
    """

    name: str
    fn: Callable[[np.ndarray], np.ndarray]
    domain: Tuple[float, float]
    description: str = ""
    even: bool = False
    odd: bool = False

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.fn(np.asarray(x, dtype=np.float64))


def gelu(x: np.ndarray) -> np.ndarray:
    """Exact GELU using the Gauss error function."""
    x = np.asarray(x, dtype=np.float64)
    # erf via vectorized math.erf is slow; use tanh-free exact formula
    # through numpy's erf if available, else the tanh approximation that
    # BERT itself ships with.
    try:
        from scipy.special import erf  # scipy is available offline

        return 0.5 * x * (1.0 + erf(x / _SQRT_2))
    except ImportError:  # pragma: no cover - scipy is an install guarantee
        return 0.5 * x * (1.0 + np.tanh(_SQRT_2_OVER_PI * (x + 0.044715 * x**3)))


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(np.asarray(x, dtype=np.float64), 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(np.asarray(x, dtype=np.float64))


def exp_neg(x: np.ndarray) -> np.ndarray:
    """``exp(x)`` restricted to the softmax use case.

    Softmax subtracts the row maximum first, so the array only ever
    evaluates ``exp`` on non-positive inputs; the table domain reflects
    that (inputs below the lower cap contribute ~0).
    """
    return np.exp(np.asarray(x, dtype=np.float64))


def reciprocal(x: np.ndarray) -> np.ndarray:
    """``1/x`` on a strictly positive domain (softmax denominator)."""
    return 1.0 / np.asarray(x, dtype=np.float64)


def rsqrt(x: np.ndarray) -> np.ndarray:
    """``1/sqrt(x)`` on a strictly positive domain (normalization)."""
    return 1.0 / np.sqrt(np.asarray(x, dtype=np.float64))


def sqrt(x: np.ndarray) -> np.ndarray:
    """``sqrt(x)`` on a non-negative domain."""
    return np.sqrt(np.asarray(x, dtype=np.float64))


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish: ``x * sigmoid(x)`` (extension beyond the paper's set)."""
    x = np.asarray(x, dtype=np.float64)
    return x * sigmoid(x)


def softplus(x: np.ndarray) -> np.ndarray:
    """Softplus ``log(1 + exp(x))`` with a stable formulation."""
    x = np.asarray(x, dtype=np.float64)
    return np.logaddexp(0.0, x)


FUNCTION_LIBRARY: Dict[str, NonlinearFunction] = {}


def register_function(entry: NonlinearFunction) -> NonlinearFunction:
    """Add ``entry`` to :data:`FUNCTION_LIBRARY` (overwriting same name)."""
    FUNCTION_LIBRARY[entry.name] = entry
    return entry


def get_function(name: str) -> NonlinearFunction:
    """Look up a registered function by name."""
    try:
        return FUNCTION_LIBRARY[name]
    except KeyError:
        known = ", ".join(sorted(FUNCTION_LIBRARY))
        raise KeyError(f"unknown nonlinear function {name!r}; known: {known}") from None


register_function(
    NonlinearFunction(
        "gelu",
        gelu,
        domain=(-8.0, 8.0),
        description="Gaussian error linear unit (BERT feed-forward)",
    )
)
register_function(
    NonlinearFunction(
        "relu",
        relu,
        domain=(-8.0, 8.0),
        description="Rectified linear unit (exact under CPWL)",
    )
)
register_function(
    NonlinearFunction(
        "sigmoid",
        sigmoid,
        domain=(-8.0, 8.0),
        description="Logistic sigmoid",
        odd=False,
    )
)
register_function(
    NonlinearFunction(
        "tanh",
        tanh,
        domain=(-8.0, 8.0),
        description="Hyperbolic tangent",
        odd=True,
    )
)
register_function(
    NonlinearFunction(
        "exp",
        exp_neg,
        domain=(-16.0, 0.0),
        description="exp(x) on the max-subtracted softmax domain",
    )
)
register_function(
    NonlinearFunction(
        "reciprocal",
        reciprocal,
        domain=(0.125, 64.0),
        description="1/x for the softmax denominator",
    )
)
register_function(
    NonlinearFunction(
        "rsqrt",
        rsqrt,
        domain=(0.0625, 64.0),
        description="1/sqrt(x) for layer/batch normalization",
    )
)
register_function(
    NonlinearFunction(
        "sqrt",
        sqrt,
        domain=(0.0, 64.0),
        description="sqrt(x)",
    )
)
register_function(
    NonlinearFunction(
        "silu",
        silu,
        domain=(-8.0, 8.0),
        description="SiLU/swish (extension function)",
    )
)
register_function(
    NonlinearFunction(
        "softplus",
        softplus,
        domain=(-8.0, 8.0),
        description="softplus (extension function)",
    )
)
