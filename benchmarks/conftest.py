"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one paper artifact (table or figure), prints
it in paper-like form, and asserts the reproduced *shape* claims.  Run
with ``pytest benchmarks/ --benchmark-only``.
"""

import pytest


@pytest.fixture(scope="session")
def print_artifact():
    """Print a regenerated artifact, visibly separated in the log."""

    def _print(text: str) -> None:
        print("\n" + "=" * 72)
        print(text)
        print("=" * 72)

    return _print
