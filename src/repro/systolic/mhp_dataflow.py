"""MHP dataflow: diagonal computation PEs, everything else transmits.

During a Matrix Hadamard Product every operand is used exactly once, so
the conventional forward-and-reuse dataflow wastes the array.  ONE-SA
instead routes each operand stream through *transmission* PEs to the
*computation* PE on the diagonal of its lane (Section IV-B): PE ``(i, i)``
computes all outputs assigned to lane ``i``; PEs ``(i, j), i != j``
only register and forward.

This module builds the MHP schedule (lane assignment, stream lengths,
PE-role map), the bit-accurate functional execution, and the naive-MHP
baseline used by the dataflow ablation (all PEs compute, paying the
reuse-less operand delivery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.fixedpoint import fixed_hadamard_mac
from repro.systolic.config import SystolicConfig
from repro.systolic.pe import PEMode
from repro.systolic.timing import CycleBreakdown, nonlinear_cycles


@dataclass(frozen=True)
class MHPSchedule:
    """Schedule of one Matrix Hadamard Product on a design point."""

    config: SystolicConfig
    m_dim: int
    n_dim: int
    lane_rows: List[np.ndarray]
    breakdown: CycleBreakdown

    @property
    def elements(self) -> int:
        return self.m_dim * self.n_dim

    @property
    def computation_pes(self) -> int:
        """Active (diagonal) PEs during this MHP."""
        return self.config.pe_rows

    @property
    def transmission_pes(self) -> int:
        """PEs demoted to pure operand routing."""
        return self.config.n_pes - self.config.pe_rows

    @property
    def stream_elements_per_channel(self) -> int:
        """Interleaved stream length per input channel (2 per output)."""
        return 2 * self.elements

    def pe_role(self, row: int, col: int) -> PEMode:
        """Role of PE ``(row, col)`` during the MHP (Fig. 4, marks 3/4)."""
        return PEMode.COMPUTATION if row == col else PEMode.TRANSMISSION


def plan_mhp(
    config: SystolicConfig, m_dim: int, n_dim: int, fused_ipf: bool = True
) -> MHPSchedule:
    """Build the MHP schedule: rows round-robin over the diagonal lanes."""
    lane_rows = [
        np.arange(lane, m_dim, config.pe_rows) for lane in range(config.pe_rows)
    ]
    return MHPSchedule(
        config=config,
        m_dim=m_dim,
        n_dim=n_dim,
        lane_rows=lane_rows,
        breakdown=nonlinear_cycles(config, m_dim, n_dim, fused_ipf=fused_ipf),
    )


def execute_mhp(
    config: SystolicConfig,
    x_raw: np.ndarray,
    k_raw: np.ndarray,
    b_raw: np.ndarray,
    fused_ipf: bool = True,
) -> tuple[np.ndarray, MHPSchedule]:
    """Run ``Y = X ⊙ K + B`` lane by lane, bit-accurately.

    Each diagonal lane processes its assigned rows independently; the
    reassembled result equals the whole-matrix
    :func:`fixed_hadamard_mac`, which the tests verify.
    """
    x_raw = np.atleast_2d(np.asarray(x_raw))
    k_raw = np.atleast_2d(np.asarray(k_raw))
    b_raw = np.atleast_2d(np.asarray(b_raw))
    if not (x_raw.shape == k_raw.shape == b_raw.shape):
        raise ValueError(
            f"MHP operands must share a shape, got {x_raw.shape}, "
            f"{k_raw.shape}, {b_raw.shape}"
        )
    m_dim, n_dim = x_raw.shape
    schedule = plan_mhp(config, m_dim, n_dim, fused_ipf=fused_ipf)
    out = np.zeros_like(x_raw)
    for rows in schedule.lane_rows:
        if rows.size == 0:
            continue
        out[rows] = fixed_hadamard_mac(x_raw[rows], k_raw[rows], b_raw[rows], config.fmt)
    return out, schedule


def naive_mhp_cycles(config: SystolicConfig, m_dim: int, n_dim: int) -> CycleBreakdown:
    """Ablation baseline: MHP on the *unmodified* GEMM dataflow.

    Without the transmission/computation split, operands still enter at
    the array edges but every element must be delivered to a distinct
    PE with no reuse; the forward-and-reuse fabric delivers one fresh
    operand pair per lane per cycle (the rest of the bandwidth carries
    already-used values), so the array sustains only ``P`` outputs per
    cycle regardless of the MAC count — the "low resource utilization
    rate" of Section IV-B motivating the redesign.
    """
    p = config.pe_rows
    elements = m_dim * n_dim
    skew = 2 * (p - 1)
    injection = -(-elements // p)
    return CycleBreakdown(fill=skew, compute=injection, drain=p, overhead=3)
