"""Published application-specific FPGA accelerators (Table IV rows).

These are the specialized designs the paper compares against: each
serves exactly one network family, which is the inflexibility ONE-SA
removes.  Values are the published numbers the paper quotes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class AcceleratorSpec:
    """One published accelerator operating point."""

    name: str
    platform: str
    tech_node_nm: int
    supported_workload: str  # the only workload family it runs
    latency_s: float
    throughput_gops: float
    power_watts: float
    reference: str

    @property
    def efficiency(self) -> float:
        """Throughput per watt."""
        return self.throughput_gops / self.power_watts

    def supports(self, workload_name: str) -> bool:
        """Whether the design can run a workload at all.

        Application-specific accelerators return False for everything
        but their target network — the flexibility gap Table IV's empty
        cells represent.
        """
        return workload_name == self.supported_workload


ACCELERATORS: Dict[str, AcceleratorSpec] = {
    "angel-eye": AcceleratorSpec(
        name="Angel-eye",
        platform="Zynq Z-7020",
        tech_node_nm=28,
        supported_workload="resnet50",
        latency_s=47.15e-3,
        throughput_gops=84.3,
        power_watts=3.5,
        reference="Guo et al., IEEE TCAD 2018 [7]",
    ),
    "vgg16-accel": AcceleratorSpec(
        name="VGG16 accelerator",
        platform="Virtex-7 VX690T",
        tech_node_nm=28,
        supported_workload="resnet50",
        latency_s=19.64e-3,
        throughput_gops=202.42,
        power_watts=10.81,
        reference="Mei et al., GlobalSIP 2017 [18]",
    ),
    "npe": AcceleratorSpec(
        name="NPE",
        platform="Zynq Z-7100",
        tech_node_nm=28,
        supported_workload="bert-base",
        latency_s=13.57e-3,
        throughput_gops=405.30,
        power_watts=20.0,
        reference="Khan et al., arXiv 2021 [3]",
    ),
    "ftrans": AcceleratorSpec(
        name="FTRANS",
        platform="Virtex UltraScale+",
        tech_node_nm=16,
        supported_workload="bert-base",
        latency_s=9.82e-3,
        throughput_gops=559.85,
        power_watts=25.0,
        reference="Li et al., ISLPED 2020 [19]",
    ),
}


def accelerators_for(workload_name: str) -> Dict[str, AcceleratorSpec]:
    """Published accelerators applicable to one workload."""
    return {
        key: spec
        for key, spec in ACCELERATORS.items()
        if spec.supports(workload_name)
    }
