"""Data-rearrange module (Fig. 6).

The Matrix Hadamard Product involves three matrices (``X``, ``K``,
``B``) but the array has only two input channels.  The memory-relocation
module therefore interleaves each ``k`` with its ``b`` into the weight
stream, and each ``x`` with the constant ``1`` into the input stream, so
the existing two channels carry all three operands and every computation
PE executes a two-term dot product per output element.

Functional interleaving lives in :func:`repro.core.mhp.rearranged_streams`;
this module adds addressing order (which row of the array each element
is routed to) and the cycle cost of the relocation pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mhp import rearranged_streams


@dataclass(frozen=True)
class RearrangedOperands:
    """Output of the data-rearrange pass for one MHP tile batch.

    Attributes
    ----------
    input_stream:
        ``(rows, 2 * cols)`` interleaved ``(x, 1)`` stream.
    weight_stream:
        ``(rows, 2 * cols)`` interleaved ``(k, b)`` stream.
    row_assignment:
        Array row each input row is injected into (round-robin over the
        PE rows; the diagonal computation PE of that row consumes it).
    cycles:
        Cycle cost of the relocation pass: the module re-emits each
        element pair once at the L3 input port width.
    """

    input_stream: np.ndarray
    weight_stream: np.ndarray
    row_assignment: np.ndarray
    cycles: int


def rearrange_cycles(m_dim: int, n_dim: int, port_width: int = 16) -> int:
    """Cycle cost of the relocation pass, derived analytically.

    The module re-emits each element pair once: the interleaved input
    and weight streams each carry ``2 * M * N`` elements, moved at the
    L3 input port width.  Identical to
    ``rearrange_for_mhp(...).cycles`` without constructing the streams.
    Note the relocation rides the MHP injection (its cost is part of
    the MHP event's fill/compute phases, as in the seed model), so the
    trace records no separate rearrange event; this closed form exists
    for timing consumers that want the pass cost in isolation, and the
    hot execution path only materializes the actual streams on request
    (the dataflow tests and the cycle-level simulator want the element
    order).
    """
    total_elements = 4 * m_dim * n_dim
    return -(-total_elements // port_width)


def rearrange_for_mhp(
    x_raw: np.ndarray,
    k_raw: np.ndarray,
    b_raw: np.ndarray,
    pe_rows: int,
    one_raw: int,
    port_width: int = 16,
) -> RearrangedOperands:
    """Run the memory-relocation pass for one MHP.

    Parameters
    ----------
    x_raw, k_raw, b_raw:
        Same-shaped raw matrices (output of the IPF event).
    pe_rows:
        Number of array rows operands are distributed over.
    one_raw:
        Fixed-point representation of the constant ``1`` paired with each
        ``x`` (``1 << frac_bits``).
    port_width:
        Elements per cycle the relocation module moves.
    """
    x_raw = np.atleast_2d(np.asarray(x_raw))
    k_raw = np.atleast_2d(np.asarray(k_raw))
    b_raw = np.atleast_2d(np.asarray(b_raw))
    if not (x_raw.shape == k_raw.shape == b_raw.shape):
        raise ValueError(
            f"rearrange operands must share a shape, got {x_raw.shape}, "
            f"{k_raw.shape}, {b_raw.shape}"
        )
    ones = np.full_like(x_raw, one_raw)
    input_stream = np.stack([x_raw, ones], axis=-1).reshape(x_raw.shape[0], -1)
    weight_stream = np.stack([k_raw, b_raw], axis=-1).reshape(k_raw.shape[0], -1)
    rows = x_raw.shape[0]
    row_assignment = np.arange(rows) % pe_rows
    total_elements = input_stream.size + weight_stream.size
    cycles = -(-total_elements // port_width)
    return RearrangedOperands(
        input_stream=input_stream,
        weight_stream=weight_stream,
        row_assignment=row_assignment,
        cycles=cycles,
    )


def deinterleave(stream: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of the rearrangement: split an interleaved stream.

    Used by tests to verify the relocation is value-preserving
    (``deinterleave(interleave(a, b)) == (a, b)``).
    """
    stream = np.atleast_2d(np.asarray(stream))
    if stream.shape[-1] % 2:
        raise ValueError("interleaved stream must have even length")
    first = stream[..., 0::2]
    second = stream[..., 1::2]
    return first, second
