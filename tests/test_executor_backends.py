"""Backend tests: float / quantized / CPWL / array agreement contracts."""

import numpy as np
import pytest

from repro.nn.executor import (
    ArrayBackend,
    CPWLBackend,
    FloatBackend,
    QuantizedFloatBackend,
)
from repro.nn.models import SmallResNet
from repro.systolic import SystolicArray, SystolicConfig

RNG = np.random.default_rng(0)


class TestFloatBackend:
    def test_linear(self):
        b = FloatBackend()
        x = RNG.normal(size=(3, 4))
        w = RNG.normal(size=(2, 4))
        bias = RNG.normal(size=2)
        assert np.allclose(b.linear(x, w, bias), x @ w.T + bias)

    def test_softmax_rows(self):
        out = FloatBackend().softmax(RNG.normal(size=(5, 7)))
        assert np.allclose(out.sum(-1), 1.0)

    def test_layernorm_moments(self):
        out = FloatBackend().layernorm(
            RNG.normal(loc=3, size=(4, 16)), np.ones(16), np.zeros(16)
        )
        assert np.allclose(out.mean(-1), 0, atol=1e-9)

    def test_batchnorm_stats_folds(self):
        b = FloatBackend()
        x = RNG.normal(size=(2, 3, 4, 4))
        gamma, beta = np.ones(3), np.zeros(3)
        mean, var = np.zeros(3), np.ones(3)
        assert np.allclose(b.batchnorm_stats(x, gamma, beta, mean, var), x, atol=1e-5)


class TestQuantizedFloatBackend:
    def test_close_to_float(self):
        qb = QuantizedFloatBackend()
        fb = FloatBackend()
        x = RNG.normal(size=(4, 8))
        assert np.allclose(qb.gelu(x), fb.gelu(x), atol=0.01)
        assert np.allclose(qb.softmax(x), fb.softmax(x), atol=0.01)

    def test_quantization_grid(self):
        qb = QuantizedFloatBackend()
        out = qb.relu(RNG.normal(size=(5, 5)))
        assert np.allclose(out * 256, np.round(out * 256))


class TestCPWLBackend:
    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            CPWLBackend(0.0)

    def test_matmul_2d_close(self):
        cb = CPWLBackend(0.25)
        a = RNG.normal(size=(5, 6))
        b = RNG.normal(size=(6, 3))
        assert np.max(np.abs(cb.matmul(a, b) - a @ b)) < 0.1

    def test_matmul_batched_matches_loop(self):
        cb = CPWLBackend(0.25)
        a = RNG.normal(size=(2, 4, 5))
        b = RNG.normal(size=(2, 5, 3))
        out = cb.matmul(a, b)
        for i in range(2):
            assert np.allclose(out[i], cb.matmul(a[i], b[i]))

    def test_matmul_broadcast_leading(self):
        cb = CPWLBackend(0.25)
        a = RNG.normal(size=(2, 3, 4, 5))
        b = RNG.normal(size=(5, 6))
        out = cb.matmul(a, b)
        assert out.shape == (2, 3, 4, 6)
        assert np.allclose(out[0, 0], cb.matmul(a[0, 0], b))

    def test_linear_preserves_leading_shape(self):
        cb = CPWLBackend(0.25)
        x = RNG.normal(size=(2, 7, 6))
        w = RNG.normal(size=(4, 6))
        out = cb.linear(x, w, np.zeros(4))
        assert out.shape == (2, 7, 4)

    def test_nonlinears_close_at_fine_granularity(self):
        cb = CPWLBackend(0.1)
        fb = FloatBackend()
        x = RNG.normal(size=(6, 6))
        for op in ("gelu", "tanh", "sigmoid", "relu"):
            assert np.max(np.abs(getattr(cb, op)(x) - getattr(fb, op)(x))) < 0.05

    def test_error_grows_with_granularity(self):
        fb = FloatBackend()
        x = np.linspace(-4, 4, 500).reshape(10, 50)
        fine = np.abs(CPWLBackend(0.1).gelu(x) - fb.gelu(x)).max()
        coarse = np.abs(CPWLBackend(1.0).gelu(x) - fb.gelu(x)).max()
        assert coarse > fine

    def test_batchnorm_stats_granularity_dependence(self):
        x = RNG.normal(size=(2, 4, 3, 3))
        gamma, beta = np.ones(4), np.zeros(4)
        mean = np.zeros(4)
        var = np.array([0.3, 0.9, 2.7, 8.1])
        fine = CPWLBackend(0.1).batchnorm_stats(x, gamma, beta, mean, var)
        coarse = CPWLBackend(1.0).batchnorm_stats(x, gamma, beta, mean, var)
        exact = FloatBackend().batchnorm_stats(x, gamma, beta, mean, var)
        assert np.abs(fine - exact).max() < np.abs(coarse - exact).max() + 1e-6


class TestArrayBackend:
    def test_matches_cpwl_backend_bitwise(self):
        """The array-routed backend must agree with the fast CPWL path."""
        config = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
        ab = ArrayBackend(SystolicArray(config), 0.25)
        cb = CPWLBackend(0.25)
        a = RNG.normal(size=(6, 8))
        b = RNG.normal(size=(8, 4))
        assert np.array_equal(ab.matmul(a, b), cb.matmul(a, b))
        x = RNG.normal(size=(4, 6))
        assert np.array_equal(ab.gelu(x), cb.gelu(x))
        assert np.array_equal(ab.relu(x), cb.relu(x))

    def test_records_cycles(self):
        config = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
        array = SystolicArray(config)
        ab = ArrayBackend(array, 0.25)
        ab.matmul(RNG.normal(size=(4, 4)), RNG.normal(size=(4, 4)))
        ab.gelu(RNG.normal(size=(4, 4)))
        kinds = array.trace.cycles_by_kind()
        assert kinds.get("gemm", 0) > 0
        assert kinds.get("mhp", 0) > 0

    def test_full_model_on_array(self):
        """End-to-end: a small CNN inferring through the array model."""
        config = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
        array = SystolicArray(config)
        model = SmallResNet(in_channels=1, n_classes=3, seed=0)
        model.train()
        from repro.nn.autograd import Tensor

        model.forward(Tensor(RNG.normal(size=(4, 1, 8, 8))))
        model.eval()
        x = RNG.normal(size=(2, 1, 8, 8))
        on_array = model.infer(x, ArrayBackend(array, 0.25))
        fast = model.infer(x, CPWLBackend(0.25))
        assert np.allclose(on_array, fast)
        assert array.total_cycles > 0
