"""Fig. 10 — latency/power design space and Pareto frontiers.

Every design point (PE grid × MACs per PE) is evaluated on square
linear (GEMM) and nonlinear (MHP) problems of dimension 512/128/32; the
scatter of (latency, power) pairs is reduced to its Pareto frontier.
The paper's observations, which the benches assert:

* more MACs yield lower latency at modest power cost;
* designs with ≥16 MACs sit on or near the Pareto frontier, 16 being
  the sweet spot (adding more stops pushing the front);
* the optimal linear-computation designs are also optimal or
  near-optimal for the newly enabled nonlinear computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.hardware.pareto import is_on_front, pareto_front
from repro.hardware.power import phase_weighted_activity, power_watts
from repro.systolic.config import SystolicConfig
from repro.systolic.timing import gemm_cycles, nonlinear_cycles

PE_DIMS = (2, 4, 8, 16)
MAC_COUNTS = (2, 4, 8, 16, 32)
MATRIX_DIMS = (512, 128, 32)


@dataclass(frozen=True)
class DesignPoint:
    """One (design, problem size, mode) evaluation for the scatter."""

    pe_dim: int
    macs: int
    matrix_dim: int
    mode: str  # 'linear' | 'nonlinear'
    latency_s: float
    power_w: float

    @property
    def label(self) -> str:
        return f"{self.pe_dim}x{self.pe_dim}x{self.macs}"


def evaluate_design(
    pe_dim: int, macs: int, matrix_dim: int, mode: str
) -> DesignPoint:
    """Latency and power of one design on one square problem."""
    config = SystolicConfig(pe_rows=pe_dim, pe_cols=pe_dim, macs_per_pe=macs)
    if mode == "linear":
        breakdown = gemm_cycles(config, matrix_dim, matrix_dim, matrix_dim)
        activity = phase_weighted_activity(config, 1.0, 0.0)
    elif mode == "nonlinear":
        breakdown = nonlinear_cycles(config, matrix_dim, matrix_dim)
        activity = phase_weighted_activity(config, 0.0, 1.0)
    else:
        raise ValueError(f"unknown mode {mode!r}")
    return DesignPoint(
        pe_dim=pe_dim,
        macs=macs,
        matrix_dim=matrix_dim,
        mode=mode,
        latency_s=breakdown.seconds(config.clock_hz),
        power_w=power_watts(config, activity=activity),
    )


def figure10_pareto(
    mode: str = "linear",
    pe_dims: Sequence[int] = PE_DIMS,
    mac_counts: Sequence[int] = MAC_COUNTS,
    matrix_dims: Sequence[int] = MATRIX_DIMS,
) -> Dict[int, dict]:
    """The full Fig. 10 sweep for one mode.

    Returns, per matrix dimension, the scatter points and the Pareto
    frontier in the (latency, power) plane.
    """
    result: Dict[int, dict] = {}
    for dim in matrix_dims:
        points = [
            evaluate_design(pe_dim, macs, dim, mode)
            for pe_dim in pe_dims
            for macs in mac_counts
        ]
        front = pareto_front(
            points, (lambda p: p.latency_s, lambda p: p.power_w)
        )
        result[dim] = {"points": points, "front": front}
    return result


def mac16_near_frontier(sweep: Dict[int, dict], tolerance: float = 0.15) -> bool:
    """Check the paper's claim that >=16-MAC designs hug the frontier.

    A design is "near" the frontier when some frontier point does not
    beat it by more than ``tolerance`` relatively on both axes.
    """
    for entry in sweep.values():
        front = entry["front"]
        for point in entry["points"]:
            if point.macs < 16:
                continue
            near = any(
                f.latency_s >= point.latency_s * (1 - tolerance)
                or f.power_w >= point.power_w * (1 - tolerance)
                for f in front
            )
            if not near:
                return False
    return True


def frontier_mac_counts(sweep: Dict[int, dict]) -> List[int]:
    """MAC counts appearing on any frontier (paper: dominated by >=16)."""
    macs = []
    for entry in sweep.values():
        macs.extend(p.macs for p in entry["front"])
    return sorted(set(macs))


def linear_optima_serve_nonlinear(
    tolerance: float = 0.25,
    matrix_dim: int = 128,
    min_macs: int = 16,
) -> bool:
    """Section V-C's final claim: linear-optimal designs are (near-)
    optimal for nonlinear computation too.

    The paper scopes the claim to its recommended design region — 16 or
    more MACs per PE (the Pareto sweet spot) — so the check covers the
    linear-frontier designs with ``macs >= min_macs`` and verifies each
    is within ``tolerance`` of the nonlinear frontier on both axes.
    """
    linear = figure10_pareto("linear", matrix_dims=(matrix_dim,))[matrix_dim]
    nonlinear = figure10_pareto("nonlinear", matrix_dims=(matrix_dim,))[matrix_dim]
    nl_by_design = {(p.pe_dim, p.macs): p for p in nonlinear["points"]}
    nl_front = nonlinear["front"]
    for lin_point in linear["front"]:
        if lin_point.macs < min_macs:
            continue
        nl_point = nl_by_design[(lin_point.pe_dim, lin_point.macs)]
        dominated_badly = any(
            f.latency_s < nl_point.latency_s * (1 - tolerance)
            and f.power_w < nl_point.power_w * (1 - tolerance)
            for f in nl_front
        )
        if dominated_badly:
            return False
    return True
