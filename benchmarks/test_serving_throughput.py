"""Serving benchmark: batched GEMM vectorization + the serving engine.

Two artifacts:

* the hot-path claim — batched attention through the vectorized
  N-D :func:`repro.fixedpoint.fixed_matmul` is >= 5x faster than the
  seed's per-matrix Python loop, with bit-identical outputs;
* a serving-level report — concurrent BERT/ResNet requests through
  the :class:`~repro.serving.InferenceEngine` on a sharded array pool,
  with batching strictly reducing cycles/request versus unbatched
  dispatch at identical outputs.
"""

import time

import numpy as np

from repro.fixedpoint import INT16, dequantize
from repro.nn.executor import CPWLBackend
from repro.nn.models import SmallResNet, TinyBERT
from repro.serving import InferenceEngine, ClusterDispatcher
from repro.systolic import SystolicArray, SystolicConfig

FMT = INT16


# --------------------------------------------------------------------------
# The seed's per-matrix batched-matmul path, reproduced verbatim: elementwise
# np.where quantization, int64 matmul, per-matrix writeback, Python loop.
# --------------------------------------------------------------------------
def _seed_quantize(values):
    scaled = np.asarray(values, dtype=np.float64) * (1 << FMT.frac_bits)
    raw = np.where(scaled >= 0, np.floor(scaled + 0.5), np.ceil(scaled - 0.5))
    return np.clip(raw, FMT.raw_min, FMT.raw_max).astype(FMT.storage_dtype())


def _seed_writeback(acc):
    half = np.int64(1) << (FMT.frac_bits - 1)
    rounded = (np.asarray(acc, dtype=np.int64) + half) >> FMT.frac_bits
    return np.clip(rounded, FMT.raw_min, FMT.raw_max).astype(FMT.storage_dtype())


def _seed_loop_matmul(a, b):
    lead = np.broadcast_shapes(a.shape[:-2], b.shape[:-2])
    a_b = np.broadcast_to(a, lead + a.shape[-2:]).reshape((-1,) + a.shape[-2:])
    b_b = np.broadcast_to(b, lead + b.shape[-2:]).reshape((-1,) + b.shape[-2:])
    outs = []
    for x, y in zip(a_b, b_b):
        acc = np.asarray(_seed_quantize(x), np.int64) @ np.asarray(
            _seed_quantize(y), np.int64
        )
        outs.append(dequantize(_seed_writeback(acc), FMT))
    return np.stack(outs).reshape(lead + (a.shape[-2], b.shape[-1]))


def _best_of(fn, repeats=7):
    """Best-of-N wall time: robust to scheduler noise on shared CI
    runners, and the speedup asserts compare a *ratio* of two
    best-of-N measurements, which tracks Python-overhead-vs-BLAS
    proportions rather than absolute machine speed."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def test_batched_attention_vectorization_speedup(print_artifact):
    """Vectorized stacked GEMM >= 5x over the seed loop, bit-identical."""
    rng = np.random.default_rng(0)
    backend = CPWLBackend(0.25)
    lines = ["Batched attention GEMM: seed per-matrix loop vs vectorized"]
    speedups = {}
    # (label, stacked matrices, rows, inner) — serving-burst attention
    # score shapes: batch x heads stacked (T, d) @ (d, T) products.
    for label, B, T, D in (
        ("serving burst 32 x TinyBERT (4 heads, T=16)", 128, 16, 16),
        ("BERT-base slice (12 heads, T=64, batch 8)", 96, 64, 64),
    ):
        a = rng.normal(size=(B, T, D))
        b = rng.normal(size=(B, D, T))
        loop_out = _seed_loop_matmul(a, b)
        vec_out = backend.matmul(a, b)
        assert np.array_equal(loop_out, vec_out), "vectorized path diverged"
        t_loop = _best_of(lambda: _seed_loop_matmul(a, b))
        t_vec = _best_of(lambda: backend.matmul(a, b))
        speedups[label] = t_loop / t_vec
        lines.append(
            f"  {label:<46s} {B:>4d} x ({T}x{D})@({D}x{T}): "
            f"loop {t_loop * 1e3:7.2f} ms  vec {t_vec * 1e3:6.2f} ms  "
            f"{t_loop / t_vec:5.1f}x"
        )
    print_artifact("\n".join(lines))
    # The acceptance claim targets the serving-shaped attention burst
    # (~10x measured, gated at 5x).  The large-matrix slice is
    # BLAS-bound and gains less (1.7-3.7x measured); its gate stays
    # loose so shared-runner timing noise cannot flake the job.
    assert speedups["serving burst 32 x TinyBERT (4 heads, T=16)"] >= 5.0
    assert speedups["BERT-base slice (12 heads, T=64, batch 8)"] >= 1.2


def _make_engine(max_batch_size):
    config = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
    pool = ClusterDispatcher.from_arrays(
        [SystolicArray(config), SystolicArray(config)], granularity=0.25
    )
    engine = InferenceEngine(pool, max_batch_size=max_batch_size, flush_timeout=1e-4)
    engine.register(
        "bert", TinyBERT(vocab=16, seq_len=8, dim=8, heads=2, ff_dim=16, n_layers=1)
    )
    resnet = SmallResNet(in_channels=1, n_classes=3, seed=0)
    resnet.eval()
    engine.register("resnet", resnet)
    return engine


def test_serving_engine_report(print_artifact):
    """Concurrent BERT/ResNet serving on a 2-shard array pool."""
    rng = np.random.default_rng(1)
    tokens = rng.integers(0, 16, size=(12, 8))
    images = rng.normal(size=(4, 1, 8, 8))

    def submit_all(engine):
        ids = [engine.submit("bert", row) for row in tokens]
        ids += [engine.submit("resnet", img) for img in images]
        return ids

    batched = _make_engine(max_batch_size=8)
    batched_ids = submit_all(batched)
    batched_report = batched.run()

    unbatched = _make_engine(max_batch_size=1)
    unbatched_ids = submit_all(unbatched)
    unbatched_report = unbatched.run()

    # Identical results regardless of batching.
    for bid, uid in zip(batched_ids, unbatched_ids):
        assert np.array_equal(batched.result(bid), unbatched.result(uid))

    print_artifact(
        "Serving report (batched, 2 array shards)\n"
        + batched_report.summary()
        + "\n\nSame workload unbatched (max_batch_size=1)\n"
        + unbatched_report.summary()
    )

    assert batched_report.n_requests == 16
    assert batched_report.throughput_rps > 0
    assert batched_report.p50 <= batched_report.p99
    assert set(batched_report.shard_cycles) == {0, 1}
    # Packing requests into shared GEMM tiles amortizes the per-tile
    # skew and weight preload: strictly fewer cycles per request.
    assert batched_report.total_cycles < unbatched_report.total_cycles
    assert batched_report.mean_batch_size > unbatched_report.mean_batch_size
