"""Execution trace of operations issued to the array.

The trace records one event per architecture-level operation (GEMM, IPF,
MHP, preload) with its cycle breakdown, so utilization, the Fig. 1-style
op mix and the energy accounting can all be derived from a single run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.systolic.timing import CycleBreakdown


@dataclass(frozen=True)
class TraceEvent:
    """One operation executed by the array."""

    kind: str  # 'gemm' | 'mhp' | 'ipf' | 'preload'
    label: str
    cycles: int
    ops: int  # MACs for GEMM, elements for nonlinear events
    breakdown: Optional[CycleBreakdown] = None


@dataclass
class Trace:
    """Ordered event log with aggregate views."""

    events: List[TraceEvent] = field(default_factory=list)

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    @property
    def total_cycles(self) -> int:
        return sum(e.cycles for e in self.events)

    def cycles_by_kind(self) -> Dict[str, int]:
        """Aggregate cycles per operation kind."""
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + e.cycles
        return out

    def ops_by_kind(self) -> Dict[str, int]:
        """Aggregate op counts per operation kind."""
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + e.ops
        return out

    def cycles_by_label(self) -> Dict[str, int]:
        """Aggregate cycles per event label (e.g. per layer)."""
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.label] = out.get(e.label, 0) + e.cycles
        return out

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)
