"""Bench A1 — ablation: transmission/computation-PE dataflow vs naive MHP.

DESIGN.md calls out the MHP dataflow as the key PE-level design choice:
without the C1/C2 reconfiguration, the reuse-oriented fabric delivers
one fresh operand pair per lane per cycle and the MAC count is wasted.
The ablation quantifies the speedup of the redesigned dataflow across
MAC counts and matrix sizes.
"""

import pytest

from repro.evaluation.reporting import format_table
from repro.systolic.config import SystolicConfig
from repro.systolic.mhp_dataflow import naive_mhp_cycles, plan_mhp


def sweep():
    rows = []
    for macs in (2, 4, 8, 16, 32):
        config = SystolicConfig(pe_rows=8, pe_cols=8, macs_per_pe=macs)
        for dim in (64, 256, 512):
            naive = naive_mhp_cycles(config, dim, dim).total
            ours = plan_mhp(config, dim, dim).breakdown.total
            rows.append(
                {
                    "macs": macs,
                    "dim": dim,
                    "naive_cycles": naive,
                    "one_sa_cycles": ours,
                    "speedup": naive / ours,
                }
            )
    return rows


def test_ablation_mhp_dataflow(benchmark, print_artifact):
    rows = benchmark(sweep)
    headers = ["macs", "dim", "naive_cycles", "one_sa_cycles", "speedup"]
    print_artifact(
        format_table(
            headers,
            [[r[h] for h in headers] for r in rows],
            title="Ablation: MHP dataflow vs naive in-place MHP (8x8 PEs)",
        )
    )

    by = {(r["macs"], r["dim"]): r for r in rows}
    # The dataflow's advantage scales with the MAC count (it restores
    # MAC utilization that the naive dataflow cannot feed).
    assert by[(16, 512)]["speedup"] > 6
    assert by[(32, 512)]["speedup"] > by[(16, 512)]["speedup"]
    assert by[(4, 512)]["speedup"] > 1.5
    # With minimal MACs there is (almost) nothing to win.
    assert by[(2, 512)]["speedup"] == pytest.approx(1.0, abs=0.1)
