"""Generation example: continuous-batching decode with radix reuse.

Serves a burst of greedy-decode generation requests through the
:class:`~repro.serving.InferenceEngine`'s iteration-level decode pool:
each request prefills its prompt once (emitting its first token and
per-layer K/V state), then joins a decode batch that is *re-formed at
every step* from the live sequences — new arrivals merge in
mid-flight, finished sequences retire without anyone waiting.  A
:class:`~repro.serving.RadixKVCache` indexes retired transcripts by
token sequence, so a conversational follow-up request prefills warm
from the longest cached prefix.  Every token is bit-identical to
lockstep ``model.generate`` and every iteration's traced cycles are
the closed forms in :mod:`repro.nn.workload`.

    python examples/generation_demo.py
"""

import numpy as np

from repro.nn.models import TinyBERT
from repro.serving import (
    ClusterDispatcher,
    GenerationAdapter,
    InferenceEngine,
    RadixKVCache,
)
from repro.systolic import SystolicArray, SystolicConfig

GRANULARITY = 0.25


def main() -> None:
    rng = np.random.default_rng(0)

    # -- a causal encoder with a 16-entry position table -----------------
    model = TinyBERT(
        vocab=16, seq_len=16, dim=8, heads=2, ff_dim=16, n_layers=2,
        causal=True, seed=0,
    )

    # -- the serving stack: 2 traced shards + a radix transcript cache ---
    config = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=8)
    pool = ClusterDispatcher.from_arrays(
        [SystolicArray(config), SystolicArray(config)], GRANULARITY
    )
    engine = InferenceEngine(
        pool, max_batch_size=8, flush_timeout=1e-4,
        radix_cache=RadixKVCache(shard_budget_bytes=1 << 20),
    )
    engine.register("gen", generation_adapter=GenerationAdapter(model))
    engine.register_tenant("gold", weight=3.0)
    engine.register_tenant("free", weight=1.0)

    # -- a mixed-arrival burst of generation requests --------------------
    ids = []
    for i in range(8):
        prompt = rng.integers(0, 16, size=4, dtype=np.int64)
        tenant = "gold" if i % 2 == 0 else "free"
        ids.append(
            engine.submit_generation(
                "gen", prompt, max_new_tokens=6,
                arrival=i * 2e-6, tenant=tenant,
            )
        )
    report = engine.run()
    outputs = {i: engine.result(i, keep=True) for i in ids}

    print("generated sequences (first 4):")
    for i in ids[:4]:
        print(f"  request {i}: {outputs[i].tolist()}")
    print()
    print(report.generation_section())

    # -- a conversational follow-up: transcript replay prefills warm -----
    first = report.generation_completed[0]
    transcript = np.concatenate(
        [np.asarray(first.request.inputs), outputs[first.request.request_id]]
    ).astype(np.int64)
    follow = np.concatenate([transcript, [7, 2]]).astype(np.int64)
    fid = engine.submit_generation(
        "gen", follow, max_new_tokens=3,
        arrival=1.0, tenant=first.request.tenant,
    )
    follow_report = engine.run()
    print()
    print(f"follow-up prompt ({len(follow)} tokens, "
          f"{len(transcript) - 1} cached): {engine.result(fid).tolist()}")
    hits = [e for e in follow_report.prefix_events if e.hit]
    print(f"radix hits: {len(hits)}, "
          f"cycles saved: {sum(e.cycles_saved for e in hits)}")


if __name__ == "__main__":
    main()
