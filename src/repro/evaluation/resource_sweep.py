"""Tables I, II, V and Fig. 9 — hardware resource accounting.

All four artifacts are views over the analytic resource model
(:mod:`repro.hardware.resources`) and the buffer geometry
(:class:`~repro.systolic.config.SystolicConfig`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.evaluation.reporting import format_table
from repro.hardware.resources import (
    ArrayResources,
    l3_resources,
    pe_resources,
    total_resources,
)
from repro.systolic.config import SystolicConfig

#: Published values recorded for the EXPERIMENTS.md comparison.
PAPER_TABLE1 = {
    ("l3", "sa"): {"bram": 0, "lut": 174, "ff": 566, "dsp": 0},
    ("l3", "one-sa"): {"bram": 2, "lut": 1021, "ff": 1209, "dsp": 0},
    ("pe", "sa"): {"bram": 1, "lut": 824, "ff": 1862, "dsp": 16},
    ("pe", "one-sa"): {"bram": 1, "lut": 826, "ff": 2380, "dsp": 16},
}

PAPER_TABLE2 = {
    (4, "sa"): {"bram": 470, "lut": 67976, "ff": 66924, "dsp": 256},
    (4, "one-sa"): {"bram": 472, "lut": 68855, "ff": 75855, "dsp": 256},
    (8, "sa"): {"bram": 822, "lut": 179247, "ff": 179247, "dsp": 1024},
    (8, "one-sa"): {"bram": 824, "lut": 180222, "ff": 213042, "dsp": 1024},
    (16, "sa"): {"bram": 1366, "lut": 730225, "ff": 552539, "dsp": 4096},
    (16, "one-sa"): {"bram": 1368, "lut": 731584, "ff": 685790, "dsp": 4096},
}


def table1_module_resources(pe_rows: int = 8, macs: int = 16) -> Dict[str, Dict[str, ArrayResources]]:
    """Table I: L3 buffer and PE costs, SA vs ONE-SA."""
    return {
        "l3": {
            "sa": l3_resources(pe_rows, macs, nonlinear_output=False),
            "one-sa": l3_resources(pe_rows, macs, nonlinear_output=True),
        },
        "pe": {
            "sa": pe_resources(macs, nonlinear=False),
            "one-sa": pe_resources(macs, nonlinear=True),
        },
    }


def table2_total_resources(
    pe_dims: Sequence[int] = (4, 8, 16), macs: int = 16
) -> List[dict]:
    """Table II: total resources for SA and ONE-SA at each array size."""
    rows = []
    for dim in pe_dims:
        sa = total_resources(
            SystolicConfig(pe_rows=dim, pe_cols=dim, macs_per_pe=macs, nonlinear_enabled=False)
        )
        one = total_resources(
            SystolicConfig(pe_rows=dim, pe_cols=dim, macs_per_pe=macs, nonlinear_enabled=True)
        )
        rows.append(
            {
                "dim": dim,
                "sa": sa,
                "one-sa": one,
                "ratio": {
                    "bram": one.bram / sa.bram,
                    "lut": one.lut / sa.lut,
                    "ff": one.ff / sa.ff,
                    "dsp": one.dsp / sa.dsp,
                },
            }
        )
    return rows


def figure9_resource_sweep(
    pe_dims: Sequence[int] = (2, 4, 8, 16),
    mac_counts: Sequence[int] = (2, 4, 8, 16, 32),
) -> List[dict]:
    """Fig. 9: ONE-SA resource consumption across the design space."""
    rows = []
    for dim in pe_dims:
        for macs in mac_counts:
            config = SystolicConfig(pe_rows=dim, pe_cols=dim, macs_per_pe=macs)
            res = total_resources(config)
            rows.append(
                {
                    "n_pes": config.n_pes,
                    "macs": macs,
                    "lut": res.lut,
                    "ff": res.ff,
                    "dsp": res.dsp,
                    "bram": res.bram,
                }
            )
    return rows


def table5_buffer_sizes(config: SystolicConfig = None) -> List[dict]:
    """Table V: per-buffer sizes and instance counts."""
    config = config or SystolicConfig(pe_rows=8, pe_cols=8, macs_per_pe=16)
    return [
        {
            "buffer": "L3",
            "size_kb": config.l3_bytes / 1024.0,
            "count": config.n_l3_buffers,
        },
        {
            "buffer": "L2",
            "size_kb": config.l2_bytes / 1024.0,
            "count": config.n_l2_banks,
        },
        {
            "buffer": "PE",
            "size_kb": config.pe_buffer_bytes / 1024.0,
            "count": config.n_pes,
        },
        {
            "buffer": "L1",
            "size_kb": config.l1_bytes / 1024.0,
            "count": config.n_pes,
        },
    ]


def format_table1() -> str:
    data = table1_module_resources()
    rows = []
    for module in ("l3", "pe"):
        for design in ("sa", "one-sa"):
            r = data[module][design]
            rows.append(
                [module.upper(), design.upper(), int(r.bram), int(r.lut), int(r.ff), int(r.dsp)]
            )
    return format_table(
        ["Module", "Design", "BRAM", "LUT", "FF", "DSP"],
        rows,
        title="Table I: ONE-SA L3 and PE resources",
    )


def format_table2() -> str:
    rows = []
    for entry in table2_total_resources():
        dim = entry["dim"]
        sa, one, ratio = entry["sa"], entry["one-sa"], entry["ratio"]
        rows.append([f"{dim}x{dim}", "SA", int(sa.bram), int(sa.lut), int(sa.ff), int(sa.dsp)])
        rows.append(
            [
                f"{dim}x{dim}",
                "OneSA",
                f"{int(one.bram)} ({ratio['bram'] * 100:.1f}%)",
                f"{int(one.lut)} ({ratio['lut'] * 100:.1f}%)",
                f"{int(one.ff)} ({ratio['ff'] * 100:.1f}%)",
                f"{int(one.dsp)} ({ratio['dsp'] * 100:.0f}%)",
            ]
        )
    return format_table(
        ["Dim", "Design", "BRAM", "LUT", "FF", "DSP"],
        rows,
        title="Table II: total hardware resources",
    )


def format_table5() -> str:
    rows = [
        [
            entry["buffer"],
            f"{entry['size_kb']:.3f}KB",
            f"x{entry['count']}",
        ]
        for entry in table5_buffer_sizes()
    ]
    return format_table(["Buffer", "Size", "Count"], rows, title="Table V: buffer sizes")
