"""Granularity selection.

Section V-B: "Theoretically, the proposed ONE-SA architecture can support
any approximation granularity.  In practice, the approximation
granularity is limited by the size of the L3 buffer and the range of
uncapped approximation. ... Advanced neural network architecture search
(NAS) can also be applied further to select the granularities."

This module implements the practical selection logic: enumerate
candidate granularities, discard those whose tables exceed the L3 k/b
buffer budget, score the survivors by approximation error, and pick the
coarsest granularity that meets an error target (coarser tables mean
fewer parameters to preload per operation).  The paper's default choice
of 0.25 falls out of this procedure for the evaluated functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.cpwl import CPWLApproximator
from repro.core.segment_table import build_segment_table
from repro.fixedpoint import QFormat
from repro.fixedpoint.qformat import INT16

#: The sweep used throughout the paper's Table III.
PAPER_GRANULARITIES: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class GranularityChoice:
    """One evaluated granularity candidate."""

    granularity: float
    n_segments: int
    storage_bytes: int
    max_abs_error: float
    rmse: float
    fits_l3: bool
    shift_path: bool


def sweep_granularity(
    function: str,
    granularities: Iterable[float] = PAPER_GRANULARITIES,
    fmt: Optional[QFormat] = INT16,
    l3_budget_bytes: int = 1024,
    n_points: int = 4096,
) -> List[GranularityChoice]:
    """Evaluate candidate granularities for one nonlinear function.

    Parameters
    ----------
    function:
        Registered function name.
    granularities:
        Candidate segment lengths.
    fmt:
        Datapath format (errors include quantization when set).
    l3_budget_bytes:
        k/b parameter storage available in the L3 buffer.  The paper's
        L3 holds 0.28 KB per buffer (Table V); the default budget allows
        tables to span multiple loads.
    n_points:
        Density of the error sweep over the approximation domain.
    """
    results = []
    for g in granularities:
        approx = CPWLApproximator(function, g, fmt=fmt)
        err = approx.error_profile(n_points=n_points)
        table = approx.table
        results.append(
            GranularityChoice(
                granularity=float(g),
                n_segments=table.n_segments,
                storage_bytes=table.storage_bytes,
                max_abs_error=err.max_abs,
                rmse=err.rmse,
                fits_l3=table.storage_bytes <= l3_budget_bytes,
                shift_path=table.shift_path,
            )
        )
    return results


def recommend_granularity(
    function: str,
    max_error: float = 0.01,
    granularities: Iterable[float] = PAPER_GRANULARITIES,
    fmt: Optional[QFormat] = INT16,
    l3_budget_bytes: int = 1024,
) -> GranularityChoice:
    """Coarsest granularity meeting the error target within the L3 budget.

    Raises ``ValueError`` when no candidate qualifies — the caller should
    then either relax the error target or grow the L3 budget, the exact
    trade-off Section V-B describes.
    """
    candidates = sweep_granularity(
        function, granularities, fmt=fmt, l3_budget_bytes=l3_budget_bytes
    )
    feasible = [c for c in candidates if c.fits_l3 and c.max_abs_error <= max_error]
    if not feasible:
        raise ValueError(
            f"no granularity in {list(granularities)} meets max_error="
            f"{max_error} within {l3_budget_bytes} B for {function!r}"
        )
    return max(feasible, key=lambda c: c.granularity)


def table_pressure(
    functions: Sequence[str],
    granularity: float,
    fmt: Optional[QFormat] = INT16,
) -> int:
    """Total k/b storage (bytes) to keep tables for ``functions`` resident.

    Used by the executor to decide whether a model's full set of
    nonlinearities fits the L3 parameter store at once or tables must be
    swapped between layers (which the timing model charges as extra L3
    preload traffic).
    """
    total = 0
    for name in functions:
        total += build_segment_table(name, granularity).storage_bytes
    return total
