"""Elastic cluster runtime: look-ahead placement, stealing, autoscaling.

The load-bearing contracts:

* **defaults are the baseline** — an engine with every elastic knob
  off produces a report bit-identical (fingerprint-equal) to one built
  without an :class:`ElasticConfig` at all;
* **look-ahead placement moves work, never changes arithmetic** —
  outputs match greedy placement bit-for-bit, plans are deterministic,
  and the skewed pool stops funnelling into the fastest shard;
* **work-stealing re-places queued-but-unstarted batches** off
  drifted / tripped shards, migrating prefix-cache entries through the
  store fabric when affinity breaks — and every completed request is
  still answered exactly once with baseline-identical bits;
* **the autoscaler** grows on missed SLOs, shrinks on headroom, honors
  min/max bounds, hysteresis and the priced power budget;
* the satellite regressions: open-breaker shards are filtered *before*
  cost ranking, equal-cost ties break by shard index everywhere, and a
  stale cross-worker calibration snapshot revalidates through the
  version-stamped store fabric.
"""

import numpy as np
import pytest

from repro.autotune.replay import report_fingerprint
from repro.nn.models import TinyBERT
from repro.nn.workload import transformer_serving_workload
from repro.serving import (
    BatchProfile,
    BreakerConfig,
    CalibratingCostModel,
    ClusterSpec,
    CostAwarePlacement,
    ElasticConfig,
    FaultPlan,
    InferenceEngine,
    LeastLoadedPlacement,
    LookaheadPlacement,
    ModelSpec,
    PrefixCache,
    ShardHealth,
    ShardSlowdown,
    ShardStats,
    ShardView,
    TransformerPrefixAdapter,
    cluster_desc,
    load_calibration,
    render_cluster_desc,
    save_calibration,
    serve_multiproc,
    workload_cost_model,
)
from repro.store import FileStore, InProcessLRU, TieredStore
from repro.systolic import SystolicConfig

# The skewed heterogeneous pool of the placement benchmarks: ~160x
# capability spread end to end, so greedy earliest-finish placement
# funnels everything into shard 0.
SKEWED_POOL = (
    SystolicConfig(pe_rows=8, pe_cols=8, macs_per_pe=16, clock_hz=250e6),
    SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4, clock_hz=250e6),
    SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4, clock_hz=100e6),
    SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=2, clock_hz=100e6),
)
SMALL_KW = dict(vocab=16, seq_len=8, dim=8, heads=2, ff_dim=16, n_layers=1)
LARGE_KW = dict(vocab=16, seq_len=16, dim=16, heads=4, ff_dim=32, n_layers=2)


def _cost(kw):
    return workload_cost_model(
        lambda batch, shape: transformer_serving_workload(
            batch, kw["seq_len"], kw["dim"], kw["heads"],
            kw["ff_dim"], kw["n_layers"],
        )
    )


def _engine(pool=SKEWED_POOL, placement="cost_aware", elastic=None, **kw):
    kw.setdefault("max_batch_size", 4)
    kw.setdefault("flush_timeout", 1e-4)
    engine = InferenceEngine(
        ClusterSpec.heterogeneous(pool).build(),
        placement=placement,
        elastic=elastic,
        **kw,
    )
    engine.register(
        "bert_small", TinyBERT(**SMALL_KW, seed=0), cost_model=_cost(SMALL_KW)
    )
    return engine


def _mixed_burst(engine, n_small=16, n_large=4, seed=4):
    engine.register(
        "bert_large", TinyBERT(**LARGE_KW, seed=0), cost_model=_cost(LARGE_KW)
    )
    rng = np.random.default_rng(seed)
    ids = [
        engine.submit("bert_small", row, arrival=0.0)
        for row in rng.integers(0, 16, size=(n_small, SMALL_KW["seq_len"]))
    ]
    ids += [
        engine.submit("bert_large", row, arrival=0.0)
        for row in rng.integers(0, 16, size=(n_large, LARGE_KW["seq_len"]))
    ]
    return ids


def _outputs(engine, ids):
    return [engine.result(i, keep=True) for i in ids]


# ---------------------------------------------------------------------------
# Knobs
# ---------------------------------------------------------------------------
class TestElasticConfig:
    def test_defaults_are_off(self):
        config = ElasticConfig()
        assert not config.enabled
        assert config.describe() == "elastic: off"

    def test_enabled_tracks_any_knob(self):
        assert ElasticConfig(lookahead=True).enabled
        assert ElasticConfig(steal=True).enabled
        assert ElasticConfig(autoscale=True).enabled

    @pytest.mark.parametrize("bad", [
        dict(steal_drift_threshold=0.5),
        dict(affinity_break_factor=0.0),
        dict(autoscale_window=0),
        dict(grow_below_attainment=1.5),
        dict(shrink_above_attainment=-0.1),
        dict(grow_below_attainment=0.95, shrink_above_attainment=0.9),
        dict(autoscale_cooldown=-1.0),
        dict(min_shards=0),
        dict(min_shards=3, max_shards=2),
        dict(power_budget_watts=0.0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ElasticConfig(**bad)

    def test_round_trips_through_dict(self):
        config = ElasticConfig(
            lookahead=True, steal=True, autoscale=True,
            steal_drift_threshold=1.25, affinity_break_factor=3.0,
            autoscale_window=5, autoscale_cooldown=2e-3,
            min_shards=2, max_shards=6, power_budget_watts=40.0,
        )
        assert ElasticConfig.from_dict(config.to_dict()) == config
        assert ElasticConfig.from_dict({}) == ElasticConfig()

    def test_describe_names_active_behaviors(self):
        text = ElasticConfig(lookahead=True, steal=True, autoscale=True).describe()
        assert "lookahead" in text
        assert "steal" in text
        assert "autoscale" in text


# ---------------------------------------------------------------------------
# Defaults pinned bit-identical
# ---------------------------------------------------------------------------
class TestDefaultsPinned:
    def test_elastic_off_is_fingerprint_identical_to_baseline(self):
        """ElasticConfig() == no elastic config at all, bit for bit."""
        reports = []
        for elastic in (None, ElasticConfig()):
            engine = _engine(elastic=elastic)
            _mixed_burst(engine)
            reports.append(engine.run())
        assert report_fingerprint(reports[0]) == report_fingerprint(reports[1])
        assert not reports[1].has_elastic_activity

    def test_elastic_off_logs_stay_empty(self):
        engine = _engine(elastic=ElasticConfig())
        _mixed_burst(engine)
        report = engine.run()
        assert report.steals == ()
        assert report.scaling_events == ()
        assert engine.steal_log == ()
        assert engine.scaling_log == ()


# ---------------------------------------------------------------------------
# Look-ahead placement
# ---------------------------------------------------------------------------
class TestLookaheadPlacement:
    def _run(self, elastic, placement="cost_aware"):
        engine = _engine(placement=placement, elastic=elastic)
        ids = _mixed_burst(engine)
        report = engine.run()
        return _outputs(engine, ids), report

    def test_outputs_bit_identical_to_greedy(self):
        greedy_out, _ = self._run(None)
        ahead_out, report = self._run(
            ElasticConfig(lookahead=True), placement="lookahead"
        )
        for a, b in zip(greedy_out, ahead_out):
            assert np.array_equal(a, b), "placement changed results"
        assert report.n_requests == 20

    def test_plan_is_deterministic(self):
        first_out, first = self._run(
            ElasticConfig(lookahead=True), placement="lookahead"
        )
        second_out, second = self._run(
            ElasticConfig(lookahead=True), placement="lookahead"
        )
        assert report_fingerprint(first) == report_fingerprint(second)

    def test_lookahead_spreads_the_skewed_pool(self):
        """Joint planning uses shards greedy cost_aware leaves idle."""
        _, greedy = self._run(None)
        _, ahead = self._run(
            ElasticConfig(lookahead=True), placement="lookahead"
        )
        used = lambda report: {
            decision.shard for decision in report.placements
        }
        assert used(ahead) >= used(greedy)
        assert ahead.makespan <= greedy.makespan * 1.0001
        spread = ahead.utilization_spread()
        assert spread is None or spread >= 1.0

    def test_plan_ties_break_by_shard_index(self):
        """Equal shards, equal batches: LPT assigns round-robin from 0."""
        config = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
        views = [
            ShardView(index=i, busy_until=0.0, clock_hz=config.clock_hz,
                      config=config)
            for i in range(3)
        ]
        estimator = lambda profile, cfg: 1000.0
        profiles = [
            BatchProfile(model="m", tenant="t", batch_size=1,
                         sample_shape=(8,), ready_time=0.0,
                         estimator=estimator)
            for _ in range(3)
        ]
        assert LookaheadPlacement().plan(profiles, views) == [0, 1, 2]


# ---------------------------------------------------------------------------
# Work stealing
# ---------------------------------------------------------------------------
class TestWorkStealing:
    def test_drift_steal_rescues_a_slowed_shard(self):
        """A slowdown fault inflates drift; queued batches migrate off."""
        elastic = ElasticConfig(lookahead=True, steal=True)
        faults = FaultPlan(events=(
            ShardSlowdown(shard=0, at=0.0, until=1.0, factor=16.0),
        ))
        baseline = _engine()
        ids = _mixed_burst(baseline, n_small=24)
        base_out = (baseline.run(), _outputs(baseline, ids))[1]

        engine = _engine(placement="lookahead", elastic=elastic, faults=faults)
        ids = _mixed_burst(engine, n_small=24)
        report = engine.run()
        assert len(report.completed) == len(ids)
        drift_steals = [s for s in report.steals if s.reason == "drift"]
        assert drift_steals, "no drift steal despite a 16x slowdown"
        assert any(s.from_shard == 0 for s in drift_steals), (
            "no steal off the slowed shard"
        )
        for steal in drift_steals:
            assert steal.planned_eta > steal.stolen_eta
        # Stealing moved work, never changed bits.
        for a, b in zip(base_out, _outputs(engine, ids)):
            assert np.array_equal(a, b)
        # The drift EWMA that triggered it is visible in the stats tree.
        assert engine.shard_stats[0].drift > 1.2

    def test_breaker_steal_reroutes_planned_batches(self):
        """A tripped planned shard hands its queue to the live pool."""
        elastic = ElasticConfig(lookahead=True, steal=True)
        faults = FaultPlan(events=(
            ShardSlowdown(shard=0, at=0.0, until=1.0, factor=16.0),
        ))
        engine = _engine(placement="lookahead", elastic=elastic, faults=faults,
                         breaker=BreakerConfig(failure_threshold=1))
        ids = _mixed_burst(engine, n_small=24)
        report = engine.run()
        assert len(report.completed) + len(report.failed) == len(ids)
        # Whatever the reason mix, every steal left a consistent record.
        for steal in report.steals:
            assert steal.from_shard != steal.to_shard
            assert steal.reason in {"drift", "breaker", "affinity"}

    def test_steal_off_honors_the_plan(self):
        elastic = ElasticConfig(lookahead=True)
        faults = FaultPlan(events=(
            ShardSlowdown(shard=0, at=0.0, until=1.0, factor=16.0),
        ))
        engine = _engine(placement="lookahead", elastic=elastic, faults=faults)
        ids = _mixed_burst(engine, n_small=24)
        report = engine.run()
        assert report.steals == ()
        assert len(report.completed) == len(ids)


def _hot_prefix_engine(elastic, prefix_len=6):
    cache = PrefixCache(shard_budget_bytes=1 << 20)
    engine = InferenceEngine(
        ClusterSpec.heterogeneous(SKEWED_POOL).build(),
        max_batch_size=4,
        flush_timeout=1e-7,
        placement="lookahead" if elastic is not None and elastic.lookahead
        else "cost_aware",
        prefix_cache=cache,
        elastic=elastic,
    )
    model = TinyBERT(**SMALL_KW, causal=True, seed=0)
    engine.register(
        "bert_small", model, cost_model=_cost(SMALL_KW),
        prefix_adapter=TransformerPrefixAdapter(model, prefix_len),
    )
    engine.register(
        "bert_large", TinyBERT(**LARGE_KW, seed=0), cost_model=_cost(LARGE_KW)
    )
    return engine, cache


def _hot_prefix_burst(engine, repeats=24, seed=11):
    """Warmup large batches occupy the fast shards; then one hot prompt
    repeats — greedy affinity pins every repeat to its cold shard."""
    rng = np.random.default_rng(seed)
    ids = [
        engine.submit("bert_large", row, arrival=0.0)
        for row in rng.integers(0, 16, size=(8, LARGE_KW["seq_len"]))
    ]
    prefix = rng.integers(0, 16, size=6)
    for i in range(repeats):
        suffix = rng.integers(0, 16, size=SMALL_KW["seq_len"] - 6)
        row = np.concatenate([prefix, suffix])
        ids.append(engine.submit("bert_small", row, arrival=1e-6 * (i + 1)))
    return ids


class TestAffinityBreak:
    def test_affinity_steal_migrates_the_cache_entry(self):
        elastic = ElasticConfig(lookahead=True, steal=True,
                                affinity_break_factor=2.0)
        engine, cache = _hot_prefix_engine(elastic)
        ids = _hot_prefix_burst(engine)
        report = engine.run()
        assert len(report.completed) == len(ids)
        affinity = [s for s in report.steals if s.reason == "affinity"]
        assert affinity, "hot prefix stayed pinned to its cold shard"
        assert any(s.cache_migrated for s in affinity)
        assert cache.migrations >= 1
        # The migrated prompt keeps serving hits from its new home.
        assert cache.stats()["hits"] > 0

    def test_affinity_break_beats_pinned_greedy(self):
        """The pathology the elastic runtime exists to fix: entry
        migration off the cold shard beats affinity-pinned greedy."""
        greedy_engine, _ = _hot_prefix_engine(None)
        greedy_ids = _hot_prefix_burst(greedy_engine)
        greedy = greedy_engine.run()

        elastic = ElasticConfig(lookahead=True, steal=True)
        engine, _ = _hot_prefix_engine(elastic)
        ids = _hot_prefix_burst(engine)
        report = engine.run()

        for a, b in zip(
            _outputs(greedy_engine, greedy_ids), _outputs(engine, ids)
        ):
            assert np.array_equal(a, b), "stealing changed results"
        assert report.makespan < greedy.makespan

    def test_prefix_cache_migrate_moves_exactly_one_entry(self):
        class _Payload:
            nbytes = 64

        from repro.serving import PrefixEntry

        cache = PrefixCache(shard_budget_bytes=1 << 12)
        entry = PrefixEntry(
            tenant="t", model="m", prefix_key="k",
            prefix_tokens=np.arange(6), payload=_Payload(),
        )
        assert cache.insert(2, entry)
        assert cache.resident_shards("t", "m", "k") == (2,)
        assert cache.migrate(2, 0, "t", "m", "k")
        assert cache.resident_shards("t", "m", "k") == (0,)
        assert cache.migrations == 1
        # Self-moves and missing entries are no-ops, not errors.
        assert not cache.migrate(0, 0, "t", "m", "k")
        assert not cache.migrate(2, 1, "t", "m", "k")
        assert cache.migrations == 1


# ---------------------------------------------------------------------------
# SLO-driven autoscaling
# ---------------------------------------------------------------------------
def _autoscale_engine(n_shards, elastic, deadline=None, n_requests=16):
    config = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
    engine = InferenceEngine(
        ClusterSpec.homogeneous(config, n_shards).build(),
        max_batch_size=1,
        flush_timeout=1e-7,
        placement="cost_aware",
        elastic=elastic,
    )
    engine.register(
        "bert_small", TinyBERT(**SMALL_KW, seed=0), cost_model=_cost(SMALL_KW)
    )
    rng = np.random.default_rng(2)
    ids = [
        engine.submit(
            "bert_small", row, arrival=i * 1e-6,
            deadline=None if deadline is None else i * 1e-6 + deadline,
        )
        for i, row in enumerate(
            rng.integers(0, 16, size=(n_requests, SMALL_KW["seq_len"]))
        )
    ]
    return engine, ids


class TestAutoscaling:
    GROW = ElasticConfig(autoscale=True, autoscale_window=4,
                         autoscale_cooldown=0.0, max_shards=3)

    def test_grows_on_missed_slos(self):
        engine, ids = _autoscale_engine(1, self.GROW, deadline=1e-9)
        report = engine.run()
        grows = [e for e in report.scaling_events if e.action == "grow"]
        assert grows, "every deadline missed yet the pool never grew"
        assert grows[0].reason == "slo_attainment"
        assert grows[0].slo_attainment < 0.9
        assert grows[0].pool_power_watts > 0
        assert engine.dispatcher.n_live_shards > 1
        assert len(report.completed) == len(ids)

    def test_max_shards_caps_growth(self):
        engine, _ = _autoscale_engine(1, self.GROW, deadline=1e-9,
                                      n_requests=64)
        engine.run()
        assert engine.dispatcher.n_live_shards <= 3

    def test_power_budget_refuses_growth(self):
        budgeted = ElasticConfig(
            autoscale=True, autoscale_window=4, autoscale_cooldown=0.0,
            power_budget_watts=1e-9,
        )
        engine, _ = _autoscale_engine(1, budgeted, deadline=1e-9)
        report = engine.run()
        assert report.scaling_events == ()
        assert engine.dispatcher.n_live_shards == 1

    def test_shrinks_on_headroom_but_never_below_min(self):
        relaxed = ElasticConfig(
            autoscale=True, autoscale_window=4, autoscale_cooldown=0.0,
            min_shards=2,
        )
        engine, ids = _autoscale_engine(3, relaxed, n_requests=32)
        report = engine.run()
        shrinks = [e for e in report.scaling_events if e.action == "shrink"]
        assert shrinks, "full attainment with 3 shards never shrank"
        assert all(e.reason == "slo_headroom" for e in shrinks)
        assert engine.dispatcher.n_live_shards >= 2
        assert len(report.completed) == len(ids)

    def test_cooldown_is_hysteresis(self):
        lazy = ElasticConfig(
            autoscale=True, autoscale_window=4, autoscale_cooldown=1e6,
        )
        engine, _ = _autoscale_engine(3, lazy, n_requests=32)
        report = engine.run()
        assert len(report.scaling_events) <= 1

    def test_outputs_unchanged_by_scaling(self):
        baseline, base_ids = _autoscale_engine(1, None, deadline=1e-9)
        baseline.run()
        engine, ids = _autoscale_engine(1, self.GROW, deadline=1e-9)
        engine.run()
        for a, b in zip(_outputs(baseline, base_ids), _outputs(engine, ids)):
            assert np.array_equal(a, b), "autoscaling changed results"


# ---------------------------------------------------------------------------
# Stats descriptor tree + report rendering
# ---------------------------------------------------------------------------
class TestStatsTree:
    def test_shard_stats_drift_ewma_in_seconds(self):
        stats = ShardStats(0)
        stats.observe(1000, 2e-5, estimated_seconds=1e-5)
        assert stats.drift == pytest.approx(1.0 + 0.25 * (2.0 - 1.0))
        stats.observe(1000, 1e-5)  # unpriced: bookkeeping only
        assert stats.batches == 2
        assert stats.drift == pytest.approx(1.25)
        stats.reset()
        assert stats.drift == 1.0
        assert stats.batches == 0

    def test_cluster_desc_shape_and_rendering(self):
        elastic = ElasticConfig(lookahead=True, steal=True)
        engine = _engine(placement="lookahead", elastic=elastic)
        _mixed_burst(engine)
        report = engine.run()
        desc = cluster_desc(report)
        assert desc["type"] == "Cluster"
        assert desc["stats"]["batches"] == len(report.placements)
        shard_nodes = desc["sinks"]
        assert [node["name"] for node in shard_nodes] == [
            f"shard{i}" for i in sorted(report.shard_cycles)
        ]
        assert all(
            sink["type"] == "Model"
            for node in shard_nodes
            for sink in node["sinks"]
        )
        text = render_cluster_desc(desc)
        assert "↳" in text
        assert "util=" in text
        assert "makespan_s=" in text

    def test_elastic_section_in_summary(self):
        elastic = ElasticConfig(lookahead=True, steal=True,
                                steal_drift_threshold=1.2)
        faults = FaultPlan(events=(
            ShardSlowdown(shard=0, at=0.0, until=1.0, factor=16.0),
        ))
        engine = _engine(placement="lookahead", elastic=elastic, faults=faults)
        _mixed_burst(engine, n_small=24)
        report = engine.run()
        assert report.has_elastic_activity
        section = report.elastic_section()
        assert "work stealing" in section
        assert "shard" in section
        assert report.steal_count == len(report.steals)
        by_reason = report.steals_by_reason()
        assert sum(by_reason.values()) == report.steal_count
        assert report.elastic_section() in report.summary()


# ---------------------------------------------------------------------------
# Satellite: breaker filtering before cost ranking
# ---------------------------------------------------------------------------
class TestBreakerFilteredBeforeRanking:
    def _views(self, open_state):
        fast = SystolicConfig(pe_rows=8, pe_cols=8, macs_per_pe=16)
        slow = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=2)
        return [
            ShardView(index=0, busy_until=0.0, clock_hz=fast.clock_hz,
                      config=fast, breaker=open_state),
            ShardView(index=1, busy_until=0.0, clock_hz=slow.clock_hz,
                      config=slow, breaker=ShardHealth.CLOSED),
        ]

    def _profile(self):
        return BatchProfile(
            model="m", tenant="t", batch_size=2, sample_shape=(8,),
            ready_time=0.0, estimator=lambda p, c: float(c.pe_rows),
        )

    @pytest.mark.parametrize("policy", [
        CostAwarePlacement(), LeastLoadedPlacement(), LookaheadPlacement(),
    ])
    def test_open_fast_shard_never_wins_on_cost(self, policy):
        """The flapping-shard bug: an open shard with the best estimate
        must be filtered before ranking, not outpriced after."""
        chosen = policy.place(self._profile(), self._views(ShardHealth.OPEN))
        assert chosen == 1

    @pytest.mark.parametrize("policy", [
        CostAwarePlacement(), LeastLoadedPlacement(),
    ])
    def test_half_open_fast_shard_is_priced_pessimistically(self, policy):
        chosen = policy.place(
            self._profile(), self._views(ShardHealth.HALF_OPEN)
        )
        assert chosen == 1

    def test_flapping_fast_shard_does_not_recapture_the_burst(self):
        """Seeded fault plan: the fast shard flaps; with the filter in
        place the rest of the pool still completes the work."""
        faults = FaultPlan.from_seed(
            3, n_shards=4, horizon=5e-4, crash_rate=0.9, slowdown_rate=0.5
        )
        engine = _engine(faults=faults,
                         breaker=BreakerConfig(failure_threshold=1))
        ids = _mixed_burst(engine, n_small=24)
        report = engine.run()
        completed = {r.request.request_id for r in report.completed}
        failed = {r.request.request_id for r in report.failed}
        assert completed | failed == set(ids)
        assert not completed & failed


# ---------------------------------------------------------------------------
# Satellite: deterministic tie-breaking
# ---------------------------------------------------------------------------
class TestDeterministicTieBreaks:
    @pytest.mark.parametrize("policy", [
        CostAwarePlacement(), LeastLoadedPlacement(), LookaheadPlacement(),
    ])
    @pytest.mark.parametrize("order", [(0, 1, 2), (2, 1, 0), (1, 2, 0)])
    def test_equal_cost_breaks_to_lowest_index(self, policy, order):
        config = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
        views = [
            ShardView(index=i, busy_until=0.5, clock_hz=config.clock_hz,
                      config=config)
            for i in order
        ]
        profile = BatchProfile(
            model="m", tenant="t", batch_size=2, sample_shape=(8,),
            ready_time=0.0, estimator=lambda p, c: 100.0,
        )
        assert policy.place(profile, views) == 0

    def test_ties_stable_under_repeated_runs(self):
        homogeneous = (SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4),) * 4
        prints = set()
        for _ in range(3):
            engine = _engine(pool=homogeneous)
            _mixed_burst(engine)
            prints.add(report_fingerprint(engine.run()))
        assert len(prints) == 1


# ---------------------------------------------------------------------------
# Satellite: stale cross-worker calibration
# ---------------------------------------------------------------------------
class TestCrossWorkerCalibrationStaleness:
    CONFIG = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)

    def _profile(self, model="m", batch=2):
        return BatchProfile(model=model, tenant="t", batch_size=batch,
                            sample_shape=(8,), ready_time=0.0)

    def test_version_stamped_snapshot_revalidates(self, tmp_path):
        fabric = FileStore(str(tmp_path))
        worker_a = TieredStore(InProcessLRU(), fabric)
        worker_b = TieredStore(InProcessLRU(), fabric)

        calibrator = CalibratingCostModel()
        calibrator.observe("m", 2, (8,), self.CONFIG, 1000)
        save_calibration(calibrator, worker_a, name="fleet")

        # Worker B loads and caches the v1 snapshot locally.
        stale = load_calibration(worker_b, name="fleet")
        assert stale.estimate(self._profile(), self.CONFIG) == 1000

        # Worker A learns more; its snapshot version advances.
        calibrator.observe("m", 4, (8,), self.CONFIG, 2000)
        assert calibrator.version == 2
        save_calibration(calibrator, worker_a, name="fleet")

        # Without read-through invalidation B would keep serving its
        # locally cached v1 copy forever — the stale-calibration bug.
        fresh = load_calibration(worker_b, name="fleet")
        assert fresh.estimate(self._profile(batch=4), self.CONFIG) == 2000

    def test_unversioned_entries_keep_local_hits(self, tmp_path):
        fabric = FileStore(str(tmp_path))
        tiered = TieredStore(InProcessLRU(), fabric)
        tiered.put("ns", "k", {"v": 1})
        fabric.put("ns", "k", {"v": 2})
        # No version stamp: the local copy stays authoritative (plan
        # caches are immutable by key, revalidating them would be waste).
        assert tiered.get("ns", "k") == {"v": 1}

    def test_versioned_entries_reread_newer_shared(self, tmp_path):
        fabric = FileStore(str(tmp_path))
        tiered = TieredStore(InProcessLRU(), fabric)
        tiered.put("ns", "k", {"v": 1}, version=1)
        fabric.put("ns", "k", {"v": 2}, version=2)
        assert tiered.get("ns", "k") == {"v": 2}
        assert tiered.version_of("ns", "k") == 2
        # Equal-or-older shared versions do not disturb the local copy.
        fabric.put("ns", "k", {"v": 0}, version=2)
        assert tiered.get("ns", "k") == {"v": 2}


# ---------------------------------------------------------------------------
# Multi-worker + autotune wiring
# ---------------------------------------------------------------------------
def _mp_model():
    return TinyBERT(**SMALL_KW, seed=0)


class TestElasticWiring:
    def test_multiproc_carries_elastic_config(self, tmp_path):
        elastic = ElasticConfig(lookahead=True, steal=True)
        rng = np.random.default_rng(7)
        requests = [
            {"model": "bert_small", "inputs": row, "arrival": i * 1e-5}
            for i, row in enumerate(
                rng.integers(0, 16, size=(8, SMALL_KW["seq_len"]))
            )
        ]
        result = serve_multiproc(
            ClusterSpec.heterogeneous(SKEWED_POOL),
            [ModelSpec("bert_small", _mp_model)],
            requests,
            n_workers=1,
            store_root=str(tmp_path),
            placement="lookahead",
            elastic=elastic,
        )
        assert result.merged.n_requests == 8
        assert result.merged.placement_policy == "lookahead"

    def test_merge_remaps_steal_and_scaling_shards(self):
        from dataclasses import replace as dc_replace

        from repro.serving import ScalingEvent, StealEvent
        from repro.serving.multiproc import merge_reports
        from repro.serving.report import ServingReport

        steal = StealEvent(batch_index=0, model="m", tenant="t",
                           from_shard=0, to_shard=1, at=0.0, reason="drift")
        scaling = ScalingEvent(at=0.0, action="grow", shard=1,
                               reason="slo_attainment", slo_attainment=0.5,
                               shed_rate=0.0)
        worker = ServingReport(
            completed=(), shard_cycles={}, wall_seconds=0.0,
            steals=(steal,), scaling_events=(scaling,),
        )
        empty = ServingReport(completed=(), shard_cycles={}, wall_seconds=0.0)
        partitions = [
            ClusterSpec.homogeneous(self_config, 2)
            for self_config in (TestCrossWorkerCalibrationStaleness.CONFIG,) * 2
        ]
        merged = merge_reports([empty, worker], partitions)
        assert merged.steals == (
            dc_replace(steal, from_shard=2, to_shard=3),
        )
        assert merged.scaling_events == (dc_replace(scaling, shard=3),)

    def test_tuning_config_elastic_round_trip(self):
        from repro.autotune.tuning import TuningConfig

        config = TuningConfig(
            pool=(self_config := SystolicConfig(pe_rows=4, pe_cols=4,
                                                macs_per_pe=4),),
            placement="lookahead",
            steal=True,
            steal_drift_threshold=1.25,
        )
        restored = TuningConfig.from_dict(config.to_dict())
        assert restored == config
        elastic = restored.elastic()
        assert elastic.lookahead and elastic.steal
        assert elastic.steal_drift_threshold == 1.25
        assert "lookahead" in restored.describe()
        # Pre-elastic snapshots (no elastic keys) still load.
        legacy = {k: v for k, v in config.to_dict().items()
                  if k in TuningConfig(pool=(self_config,)).to_dict()
                  and not k.startswith(("steal", "autoscale", "affinity"))}
        legacy["placement"] = "cost_aware"
        loaded = TuningConfig.from_dict(legacy)
        assert not loaded.elastic().enabled

    def test_replay_build_engine_passes_elastic(self):
        from repro.autotune.replay import EndpointSpec, build_engine
        from repro.autotune.tuning import TuningConfig

        tuning = TuningConfig(
            pool=SKEWED_POOL, placement="lookahead", steal=True,
        )
        engine = build_engine(
            tuning, [EndpointSpec("bert_small", _mp_model)]
        )
        assert engine.elastic.lookahead
        assert engine.elastic.steal
        assert isinstance(engine._lookahead, LookaheadPlacement)

    def test_tuning_config_rejects_bad_thresholds(self):
        from repro.autotune.tuning import TuningConfig

        with pytest.raises(ValueError):
            TuningConfig(
                pool=(SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4),),
                steal_drift_threshold=0.5,
            )
