"""KV-prefix reuse for the transformer serving path.

Production transformer traffic is dominated by *shared prompts*: many
requests open with the same system/context tokens and differ only in a
short suffix.  On the causal encoder
(:class:`~repro.nn.models.bert.TinyBERT` with ``causal=True``) every
hidden row at every depth is a function of the tokens at or before it,
so the per-layer key/value activations of a shared prompt are identical
across requests — computing them once and reusing them is *lossless*.

This module provides the cache side of that reuse:

* :class:`PrefixEntry` — one cached prompt: the verified prefix tokens
  plus the captured payload (per-layer K/V and final hidden rows, a
  :class:`~repro.nn.executor.KVTap`), all in the fixed-point domain the
  backend dequantized onto, frozen read-only.
* :class:`PrefixCache` — per-shard LRU stores under a *byte budget*:
  entries live on the shard whose array computed them (activations are
  format/design-point faithful, and locality is what placement affinity
  exploits), inserting evicts least-recently-used entries until the
  budget holds, and an entry larger than the whole budget is rejected
  outright.  The invariant ``resident_bytes(shard) <= budget`` holds
  after every operation, which the property suite asserts.
* :class:`TransformerPrefixAdapter` — the endpoint glue: derives the
  request prefix key (content digest of the prompt tokens), runs the
  cold path with K/V capture, runs the hit path via
  :meth:`~repro.nn.models.bert.TinyBERT.infer_suffix`, and prices the
  skipped work with the exact closed form
  :func:`~repro.nn.workload.transformer_prefix_savings`.
* :class:`PrefixEvent` — one batch's hit/miss record in the serving
  report.

Keys are content digests, but correctness never rests on the digest:
a lookup re-verifies the stored prompt tokens against the request's and
treats any mismatch as a miss (counted as a collision), so a hit is
*proof* the cached activations belong to this prompt.

Hits and misses never share a batch: the batcher keys groups on
``(tenant, model, prefix_key)``, so a batch is uniformly one prompt and
the engine resolves it against the cache exactly once — either every
request in it reuses the prefix or none does.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.nn.executor import KVTap
from repro.nn.workload import transformer_prefix_savings
from repro.store import CacheStore, InProcessLRU

#: Shard-agnostic namespace prefix entries use on a shared fabric store.
PREFIX_FABRIC_NAMESPACE = "serving.prefix"


@dataclass(frozen=True)
class PrefixEvent:
    """One prefix-keyed batch execution, as logged in the report.

    ``cycles_saved`` is the closed-form traced-cycle cost of the ops a
    hit skipped (0 for misses and for functional backends without a
    cycle model); the property suite pins it to the measured
    cold-minus-hit trace delta exactly.
    """

    batch_index: int
    model: str
    tenant: str
    shard: int
    batch_size: int
    prefix_key: str
    hit: bool
    cycles_saved: int = 0


@dataclass(frozen=True)
class PrefixEntry:
    """One cached prompt resident on a shard."""

    tenant: str
    model: str
    prefix_key: str
    prefix_tokens: np.ndarray
    payload: KVTap

    def __post_init__(self) -> None:
        # Freeze a private copy, never the caller's array in place.
        tokens = np.array(self.prefix_tokens, dtype=np.int64, copy=True)
        tokens.setflags(write=False)
        object.__setattr__(self, "prefix_tokens", tokens)

    @property
    def nbytes(self) -> int:
        """Bytes this entry charges against its shard's budget."""
        return self.prefix_tokens.nbytes + self.payload.nbytes

    def matches(self, prefix_tokens: np.ndarray) -> bool:
        """True when the stored prompt is exactly ``prefix_tokens``."""
        return (
            self.prefix_tokens.shape == prefix_tokens.shape
            and np.array_equal(self.prefix_tokens, prefix_tokens)
        )


class PrefixCache:
    """Per-shard LRU of cached prompts under a byte budget.

    Parameters
    ----------
    shard_budget_bytes:
        Eviction budget *per shard*.  Resident bytes on a shard never
        exceed it: inserting evicts least-recently-used entries first,
        and an entry that alone exceeds the budget is rejected (counted
        in :attr:`rejections`), never resident.

    Entries are keyed ``(tenant, prefix of one model's prompt)`` — a
    tenant never hits another tenant's cache, so prompt reuse cannot
    leak activations across tenants.

    Storage routes through a :class:`~repro.store.CacheStore`: one
    byte-budgeted namespace per shard (``serving.prefix.shard<N>``) on
    a private :class:`~repro.store.InProcessLRU` by default, preserving
    the historical per-shard LRU semantics bit for bit.  Passing
    ``fabric`` (typically a shared
    :class:`~repro.store.FileStore`) adds a second, shard-agnostic
    tier under :data:`PREFIX_FABRIC_NAMESPACE`: local misses fall
    through to the fabric (the payload is verified against the request
    tokens and promoted onto the local shard), and local inserts write
    through — so a prompt computed by one worker process serves every
    other worker's first request for it.
    """

    def __init__(
        self,
        shard_budget_bytes: int = 32 << 20,
        store: Optional[CacheStore] = None,
        fabric: Optional[CacheStore] = None,
    ):
        if shard_budget_bytes < 1:
            raise ValueError(
                f"shard_budget_bytes must be >= 1, got {shard_budget_bytes}"
            )
        self.shard_budget_bytes = int(shard_budget_bytes)
        self._store = store if store is not None else InProcessLRU()
        self._fabric = fabric
        self._shards_seen: Set[int] = set()
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.rejections = 0
        self.collisions = 0
        self.migrations = 0
        self.fabric_hits = 0
        self.fabric_misses = 0

    @staticmethod
    def _key(tenant: str, model: str, prefix_key: str) -> tuple:
        return (tenant, model, prefix_key)

    def _namespace(self, shard: int) -> str:
        namespace = f"serving.prefix.shard{shard}"
        if shard not in self._shards_seen:
            self._store.set_limit(namespace, max_bytes=self.shard_budget_bytes)
            self._shards_seen.add(shard)
        return namespace

    @staticmethod
    def _refreeze(entry: "PrefixEntry") -> "PrefixEntry":
        """Re-apply read-only flags after deserialization.

        Serialization (fabric round trips) does not preserve numpy's
        ``writeable=False`` flag; re-freezing keeps the shared-payload
        immutability contract for promoted entries.
        """
        entry.prefix_tokens.setflags(write=False)
        for layer in entry.payload.layers:
            layer.k.setflags(write=False)
            layer.v.setflags(write=False)
        if entry.payload.final_hidden is not None:
            entry.payload.final_hidden.setflags(write=False)
        return entry

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def lookup(
        self,
        shard: int,
        tenant: str,
        model: str,
        prefix_key: str,
        prefix_tokens: np.ndarray,
    ) -> Optional[PrefixEntry]:
        """The resident entry for this prompt on ``shard``, or None.

        A hit refreshes the entry's LRU position.  A digest match whose
        stored tokens differ from ``prefix_tokens`` (a collision) is
        treated as a miss — reuse is only ever granted against verified
        token equality (the lookup *peeks* first, so a collision never
        refreshes the colliding entry's recency).  When a fabric tier
        is attached, a local miss consults it; a verified fabric hit
        is promoted onto this shard and served as a hit.
        """
        key = self._key(tenant, model, prefix_key)
        namespace = self._namespace(shard)
        tokens = np.asarray(prefix_tokens)
        entry = self._store.get(namespace, key, touch=False)
        if entry is not None and not entry.matches(tokens):
            self.collisions += 1
            entry = None
        if entry is not None:
            self._store.touch(namespace, key)
            self.hits += 1
            return entry
        if self._fabric is not None:
            fabric_entry = self._fabric.get(PREFIX_FABRIC_NAMESPACE, key)
            if fabric_entry is not None and fabric_entry.matches(tokens):
                fabric_entry = self._refreeze(fabric_entry)
                evictions_before = self._store.stats(namespace)["evictions"]
                self._store.put(
                    namespace, key, fabric_entry, nbytes=fabric_entry.nbytes
                )
                self.evictions += (
                    self._store.stats(namespace)["evictions"] - evictions_before
                )
                self.fabric_hits += 1
                self.hits += 1
                return fabric_entry
            self.fabric_misses += 1
        self.misses += 1
        return None

    def resident_shards(
        self, tenant: str, model: str, prefix_key: str
    ) -> Tuple[int, ...]:
        """Shards currently holding this prompt (placement affinity).

        A pure read: LRU order and hit/miss counters are untouched.
        Fabric-only residency does not count — affinity is about which
        shard's memory holds the payload.
        """
        key = self._key(tenant, model, prefix_key)
        return tuple(
            shard
            for shard in sorted(self._shards_seen)
            if self._store.contains(self._namespace(shard), key)
        )

    def resident_bytes(self, shard: int) -> int:
        """Bytes of cached prompts resident on ``shard`` (<= budget)."""
        if shard not in self._shards_seen:
            return 0
        return self._store.stats(self._namespace(shard))["bytes"]

    def entries(self, shard: int) -> List[PrefixEntry]:
        """Entries on ``shard`` in LRU → MRU order."""
        if shard not in self._shards_seen:
            return []
        return list(self._store.values(self._namespace(shard)))

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def insert(self, shard: int, entry: PrefixEntry) -> bool:
        """Make ``entry`` resident on ``shard``; returns False if rejected.

        Evicts least-recently-used entries until the budget holds.  An
        entry bigger than the whole budget can never fit and is
        rejected.  Re-inserting an existing key replaces the old entry
        (its bytes are released first).
        """
        size = entry.nbytes
        if size > self.shard_budget_bytes:
            self.rejections += 1
            return False
        namespace = self._namespace(shard)
        key = self._key(entry.tenant, entry.model, entry.prefix_key)
        evictions_before = self._store.stats(namespace)["evictions"]
        self._store.put(namespace, key, entry, nbytes=size)
        self.evictions += self._store.stats(namespace)["evictions"] - evictions_before
        self.insertions += 1
        if self._fabric is not None:
            self._fabric.put(PREFIX_FABRIC_NAMESPACE, key, entry, nbytes=size)
        return True

    def migrate(
        self,
        from_shard: int,
        to_shard: int,
        tenant: str,
        model: str,
        prefix_key: str,
    ) -> bool:
        """Move one resident entry between shards through the store.

        Work-stealing calls this when load breaks placement affinity:
        migrating the payload with the stolen batch preserves the hit
        on the destination shard instead of forcing a cold recompute.
        The source entry is released only after the destination
        accepted it (an entry is never lost to a failed move), and a
        fabric tier, when attached, is written through so other
        workers keep seeing the payload.  Returns False when nothing
        is resident on ``from_shard`` under this key, the shards are
        equal, or the entry alone exceeds the destination budget.
        """
        if from_shard == to_shard:
            return False
        key = self._key(tenant, model, prefix_key)
        source = self._namespace(from_shard)
        entry = self._store.get(source, key, touch=False)
        if entry is None:
            return False
        size = entry.nbytes
        if size > self.shard_budget_bytes:
            self.rejections += 1
            return False
        destination = self._namespace(to_shard)
        evictions_before = self._store.stats(destination)["evictions"]
        self._store.put(destination, key, entry, nbytes=size)
        self.evictions += (
            self._store.stats(destination)["evictions"] - evictions_before
        )
        self._store.delete(source, key)
        self.migrations += 1
        if self._fabric is not None:
            self._fabric.put(PREFIX_FABRIC_NAMESPACE, key, entry, nbytes=size)
        return True

    def clear(self) -> None:
        """Drop every entry on every shard (counters are kept).

        The fabric tier, when attached, is deliberately left alone: it
        is shared state owned by the worker pool, not this cache.
        """
        for shard in self._shards_seen:
            self._store.clear(self._namespace(shard))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def namespace_stats(self) -> Dict[str, Dict[str, int]]:
        """Store-schema stats of every shard namespace (for reports)."""
        return {
            self._namespace(shard): self._store.stats(self._namespace(shard))
            for shard in sorted(self._shards_seen)
        }

    def stats(self) -> Dict[str, object]:
        """Counter snapshot plus per-shard residency."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "rejections": self.rejections,
            "collisions": self.collisions,
            "migrations": self.migrations,
            "fabric_hits": self.fabric_hits,
            "fabric_misses": self.fabric_misses,
            "shard_budget_bytes": self.shard_budget_bytes,
            "resident_bytes": {
                shard: self.resident_bytes(shard)
                for shard in sorted(self._shards_seen)
            },
            "resident_entries": {
                shard: self._store.stats(self._namespace(shard))["entries"]
                for shard in sorted(self._shards_seen)
            },
        }


class TransformerPrefixAdapter:
    """Endpoint glue between the engine, a causal encoder and the cache.

    Parameters
    ----------
    model:
        A causal :class:`~repro.nn.models.bert.TinyBERT`-shaped model:
        ``causal=True``, with ``seq_len``/``dim``/``heads``/``ff_dim``/
        ``n_layers`` attributes, ``infer(tokens, backend, kv_tap=...)``
        and ``infer_suffix(tokens, payload, backend)``.
    prefix_len:
        Number of leading tokens that form the shared prompt; requests
        are keyed (and cached) on exactly these.  Must leave at least
        one suffix token.

    Register it together with a cache-equipped engine::

        engine = InferenceEngine(pool, prefix_cache=PrefixCache())
        engine.register("bert", model,
                        prefix_adapter=TransformerPrefixAdapter(model, 12))
    """

    def __init__(self, model, prefix_len: int):
        if not getattr(model, "causal", False):
            raise ValueError(
                "prefix reuse requires a causal model (causal=True); "
                "bidirectional attention lets suffix tokens influence "
                "prefix activations, so cached prefixes would be stale"
            )
        if not 0 < prefix_len < model.seq_len:
            raise ValueError(
                f"prefix_len must be in (0, {model.seq_len}), got {prefix_len}"
            )
        self.model = model
        self.prefix_len = int(prefix_len)
        self._savings: Dict[object, int] = {}

    # -- keying ---------------------------------------------------------
    def prefix_tokens(self, inputs: np.ndarray) -> np.ndarray:
        """The canonical prompt tokens of one request sample."""
        tokens = np.asarray(inputs)
        if tokens.ndim != 1 or tokens.shape[0] != self.model.seq_len:
            raise ValueError(
                f"expected a ({self.model.seq_len},) token row, "
                f"got shape {tokens.shape}"
            )
        # An owning copy, never a view: the cache stores these tokens
        # for hit verification, and aliasing a caller-reused input
        # buffer would let later writes corrupt the stored prompt.
        return np.array(tokens[: self.prefix_len], dtype=np.int64, copy=True)

    def request_key(self, inputs: np.ndarray) -> str:
        """Content digest of the request's prompt (the cache/batch key).

        Digest equality alone never grants reuse — the cache re-verifies
        token equality on lookup — but it keys batch assembly, so
        same-prompt requests group together and mixed batches cannot
        form.
        """
        prefix = self.prefix_tokens(inputs)
        digest = hashlib.sha256(prefix.tobytes()).hexdigest()[:32]
        return f"p{self.prefix_len}-{digest}"

    # -- execution ------------------------------------------------------
    def infer_cold(self, stacked: np.ndarray, backend) -> "tuple[np.ndarray, KVTap]":
        """Full inference of a miss batch, capturing the prefix payload."""
        tap = KVTap(self.prefix_len)
        outputs = np.asarray(self.model.infer(stacked, backend, kv_tap=tap))
        return outputs, tap

    def infer_hit(self, stacked: np.ndarray, payload: KVTap, backend) -> np.ndarray:
        """Suffix-only inference of a hit batch (bit-identical to cold)."""
        return np.asarray(self.model.infer_suffix(stacked, payload, backend))

    # -- accounting -----------------------------------------------------
    def saved_cycles(self, batch_size: int, config) -> int:
        """Exact traced cycles a hit of ``batch_size`` skips on ``config``."""
        key = (batch_size, config)
        if key not in self._savings:
            self._savings[key] = transformer_prefix_savings(
                batch_size,
                self.model.seq_len,
                self.prefix_len,
                self.model.dim,
                self.model.heads,
                self.model.ff_dim,
                self.model.n_layers,
                config,
            )
        return self._savings[key]


class _RadixNode:
    """One node of a path-compressed token trie."""

    __slots__ = ("edges", "terminal")

    def __init__(self):
        # first token of the edge label -> (label tuple, child node)
        self.edges: Dict[int, Tuple[Tuple[int, ...], "_RadixNode"]] = {}
        self.terminal = False


class RadixPrefixIndex:
    """Path-compressed trie over token sequences (longest-prefix match).

    The index holds only *which* sequences are cached — payloads live
    in a byte-budgeted :class:`~repro.store.CacheStore` keyed by the
    exact token tuple, so a digest collision cannot confuse entries.
    ``longest_match`` walks the query once (O(|query|)) and returns the
    length of the longest *terminal* prefix, which is how conversational
    traffic finds the deepest cached slice of its growing history.
    """

    def __init__(self):
        self._root = _RadixNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, tokens) -> bool:
        seq = tuple(tokens)
        return self.longest_match(seq) == len(seq) and len(seq) > 0

    def insert(self, tokens) -> bool:
        """Mark ``tokens`` cached; returns False if already present."""
        seq = tuple(int(t) for t in tokens)
        if not seq:
            raise ValueError("cannot index an empty token sequence")
        node, i = self._root, 0
        n = len(seq)
        while i < n:
            edge = node.edges.get(seq[i])
            if edge is None:
                child = _RadixNode()
                child.terminal = True
                node.edges[seq[i]] = (seq[i:], child)
                self._size += 1
                return True
            label, child = edge
            common = 0
            limit = min(len(label), n - i)
            while common < limit and label[common] == seq[i + common]:
                common += 1
            if common == len(label):
                node, i = child, i + common
                continue
            # Split the edge at the divergence (or containment) point.
            mid = _RadixNode()
            node.edges[seq[i]] = (label[:common], mid)
            mid.edges[label[common]] = (label[common:], child)
            if i + common == n:
                mid.terminal = True
            else:
                leaf = _RadixNode()
                leaf.terminal = True
                mid.edges[seq[i + common]] = (seq[i + common :], leaf)
            self._size += 1
            return True
        if node.terminal:
            return False
        node.terminal = True
        self._size += 1
        return True

    def longest_match(self, tokens) -> int:
        """Length of the longest indexed prefix of ``tokens`` (0 = none)."""
        seq = tuple(tokens)
        node, i, best = self._root, 0, 0
        n = len(seq)
        while i < n:
            edge = node.edges.get(seq[i])
            if edge is None:
                break
            label, child = edge
            if len(label) > n - i or label != seq[i : i + len(label)]:
                break
            i += len(label)
            node = child
            if node.terminal:
                best = i
        return best

    def remove(self, tokens) -> bool:
        """Unmark ``tokens``; prunes empty branches.  False if absent."""
        seq = tuple(int(t) for t in tokens)
        path = []  # (parent, first_token_of_edge)
        node, i = self._root, 0
        n = len(seq)
        while i < n:
            edge = node.edges.get(seq[i])
            if edge is None:
                return False
            label, child = edge
            if label != seq[i : i + len(label)]:
                return False
            path.append((node, seq[i]))
            node, i = child, i + len(label)
        if i != n or not node.terminal:
            return False
        node.terminal = False
        self._size -= 1
        # Prune now-useless leaves back up the walked path.
        for parent, first in reversed(path):
            label, child = parent.edges[first]
            if child.terminal or child.edges:
                break
            del parent.edges[first]
        return True


class RadixKVCache:
    """Tenant-scoped, byte-budgeted radix cache of decode K/V history.

    The generation analogue of :class:`PrefixCache`: payloads are
    :class:`~repro.nn.executor.KVTap` captures of a sequence's prompt
    (and, as it generates, its growing history), resident per shard on
    the :class:`~repro.store.CacheStore` fabric under
    ``serving.radix.shard<N>`` namespaces.  A per-``(shard, tenant,
    model)`` :class:`RadixPrefixIndex` finds the longest cached prefix
    of an incoming prompt, so a conversational follow-up that replays
    its whole transcript prefills only the new turn.

    Store keys are the *exact token tuples*, so lookups need no
    digest-collision verification; when the budgeted store evicts a
    payload underneath the index, the lookup heals the stale index
    entry and retries the next-longest match.
    """

    def __init__(
        self,
        shard_budget_bytes: int = 32 << 20,
        store: Optional[CacheStore] = None,
    ):
        if shard_budget_bytes < 1:
            raise ValueError(
                f"shard_budget_bytes must be >= 1, got {shard_budget_bytes}"
            )
        self.shard_budget_bytes = int(shard_budget_bytes)
        self._store = store if store is not None else InProcessLRU()
        self._shards_seen: Set[int] = set()
        self._trees: Dict[Tuple[int, str, str], RadixPrefixIndex] = {}
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.rejections = 0

    @staticmethod
    def _seq(tokens) -> Tuple[int, ...]:
        return tuple(int(t) for t in np.asarray(tokens).reshape(-1))

    @staticmethod
    def _key(tenant: str, model: str, seq: Tuple[int, ...]) -> tuple:
        return (tenant, model, seq)

    def _namespace(self, shard: int) -> str:
        namespace = f"serving.radix.shard{shard}"
        if shard not in self._shards_seen:
            self._store.set_limit(namespace, max_bytes=self.shard_budget_bytes)
            self._shards_seen.add(shard)
        return namespace

    # -- read side -------------------------------------------------------
    def lookup(
        self,
        shard: int,
        tenant: str,
        model: str,
        tokens,
        max_len: Optional[int] = None,
    ) -> Tuple[int, Optional[KVTap]]:
        """Longest cached prefix of ``tokens`` on ``shard``.

        Returns ``(cached_len, payload)`` or ``(0, None)``.  ``max_len``
        caps the usable prefix (a prefill must keep at least one
        un-cached row to produce logits).  A hit refreshes the payload's
        LRU recency; an index entry whose payload the store already
        evicted is removed and the next-longest match is tried.
        """
        tree = self._trees.get((shard, tenant, model))
        if tree is None:
            self.misses += 1
            return 0, None
        seq = self._seq(tokens)
        limit = len(seq) if max_len is None else min(int(max_len), len(seq))
        namespace = self._namespace(shard)
        query = seq[:limit]
        while True:
            match = tree.longest_match(query)
            if match == 0:
                self.misses += 1
                return 0, None
            payload = self._store.get(namespace, self._key(tenant, model, seq[:match]))
            if payload is not None:
                self.hits += 1
                return match, payload
            # Store evicted the payload under the index: heal and retry.
            tree.remove(seq[:match])
            query = seq[:match]

    def resident_shards(self, tenant: str, model: str, tokens) -> Tuple[int, ...]:
        """Shards holding *any* cached prefix of ``tokens`` (affinity).

        A pure read on the index: payload LRU order and hit/miss
        counters are untouched (a stale index entry may count until the
        next lookup heals it — affinity is a hint, not a contract).
        """
        seq = self._seq(tokens)
        return tuple(
            shard
            for shard in sorted(self._shards_seen)
            if (tree := self._trees.get((shard, tenant, model))) is not None
            and tree.longest_match(seq) > 0
        )

    def resident_bytes(self, shard: int) -> int:
        """Bytes of cached history resident on ``shard`` (<= budget)."""
        if shard not in self._shards_seen:
            return 0
        return self._store.stats(self._namespace(shard))["bytes"]

    # -- write side ------------------------------------------------------
    def insert(self, shard: int, tenant: str, model: str, tokens, payload: KVTap) -> bool:
        """Cache ``payload`` as the K/V rows of ``tokens`` on ``shard``.

        The payload must cover exactly ``len(tokens)`` positions.
        Evicts least-recently-used payloads until the byte budget
        holds; a payload alone exceeding the budget is rejected.
        """
        seq = self._seq(tokens)
        if payload.prefix_len != len(seq):
            raise ValueError(
                f"payload covers {payload.prefix_len} positions, "
                f"tokens have {len(seq)}"
            )
        size = payload.nbytes + 8 * len(seq)
        if size > self.shard_budget_bytes:
            self.rejections += 1
            return False
        namespace = self._namespace(shard)
        evictions_before = self._store.stats(namespace)["evictions"]
        self._store.put(namespace, self._key(tenant, model, seq), payload, nbytes=size)
        self.evictions += self._store.stats(namespace)["evictions"] - evictions_before
        tree = self._trees.setdefault(
            (shard, tenant, model), RadixPrefixIndex()
        )
        tree.insert(seq)
        self.insertions += 1
        return True

    def clear(self) -> None:
        """Drop every payload and index on every shard (counters kept)."""
        for shard in self._shards_seen:
            self._store.clear(self._namespace(shard))
        self._trees.clear()

    # -- introspection ---------------------------------------------------
    def namespace_stats(self) -> Dict[str, Dict[str, int]]:
        """Store-schema stats of every shard namespace (for reports)."""
        return {
            self._namespace(shard): self._store.stats(self._namespace(shard))
            for shard in sorted(self._shards_seen)
        }

    def stats(self) -> Dict[str, object]:
        """Counter snapshot plus per-shard residency."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "rejections": self.rejections,
            "shard_budget_bytes": self.shard_budget_bytes,
            "resident_bytes": {
                shard: self.resident_bytes(shard)
                for shard in sorted(self._shards_seen)
            },
            "resident_entries": {
                shard: self._store.stats(self._namespace(shard))["entries"]
                for shard in sorted(self._shards_seen)
            },
        }
