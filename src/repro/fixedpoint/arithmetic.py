"""Saturating fixed-point arithmetic primitives.

These model the datapath operations available inside a ONE-SA processing
element: INT16 multiply into a wide product, accumulation in the
multi-layer accumulator (int64 model), and saturating writeback.  All
functions operate on *raw* integer arrays (see :mod:`repro.fixedpoint`).
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.qformat import QFormat


def saturate(raw: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Clamp raw integers to the representable range of ``fmt``."""
    clipped = np.clip(np.asarray(raw, dtype=np.int64), fmt.raw_min, fmt.raw_max)
    return clipped.astype(fmt.storage_dtype())


def fixed_add(a: np.ndarray, b: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Saturating addition of two raw tensors in the same format."""
    total = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
    return saturate(total, fmt)


def fixed_mul(a: np.ndarray, b: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Saturating multiply of two raw tensors in the same format.

    The exact product carries ``2 * frac_bits`` fractional bits; the
    result is rounded back to ``frac_bits`` and saturated, matching a
    single-MAC multiply with immediate writeback.
    """
    product = np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
    half = np.int64(1) << (fmt.frac_bits - 1) if fmt.frac_bits > 0 else np.int64(0)
    rounded = (product + half) >> fmt.frac_bits
    return saturate(rounded, fmt)


def fixed_mac(
    acc: np.ndarray, a: np.ndarray, b: np.ndarray, fmt: QFormat
) -> np.ndarray:
    """One multiply-accumulate step: ``acc + a * b``.

    ``acc`` is held in the wide accumulator format (product-aligned,
    ``2 * frac_bits`` fractional bits, int64 storage).  No intermediate
    saturation is applied — the hardware accumulator carries guard bits —
    so only the final writeback (via :func:`accumulator_to_output`)
    saturates.
    """
    product = np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
    return np.asarray(acc, dtype=np.int64) + product


def accumulator_to_output(acc: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Round and saturate a product-aligned accumulator back to ``fmt``.

    Models the writeback from the multi-layer accumulator to the PE
    output buffer (Fig. 7a).
    """
    acc = np.asarray(acc, dtype=np.int64)
    half = np.int64(1) << (fmt.frac_bits - 1) if fmt.frac_bits > 0 else np.int64(0)
    # In-place shift/clip on the freshly allocated sum keeps this
    # writeback to a minimum of passes — it runs once per GEMM output
    # element and sits on the serving hot path.
    rounded = acc + half
    rounded >>= fmt.frac_bits
    np.clip(rounded, fmt.raw_min, fmt.raw_max, out=rounded)
    return rounded.astype(fmt.storage_dtype())


def fixed_matmul(a: np.ndarray, b: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Bit-accurate fixed-point matrix multiply ``a @ b``.

    This is the vectorised reference for what the systolic array computes
    in GEMM mode: every output element is a dot product accumulated in
    the wide accumulator and saturated once on writeback.  Inputs are raw
    integers in ``fmt``; the output is raw integers in ``fmt``.

    Operands may carry leading batch axes: ``(..., M, K) @ (..., K, N)``
    is computed as a stack of independent 2-D GEMMs with numpy's matmul
    broadcasting over the leading axes.  Because every output element is
    still one dot product with a single saturating writeback, the stacked
    result is bit-identical to looping :func:`fixed_matmul` over the
    matrix pairs — the property the serving engine relies on to pack
    concurrent requests into shared GEMM tiles.

    Raw operands may arrive either in the storage integer dtype or as
    float64 holding exact raw integers (``quantize(..., dtype=
    np.float64)``); the float64 form feeds the BLAS path without a
    conversion pass, which the GEMM-heavy backends exploit.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim < 2 or b.ndim < 2:
        raise ValueError(
            f"fixed_matmul expects >=2-D inputs, got {a.ndim}-D and {b.ndim}-D"
        )
    if a.shape[-1] != b.shape[-2]:
        raise ValueError(f"shape mismatch for matmul: {a.shape} @ {b.shape}")
    # Accumulator bound for operands in fmt: every partial sum is an
    # integer of magnitude <= K * (2**(total_bits-1))**2.  While that
    # stays below 2**53, float64 represents every intermediate exactly,
    # so the GEMM can run on the (much faster) BLAS float path and
    # convert back losslessly.  Wider formats fall back to int64 matmul.
    acc_bound = a.shape[-1] * (1 << (fmt.total_bits - 1)) ** 2
    if acc_bound <= 1 << 53:
        a_f = a if a.dtype == np.float64 else a.astype(np.float64)
        b_f = b if b.dtype == np.float64 else b.astype(np.float64)
        acc = (a_f @ b_f).astype(np.int64)
    else:
        acc = np.asarray(a, dtype=np.int64) @ np.asarray(b, dtype=np.int64)
    return accumulator_to_output(acc, fmt)


def fixed_hadamard_mac(
    x: np.ndarray, k: np.ndarray, b: np.ndarray, fmt: QFormat
) -> np.ndarray:
    """Bit-accurate fixed-point ``x * k + b`` (the MHP computation).

    Mirrors the rearranged two-term dot product each computation PE
    executes: ``y = k*x + b*1`` with both products accumulated in the wide
    accumulator before a single rounding/saturating writeback (Fig. 6).
    """
    x = np.asarray(x, dtype=np.int64)
    k = np.asarray(k, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    one = np.int64(1) << fmt.frac_bits
    acc = x * k + b * one
    return accumulator_to_output(acc, fmt)
