"""Optimizers and training loops for the small models.

The accuracy experiment needs each stand-in network trained once to a
reasonable baseline; Adam plus a few hundred mini-batches suffices at
these scales.  Everything is deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.nn.autograd import Tensor, cross_entropy
from repro.nn.layers import Module


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: List[Tensor], lr: float = 0.1, momentum: float = 0.9):
        self.params = params
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v -= self.lr * p.grad
            p.data += v
            p.mark_dirty()  # invalidate cached quantized forms

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam optimizer (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params: List[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        self.params = params
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in params]
        self._v = [np.zeros_like(p.data) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1 - self.beta1) * p.grad
            v *= self.beta2
            v += (1 - self.beta2) * p.grad**2
            m_hat = m / (1 - self.beta1**self._t)
            v_hat = v / (1 - self.beta2**self._t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            p.mark_dirty()  # invalidate cached quantized forms

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


@dataclass
class TrainLog:
    """Per-epoch loss/accuracy history."""

    losses: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)


def iterate_minibatches(
    n_samples: int, batch_size: int, rng: np.random.Generator
):
    """Yield shuffled index batches covering all samples once."""
    order = rng.permutation(n_samples)
    for start in range(0, n_samples, batch_size):
        yield order[start : start + batch_size]


def train_classifier(
    model: Module,
    inputs: np.ndarray,
    labels: np.ndarray,
    epochs: int = 10,
    batch_size: int = 32,
    lr: float = 1e-2,
    seed: int = 0,
    forward: Optional[Callable] = None,
) -> TrainLog:
    """Train a classifier with Adam + cross-entropy.

    ``forward`` customises how a batch is pushed through the model
    (default ``model.forward(Tensor(batch))``); the GCN's full-graph
    training passes its own closure.
    """
    rng = np.random.default_rng(seed)
    optimizer = Adam(model.parameters(), lr=lr)
    log = TrainLog()
    forward = forward or (lambda batch: model.forward(Tensor(batch)))
    model.train()
    for _ in range(epochs):
        epoch_loss = 0.0
        correct = 0
        for idx in iterate_minibatches(len(labels), batch_size, rng):
            optimizer.zero_grad()
            logits = forward(inputs[idx])
            loss = cross_entropy(logits, labels[idx])
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item() * len(idx)
            correct += int((logits.data.argmax(axis=-1) == labels[idx]).sum())
        log.losses.append(epoch_loss / len(labels))
        log.accuracies.append(correct / len(labels))
    model.eval()
    return log


def train_gcn(
    model,
    features: np.ndarray,
    a_hat: np.ndarray,
    labels: np.ndarray,
    train_mask: np.ndarray,
    epochs: int = 150,
    lr: float = 1e-2,
) -> TrainLog:
    """Full-batch GCN training on masked nodes (the standard recipe)."""
    optimizer = Adam(model.parameters(), lr=lr)
    log = TrainLog()
    model.train()
    train_idx = np.flatnonzero(train_mask)
    for _ in range(epochs):
        optimizer.zero_grad()
        logits = model.forward(features, a_hat)
        loss = cross_entropy(logits[train_idx], labels[train_idx])
        loss.backward()
        optimizer.step()
        log.losses.append(loss.item())
        log.accuracies.append(
            float((logits.data[train_idx].argmax(axis=-1) == labels[train_idx]).mean())
        )
    model.eval()
    return log


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct hard predictions."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"prediction/label shape mismatch: {predictions.shape} vs {labels.shape}"
        )
    return float((predictions == labels).mean())
