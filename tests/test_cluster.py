"""Cluster placement API tests: policies, cost models, admission control.

The load-bearing contracts:

* the default ``round_robin`` placement reproduces the PR 3 acquire-time
  batch→shard mapping *exactly* (randomized regression);
* ``cost_aware`` placement is deterministic under a fixed request
  stream, and on a skewed heterogeneous pool it finishes the same work
  in less simulated time than round-robin;
* heterogeneous grids/clocks never change results — only timing;
* admission control sheds over-cap and deadline-doomed requests at
  admit time and accounts for them in the report;
* the quantized-weight cache is bit-identical and staleness-safe
  under optimizer steps / explicit dirty marks.
"""

import numpy as np
import pytest

from repro.nn.autograd import Tensor, bump_data_version, data_version
from repro.nn.executor import ArrayBackend, CPWLBackend, FloatBackend
from repro.nn.models import TinyBERT
from repro.nn.training import SGD
from repro.nn.workload import Workload
from repro.serving import (
    BatchProfile,
    CalibratingCostModel,
    ClusterDispatcher,
    ClusterSpec,
    CostAwarePlacement,
    InferenceEngine,
    LeastLoadedPlacement,
    RoundRobinPlacement,
    ShardSpec,
    ShardView,
    make_placement_policy,
    workload_cost_model,
)
from repro.systolic import SystolicArray, SystolicConfig

RNG = np.random.default_rng(11)

SMALL = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
BIG = SystolicConfig(pe_rows=8, pe_cols=8, macs_per_pe=16)
SLOW = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4, clock_hz=50e6)


def tiny_bert():
    return TinyBERT(vocab=16, seq_len=8, dim=8, heads=2, ff_dim=16, n_layers=1)


def profile(model="m", batch=2, shape=(8,), ready=0.0, estimator=None):
    return BatchProfile(
        model=model,
        tenant="default",
        batch_size=batch,
        sample_shape=shape,
        ready_time=ready,
        estimator=estimator,
    )


def view(index, busy=0.0, config=None):
    return ShardView(
        index=index,
        busy_until=busy,
        clock_hz=None if config is None else config.clock_hz,
        config=config,
    )


class TestClusterSpec:
    def test_homogeneous_builds_identical_shards(self):
        spec = ClusterSpec.homogeneous(SMALL, 3, granularity=0.25)
        pool = spec.build()
        assert pool.n_shards == 3
        assert all(pool.config_of(s) == SMALL for s in range(3))
        assert pool.specs == spec.shards

    def test_heterogeneous_design_points(self):
        spec = ClusterSpec.heterogeneous([BIG, SMALL, SLOW])
        pool = spec.build()
        assert [pool.config_of(s) for s in range(3)] == [BIG, SMALL, SLOW]
        assert pool.clock_hz(2) == 50e6
        assert "50 MHz" in spec.describe()
        assert "50 MHz" in pool.describe()

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(())

    def test_bad_granularity_rejected(self):
        with pytest.raises(ValueError):
            ShardSpec(SMALL, granularity=0.0)

    def test_spec_backend_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ClusterDispatcher([FloatBackend()], specs=ClusterSpec.homogeneous(SMALL, 2).shards)

    def test_sharded_dispatcher_is_deprecated_but_working(self):
        # The PR 1 name survives as a true alias of the cluster API,
        # but constructing it now warns.
        from repro.serving import ShardedDispatcher

        with pytest.warns(DeprecationWarning, match="ShardedDispatcher"):
            pool = ShardedDispatcher([FloatBackend(), FloatBackend()])
        assert isinstance(pool, ClusterDispatcher)
        assert [pool.acquire()[0] for _ in range(4)] == [0, 1, 0, 1]
        assert len(pool.shard_views()) == 2

    def test_sharded_dispatcher_from_arrays_warns(self):
        from repro.serving import ShardedDispatcher

        cfg = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
        with pytest.warns(DeprecationWarning, match="ShardedDispatcher"):
            pool = ShardedDispatcher.from_arrays([SystolicArray(cfg)], 0.25)
        assert pool.n_shards == 1


class TestPolicies:
    def test_make_placement_policy_names(self):
        assert isinstance(make_placement_policy("rr"), RoundRobinPlacement)
        assert isinstance(make_placement_policy("round_robin"), RoundRobinPlacement)
        assert isinstance(make_placement_policy("least_loaded"), LeastLoadedPlacement)
        assert isinstance(make_placement_policy("cost_aware"), CostAwarePlacement)
        custom = CostAwarePlacement()
        assert make_placement_policy(custom) is custom
        with pytest.raises(ValueError):
            make_placement_policy("random")

    def test_round_robin_cycles_and_resets(self):
        policy = RoundRobinPlacement()
        shards = [view(0), view(1), view(2)]
        assert [policy.place(profile(), shards) for _ in range(5)] == [0, 1, 2, 0, 1]
        policy.reset()
        assert policy.place(profile(), shards) == 0

    def test_least_loaded_picks_smallest_backlog(self):
        policy = LeastLoadedPlacement()
        shards = [view(0, busy=3.0, config=SMALL), view(1, busy=1.0, config=SMALL)]
        assert policy.place(profile(ready=0.0), shards) == 1
        # Backlog is measured at the batch's ready time: by t=3 both
        # are free and the tie breaks to the lowest index.
        assert policy.place(profile(ready=3.0), shards) == 0

    def test_least_loaded_occupancy_in_own_cycles(self):
        # Same one-second backlog, but shard 1's clock makes that fewer
        # of *its* cycles: the faster shard's backlog weighs more.
        policy = LeastLoadedPlacement()
        shards = [view(0, busy=1.0, config=SMALL), view(1, busy=1.0, config=SLOW)]
        assert policy.place(profile(ready=0.0), shards) == 1

    def test_cost_aware_prefers_earliest_finish(self):
        # Free slow shard vs busy fast shard: with the closed-form
        # estimate the fast shard still finishes first.
        def estimator(prof, config):
            return config.estimate_gemm_cycles(64, 64, 64)

        policy = CostAwarePlacement()
        slow_free = view(0, busy=0.0, config=SLOW)
        big_busy = view(1, busy=1e-5, config=BIG)
        chosen = policy.place(profile(estimator=estimator), [slow_free, big_busy])
        slow_eta = SLOW.estimate_gemm_seconds(64, 64, 64)
        big_eta = 1e-5 + BIG.estimate_gemm_seconds(64, 64, 64)
        assert big_eta < slow_eta
        assert chosen == 1

    def test_cost_aware_without_estimates_is_earliest_available(self):
        policy = CostAwarePlacement()
        shards = [view(0, busy=2.0, config=SMALL), view(1, busy=0.5, config=SMALL)]
        assert policy.place(profile(), shards) == 1

    def test_mixed_pool_does_not_funnel_to_functional_shard(self):
        # Regression: a shard without a cycle model must not win on
        # ignorance.  least_loaded compares the mixed pool in seconds
        # (cycles are incomparable with a clock-less shard), and
        # cost_aware charges the unpriceable shard the most expensive
        # known service time.
        backlogged_functional = view(1, busy=1.0, config=None)
        assert LeastLoadedPlacement().place(
            profile(ready=0.0),
            [view(0, busy=1e-3, config=SMALL), backlogged_functional],
        ) == 0

        def estimator(prof, config):
            return None if config is None else config.estimate_gemm_cycles(64, 64, 64)

        free_functional = view(1, busy=0.0, config=None)
        array_shard = view(0, busy=0.0, config=SMALL)
        chosen = CostAwarePlacement().place(
            profile(estimator=estimator), [array_shard, free_functional]
        )
        assert chosen == 0  # ties on the pessimistic charge break by index


class TestCostModels:
    def test_calibrator_exact_and_per_row(self):
        model = CalibratingCostModel()
        model.observe("bert", 4, (8,), SMALL, 1000)
        assert model.estimate(profile("bert", 4, (8,)), SMALL) == 1000.0
        # Clock differences don't change cycle counts.
        retimed = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4, clock_hz=1e6)
        assert model.estimate(profile("bert", 4, (8,)), retimed) == 1000.0
        # Unseen batch size: per-row scaling.
        assert model.estimate(profile("bert", 8, (8,)), SMALL) == 2000.0

    def test_calibrator_cross_config_scaling(self):
        model = CalibratingCostModel()
        model.observe("bert", 2, (8,), SMALL, 1000)
        estimate = model.estimate(profile("bert", 2, (8,)), BIG)
        dim = CalibratingCostModel.PROXY_DIM
        ratio = BIG.estimate_gemm_cycles(dim, dim, dim) / SMALL.estimate_gemm_cycles(
            dim, dim, dim
        )
        assert estimate == pytest.approx(1000.0 * ratio)
        # The big grid needs fewer cycles, so the estimate shrinks.
        assert estimate < 1000.0

    def test_calibrator_unknown_is_none(self):
        model = CalibratingCostModel()
        assert model.estimate(profile("ghost"), SMALL) is None
        model.observe("bert", 2, (8,), SMALL, 100)
        assert model.estimate(profile("bert", 2, (4,)), SMALL) is None  # other shape

    def test_workload_cost_model_closed_form(self):
        calls = []

        def builder(batch, shape):
            calls.append((batch, shape))
            return Workload("wl").add_gemm(batch * 8, 8, 8)

        estimator = workload_cost_model(builder)
        cycles = estimator(profile(batch=2), SMALL)
        assert cycles == SMALL.estimate_gemm_cycles(16, 8, 8)
        estimator(profile(batch=2), SMALL)  # memoised
        assert len(calls) == 1
        # Bigger array, same workload: fewer cycles.
        assert estimator(profile(batch=2), BIG) < cycles

    def test_calibrator_round_trips_through_dict(self):
        """Serialized calibration state restores estimates exactly —
        the piece that lets calibration survive engine restarts."""
        import json

        model = CalibratingCostModel()
        model.observe("bert", 4, (8,), SMALL, 1000)
        model.observe("bert", 2, (8,), BIG, 300)
        model.observe("resnet", 1, (3, 8, 8), SMALL, 5000)

        state = model.to_dict()
        # JSON-safe: survives an actual dump/load cycle.
        state = json.loads(json.dumps(state))
        restored = CalibratingCostModel.from_dict(state)

        probes = [
            (profile("bert", 4, (8,)), SMALL),      # exact
            (profile("bert", 8, (8,)), SMALL),      # per-row scaling
            (profile("bert", 2, (8,)), BIG),        # exact on other config
            (profile("bert", 3, (8,)), BIG),        # per-row on other config
            (profile("resnet", 1, (3, 8, 8)), BIG), # cross-config proxy
            (profile("ghost", 1, (8,)), SMALL),     # unknown stays unknown
        ]
        for batch_profile, config in probes:
            assert restored.estimate(batch_profile, config) == model.estimate(
                batch_profile, config
            )
        # A second round trip is a fixed point (insertion order kept).
        assert restored.to_dict() == model.to_dict()

    def test_calibrator_config_dict_round_trip(self):
        from repro.serving import config_from_dict, config_to_dict

        for config in (SMALL, BIG, SystolicConfig(
            pe_rows=8, pe_cols=4, macs_per_pe=2, nonlinear_enabled=False,
            l3_out_width=3, clock_hz=123e6,
        )):
            assert config_from_dict(config_to_dict(config)) == config

    def test_calibrator_rejects_unknown_state_version(self):
        with pytest.raises(ValueError, match="version"):
            CalibratingCostModel.from_dict({"version": 99, "observations": []})

    def test_engine_exposes_calibrator_for_persistence(self):
        engine = build_engine([SMALL], "cost_aware")
        rng = np.random.default_rng(0)
        for row in rng.integers(0, 16, size=(4, 8)):
            engine.submit("bert", row)
        engine.run()
        state = engine.calibrator.to_dict()
        assert state["observations"], "run produced no calibration"
        fresh = CalibratingCostModel.from_dict(state)
        probe = profile("bert", 2, (8,))
        assert fresh.estimate(probe, SMALL) == engine.calibrator.estimate(probe, SMALL)

    def test_workload_cost_model_gemm_only_on_plain_sa(self):
        plain = SystolicConfig(
            pe_rows=4, pe_cols=4, macs_per_pe=4, nonlinear_enabled=False
        )
        estimator = workload_cost_model(
            lambda batch, shape: Workload("wl")
            .add_gemm(8, 8, 8)
            .add_nonlinear("relu", 8, 8)
        )
        gemm_only = estimator(profile(), plain)
        assert gemm_only == plain.estimate_gemm_cycles(8, 8, 8)
        assert estimator(profile(), SMALL) > gemm_only  # ONE-SA adds the MHP


def build_engine(configs, placement, cost_model=None, **engine_kw):
    engine = InferenceEngine(
        ClusterSpec.heterogeneous(list(configs)).build(),
        max_batch_size=2,
        flush_timeout=1e-4,
        placement=placement,
        **engine_kw,
    )
    engine.register("bert", tiny_bert(), cost_model=cost_model)
    return engine


def random_stream(rng, n=14):
    arrivals = np.sort(rng.uniform(0.0, 5e-4, size=n))
    rows = rng.integers(0, 16, size=(n, 8))
    tenants = rng.choice(["a", "b", "default"], size=n)
    return [
        dict(model="bert", inputs=rows[i], arrival=float(arrivals[i]), tenant=str(tenants[i]))
        for i in range(n)
    ]


class TestEnginePlacement:
    def test_round_robin_reproduces_pr3_mapping_randomized(self):
        # The pinned regression: under the default policy the i-th
        # executed batch lands on shard i % n_shards — exactly the old
        # acquire-time iterator — for arbitrary multi-tenant streams.
        rng = np.random.default_rng(5)
        for trial in range(4):
            engine = build_engine([SMALL, SMALL, SMALL], "round_robin")
            for item in random_stream(rng):
                engine.submit(**item)
            report = engine.run()
            assert report.n_requests == 14
            assert report.placements  # the decision log is populated
            for decision in report.placements:
                assert decision.shard == decision.batch_index % 3
            for record in report.completed:
                assert record.shard == record.batch_index % 3

    def test_round_robin_mapping_persists_across_runs(self):
        engine = build_engine([SMALL, SMALL], "round_robin")
        engine.submit("bert", RNG.integers(0, 16, size=8))
        first = engine.run().completed[0]
        engine.submit("bert", RNG.integers(0, 16, size=8))
        second = engine.run().completed[0]
        # The counter continues across runs, like the old acquire loop.
        assert (first.shard, second.shard) == (0, 1)

    def test_heterogeneous_pool_results_identical_to_reference(self):
        # Mixed grids and clocks change timing, never results: every
        # policy returns bit-identical outputs on a same-format pool.
        tokens = RNG.integers(0, 16, size=(10, 8))
        model = tiny_bert()
        reference = [
            model.infer(row[None, :], CPWLBackend(0.25))[0] for row in tokens
        ]
        for placement in ("round_robin", "least_loaded", "cost_aware"):
            engine = build_engine([BIG, SMALL, SLOW], placement)
            ids = [engine.submit("bert", row) for row in tokens]
            report = engine.run()
            assert report.n_requests == 10
            for request_id, expected in zip(ids, reference):
                assert np.array_equal(engine.result(request_id), expected)

    def test_cost_aware_deterministic_under_fixed_seed(self):
        def placements_of(seed):
            rng = np.random.default_rng(seed)
            engine = build_engine([BIG, SMALL, SLOW, SMALL], "cost_aware")
            report = engine.run(request_source=random_stream(rng, n=20))
            return [
                (d.batch_index, d.shard, d.start, d.finish)
                for d in report.placements
            ]

        assert placements_of(7) == placements_of(7)
        assert placements_of(7) != placements_of(8)  # streams differ

    def test_cost_aware_beats_round_robin_on_skewed_pool(self):
        # One fast shard + three slow shards, same-instant burst: the
        # cost model routes work to capacity; blind round-robin queues
        # it behind the slow shards.
        configs = [BIG, SLOW, SLOW, SLOW]
        tokens = RNG.integers(0, 16, size=(16, 8))

        def makespan(placement):
            engine = build_engine(configs, placement)
            for row in tokens:
                engine.submit("bert", row, arrival=0.0)
            report = engine.run()
            assert report.n_requests == 16
            return report.makespan, report

        rr_span, rr_report = makespan("round_robin")
        ca_span, ca_report = makespan("cost_aware")
        assert ca_span < rr_span
        # The report's imbalance metric sees the skew the cost model
        # *should* produce: the fast shard does most of the work.
        fast_busy = ca_report.shard_busy[0]
        assert fast_busy == max(ca_report.shard_busy.values())

    def test_placement_section_and_utilization_in_report(self):
        engine = build_engine([SMALL, SMALL], "round_robin")
        for row in RNG.integers(0, 16, size=(8, 8)):
            engine.submit("bert", row)
        report = engine.run()
        assert set(report.shard_busy) == {0, 1}
        assert all(busy > 0 for busy in report.shard_busy.values())
        utilization = report.shard_utilization()
        assert all(0 < u <= 1 for u in utilization.values())
        assert report.imbalance() >= 1.0
        section = report.placement_section()
        assert "round_robin" in section
        assert "imbalance" in section
        assert section in report.summary()

    def test_single_shard_summary_has_no_placement_block(self):
        engine = build_engine([SMALL], "round_robin")
        engine.submit("bert", RNG.integers(0, 16, size=8))
        report = engine.run()
        assert "placement" not in report.summary()

    def test_invalid_policy_shard_rejected(self):
        class Broken(RoundRobinPlacement):
            def place(self, batch, shards):
                return 99

        engine = build_engine([SMALL], Broken())
        engine.submit("bert", RNG.integers(0, 16, size=8))
        with pytest.raises(ValueError, match="returned shard"):
            engine.run()

    def test_engine_reset_restarts_placement_state(self):
        engine = build_engine([SMALL, SMALL], "round_robin")
        engine.submit("bert", RNG.integers(0, 16, size=8))
        engine.run()
        engine.reset()
        assert engine.dispatcher.busy_until == {}
        engine.submit("bert", RNG.integers(0, 16, size=8))
        report = engine.run()
        assert report.completed[0].shard == 0  # counter restarted


class TestAdmissionControl:
    def engine(self, **tenant_kw):
        engine = build_engine([SMALL], "round_robin")
        if tenant_kw:
            from repro.serving import TenantConfig

            engine.tenants.register(TenantConfig("capped", **tenant_kw))
        return engine

    def test_queue_depth_cap_sheds_overflow(self):
        engine = self.engine(max_queue_depth=2)
        ids = [
            engine.submit("bert", row, arrival=0.0, tenant="capped")
            for row in RNG.integers(0, 16, size=(5, 8))
        ]
        report = engine.run()
        assert report.n_requests == 2
        assert report.shed_count == 3
        assert report.tenant_shed("capped") == 3
        assert report.shed_by_reason() == {"queue_full": 3}
        served = {c.request.request_id for c in report.completed}
        for request_id in ids:
            if request_id in served:
                engine.result(request_id)
            else:
                with pytest.raises(KeyError):
                    engine.result(request_id)
        assert "requests shed" in report.summary()

    def test_cap_applies_to_queue_not_lifetime(self):
        # Staggered arrivals: earlier requests drain before later ones
        # arrive, so the cap never trips.
        engine = self.engine(max_queue_depth=2)
        for i, row in enumerate(RNG.integers(0, 16, size=(6, 8))):
            engine.submit("bert", row, arrival=i * 1.0, tenant="capped")
        report = engine.run()
        assert report.n_requests == 6
        assert report.shed_count == 0

    def test_deadline_doomed_shed_without_estimates(self):
        # No cost information: only a deadline already in the past at
        # arrival is provably doomed.
        engine = self.engine(shed_doomed=True)
        engine.submit(
            "bert", RNG.integers(0, 16, size=8),
            arrival=1.0, tenant="capped", deadline=0.5,
        )
        engine.submit(
            "bert", RNG.integers(0, 16, size=8),
            arrival=1.0, tenant="capped", deadline=2.0,
        )
        report = engine.run()
        assert report.shed_count == 1
        assert report.shed_by_reason() == {"deadline_doomed": 1}
        assert report.shed[0].request.deadline == 0.5

    def test_deadline_doomed_uses_cost_model(self):
        # With a declared cost model the gate knows the best-case
        # service time and sheds a deadline no shard can meet.
        estimator = workload_cost_model(
            lambda batch, shape: Workload("wl").add_gemm(batch * 8, 8, 8)
        )
        engine = build_engine([SMALL], "round_robin", cost_model=estimator)
        from repro.serving import TenantConfig

        engine.tenants.register(TenantConfig("strict", shed_doomed=True))
        best_case = SMALL.estimate_gemm_cycles(8, 8, 8) / SMALL.clock_hz
        row = RNG.integers(0, 16, size=8)
        engine.submit("bert", row, arrival=0.0, tenant="strict",
                      deadline=best_case / 2)  # unmeetable
        engine.submit("bert", row, arrival=0.0, tenant="strict",
                      deadline=1.0)  # generous
        report = engine.run()
        assert report.shed_by_reason() == {"deadline_doomed": 1}
        assert report.n_requests == 1

    def test_deadlines_stay_accounting_only_by_default(self):
        engine = self.engine()  # no admission-control fields
        engine.submit(
            "bert", RNG.integers(0, 16, size=8),
            arrival=1.0, tenant="capped", deadline=0.0,
        )
        report = engine.run()
        assert report.shed_count == 0
        assert report.n_requests == 1
        assert report.deadline_misses("capped") == 1

    def test_shed_log_visible_between_steps(self):
        engine = self.engine(max_queue_depth=1)
        rows = RNG.integers(0, 16, size=(3, 8))
        for row in rows:
            engine.submit("bert", row, arrival=0.0, tenant="capped")
        engine.step()
        assert len(engine.shed_log) == 2
        assert {r.reason for r in engine.shed_log} == {"queue_full"}

    def test_max_queue_depth_validated(self):
        from repro.serving import TenantConfig

        with pytest.raises(ValueError):
            TenantConfig("bad", max_queue_depth=0)


class TestQuantizedWeightCache:
    """Staleness-safe parameter caching on the fixed-point backends."""

    def test_repeat_inference_hits_cache_bit_identically(self):
        model = tiny_bert()
        backend = CPWLBackend(0.25)
        tokens = RNG.integers(0, 16, size=(4, 8))
        first = model.infer(tokens, backend)
        hits_before = backend.param_cache.hits
        second = model.infer(tokens, backend)
        assert backend.param_cache.hits > hits_before
        assert np.array_equal(first, second)
        # And identical to a cache-cold backend.
        assert np.array_equal(first, model.infer(tokens, CPWLBackend(0.25)))

    def test_conv_reshaped_weight_view_hits_cache(self):
        from repro.nn.models import SmallResNet

        model = SmallResNet(in_channels=1, n_classes=3, seed=0)
        model.eval()
        backend = CPWLBackend(0.25)
        images = RNG.normal(size=(2, 1, 8, 8))
        model.infer(images, backend)
        misses = backend.param_cache.misses
        model.infer(images, backend)
        # Steady state: no new derivations, only hits.
        assert backend.param_cache.misses == misses
        assert backend.param_cache.hits > 0

    def test_optimizer_step_invalidates(self):
        model = tiny_bert()
        backend = CPWLBackend(0.25)
        tokens = RNG.integers(0, 16, size=(2, 8))
        before = model.infer(tokens, backend)
        # One visible training step: gradients flow, weights move.
        from repro.nn.autograd import cross_entropy

        optimizer = SGD(model.parameters(), lr=0.5)
        logits = model.forward(tokens)
        loss = cross_entropy(logits, np.zeros(2, dtype=int))
        loss.backward()
        optimizer.step()
        after = model.infer(tokens, backend)
        fresh = model.infer(tokens, CPWLBackend(0.25))
        assert np.array_equal(after, fresh)  # no stale quantized weights
        assert not np.array_equal(before, after)  # the step was visible

    def test_mark_dirty_invalidates_manual_mutation(self):
        model = tiny_bert()
        backend = CPWLBackend(0.25)
        tokens = RNG.integers(0, 16, size=(2, 8))
        model.infer(tokens, backend)
        weight = model.classifier.weight
        weight.data[...] += 1.0
        weight.mark_dirty()
        fresh = model.infer(tokens, CPWLBackend(0.25))
        assert np.array_equal(model.infer(tokens, backend), fresh)

    def test_rebound_parameter_invalidates_by_identity(self):
        model = tiny_bert()
        backend = CPWLBackend(0.25)
        tokens = RNG.integers(0, 16, size=(2, 8))
        model.infer(tokens, backend)
        # Rebinding to a new array needs no dirty mark at all.
        model.classifier.weight.data = model.classifier.weight.data + 1.0
        fresh = model.infer(tokens, CPWLBackend(0.25))
        assert np.array_equal(model.infer(tokens, backend), fresh)

    def test_data_version_tracks_base_buffer(self):
        array = np.zeros((4, 4))
        assert data_version(array) == 0
        bump_data_version(array)
        assert data_version(array) == 1
        assert data_version(array.reshape(2, 8)) == 1  # views share it
        assert data_version(array.T) == 1
        t = Tensor(np.ones(3), requires_grad=True)
        t.mark_dirty()
        assert data_version(t.data) == 1

    def test_array_backend_serving_uses_cache(self):
        engine = build_engine([SMALL], "round_robin")
        backend = engine.dispatcher.backends[0]
        for row in RNG.integers(0, 16, size=(4, 8)):
            engine.submit("bert", row)
        engine.run()
        misses = backend.param_cache.misses
        for row in RNG.integers(0, 16, size=(4, 8)):
            engine.submit("bert", row)
        engine.run()
        assert backend.param_cache.misses == misses  # steady state
        assert backend.param_cache.hits > 0
