"""Inference backends: exact float, CPWL+INT16, and the full array.

A backend supplies the primitive operations a model's ``infer`` path
needs.  Swapping the backend re-runs the *same trained network* under
different execution models:

* :class:`FloatBackend` — exact float64 (the "Original" column of
  Table III is this backend after INT16 round-trip of activations);
* :class:`CPWLBackend` — every GEMM in saturating INT16, every
  nonlinearity through the capped-piecewise-linear pipeline at a chosen
  granularity (the 0.1 … 1.0 columns of Table III);
* :class:`ArrayBackend` — same arithmetic as :class:`CPWLBackend` but
  routed through a :class:`~repro.systolic.array.SystolicArray`
  instance, which additionally produces the cycle trace (used by the
  integration tests and the end-to-end examples).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core import nonlinear_ops as NL
from repro.core.functions import get_function
from repro.fixedpoint import QFormat, dequantize, fixed_matmul, quantize
from repro.fixedpoint.qformat import INT16
from repro.nn.autograd import data_version, version_base
from repro.nn.functional import im2col
from repro.store import CacheStore, InProcessLRU


class ParamCache:
    """Staleness-safe cache of derived parameter arrays (weights, biases).

    Serving executes the same layers for every request, and the seed
    re-quantized each layer's weights on every traced call — the last
    repeated per-request quantize cost in steady state.  This bounded
    LRU keeps the derived form (quantized raw codes, dequantized bias)
    keyed by the parameter buffer's identity and layout, and guards
    staleness two ways:

    * **identity** — a weak reference to the owning buffer; a
      parameter rebound to a fresh array (``tensor.data = ...``) can
      never hit a stale entry, and dead buffers cannot alias recycled
      ``id``\\ s;
    * **dirty-tracking** — the buffer's mutation version from
      :func:`repro.nn.autograd.data_version`.  In-place updates must
      bump it (the shipped optimizers do via ``Tensor.mark_dirty``);
      that is the cache's contract with training code.

    Derived arrays are marked read-only so a consumer cannot mutate a
    cached value in place.

    Storage routes through a :class:`~repro.store.CacheStore`
    namespace — by default a private
    :class:`~repro.store.InProcessLRU`, so each backend keeps its own
    entry budget exactly as before.  The staleness *policy* (weakref
    identity + dirty counter) stays here: it is meaningful only within
    one process, which is also why the keys (``id``, data pointers)
    make this cache in-process by construction — a shared file-backed
    store would be validating another process's pointers.
    """

    #: Store namespace parameter derivations live under.
    NAMESPACE = "nn.params"

    def __init__(self, maxsize: int = 256, store: Optional[CacheStore] = None):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._store = store if store is not None else InProcessLRU()
        self._store.set_limit(self.NAMESPACE, max_entries=maxsize)
        self.hits = 0
        self.misses = 0

    def get(
        self,
        array: np.ndarray,
        tag: str,
        derive: Callable[[np.ndarray], np.ndarray],
    ) -> np.ndarray:
        """The cached ``derive(array)``, recomputed when stale."""
        base = version_base(array)
        key = (
            id(base),
            tag,
            array.__array_interface__["data"][0],
            array.shape,
            array.strides,
        )
        entry = self._store.get(self.NAMESPACE, key)
        version = data_version(array)
        if entry is not None:
            ref, cached_version, value = entry
            if ref() is base and cached_version == version:
                self.hits += 1
                return value
            self._store.delete(self.NAMESPACE, key)
        value = derive(array)
        value.setflags(write=False)
        self._store.put(
            self.NAMESPACE, key, (weakref.ref(base), version, value)
        )
        self.misses += 1
        return value

    def clear(self) -> None:
        self._store.clear(self.NAMESPACE)

    def stats(self) -> Dict[str, object]:
        """Uniform cache-stats view (dirty-aware hits, store occupancy)."""
        store_stats = self._store.stats(self.NAMESPACE)
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": store_stats["entries"],
            "evictions": store_stats["evictions"],
            "max_entries": self.maxsize,
        }


@dataclass(frozen=True)
class LayerKV:
    """One layer's cached key/value prefix rows, ``(P, D)`` each.

    The arrays hold the backend's *dequantized on-grid* activations —
    exactly the values the cold path's head split consumes — and are
    frozen read-only so a consumer cannot corrupt a shared cache entry.
    """

    k: np.ndarray
    v: np.ndarray

    @property
    def nbytes(self) -> int:
        return self.k.nbytes + self.v.nbytes


class KVTap:
    """Per-layer K/V capture for transformer prefix reuse.

    Passed as ``kv_tap`` into a causal model's ``infer``; each attention
    layer hands it the merged ``(N, T, D)`` key/value activations and
    the model hands it the final hidden states.  The tap keeps the first
    ``prefix_len`` rows of sequence 0 — within a prefix-keyed batch all
    sequences share the prompt, and per-row/per-pair exactness of the
    fixed-point pipeline makes row 0's activations identical to any
    other sequence's (and to any future request's) for the same prefix
    tokens.

    Capture costs no extra compute: the slices are copies of activations
    the cold pass produced anyway.  The derived parameter arrays the
    projections used come from the backend's :class:`ParamCache`, so a
    capture pass and a reuse pass share the same quantized weights.
    """

    def __init__(self, prefix_len: int):
        if prefix_len < 1:
            raise ValueError(f"prefix_len must be >= 1, got {prefix_len}")
        self.prefix_len = int(prefix_len)
        self.layers: List[LayerKV] = []
        self.final_hidden: Optional[np.ndarray] = None

    @staticmethod
    def _freeze(rows: np.ndarray) -> np.ndarray:
        # Always a fresh owning copy: a no-copy view of the (N, T, D)
        # activation would pin the whole batch array alive while the
        # cache charges only the (P, D) slice against its byte budget.
        frozen = np.array(rows, copy=True)
        frozen.setflags(write=False)
        return frozen

    def capture(self, k: np.ndarray, v: np.ndarray) -> None:
        """Record one layer's merged K/V (called in layer order)."""
        p = self.prefix_len
        self.layers.append(LayerKV(self._freeze(k[0, :p]), self._freeze(v[0, :p])))

    def capture_final(self, hidden: np.ndarray) -> None:
        """Record the final hidden prefix rows (for pooled readout)."""
        self.final_hidden = self._freeze(hidden[0, : self.prefix_len])

    @property
    def nbytes(self) -> int:
        """Bytes the captured activations occupy (cache budget unit)."""
        total = sum(layer.nbytes for layer in self.layers)
        if self.final_hidden is not None:
            total += self.final_hidden.nbytes
        return total


class DecodeKV:
    """Growing per-sequence K/V cache for autoregressive decode.

    Where :class:`KVTap` freezes a *shared* prompt prefix (sequence 0
    of a uniform batch), ``DecodeKV`` holds every sequence's own rows —
    generated suffixes diverge, so each layer stores full ``(N, T, D)``
    key/value arrays that grow by one row per decode step.

    The object speaks the ``kv_tap`` capture protocol, so a cold
    prefill can pass it straight into ``layer.infer(..., kv_tap=state)``
    and collect the merged activations with zero extra compute.  For a
    warm prefill, :meth:`seed` broadcasts a cached :class:`KVTap`
    payload across the batch before the suffix rows are appended.
    """

    def __init__(self, n_layers: int):
        if n_layers < 1:
            raise ValueError(f"n_layers must be >= 1, got {n_layers}")
        self.n_layers = int(n_layers)
        self.k: List[Optional[np.ndarray]] = [None] * self.n_layers
        self.v: List[Optional[np.ndarray]] = [None] * self.n_layers
        self._captured = 0

    @property
    def pos(self) -> int:
        """Sequence positions cached so far (0 before any prefill)."""
        return 0 if self.k[0] is None else int(self.k[0].shape[1])

    @property
    def batch(self) -> int:
        """Number of sequences the state covers."""
        return 0 if self.k[0] is None else int(self.k[0].shape[0])

    # -- kv_tap protocol (cold prefill) ---------------------------------
    def capture(self, k: np.ndarray, v: np.ndarray) -> None:
        """Record one layer's merged ``(N, T, D)`` K/V in layer order."""
        i = self._captured
        if i >= self.n_layers:
            raise ValueError(
                f"capture called {i + 1} times on a {self.n_layers}-layer state"
            )
        self.k[i] = np.array(k, copy=True)
        self.v[i] = np.array(v, copy=True)
        self._captured += 1

    def capture_final(self, hidden: np.ndarray) -> None:
        """Final-hidden capture is a prefix-cache concern; ignore it."""

    # -- warm prefill / incremental append ------------------------------
    def seed(self, cached: KVTap, batch: int) -> None:
        """Broadcast a shared cached prefix across ``batch`` sequences.

        Stores read-only broadcast views — the first :meth:`extend`
        copies them into owning arrays, so the cache entry is never
        aliased writably.
        """
        if len(cached.layers) != self.n_layers:
            raise ValueError(
                f"cached payload has {len(cached.layers)} layers, "
                f"state expects {self.n_layers}"
            )
        for i, layer in enumerate(cached.layers):
            c, d = layer.k.shape
            self.k[i] = np.broadcast_to(layer.k, (batch, c, d))
            self.v[i] = np.broadcast_to(layer.v, (batch, c, d))
        self._captured = self.n_layers

    def extend(self, layer: int, k_rows: np.ndarray, v_rows: np.ndarray) -> None:
        """Append ``(N, S, D)`` suffix rows onto one layer's cache."""
        if self.k[layer] is None:
            self.k[layer] = np.array(k_rows, copy=True)
            self.v[layer] = np.array(v_rows, copy=True)
            self._captured = max(self._captured, layer + 1)
        else:
            self.k[layer] = np.concatenate([self.k[layer], k_rows], axis=1)
            self.v[layer] = np.concatenate([self.v[layer], v_rows], axis=1)

    @property
    def nbytes(self) -> int:
        total = 0
        for arr in (*self.k, *self.v):
            if arr is not None:
                total += arr.nbytes
        return total

    # -- batch composition (continuous batching) ------------------------
    @classmethod
    def stack(cls, states: "List[DecodeKV]") -> "DecodeKV":
        """A batched copy of per-sequence states (same layer count/pos).

        The result owns fresh arrays, so running a decode step on it
        never mutates the member states — a failed attempt can be
        discarded without rollback.
        """
        if not states:
            raise ValueError("stack needs at least one state")
        n_layers = states[0].n_layers
        pos = states[0].pos
        for s in states[1:]:
            if s.n_layers != n_layers or s.pos != pos:
                raise ValueError("stacked states must agree on layers and pos")
        out = cls(n_layers)
        for i in range(n_layers):
            out.k[i] = np.concatenate([s.k[i] for s in states], axis=0)
            out.v[i] = np.concatenate([s.v[i] for s in states], axis=0)
        out._captured = n_layers
        return out

    def split(self) -> "List[DecodeKV]":
        """Per-sequence copies of a batched state (inverse of stack)."""
        parts = []
        for j in range(self.batch):
            part = DecodeKV(self.n_layers)
            for i in range(self.n_layers):
                part.k[i] = np.array(self.k[i][j : j + 1], copy=True)
                part.v[i] = np.array(self.v[i][j : j + 1], copy=True)
            part._captured = self.n_layers
            parts.append(part)
        return parts


class FloatBackend:
    """Exact float64 reference backend."""

    name = "float"

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a @ b

    def linear(self, x: np.ndarray, weight: np.ndarray, bias: np.ndarray) -> np.ndarray:
        return x @ weight.T + bias

    def relu(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def gelu(self, x: np.ndarray) -> np.ndarray:
        return get_function("gelu")(x)

    def tanh(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def sigmoid(self, x: np.ndarray) -> np.ndarray:
        return get_function("sigmoid")(x)

    def softmax(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        shifted = x - x.max(axis=axis, keepdims=True)
        exps = np.exp(shifted)
        return exps / exps.sum(axis=axis, keepdims=True)

    def conv_cols(
        self,
        x: np.ndarray,
        kernel: int,
        stride: int,
        padding: int,
        weight_mat: np.ndarray,
        bias: np.ndarray,
    ) -> "tuple[np.ndarray, tuple[int, int]]":
        """im2col convolution: unfold patches, multiply, add bias.

        Returns ``(rows, (out_h, out_w))`` with ``rows`` shaped
        ``(N * out_h * out_w, F)``; the layer reshapes back to NCHW.
        Fixed-point backends override this to quantize *before* the
        patch unfold (bit-identical, cheaper — see CPWLBackend).
        """
        cols, out_hw = im2col(
            np.asarray(x, dtype=np.float64), kernel, stride, padding
        )
        return self.linear(cols, weight_mat, bias), out_hw

    def layernorm(
        self,
        x: np.ndarray,
        gamma: np.ndarray,
        beta: np.ndarray,
        eps: float = 1e-5,
    ) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        return (x - mean) / np.sqrt(var + eps) * gamma + beta

    def batchnorm(
        self,
        x: np.ndarray,
        scale: np.ndarray,
        shift: np.ndarray,
        channel_axis: int = 1,
    ) -> np.ndarray:
        shape = [1] * x.ndim
        shape[channel_axis] = -1
        return x * scale.reshape(shape) + shift.reshape(shape)

    def batchnorm_stats(
        self,
        x: np.ndarray,
        gamma: np.ndarray,
        beta: np.ndarray,
        mean: np.ndarray,
        var: np.ndarray,
        eps: float = 1e-5,
        channel_axis: int = 1,
    ) -> np.ndarray:
        """Batchnorm from stored statistics.

        The accelerator keeps ``(gamma, beta, mean, var)`` and derives
        the affine on the fly — ``1/sqrt(var + eps)`` is a genuine
        nonlinear stage (CPWL on the array, exact here), which is why
        batchnorm shows up as real computation in Fig. 1 rather than a
        free pre-folded affine.
        """
        inv_std = 1.0 / np.sqrt(var + eps)
        scale = gamma * inv_std
        shift = beta - mean * scale
        return self.batchnorm(x, scale, shift, channel_axis)


class QuantizedFloatBackend(FloatBackend):
    """Float math with INT16 round-trips (the "Original" baseline).

    Table III's first column is "the original DNN models with INT16
    quantization": exact nonlinearities, quantized tensors.  This
    backend rounds every operation's inputs and outputs through the
    datapath format but keeps the nonlinear functions exact.
    """

    name = "int16-exact-nonlinear"

    def __init__(self, fmt: QFormat = INT16):
        self.fmt = fmt

    def _q(self, x: np.ndarray) -> np.ndarray:
        return dequantize(quantize(x, self.fmt), self.fmt)

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._q(super().matmul(self._q(a), self._q(b)))

    def linear(self, x, weight, bias):
        return self._q(super().linear(self._q(x), self._q(weight), self._q(bias)))

    def relu(self, x):
        return self._q(super().relu(self._q(x)))

    def gelu(self, x):
        return self._q(super().gelu(self._q(x)))

    def tanh(self, x):
        return self._q(super().tanh(self._q(x)))

    def sigmoid(self, x):
        return self._q(super().sigmoid(self._q(x)))

    def softmax(self, x, axis: int = -1):
        return self._q(super().softmax(self._q(x), axis=axis))

    def layernorm(self, x, gamma, beta, eps: float = 1e-5):
        return self._q(super().layernorm(self._q(x), gamma, beta, eps=eps))

    def batchnorm(self, x, scale, shift, channel_axis: int = 1):
        return self._q(super().batchnorm(self._q(x), scale, shift, channel_axis))

    def batchnorm_stats(self, x, gamma, beta, mean, var, eps=1e-5, channel_axis=1):
        inv_std = 1.0 / np.sqrt(var + eps)
        scale = self._q(gamma * inv_std)
        shift = self._q(beta - mean * scale)
        return self.batchnorm(x, scale, shift, channel_axis)


class CPWLBackend:
    """INT16 GEMMs + capped-piecewise-linear nonlinearities.

    This is the fast bit-faithful model of running the network on
    ONE-SA: matrix products through :func:`fixed_matmul` (wide
    accumulate, saturating writeback) and nonlinear operations through
    the IPF+MHP pipeline of :mod:`repro.core.nonlinear_ops`.
    """

    name = "cpwl"

    def __init__(self, granularity: float, fmt: QFormat = INT16):
        if granularity <= 0:
            raise ValueError(f"granularity must be positive, got {granularity}")
        self.granularity = float(granularity)
        self.fmt = fmt
        self.param_cache = ParamCache()

    # -- parameter caching ----------------------------------------------
    def _quantized_param(self, array: np.ndarray) -> np.ndarray:
        """Raw float64 code points of a parameter tensor, cached.

        Weights are long-lived and rarely mutated, so steady-state
        serving skips the per-request quantize passes; dirty-tracking
        (see :class:`ParamCache`) keeps the entry staleness-safe across
        training steps.
        """
        return self.param_cache.get(
            array,
            "raw",
            lambda a: quantize(
                np.asarray(a, dtype=np.float64), self.fmt, dtype=np.float64
            ),
        )

    def _dequantized_param(self, array: np.ndarray) -> np.ndarray:
        """A parameter rounded onto the format grid (bias add operand)."""
        return self.param_cache.get(
            array, "deq", lambda a: dequantize(quantize(a, self.fmt), self.fmt)
        )

    # -- linear ---------------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        # One vectorized call covers both the 2-D case and stacked
        # (batched-attention) operands: fixed_matmul broadcasts leading
        # axes and is bit-identical to a Python loop of 2-D GEMMs.  Raw
        # operands stay in float64 (exact for in-range raw integers) so
        # the quantize -> BLAS pipeline skips two conversion passes.
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        raw = fixed_matmul(
            quantize(a, self.fmt, dtype=np.float64),
            quantize(b, self.fmt, dtype=np.float64),
            self.fmt,
        )
        return dequantize(raw, self.fmt)

    def linear(self, x: np.ndarray, weight: np.ndarray, bias: np.ndarray) -> np.ndarray:
        orig_shape = x.shape
        x2 = np.asarray(x, dtype=np.float64).reshape(-1, orig_shape[-1])
        x_raw = quantize(x2, self.fmt, dtype=np.float64)
        # Weight codes come from the staleness-safe parameter cache;
        # quantize commutes with transposition, so caching the
        # untransposed codes and passing the view is bit-identical to
        # quantizing weight.T per call (and integer-exact accumulation
        # makes the result layout-independent).
        w_raw_t = self._quantized_param(weight).T
        out = dequantize(self._gemm2d_raw(x_raw, w_raw_t), self.fmt)
        out += self._dequantized_param(bias)
        # The INT16 writeback of the bias add.  Both addends sit exactly
        # on the 2^-frac grid and their float64 sum is exact, so the
        # quantize-dequantize round trip reduces to range saturation —
        # a single clip pass, bit-identical to the full round trip.
        np.clip(out, self.fmt.min_value, self.fmt.max_value, out=out)
        return out.reshape(orig_shape[:-1] + (weight.shape[0],))

    def conv_cols(self, x, kernel, stride, padding, weight_mat, bias):
        """Convolution with quantization *before* the patch unfold.

        Quantize is elementwise and im2col only rearranges (and
        duplicates) elements, so the two commute: quantizing the
        ``(N, C, H, W)`` tensor and unfolding the raw values is
        bit-identical to unfolding first and quantizing the ``k^2``
        times larger patch matrix — at a fraction of the rounding
        passes.  The raw values ride in float64 straight into the BLAS
        GEMM (see :func:`repro.fixedpoint.fixed_matmul`).
        """
        x_raw = quantize(
            np.asarray(x, dtype=np.float64), self.fmt, dtype=np.float64
        )
        cols_raw, out_hw = im2col(x_raw, kernel, stride, padding)
        # The filter matrix is a reshape view of the layer's weight
        # buffer, so the parameter cache hits on every call (identity
        # and layout of the view are part of the key).
        w_raw_t = self._quantized_param(weight_mat).T
        out_raw = self._gemm2d_raw(cols_raw, w_raw_t)
        out = dequantize(out_raw, self.fmt) + self._dequantized_param(bias)
        # Bias-add writeback: exact on-grid sum, so saturation suffices
        # (same argument as in linear()).
        np.clip(out, self.fmt.min_value, self.fmt.max_value, out=out)
        return out, out_hw

    def _gemm2d_raw(self, a_raw: np.ndarray, b_raw: np.ndarray) -> np.ndarray:
        """2-D GEMM on raw operands (hook: ArrayBackend routes + traces)."""
        return fixed_matmul(a_raw, b_raw, self.fmt)

    # -- nonlinear ------------------------------------------------------
    def relu(self, x: np.ndarray) -> np.ndarray:
        return NL.cpwl_relu(x, self.granularity, self.fmt)

    def gelu(self, x: np.ndarray) -> np.ndarray:
        return NL.cpwl_gelu(x, self.granularity, self.fmt)

    def tanh(self, x: np.ndarray) -> np.ndarray:
        return NL.cpwl_tanh(x, self.granularity, self.fmt)

    def sigmoid(self, x: np.ndarray) -> np.ndarray:
        return NL.cpwl_sigmoid(x, self.granularity, self.fmt)

    def softmax(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        return NL.cpwl_softmax(x, self.granularity, self.fmt, axis=axis)

    def layernorm(self, x, gamma, beta, eps: float = 1e-5) -> np.ndarray:
        return NL.cpwl_layernorm(
            x, self.granularity, gamma=gamma, beta=beta, fmt=self.fmt, eps=eps
        )

    def batchnorm(self, x, scale, shift, channel_axis: int = 1) -> np.ndarray:
        return NL.cpwl_batchnorm(x, scale, shift, fmt=self.fmt, channel_axis=channel_axis)

    def batchnorm_stats(self, x, gamma, beta, mean, var, eps=1e-5, channel_axis=1):
        """Derive the affine on the array: range-reduced CPWL rsqrt + MHPs."""
        safe_var = np.maximum(np.asarray(var, dtype=np.float64) + eps, 1e-6)
        inv_std = NL.cpwl_rsqrt_range_reduced(safe_var, self.granularity, self.fmt)
        scale = dequantize(quantize(gamma * inv_std, self.fmt), self.fmt)
        shift = dequantize(quantize(beta - mean * scale, self.fmt), self.fmt)
        return self.batchnorm(x, scale, shift, channel_axis)


class ArrayBackend(CPWLBackend):
    """CPWL backend routed through a SystolicArray with cycle tracing.

    Linear ops call :meth:`SystolicArray.gemm_raw` and scalar
    nonlinearities :meth:`SystolicArray.apply_nonlinear_raw`, so after a
    model's ``infer`` the array's trace holds the per-op cycle account.
    Composite nonlinearities (softmax, layernorm) keep their reduction
    steps vectorized but execute the scalar stages on the array.
    """

    name = "array"

    def __init__(self, array, granularity: float):
        super().__init__(granularity, array.config.fmt)
        self.array = array

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.ndim == 2 and b.ndim == 2:
            result = self.array.gemm_raw(
                quantize(a, self.fmt, dtype=np.float64),
                quantize(b, self.fmt, dtype=np.float64),
            )
            return dequantize(result.raw, self.fmt)
        # Batched matmul: the hardware model still issues one traced GEMM
        # per matrix pair — the per-pair events are synthesized from the
        # closed-form cycle model — but the arithmetic runs as a single
        # stacked N-D fixed_matmul, bit-identical to the per-pair loop.
        lead = np.broadcast_shapes(a.shape[:-2], b.shape[:-2])
        a_b = np.broadcast_to(a, lead + a.shape[-2:]).reshape((-1,) + a.shape[-2:])
        b_b = np.broadcast_to(b, lead + b.shape[-2:]).reshape((-1,) + b.shape[-2:])
        result = self.array.gemm_raw_batched(
            quantize(a_b, self.fmt, dtype=np.float64),
            quantize(b_b, self.fmt, dtype=np.float64),
        )
        out = dequantize(result.raw, self.fmt)
        return out.reshape(lead + (a.shape[-2], b.shape[-1]))

    def _gemm2d_raw(self, a_raw: np.ndarray, b_raw: np.ndarray) -> np.ndarray:
        # Route linear/conv GEMMs through the array so they land in the
        # trace exactly like the seed's dispatch did.
        return self.array.gemm_raw(a_raw, b_raw).raw

    def gelu(self, x: np.ndarray) -> np.ndarray:
        return self._scalar_on_array("gelu", x)

    def relu(self, x: np.ndarray) -> np.ndarray:
        # Same mid-anchored grid as the fast CPWL path (see cpwl_relu).
        domain = (-8.0 - self.granularity / 2.0, 8.0 + self.granularity / 2.0)
        return self._scalar_on_array("relu", x, domain=domain)

    def tanh(self, x: np.ndarray) -> np.ndarray:
        return self._scalar_on_array("tanh", x)

    def sigmoid(self, x: np.ndarray) -> np.ndarray:
        return self._scalar_on_array("sigmoid", x)

    def _scalar_on_array(self, fn: str, x: np.ndarray, domain=None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        flat = x.reshape(-1, x.shape[-1]) if x.ndim > 1 else x.reshape(1, -1)
        out = self.array.apply_nonlinear(fn, flat, self.granularity, domain=domain)
        return out.reshape(x.shape)
