"""Backward-compat shim over the cluster placement API.

The dispatch boundary moved to :mod:`repro.serving.cluster` when
placement became policy-driven (``ClusterSpec`` + ``PlacementPolicy``);
:class:`ShardedDispatcher` survives as a thin alias so PR 1-era code
(``ShardedDispatcher.from_arrays(...)``, manual ``acquire()`` loops)
keeps working unchanged — it *is* a :class:`ClusterDispatcher`, just
under its historical name.
"""

from __future__ import annotations

from repro.serving.cluster import ClusterDispatcher


class ShardedDispatcher(ClusterDispatcher):
    """Historical name of :class:`~repro.serving.cluster.ClusterDispatcher`.

    Identical in every respect; new code should construct pools via
    :class:`~repro.serving.cluster.ClusterSpec` (heterogeneous design
    points, named shards) or :class:`ClusterDispatcher` directly.
    """
