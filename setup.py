"""Setup shim so ``pip install -e .`` works in offline environments.

The metadata lives in pyproject.toml; this file only enables the legacy
editable-install path (the environment has no ``wheel`` package, which
PEP 517 editable installs require).
"""

from setuptools import setup

setup()
