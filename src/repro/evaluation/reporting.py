"""Table/series formatting helpers shared by the harnesses."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as a fixed-width text table (paper-style artifact)."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 1e-3:
            return f"{cell:.3e}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def as_percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"


def delta_percent(value: float, baseline: float, digits: int = 1) -> str:
    """Signed accuracy delta in percentage points (Table III cells)."""
    delta = 100.0 * (value - baseline)
    return f"{delta:+.{digits}f}"
