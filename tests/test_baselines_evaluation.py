"""Baseline models and evaluation-harness tests (paper-claim checks)."""

import numpy as np
import pytest

from repro.baselines import ACCELERATORS, PROCESSORS
from repro.baselines.accelerators import accelerators_for
from repro.evaluation.breakdown import PAPER_FIG1, figure1_breakdown
from repro.evaluation.comparison import (
    efficiency_gains,
    format_table4,
    one_sa_performance,
    table4_comparison,
)
from repro.evaluation.perf_sweep import (
    figure8_linear,
    figure8_nonlinear,
    format_figure8,
    throughput_cliff_example,
)
from repro.evaluation.pareto_sweep import (
    evaluate_design,
    figure10_pareto,
    frontier_mac_counts,
    linear_optima_serve_nonlinear,
    mac16_near_frontier,
)
from repro.evaluation.reporting import as_percent, delta_percent, format_table
from repro.evaluation.resource_sweep import (
    PAPER_TABLE2,
    figure9_resource_sweep,
    format_table1,
    format_table2,
    format_table5,
    table1_module_resources,
    table2_total_resources,
    table5_buffer_sizes,
)
from repro.nn.workload import bert_base_workload, paper_workloads
from repro.systolic.config import ONE_SA_PAPER_CONFIG


class TestProcessors:
    def test_measured_anchors_reproduced(self):
        wl = paper_workloads()["bert-base"]
        cpu = PROCESSORS["cpu"]
        assert cpu.latency_seconds(wl) == pytest.approx(45.92e-3)
        assert cpu.throughput_gops(wl) == pytest.approx(119.77)

    def test_efficiency_column(self):
        wl = paper_workloads()["resnet50"]
        assert PROCESSORS["cpu"].efficiency(wl) == pytest.approx(93.51 / 112.0)

    def test_extrapolation_for_unanchored_workload(self):
        wl = bert_base_workload(seq_len=128)
        wl.name = "bert-large-ish"
        latency = PROCESSORS["gpu"].latency_seconds(wl)
        assert latency > 0

    def test_gpu_faster_than_cpu(self):
        wl = paper_workloads()["resnet50"]
        assert PROCESSORS["gpu"].latency_seconds(wl) < PROCESSORS["cpu"].latency_seconds(wl)


class TestAccelerators:
    def test_specificity(self):
        """Application-specific designs only run their target network."""
        assert ACCELERATORS["npe"].supports("bert-base")
        assert not ACCELERATORS["npe"].supports("resnet50")
        assert not ACCELERATORS["angel-eye"].supports("gcn")

    def test_accelerators_for_workload(self):
        assert set(accelerators_for("resnet50")) == {"angel-eye", "vgg16-accel"}
        assert set(accelerators_for("bert-base")) == {"npe", "ftrans"}
        assert accelerators_for("gcn") == {}

    def test_efficiency_property(self):
        spec = ACCELERATORS["ftrans"]
        assert spec.efficiency == pytest.approx(559.85 / 25.0)


class TestTable4:
    @pytest.fixture(scope="class")
    def entries(self):
        return table4_comparison()

    def test_one_sa_runs_all_workloads(self, entries):
        """The flexibility headline: ONE-SA has no unsupported cells."""
        one_sa = [e for e in entries if e.processor == "ONE-SA"]
        assert len(one_sa) == 3
        assert all(e.supported for e in one_sa)

    def test_one_sa_beats_cpu_efficiency(self, entries):
        gains = efficiency_gains(entries)
        assert all(g > 5 for g in gains["Intel CPU i7-11700"].values())

    def test_one_sa_beats_gpu_efficiency(self, entries):
        """Paper: up to 5.21x over the GPU."""
        gains = efficiency_gains(entries)
        assert max(gains["NVIDIA GPU 3090Ti"].values()) > 2.5

    def test_one_sa_vs_soc(self, entries):
        """Paper: up to 1.54x over the SoC."""
        gains = efficiency_gains(entries)
        assert max(gains["NVIDIA SoC AGX ORIN"].values()) > 1.0

    def test_one_sa_comparable_to_asic_designs(self, entries):
        """Paper: 83.4%-135.9% of the specialized accelerators."""
        gains = efficiency_gains(entries)
        for accel in ("Angel-eye", "VGG16 accelerator", "NPE", "FTRANS"):
            for value in gains[accel].values():
                assert 0.6 < value < 1.7

    def test_one_sa_latency_band(self, entries):
        """Latency magnitudes near the paper's 26 / 26.24 / 5.87 ms."""
        by = {(e.processor, e.workload): e for e in entries}
        assert 10e-3 < by[("ONE-SA", "resnet50")].latency_s < 60e-3
        assert 10e-3 < by[("ONE-SA", "bert-base")].latency_s < 60e-3
        assert 2e-3 < by[("ONE-SA", "gcn")].latency_s < 20e-3

    def test_one_sa_power_near_paper(self, entries):
        for e in entries:
            if e.processor == "ONE-SA":
                assert 6.0 < e.power_w < 9.0  # paper: 7.61 W

    def test_speedups_relative_to_cpu(self, entries):
        for e in entries:
            if e.processor == "Intel CPU i7-11700":
                assert e.speedup == pytest.approx(1.0)

    def test_formatting_includes_dashes_for_unsupported(self, entries):
        text = format_table4(entries)
        assert "-" in text
        assert "ONE-SA" in text

    def test_one_sa_performance_direct(self):
        cells = one_sa_performance(paper_workloads()["bert-base"])
        assert cells.throughput_gops > 100
        assert cells.efficiency > 15


class TestFig1:
    def test_cpu_view_close_to_paper(self):
        mixes = figure1_breakdown("cpu")
        paper = PAPER_FIG1["resnet50"]
        ours = mixes["resnet50"]
        assert abs(ours["gemm"] - paper["gemm"]) < 0.08
        assert abs(ours["batchnorm"] - paper["batchnorm"]) < 0.08
        bert = mixes["bert-base"]
        assert abs(bert["gelu"] - PAPER_FIG1["bert-base"]["gelu"]) < 0.03

    def test_array_view_shrinks_nonlinear(self):
        cpu = figure1_breakdown("cpu")["bert-base"]
        arr = figure1_breakdown("array")["bert-base"]
        assert arr["gelu"] < cpu["gelu"]


class TestFig8:
    def test_throughput_increases_with_macs(self):
        points = figure8_linear(pe_dims=(8,), mac_counts=(2, 16), matrix_dims=(512,))
        by_macs = {p.macs: p.achieved for p in points}
        assert by_macs[16] > 4 * by_macs[2]

    def test_cliff_at_small_matrices(self):
        points = figure8_linear(pe_dims=(16,), mac_counts=(16,), matrix_dims=(32, 512))
        by_dim = {p.matrix_dim: p for p in points}
        assert by_dim[32].efficiency < 0.2
        assert by_dim[512].efficiency > by_dim[32].efficiency

    def test_drain_share_example(self):
        """Section V-C: ~84.8% of cycles transmit results (we measure ~86%)."""
        example = throughput_cliff_example()
        assert abs(example["drain_fraction"] - example["paper_drain_fraction"]) < 0.05

    def test_nonlinear_scales_with_both_axes(self):
        points = figure8_nonlinear(pe_dims=(4, 8), mac_counts=(4, 16), matrix_dims=(512,))
        by = {(p.pe_dim, p.macs): p.achieved for p in points}
        assert by[(8, 4)] > by[(4, 4)]
        assert by[(8, 16)] > by[(8, 4)]

    def test_format_contains_max_column(self):
        text = format_figure8(figure8_linear(pe_dims=(4,), mac_counts=(4,)), "GOPS")
        assert "max" in text


class TestFig10:
    def test_sweep_structure(self):
        sweep = figure10_pareto("linear", matrix_dims=(128,))
        assert set(sweep) == {128}
        assert len(sweep[128]["points"]) == 20
        assert 0 < len(sweep[128]["front"]) <= 20

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            evaluate_design(4, 4, 128, "quantum")

    def test_more_macs_lower_latency(self):
        few = evaluate_design(8, 2, 512, "linear")
        many = evaluate_design(8, 32, 512, "linear")
        assert many.latency_s < few.latency_s

    def test_mac16_designs_near_frontier(self):
        sweep = figure10_pareto("linear")
        assert mac16_near_frontier(sweep)

    def test_nonlinear_frontier_has_high_mac_designs(self):
        sweep = figure10_pareto("nonlinear")
        assert max(frontier_mac_counts(sweep)) >= 16

    def test_linear_optima_serve_nonlinear(self):
        """Section V-C's cross-mode claim at the recommended >=16 MACs."""
        assert linear_optima_serve_nonlinear()

    def test_nonlinear_power_below_linear(self):
        lin = evaluate_design(8, 16, 128, "linear")
        non = evaluate_design(8, 16, 128, "nonlinear")
        assert non.power_w < lin.power_w


class TestResourceHarnesses:
    def test_table1_values(self):
        data = table1_module_resources()
        assert data["pe"]["sa"].ff == 1862
        assert data["l3"]["one-sa"].lut == 1021

    def test_table2_matches_paper_constants(self):
        for entry in table2_total_resources():
            dim = entry["dim"]
            for design in ("sa", "one-sa"):
                published = PAPER_TABLE2[(dim, design)]
                ours = entry[design]
                assert int(ours.bram) == published["bram"]
                assert int(ours.lut) == published["lut"]
                assert int(ours.ff) == published["ff"]
                assert int(ours.dsp) == published["dsp"]

    def test_fig9_rows_cover_design_space(self):
        rows = figure9_resource_sweep(pe_dims=(2, 4), mac_counts=(2, 4))
        assert len(rows) == 4
        assert all(r["lut"] > 0 for r in rows)

    def test_table5_matches_paper(self):
        rows = {r["buffer"]: r for r in table5_buffer_sizes()}
        assert rows["L3"]["size_kb"] == pytest.approx(0.28, abs=0.005)
        assert rows["L2"]["size_kb"] == pytest.approx(0.5)
        assert rows["PE"]["size_kb"] == pytest.approx(0.094, abs=0.001)
        assert rows["L1"]["size_kb"] == pytest.approx(0.031, abs=0.001)
        assert rows["L2"]["count"] == 24
        assert rows["L1"]["count"] == 64

    def test_format_helpers_render(self):
        assert "Table I" in format_table1()
        assert "OneSA" in format_table2()
        assert "0.5" in format_table5()


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1]

    def test_percent_formatting(self):
        assert as_percent(0.123) == "12.3%"
        assert delta_percent(0.9, 0.95) == "-5.0"
