"""Experiment harnesses: one entry point per paper table/figure.

================  =====================================================
Paper artifact    Harness
================  =====================================================
Fig. 1            :func:`repro.evaluation.breakdown.figure1_breakdown`
Table I           :func:`repro.evaluation.resource_sweep.table1_module_resources`
Table II          :func:`repro.evaluation.resource_sweep.table2_total_resources`
Table III         :func:`repro.evaluation.accuracy.table3_accuracy`
Fig. 8            :func:`repro.evaluation.perf_sweep.figure8_throughput`
Fig. 9            :func:`repro.evaluation.resource_sweep.figure9_resource_sweep`
Fig. 10           :func:`repro.evaluation.pareto_sweep.figure10_pareto`
Table IV          :func:`repro.evaluation.comparison.table4_comparison`
Table V           :func:`repro.evaluation.resource_sweep.table5_buffer_sizes`
================  =====================================================

Each harness returns plain data structures (lists of dict rows /
series) and has a ``format_*`` companion producing the paper-style
text table, so the benchmark suite can both assert on the data and
print the artifact.
"""

from repro.evaluation.reporting import format_table

__all__ = ["format_table"]
