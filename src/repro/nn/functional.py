"""Forward/backward kernels that need custom (non-composed) rules.

Convolution is expressed through im2col so that on the accelerator side
it maps to exactly the GEMM the systolic array executes (the paper's
"im2col-based convolution", Section II-A); pooling uses window
reshaping.  Each op builds a custom autograd node so training stays
vectorized.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.autograd import Tensor


def im2col(
    images: np.ndarray, kernel: int, stride: int = 1, padding: int = 0
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold ``(N, C, H, W)`` images into GEMM-ready patch rows.

    Returns ``(cols, (out_h, out_w))`` where ``cols`` has shape
    ``(N * out_h * out_w, C * kernel * kernel)`` — multiplying by a
    ``(C k k, F)`` weight matrix is the convolution, which is how the
    executor maps conv layers onto the array.
    """
    n, c, h, w = images.shape
    if padding:
        images = np.pad(
            images,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    strides = images.strides
    windows = np.lib.stride_tricks.as_strided(
        images,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        n * out_h * out_w, c * kernel * kernel
    )
    return np.ascontiguousarray(cols), (out_h, out_w)


def col2im(
    cols: np.ndarray,
    image_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Fold patch rows back into image gradients (inverse of im2col)."""
    n, c, h, w = image_shape
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding))
    windows = cols.reshape(n, out_h, out_w, c, kernel, kernel)
    for ki in range(kernel):
        for kj in range(kernel):
            padded[
                :,
                :,
                ki : ki + out_h * stride : stride,
                kj : kj + out_w * stride : stride,
            ] += windows[:, :, :, :, ki, kj].transpose(0, 3, 1, 2)
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution: ``x (N,C,H,W)``, ``weight (F,C,k,k)``, ``bias (F,)``."""
    n, c, h, w = x.shape
    f, c2, kernel, kernel2 = weight.shape
    if c != c2 or kernel != kernel2:
        raise ValueError(f"incompatible conv shapes {x.shape} and {weight.shape}")
    cols, (out_h, out_w) = im2col(x.data, kernel, stride, padding)
    w_mat = weight.data.reshape(f, -1)  # (F, Ckk)
    out_mat = cols @ w_mat.T + bias.data  # (N*oh*ow, F)
    out_data = out_mat.reshape(n, out_h, out_w, f).transpose(0, 3, 1, 2)

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(-1, f)
        if weight.requires_grad:
            weight._accumulate((grad_mat.T @ cols).reshape(weight.shape))
        if bias.requires_grad:
            bias._accumulate(grad_mat.sum(axis=0))
        if x.requires_grad:
            grad_cols = grad_mat @ w_mat
            x._accumulate(col2im(grad_cols, x.shape, kernel, stride, padding))

    return x._make(out_data, (x, weight, bias), backward)


def max_pool2d(x: Tensor, kernel: int = 2, stride: int = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) square windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    strides = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    flat = windows.reshape(n, c, out_h, out_w, kernel * kernel)
    arg = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_input = np.zeros_like(x.data)
        ki, kj = np.divmod(arg, kernel)
        n_idx, c_idx, oh_idx, ow_idx = np.indices(arg.shape)
        rows = oh_idx * stride + ki
        cols_ = ow_idx * stride + kj
        np.add.at(grad_input, (n_idx, c_idx, rows, cols_), grad)
        x._accumulate(grad_input)

    return x._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int = 2, stride: int = None) -> Tensor:
    """Average pooling over square windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    strides = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    out_data = windows.mean(axis=(-2, -1))
    scale = 1.0 / (kernel * kernel)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_input = np.zeros_like(x.data)
        for ki in range(kernel):
            for kj in range(kernel):
                grad_input[
                    :,
                    :,
                    ki : ki + out_h * stride : stride,
                    kj : kj + out_w * stride : stride,
                ] += grad * scale
        x._accumulate(grad_input)

    return x._make(out_data, (x,), backward)


def embedding_lookup(table: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of an embedding table for integer ``indices``."""
    indices = np.asarray(indices)
    out_data = table.data[indices]

    def backward(grad: np.ndarray) -> None:
        if table.requires_grad:
            full = np.zeros_like(table.data)
            np.add.at(full, indices, grad)
            table._accumulate(full)

    return table._make(out_data, (table,), backward)
