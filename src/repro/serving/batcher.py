"""Dynamic batching of queued inference requests.

Batches group requests *per (tenant, model, prefix-key)* in arrival
order — one batch never mixes tenants, so its traced cycles attribute
to exactly one tenant, and never mixes prompt prefixes, so a
prefix-cache decision applies to the whole batch (hits and misses
cannot silently share one stacked inference).  Requests without a
prefix key (``prefix_key=None``, every endpoint without a prefix
adapter) group exactly as before.  An open batch flushes when either
knob fires:

* **max_batch_size** — the batch is full the moment the Nth request
  joins; it becomes ready at that request's arrival time;
* **flush_timeout** — an incomplete batch stops waiting for company
  ``flush_timeout`` seconds after its oldest request arrived and
  becomes ready at that deadline.

Two front-ends share those semantics:

* :class:`DynamicBatcher` plans a complete request list offline
  (the PR-1 drain model; kept as the reference semantics);
* :class:`BatchAssembler` applies the same rules *incrementally* —
  requests are admitted one at a time, open groups can be inspected
  and popped as simulated time advances — which is what lets the
  scheduler loop accept new requests while a batch is in flight.

Batching is planned deterministically from the arrival timestamps
(discrete-event style) rather than with threads, so a request stream
always produces the same batches — the property the equivalence tests
rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serving.request import InferenceRequest
from repro.serving.tenancy import DEFAULT_TENANT


def _flush_order(timer: "Tuple[float, Tuple[str, str, Optional[str]]]"):
    """Total order for expiring flush timers.

    Deadline first, then the group key with ``prefix_key=None`` sorted
    before real keys (``None`` and ``str`` do not compare directly);
    prefix-less groups keep the exact pre-prefix ordering.
    """
    when, (tenant, model, prefix_key) = timer
    return (when, tenant, model, prefix_key is not None, prefix_key or "")


@dataclass(frozen=True)
class Batch:
    """A group of same-tenant, same-model, same-prefix requests
    executed as one stacked inference."""

    index: int
    model: str
    requests: Tuple[InferenceRequest, ...]
    ready_time: float
    tenant: str = DEFAULT_TENANT
    prefix_key: Optional[str] = None

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def oldest_arrival(self) -> float:
        return self.requests[0].arrival


class DynamicBatcher:
    """Plans batches from a request stream with size/timeout knobs.

    Parameters
    ----------
    max_batch_size:
        Largest number of requests packed into one batch (>= 1).
    flush_timeout:
        Simulated seconds an incomplete batch waits for more requests
        before flushing.  ``0.0`` disables coalescing across distinct
        arrival times (same-time requests still share a batch).
    """

    def __init__(self, max_batch_size: int = 8, flush_timeout: float = 1e-3):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if flush_timeout < 0:
            raise ValueError(f"flush_timeout must be >= 0, got {flush_timeout}")
        self.max_batch_size = int(max_batch_size)
        self.flush_timeout = float(flush_timeout)

    def plan(self, requests: Sequence[InferenceRequest]) -> List[Batch]:
        """Group ``requests`` into batches, ordered by ready time."""
        Key = Tuple[str, str, Optional[str]]  # (tenant, model, prefix_key)
        pending: Dict[Key, List[InferenceRequest]] = {}
        deadline: Dict[Key, float] = {}
        batches: List[Batch] = []

        def flush(key: Key, at: float) -> None:
            group = pending.pop(key, [])
            deadline.pop(key, None)
            if group:
                batches.append(
                    Batch(
                        index=len(batches),
                        model=key[1],
                        requests=tuple(group),
                        ready_time=at,
                        tenant=key[0],
                        prefix_key=key[2],
                    )
                )

        for req in sorted(requests, key=lambda r: (r.arrival, r.request_id)):
            # Timers that expired strictly before this arrival fire
            # first, in deadline order, so batch indices are
            # deterministic.  A request landing exactly at a deadline
            # still joins (this is what keeps a same-instant burst in
            # one batch even with flush_timeout=0).
            expired = sorted(
                (
                    (when, key)
                    for key, when in deadline.items()
                    if when < req.arrival
                ),
                key=_flush_order,
            )
            for when, key in expired:
                flush(key, at=when)

            key = (req.tenant, req.model, req.prefix_key)
            group = pending.setdefault(key, [])
            group.append(req)
            if len(group) == 1:
                deadline[key] = req.arrival + self.flush_timeout
            if len(group) >= self.max_batch_size:
                flush(key, at=req.arrival)

        # End of stream: remaining timers run out.
        for when, key in sorted(
            ((when, key) for key, when in deadline.items()), key=_flush_order
        ):
            flush(key, at=when)

        batches.sort(key=lambda b: (b.ready_time, b.index))
        return [
            Batch(
                index=i,
                model=b.model,
                requests=b.requests,
                ready_time=b.ready_time,
                tenant=b.tenant,
            )
            for i, b in enumerate(batches)
        ]


@dataclass
class OpenGroup:
    """One in-assembly batch of a ``(tenant, model, prefix_key)`` group.

    ``closed_at`` is set the moment the group stops accepting requests
    — at the size-capping request's arrival when it fills, or at its
    flush deadline when a later same-key arrival proves the deadline
    has passed; until then the group's ready time is its oldest
    arrival plus the flush timeout.
    """

    tenant: str
    model: str
    seq: int
    requests: List[InferenceRequest] = field(default_factory=list)
    closed_at: Optional[float] = None
    prefix_key: Optional[str] = None

    def ready_time(self, flush_timeout: float) -> float:
        if self.closed_at is not None:
            return self.closed_at
        return self.requests[0].arrival + flush_timeout

    @property
    def size(self) -> int:
        return len(self.requests)


class BatchAssembler:
    """Incremental batch assembly with the :class:`DynamicBatcher` rules.

    Requests are admitted one at a time into at most one *open* group
    per ``(tenant, model)`` pair; a group that reaches
    ``max_batch_size`` closes immediately (ready at the filling
    arrival) and the next same-key request starts a fresh group, while
    a partial group becomes ready ``flush_timeout`` after its oldest
    arrival.  The scheduler polls :meth:`earliest_ready` /
    :meth:`ready_groups` as its simulated clock advances and pops
    groups for execution — admission between pops is what the
    admit-while-in-flight serving path rides on.

    Fed the same request stream, the assembler produces exactly the
    *batch compositions and ready times* :meth:`DynamicBatcher.plan`
    would (the scheduler tests assert this).  Execution order of
    batches tied at the same ready instant is admission (seq) order —
    policy-arbitrated across tenants — rather than the offline
    planner's flush order, which for timer ties was an artifact of
    key iteration.
    """

    def __init__(self, max_batch_size: int = 8, flush_timeout: float = 1e-3):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if flush_timeout < 0:
            raise ValueError(f"flush_timeout must be >= 0, got {flush_timeout}")
        self.max_batch_size = int(max_batch_size)
        self.flush_timeout = float(flush_timeout)
        self._open: Dict[Tuple[str, str, Optional[str]], OpenGroup] = {}
        self._closed: Dict[int, OpenGroup] = {}  # seq -> group, insertion order
        self._seq = 0
        self._n_pending = 0
        self._pending_by_tenant: Dict[str, int] = {}
        # Cached min ready time over all groups.  Admission only ever
        # adds a group or *lowers* one's ready time (closing on fill),
        # so the cache updates in O(1) per admit; a pop recomputes it
        # (O(groups), once per executed batch).
        self._earliest: Optional[float] = None

    @property
    def n_pending(self) -> int:
        """Requests admitted and not yet popped."""
        return self._n_pending

    def pending_of(self, tenant: str) -> int:
        """Requests of one tenant admitted and not yet popped (O(1)).

        The quantity per-tenant queue-depth caps are enforced against.
        """
        return self._pending_by_tenant.get(tenant, 0)

    def _groups(self) -> List[OpenGroup]:
        return list(self._closed.values()) + list(self._open.values())

    def _close(self, group: OpenGroup, at: float) -> None:
        group.closed_at = at
        del self._open[(group.tenant, group.model, group.prefix_key)]
        self._closed[group.seq] = group

    def admit(self, request: InferenceRequest) -> None:
        """Add one request to its (tenant, model, prefix) group (O(1)).

        A same-key group whose flush deadline already passed (strictly
        before this arrival) is sealed first, exactly as
        :meth:`DynamicBatcher.plan` fires expired timers before a new
        request joins — the request then opens a fresh group.
        """
        key = (request.tenant, request.model, request.prefix_key)
        group = self._open.get(key)
        if group is not None and group.ready_time(self.flush_timeout) < request.arrival:
            self._close(group, at=group.ready_time(self.flush_timeout))
            group = None
        if group is None:
            group = OpenGroup(
                tenant=request.tenant,
                model=request.model,
                seq=self._seq,
                prefix_key=request.prefix_key,
            )
            self._seq += 1
            self._open[key] = group
        group.requests.append(request)
        self._n_pending += 1
        self._pending_by_tenant[request.tenant] = (
            self._pending_by_tenant.get(request.tenant, 0) + 1
        )
        if group.size >= self.max_batch_size:
            self._close(group, at=request.arrival)
        ready = group.ready_time(self.flush_timeout)
        if self._earliest is None or ready < self._earliest:
            self._earliest = ready

    def earliest_ready(self) -> Optional[float]:
        """Soonest simulated time any group is ready (None if empty, O(1))."""
        return self._earliest

    def ready_groups(self, now: float) -> List[OpenGroup]:
        """Groups ready at or before ``now``, in (ready, seq) order."""
        ready = [
            g
            for g in self._groups()
            if g.ready_time(self.flush_timeout) <= now
        ]
        ready.sort(key=lambda g: (g.ready_time(self.flush_timeout), g.seq))
        return ready

    def pop(self, group: OpenGroup, index: int) -> Batch:
        """Remove ``group`` from assembly as an executable :class:`Batch`."""
        if group.closed_at is not None:
            del self._closed[group.seq]
        else:
            del self._open[(group.tenant, group.model, group.prefix_key)]
        self._n_pending -= group.size
        remaining = self._pending_by_tenant.get(group.tenant, 0) - group.size
        if remaining > 0:
            self._pending_by_tenant[group.tenant] = remaining
        else:
            self._pending_by_tenant.pop(group.tenant, None)
        times = [g.ready_time(self.flush_timeout) for g in self._groups()]
        self._earliest = min(times) if times else None
        return Batch(
            index=index,
            model=group.model,
            requests=tuple(group.requests),
            ready_time=group.ready_time(self.flush_timeout),
            tenant=group.tenant,
            prefix_key=group.prefix_key,
        )

    def clear(self) -> None:
        """Drop every admitted-but-unpopped request."""
        self._open.clear()
        self._closed.clear()
        self._n_pending = 0
        self._pending_by_tenant.clear()
        self._earliest = None
