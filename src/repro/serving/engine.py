"""The batched inference serving engine.

:class:`InferenceEngine` accepts concurrent requests for any number of
registered models, packs co-pending same-model requests into shared
batches (one stacked ``infer`` call — whose linear layers fold the
batch into single wide GEMM tiles), and places the batches on a
:class:`~repro.serving.dispatcher.ShardedDispatcher` pool round-robin.
Each run produces a :class:`~repro.serving.report.ServingReport` with
latency percentiles, throughput and cycles/request aggregated from the
per-array traces.

Batched execution is bit-identical to running every request alone:
stacking adds rows to the GEMMs and elementwise stages, and every
output element is still produced by the same saturating fixed-point
dot product — the equivalence the test suite asserts per backend.

**Memory contract.**  A serving process is long-lived, so the engine
puts every hardware shard's trace into *aggregate-only* mode at
construction (see :class:`~repro.systolic.trace.Trace`): per-request
cycle accounting reads the O(1) streaming aggregates and no further
per-event log accumulates (events a trace already retained are left
in place), keeping shard memory constant over arbitrarily long
request streams.  Request outputs are handed over exactly once by
:meth:`InferenceEngine.result` and released.  Pass
``retain_trace_events=True`` to keep the full per-event logs instead
(for Fig.-1-style op-mix breakdowns of a serving run); memory then
grows with the number of traced operations until
:meth:`InferenceEngine.reset`.

Typical use::

    from repro.serving import InferenceEngine, ShardedDispatcher
    from repro.systolic import SystolicArray, ONE_SA_PAPER_CONFIG

    pool = ShardedDispatcher.from_arrays(
        [SystolicArray(ONE_SA_PAPER_CONFIG) for _ in range(2)], 0.25
    )
    engine = InferenceEngine(pool, max_batch_size=8, flush_timeout=1e-4)
    engine.register("bert", model)
    ids = [engine.submit("bert", tokens) for tokens in token_rows]
    report = engine.run()
    outputs = [engine.result(i) for i in ids]
    print(report.summary())
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.serving.batcher import Batch, DynamicBatcher
from repro.serving.dispatcher import ShardedDispatcher
from repro.serving.report import ServingReport
from repro.serving.request import CompletedRequest, InferenceRequest


@dataclass(frozen=True)
class ModelEndpoint:
    """A registered model: a name plus its batched inference callable.

    ``infer_fn(batch_inputs, backend)`` receives the stacked
    ``(B, ...)`` input array for batchable endpoints, or one unstacked
    sample when ``batchable`` is False (models whose inputs cannot be
    stacked, e.g. graphs of varying size).
    """

    name: str
    infer_fn: Callable[[np.ndarray, object], np.ndarray]
    batchable: bool = True


class InferenceEngine:
    """Queue + dynamic batcher + sharded dispatch over model endpoints.

    Parameters
    ----------
    dispatcher:
        The shard pool batches execute on.
    max_batch_size, flush_timeout:
        Dynamic-batching knobs (see
        :class:`~repro.serving.batcher.DynamicBatcher`).
    retain_trace_events:
        False (default) flips every hardware shard's trace to
        aggregate-only mode so serving memory stays bounded; True keeps
        the full per-event logs on the shard arrays (see the module
        docstring's memory contract).
    """

    def __init__(
        self,
        dispatcher: ShardedDispatcher,
        max_batch_size: int = 8,
        flush_timeout: float = 1e-3,
        retain_trace_events: bool = False,
    ):
        self.dispatcher = dispatcher
        for shard in range(dispatcher.n_shards):
            array = dispatcher.array_of(shard)
            if array is not None:
                array.trace.configure(retain_events=retain_trace_events)
        self.batcher = DynamicBatcher(max_batch_size, flush_timeout)
        self._endpoints: Dict[str, ModelEndpoint] = {}
        self._pending: List[InferenceRequest] = []
        self._results: Dict[int, np.ndarray] = {}
        self._next_id = 0
        self._last_arrival = 0.0
        self._shard_free: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Registration and submission
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        model: Optional[object] = None,
        *,
        infer_fn: Optional[Callable[[np.ndarray, object], np.ndarray]] = None,
        batchable: bool = True,
    ) -> None:
        """Register a model endpoint under ``name``.

        Pass either ``model`` (an object with ``infer(inputs, backend)``)
        or an explicit ``infer_fn``.
        """
        if (model is None) == (infer_fn is None):
            raise ValueError("register() needs exactly one of model / infer_fn")
        if infer_fn is None:
            infer_fn = model.infer  # type: ignore[union-attr]
        self._endpoints[name] = ModelEndpoint(name, infer_fn, batchable)

    def submit(
        self,
        model: str,
        inputs: np.ndarray,
        arrival: Optional[float] = None,
    ) -> int:
        """Queue one request; returns its id for :meth:`result`.

        ``arrival`` is the simulated arrival time; it defaults to the
        previous request's arrival, so back-to-back submissions model a
        concurrent burst that the batcher may pack together.
        """
        if model not in self._endpoints:
            raise KeyError(
                f"unknown model {model!r}; registered: {sorted(self._endpoints)}"
            )
        if arrival is None:
            arrival = self._last_arrival
        if arrival < 0:
            raise ValueError(f"arrival must be >= 0, got {arrival}")
        self._last_arrival = float(arrival)
        request = InferenceRequest(
            request_id=self._next_id,
            model=model,
            inputs=np.asarray(inputs),
            arrival=float(arrival),
        )
        self._next_id += 1
        self._pending.append(request)
        return request.request_id

    @property
    def pending(self) -> int:
        """Number of queued, not yet executed requests."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> ServingReport:
        """Drain the queue: batch, dispatch, execute, account.

        Returns the serving report for the requests processed by *this*
        call; their outputs become available via :meth:`result`.
        """
        requests, self._pending = self._pending, []
        wall_start = time.perf_counter()
        cycles_before = self.dispatcher.shard_cycles()
        completed: List[CompletedRequest] = []
        for batch in self.batcher.plan(requests):
            completed.extend(self._execute_batch(batch))
        cycles_after = self.dispatcher.shard_cycles()
        for record in completed:
            self._results[record.request.request_id] = record.outputs
        shard_cycles = {
            shard: cycles_after[shard] - cycles_before.get(shard, 0)
            for shard in cycles_after
        }
        return ServingReport(
            completed=tuple(completed),
            shard_cycles=shard_cycles,
            wall_seconds=time.perf_counter() - wall_start,
        )

    def result(self, request_id: int, keep: bool = False) -> np.ndarray:
        """Output of a completed request (KeyError if not yet run).

        By default the output is handed over exactly once and released,
        so a long-lived engine does not accumulate every response it
        has ever produced; pass ``keep=True`` to leave it retrievable
        (it then stays resident until fetched without ``keep`` or
        :meth:`reset`).
        """
        if keep:
            return self._results[request_id]
        return self._results.pop(request_id)

    def reset(self) -> None:
        """Drop queued requests, stored results and shard occupancy."""
        self._pending.clear()
        self._results.clear()
        self._shard_free.clear()
        self._last_arrival = 0.0
        self.dispatcher.reset()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _execute_batch(self, batch: Batch) -> List[CompletedRequest]:
        endpoint = self._endpoints[batch.model]
        shard, backend = self.dispatcher.acquire()
        array = self.dispatcher.array_of(shard)
        cycles_before = array.total_cycles if array is not None else 0

        t0 = time.perf_counter()
        if endpoint.batchable:
            stacked = np.stack([r.inputs for r in batch.requests])
            outputs = np.asarray(endpoint.infer_fn(stacked, backend))
            if outputs.ndim < 1 or outputs.shape[0] != batch.size:
                raise ValueError(
                    f"endpoint {endpoint.name!r} returned output of shape "
                    f"{outputs.shape} for a batch of {batch.size}; a "
                    "batchable infer_fn must preserve the leading batch "
                    "axis (register with batchable=False otherwise)"
                )
            per_request = list(outputs)
        else:
            per_request = [
                np.asarray(endpoint.infer_fn(r.inputs, backend))
                for r in batch.requests
            ]
        elapsed_wall = time.perf_counter() - t0

        if array is not None:
            batch_cycles = array.total_cycles - cycles_before
            duration = batch_cycles / array.config.clock_hz
        else:
            # Functional backends have no cycle model; charge the host
            # execution time so latency stays meaningful.
            batch_cycles = 0
            duration = elapsed_wall

        start = max(batch.ready_time, self._shard_free.get(shard, 0.0))
        finish = start + duration
        self._shard_free[shard] = finish
        return [
            CompletedRequest(
                request=req,
                outputs=out,
                shard=shard,
                batch_index=batch.index,
                batch_size=batch.size,
                start=start,
                finish=finish,
                batch_cycles=batch_cycles,
            )
            for req, out in zip(batch.requests, per_request)
        ]
