"""Serving-level performance report.

Aggregates one :meth:`InferenceEngine.run` into the metrics a serving
operator watches: latency percentiles, request throughput, and the
cycle cost per request summed over every shard's array trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.serving.request import CompletedRequest


@dataclass(frozen=True)
class ServingReport:
    """Summary of one engine run.

    Attributes
    ----------
    completed:
        Every finished request with placement and timing.
    shard_cycles:
        Traced cycles per hardware-routed shard, summed over the run.
    wall_seconds:
        Host wall-clock time the run took (simulation cost, *not* the
        modelled latency).
    """

    completed: Tuple[CompletedRequest, ...]
    shard_cycles: Dict[int, int]
    wall_seconds: float

    # -- request-level views --------------------------------------------
    @property
    def n_requests(self) -> int:
        return len(self.completed)

    @property
    def latencies(self) -> np.ndarray:
        """Per-request simulated latencies, seconds."""
        return np.array([c.latency for c in self.completed], dtype=np.float64)

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile of request latency (seconds)."""
        if not self.completed:
            return 0.0
        return float(np.percentile(self.latencies, q))

    @property
    def p50(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p90(self) -> float:
        return self.latency_percentile(90.0)

    @property
    def p99(self) -> float:
        return self.latency_percentile(99.0)

    # -- run-level views ------------------------------------------------
    @property
    def makespan(self) -> float:
        """First arrival to last completion, simulated seconds."""
        if not self.completed:
            return 0.0
        first = min(c.request.arrival for c in self.completed)
        last = max(c.finish for c in self.completed)
        return last - first

    @property
    def throughput_rps(self) -> float:
        """Requests per simulated second over the makespan."""
        span = self.makespan
        return self.n_requests / span if span > 0 else 0.0

    @property
    def total_cycles(self) -> int:
        return sum(self.shard_cycles.values())

    @property
    def cycles_per_request(self) -> float:
        return self.total_cycles / self.n_requests if self.completed else 0.0

    @property
    def n_batches(self) -> int:
        return len({(c.shard, c.batch_index) for c in self.completed})

    @property
    def mean_batch_size(self) -> float:
        return self.n_requests / self.n_batches if self.n_batches else 0.0

    def summary(self) -> str:
        """Paper-artifact-style text table of the serving run."""
        lines = [
            f"requests served      : {self.n_requests}",
            f"batches executed     : {self.n_batches} "
            f"(mean size {self.mean_batch_size:.2f})",
            f"throughput           : {self.throughput_rps:,.0f} req/s (simulated)",
            f"latency p50/p90/p99  : {self.p50 * 1e6:,.1f} / "
            f"{self.p90 * 1e6:,.1f} / {self.p99 * 1e6:,.1f} us",
            f"cycles per request   : {self.cycles_per_request:,.0f}",
        ]
        for shard in sorted(self.shard_cycles):
            lines.append(
                f"  shard {shard} cycles    : {self.shard_cycles[shard]:,}"
            )
        lines.append(f"host wall time       : {self.wall_seconds * 1e3:,.1f} ms")
        return "\n".join(lines)
