"""Intermediate Parameter Fetching (IPF).

IPF is the first of the two architecture-level events a nonlinear
operation decomposes into (Section III-A, steps 1 and 2):

1. compute the segment matrix ``S`` from the input matrix ``X`` — in
   hardware this happens in the L3 buffer's data-addressing module, which
   shifts the fixed-point input (power-of-two segment lengths) and caps
   the result with the scale module (Fig. 5);
2. gather the pre-stored slope/intercept parameters into matrices
   ``K, B ∈ R^{M×N}`` and stage them (through DRAM, in the paper's
   implementation) for the Matrix Hadamard Product.

This module implements the event functionally, bit-faithful to the
shift/cap datapath, and reports the traffic quantities the timing model
charges for it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.segment_table import QuantizedSegmentTable, SegmentTable
from repro.fixedpoint import QFormat, quantize


@dataclass(frozen=True)
class IPFResult:
    """Output of one Intermediate Parameter Fetching event.

    Attributes
    ----------
    segments:
        The capped segment-index matrix ``S`` (int64, same shape as X).
    k_raw, b_raw:
        Raw fixed-point parameter matrices ``K`` and ``B``.
    shift_path:
        Whether the segment indices were produced by the pure-shift
        datapath (power-of-two granularity) or needed the scale
        multiplier.
    elements:
        Number of elements processed (traffic accounting).
    """

    segments: np.ndarray
    k_raw: np.ndarray
    b_raw: np.ndarray
    shift_path: bool
    elements: int


def segment_indices(
    x_raw: np.ndarray, table: SegmentTable, fmt: QFormat
) -> np.ndarray:
    """Segment matrix ``S`` from raw fixed-point inputs.

    For power-of-two granularities this reproduces the data-shift module:
    with ``granularity = 2**g`` and ``frac_bits = F`` fractional bits, the
    uncapped index is ``(x_raw - x_min_raw) >> (F + g')`` where
    ``g' = -log2(granularity)``; the scale module then caps it into the
    valid range.  Non-power-of-two granularities go through the scale
    multiplier, computing the same floor division.
    """
    x_raw = np.asarray(x_raw, dtype=np.int64)
    # Both datapaths subtract the *same* domain-origin register: an INT16
    # value produced by the ordinary quantizer (round half away from
    # zero, saturating).  Deriving it with a bare ``np.round`` instead
    # made the shift path disagree with the scale path whenever the
    # table domain touched (or exceeded) the format's representable
    # range, because the register cannot hold the unsaturated origin.
    x_min_raw = int(quantize(table.x_min, fmt))
    offset = x_raw - x_min_raw
    if table.shift_path:
        # Shift amount: index = floor((x - x_min) / 2**log2g)
        # with x in raw units: (x_raw - x_min_raw) * 2**-F / 2**log2g.
        log2g = int(np.round(np.log2(table.granularity)))
        shift = fmt.frac_bits + log2g
        if shift >= 0:
            uncapped = offset >> shift
        else:
            # Granularity finer than one LSB: scale up (degenerate but legal).
            uncapped = offset << (-shift)
    else:
        # Scale-multiplier path: same floor division computed from the
        # same saturated origin register, so the two paths always agree.
        uncapped = np.floor(
            offset * fmt.scale / table.granularity
        ).astype(np.int64)
    return np.clip(uncapped, 0, table.n_segments - 1)


def fetch_parameters(
    x_raw: np.ndarray, qtable: QuantizedSegmentTable, fmt: QFormat
) -> IPFResult:
    """Run the full IPF event: addressing + parameter gather.

    Returns the segment matrix and raw ``(K, B)`` matrices ready for the
    Matrix Hadamard Product.
    """
    segments = segment_indices(x_raw, qtable.table, fmt)
    k_raw, b_raw = qtable.lookup_raw(segments)
    return IPFResult(
        segments=segments,
        k_raw=k_raw,
        b_raw=b_raw,
        shift_path=qtable.table.shift_path,
        elements=int(np.asarray(x_raw).size),
    )
