"""Continuous-batching autoregressive decode primitives.

The engine serves generation with Orca/vLLM-style *iteration-level
scheduling*: a request's prompt runs through the normal batch pipeline
as a **prefill** (grouped by prompt digest, so a batch shares one
prompt and one radix-cache lookup), after which the sequence joins the
engine's decode pool.  Every decode iteration re-forms its batch from
scratch — sequences that just finished a prefill join, finished
sequences retire — so the batch composition tracks the live set
instead of convoying behind the longest request.

:class:`GenerationAdapter` is the model-facing half: it validates the
request against the model's position table, runs prefill/decode steps,
and prices both with the closed-form cycle accounting of
:mod:`repro.nn.workload`.  Its :meth:`GenerationAdapter.decode` is
*crash-safe by construction*: the step runs on a stacked **copy** of
the member caches and returns the new K/V rows, so a fault-injected
attempt can be discarded without rolling anything back — the engine
appends the rows onto the per-sequence states only after the attempt
survives the fault checks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.executor import DecodeKV, KVTap
from repro.nn.workload import (
    transformer_decode_step_cycles,
    transformer_prefill_cycles,
)
from repro.serving.request import InferenceRequest


@dataclass(frozen=True)
class DecodeStepRecord:
    """One executed decode iteration (one token per member sequence).

    Attributes
    ----------
    step_index:
        Engine-wide batch index of the iteration (shares the numbering
        of prefill/classifier batches, so ``(shard, index)`` pairs stay
        unique across the run).
    model, tenant:
        The decode batch's endpoint and tenant (never mixed).
    shard:
        Shard the iteration executed on.
    batch_size:
        Member sequences decoded together — also the tokens produced.
    position:
        Shared K/V cache length before the step (the global position
        the fed tokens occupy).
    cycles:
        Traced array cycles the iteration cost.
    start, finish:
        Simulated execution window.
    attempt:
        0 for a first try; > 0 when the iteration was re-placed after
        shard faults.
    """

    step_index: int
    model: str
    tenant: str
    shard: int
    batch_size: int
    position: int
    cycles: int
    start: float
    finish: float
    attempt: int = 0

    @property
    def tokens(self) -> int:
        """Tokens produced by the iteration (one per member)."""
        return self.batch_size


@dataclass
class ActiveSequence:
    """A generation request between its prefill and its retirement.

    Mutable by design: the decode loop appends K/V rows and tokens
    after each successful iteration, and the fault path bumps
    ``attempt``/``ready_time`` in place.
    """

    request: InferenceRequest
    state: DecodeKV
    generated: List[int]
    ready_time: float
    first_start: float
    batch_cycles: int
    attempts: int = 1
    attempt: int = 0
    exclude_shard: Optional[int] = None
    last_shard: int = 0
    last_batch_index: int = 0
    last_batch_size: int = 1

    @property
    def position(self) -> int:
        """K/V rows cached so far (the next token's global position)."""
        return self.state.pos

    @property
    def finished(self) -> bool:
        gen = self.request.generation
        if len(self.generated) >= gen.max_new_tokens:
            return True
        return gen.stop_token is not None and self.generated[-1] == gen.stop_token


class GenerationAdapter:
    """Bridges a causal transformer to the engine's decode scheduler.

    Parameters
    ----------
    model:
        A causal :class:`~repro.nn.models.bert.TinyBERT`-shaped model:
        ``prefill`` / ``decode_step`` / ``seq_len`` plus the shape
        attributes the closed-form cycle accounting needs.
    """

    def __init__(self, model):
        if not getattr(model, "causal", False):
            raise ValueError("generation requires a causal model")
        self.model = model
        self._prefill_cycles: Dict[tuple, int] = {}
        self._decode_cycles: Dict[tuple, int] = {}

    # -- request validation / batching key ------------------------------
    def validate(self, prompt: np.ndarray, max_new_tokens: int) -> None:
        """Reject a request the model's position table cannot hold."""
        p = int(np.asarray(prompt).shape[-1])
        if p + max_new_tokens > self.model.seq_len:
            raise ValueError(
                f"prompt ({p}) + max_new_tokens ({max_new_tokens}) exceeds "
                f"the model's {self.model.seq_len}-entry position table"
            )

    def prompt_key(self, prompt: np.ndarray) -> str:
        """Content digest grouping identical prompts into one prefill."""
        tokens = np.ascontiguousarray(np.asarray(prompt, dtype=np.int64))
        digest = hashlib.sha256(tokens.tobytes()).hexdigest()[:32]
        return f"g{tokens.shape[-1]}-{digest}"

    # -- execution -------------------------------------------------------
    def prefill(
        self, prompts: np.ndarray, backend, cached: Optional[KVTap] = None
    ) -> Tuple[np.ndarray, DecodeKV]:
        """Run the prompt batch; returns ``(first tokens, stacked state)``."""
        logits, state = self.model.prefill(prompts, backend, cached=cached)
        return np.argmax(logits, axis=-1), state

    def decode(
        self, states: List[DecodeKV], tokens: np.ndarray, backend
    ) -> Tuple[np.ndarray, List[Tuple[np.ndarray, np.ndarray]]]:
        """One iteration over a copy of the member caches.

        Returns ``(next tokens, per-layer (k_rows, v_rows))`` with the
        rows shaped ``(B, 1, D)``; the member states are *not* mutated
        — the caller appends row ``j`` to member ``j`` on success.
        """
        scratch = DecodeKV.stack(states)
        logits = self.model.decode_step(scratch, np.asarray(tokens), backend)
        step_kv = [
            (scratch.k[i][:, -1:], scratch.v[i][:, -1:])
            for i in range(scratch.n_layers)
        ]
        return np.argmax(logits, axis=-1), step_kv

    def capture(self, state: DecodeKV, upto: int) -> KVTap:
        """Freeze sequence 0's first ``upto`` K/V rows as a cache payload."""
        tap = KVTap(prefix_len=upto)
        for i in range(state.n_layers):
            tap.capture(state.k[i][:, :upto], state.v[i][:, :upto])
        return tap

    # -- closed-form cycle accounting ------------------------------------
    def prefill_cycles(
        self, batch: int, prompt_len: int, cached_len: int, config
    ) -> int:
        """Traced cycles of a prefill (memoized closed form)."""
        key = (batch, prompt_len, cached_len, config)
        if key not in self._prefill_cycles:
            m = self.model
            self._prefill_cycles[key] = transformer_prefill_cycles(
                batch, prompt_len, cached_len,
                m.dim, m.heads, m.ff_dim, m.n_layers, m.vocab, config,
            )
        return self._prefill_cycles[key]

    def decode_cycles(self, batch: int, position: int, config) -> int:
        """Traced cycles of one decode iteration (memoized closed form)."""
        key = (batch, position, config)
        if key not in self._decode_cycles:
            m = self.model
            self._decode_cycles[key] = transformer_decode_step_cycles(
                batch, position,
                m.dim, m.heads, m.ff_dim, m.n_layers, m.vocab, config,
            )
        return self._decode_cycles[key]

    def cost_model(self, profile, config) -> int:
        """Cost hook for placement: price the profile as a cold prefill."""
        return self.prefill_cycles(
            profile.batch_size, int(profile.sample_shape[0]), 0, config
        )
