"""Q-format descriptor for signed fixed-point numbers.

A ``QFormat(total_bits, frac_bits)`` describes signed two's-complement
fixed point with ``total_bits - frac_bits - 1`` integer bits.  The paper's
datapath is INT16; the default format used across the package is Q16.8
(8 fractional bits), which covers the activation ranges of the evaluated
networks after per-tensor scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QFormat:
    """Signed two's-complement fixed-point format.

    Parameters
    ----------
    total_bits:
        Total width of the representation, including the sign bit.
    frac_bits:
        Number of fractional bits.  The represented value of a raw
        integer ``r`` is ``r * 2**-frac_bits``.
    """

    total_bits: int = 16
    frac_bits: int = 8

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise ValueError(f"total_bits must be >= 2, got {self.total_bits}")
        if self.frac_bits < 0:
            raise ValueError(f"frac_bits must be >= 0, got {self.frac_bits}")
        if self.frac_bits >= self.total_bits:
            raise ValueError(
                f"frac_bits ({self.frac_bits}) must be < total_bits "
                f"({self.total_bits})"
            )

    @property
    def int_bits(self) -> int:
        """Number of integer (magnitude) bits, excluding the sign bit."""
        return self.total_bits - self.frac_bits - 1

    @property
    def scale(self) -> float:
        """Value of one least-significant bit (2**-frac_bits)."""
        return 2.0 ** -self.frac_bits

    @property
    def raw_min(self) -> int:
        """Smallest representable raw integer."""
        return -(1 << (self.total_bits - 1))

    @property
    def raw_max(self) -> int:
        """Largest representable raw integer."""
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.raw_min * self.scale

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.raw_max * self.scale

    @property
    def resolution(self) -> float:
        """Alias of :attr:`scale`: the quantization step."""
        return self.scale

    def storage_dtype(self) -> np.dtype:
        """Smallest numpy signed integer dtype that holds raw values."""
        if self.total_bits <= 8:
            return np.dtype(np.int8)
        if self.total_bits <= 16:
            return np.dtype(np.int16)
        if self.total_bits <= 32:
            return np.dtype(np.int32)
        return np.dtype(np.int64)

    def accumulator(self, extra_bits: int = 16) -> "QFormat":
        """Wider format used by the PE multi-layer accumulator.

        The hardware accumulates products (which are ``2 * total_bits``
        wide before truncation) into a guard-banded register; modelling it
        as ``total_bits + extra_bits`` wide with the same binary point as
        a *product* (``2 * frac_bits``) matches how the multi-layer
        accumulator in Fig. 7 chains its adder tree.
        """
        return QFormat(self.total_bits + extra_bits, 2 * self.frac_bits)

    def describe(self) -> str:
        """Human-readable summary, e.g. ``'Q16.8 [-128.0, 127.996]'``."""
        return (
            f"Q{self.total_bits}.{self.frac_bits} "
            f"[{self.min_value}, {self.max_value}]"
        )


#: The paper's default datapath precision (INT16, Section V-A).
INT16 = QFormat(16, 8)

#: A wider debugging format used by some tests to isolate CPWL error
#: from quantization error.
INT32 = QFormat(32, 16)
