"""Heterogeneous shard pools: cost-aware placement vs blind round-robin.

Builds a skewed 4-shard cluster — one big 8x8x16 array at 250 MHz next
to three small 4x4x4 arrays, one of them down-clocked to 100 MHz — and
serves the same TinyBERT burst under all three placement policies:

* ``round_robin`` — the historical default, blind to shard speed and
  occupancy;
* ``least_loaded`` — occupancy-aware, cost-blind;
* ``cost_aware`` — estimates each shard's finish time for the batch
  shape from the closed-form cycle model (here declared through a
  batched-transformer :class:`~repro.nn.workload.Workload`) and picks
  the earliest.

Outputs are bit-identical across policies (grids and clocks change
timing, never arithmetic); the makespan, per-shard utilization and the
imbalance metric show what placement awareness buys.  A second pass
demonstrates admission control: a queue-depth cap and deadline-doomed
shedding on a best-effort tenant.

    python examples/heterogeneous_demo.py
"""

import numpy as np

from repro.nn.models import TinyBERT
from repro.nn.workload import transformer_serving_workload
from repro.serving import (
    ClusterSpec,
    InferenceEngine,
    TenantConfig,
    workload_cost_model,
)
from repro.systolic import SystolicConfig

GRANULARITY = 0.25

#: The skewed pool: capability ratio of ~32x between first and last.
POOL = [
    SystolicConfig(pe_rows=8, pe_cols=8, macs_per_pe=16, clock_hz=250e6),
    SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4, clock_hz=250e6),
    SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4, clock_hz=250e6),
    SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4, clock_hz=100e6),
]

BERT_KW = dict(vocab=16, seq_len=8, dim=8, heads=2, ff_dim=16, n_layers=1)


def build_engine(placement: str) -> InferenceEngine:
    spec = ClusterSpec.heterogeneous(POOL, granularity=GRANULARITY)
    engine = InferenceEngine(
        spec.build(), max_batch_size=4, flush_timeout=1e-4, placement=placement
    )
    cost = workload_cost_model(
        lambda batch, shape: transformer_serving_workload(
            batch,
            BERT_KW["seq_len"],
            BERT_KW["dim"],
            BERT_KW["heads"],
            BERT_KW["ff_dim"],
            BERT_KW["n_layers"],
        )
    )
    engine.register("bert", TinyBERT(**BERT_KW), cost_model=cost)
    return engine


def serve_burst(placement: str, tokens: np.ndarray):
    engine = build_engine(placement)
    ids = [engine.submit("bert", row, arrival=0.0) for row in tokens]
    report = engine.run()
    outputs = [engine.result(i) for i in ids]
    return outputs, report


def main() -> None:
    rng = np.random.default_rng(0)
    tokens = rng.integers(0, 16, size=(24, 8))

    print("=== the pool ===")
    print(ClusterSpec.heterogeneous(POOL).describe())

    results = {}
    for placement in ("round_robin", "least_loaded", "cost_aware"):
        outputs, report = serve_burst(placement, tokens)
        results[placement] = (outputs, report)
        print(f"\n=== placement: {placement} ===")
        print(f"makespan {report.makespan * 1e6:,.1f} us")
        print(report.placement_section())

    # Same numerics under every policy: placement moves work, not bits.
    rr_outputs = results["round_robin"][0]
    for placement in ("least_loaded", "cost_aware"):
        for a, b in zip(rr_outputs, results[placement][0]):
            assert np.array_equal(a, b)
    rr_span = results["round_robin"][1].makespan
    ca_span = results["cost_aware"][1].makespan
    print(
        f"\ncost_aware finishes the burst {rr_span / ca_span:.2f}x faster than "
        "round_robin (bit-identical outputs)"
    )

    # -- admission control -----------------------------------------------
    engine = build_engine("cost_aware")
    engine.tenants.register(
        TenantConfig("besteffort", max_queue_depth=4, shed_doomed=True)
    )
    for i, row in enumerate(rng.integers(0, 16, size=(10, 8))):
        # The 9th/10th requests carry deadlines already in the past.
        deadline = 0.0 if i >= 8 else None
        engine.submit(
            "bert", row, arrival=1e-6 * i, tenant="besteffort", deadline=deadline
        )
    report = engine.run()
    print("\n=== admission control (queue cap 4, shed_doomed) ===")
    print(
        f"served {report.n_requests}, shed {report.shed_count} "
        f"{report.shed_by_reason()}"
    )
    assert report.shed_count > 0


if __name__ == "__main__":
    main()
