"""Deterministic fault injection for the serving runtime.

A :class:`FaultPlan` is a *schedule* of failures expressed in simulated
time — the same clock the discrete-event serving loop runs on — so a
chaos run is exactly as reproducible as a healthy one: the same seed
produces the same plan, the same plan produces the same crashes at the
same instants, and the report's fault section is a deterministic
function of (requests, plan).  Four event kinds cover the failure
domains of the stack:

* :class:`ShardCrash` — the shard is dead for a window ``[at, until)``.
  A batch that would *start* inside the window fails dead-on-arrival
  (nothing executes); a batch already executing when ``at`` passes is
  killed mid-flight, its outputs discarded and the partial occupancy
  charged as wasted work.  The engine's per-shard circuit breaker
  (:class:`~repro.serving.cluster.ShardHealth`) opens on these
  failures and the batch retries elsewhere.
* :class:`ShardSlowdown` — service time of batches *starting* inside
  the window is multiplied by ``factor`` (a straggler, not a corpse:
  results stay bit-identical, only the timeline stretches).
* :class:`WorkerDeath` — a worker *process* of
  :func:`~repro.serving.multiproc.serve_multiproc` exits with
  ``exit_code`` at simulated time ``at``, losing its in-memory state.
  Consumed by the multiproc supervisor, not the engine.
* :class:`FabricFault` — a shared-store failure: ``"corrupt"`` entries
  (torn/garbage data files, applied by :func:`corrupt_fabric_entries`)
  or a ``"lock_timeout"`` (a stuck lock holder; tests inject it by
  actually holding the namespace lock).  The store layer degrades
  instead of failing: :class:`~repro.store.FileStore` quarantines
  corrupt entries as misses, :class:`~repro.store.TieredStore` drops
  to local-only mode on :class:`~repro.store.StoreLockTimeout`.

Plans are frozen, picklable (they cross the worker process boundary
inside :class:`~repro.serving.multiproc.WorkerConfig`) and composable:
:meth:`FaultPlan.for_shard_block` re-maps global shard indices onto a
worker's local block, :meth:`FaultPlan.without_worker_death` strips a
death event before the supervisor restarts its worker (so the restart
does not die again).

:class:`RetryPolicy` bounds recovery: capped exponential backoff in
simulated time, at most ``max_retries`` re-executions per batch.
:class:`FaultRecord` is the engine's per-failed-attempt log entry, the
raw material of :meth:`~repro.serving.report.ServingReport.fault_section`.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Event kinds
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ShardCrash:
    """Shard ``shard`` is dead over ``[at, until)`` (simulated seconds)."""

    shard: int
    at: float
    until: float

    def __post_init__(self) -> None:
        if not self.until > self.at >= 0.0:
            raise ValueError(
                f"crash window must satisfy 0 <= at < until, got "
                f"[{self.at}, {self.until})"
            )

    def covers(self, t: float) -> bool:
        return self.at <= t < self.until


@dataclass(frozen=True)
class ShardSlowdown:
    """Batches starting in ``[at, until)`` run ``factor``x slower."""

    shard: int
    at: float
    until: float
    factor: float

    def __post_init__(self) -> None:
        if not self.until > self.at >= 0.0:
            raise ValueError(
                f"slowdown window must satisfy 0 <= at < until, got "
                f"[{self.at}, {self.until})"
            )
        if self.factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1, got {self.factor}")

    def covers(self, t: float) -> bool:
        return self.at <= t < self.until


@dataclass(frozen=True)
class WorkerDeath:
    """Worker process ``worker`` exits ``exit_code`` at simulated ``at``."""

    worker: int
    at: float
    exit_code: int = 13

    def __post_init__(self) -> None:
        if self.exit_code == 0:
            raise ValueError("a death must exit nonzero (0 is a clean exit)")


@dataclass(frozen=True)
class FabricFault:
    """A shared-fabric failure: ``"corrupt"`` or ``"lock_timeout"``."""

    kind: str
    namespace: str
    at: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("corrupt", "lock_timeout"):
            raise ValueError(
                f"fabric fault kind must be 'corrupt' or 'lock_timeout', "
                f"got {self.kind!r}"
            )


FaultEvent = Union[ShardCrash, ShardSlowdown, WorkerDeath, FabricFault]


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of fault events in simulated time.

    Build one explicitly from events, or draw one from a seed with
    :meth:`from_seed`; either way the plan is a pure value — querying
    it never mutates anything, so the same plan replayed over the same
    request stream yields the same run.
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: Optional[int] = None

    @classmethod
    def from_seed(
        cls,
        seed: int,
        n_shards: int,
        horizon: float,
        *,
        crash_rate: float = 0.5,
        slowdown_rate: float = 0.3,
        max_downtime_frac: float = 0.3,
        max_slowdown: float = 4.0,
        n_workers: int = 0,
        death_rate: float = 0.0,
    ) -> "FaultPlan":
        """Draw a plan from ``seed`` over a ``horizon`` of simulated time.

        Per shard, with probability ``crash_rate`` one crash starts
        uniformly in ``[0, horizon)`` and lasts up to
        ``max_downtime_frac * horizon``; with probability
        ``slowdown_rate`` one slowdown window applies a factor up to
        ``max_slowdown``.  Per worker (when ``n_workers`` > 0), with
        probability ``death_rate`` the worker dies mid-horizon.  All
        draws come from one ``random.Random(seed)``, so the plan is a
        pure function of its arguments.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        rng = random.Random(seed)
        events: List[FaultEvent] = []
        for shard in range(n_shards):
            if rng.random() < crash_rate:
                at = rng.uniform(0.0, horizon)
                downtime = rng.uniform(0.05, max(max_downtime_frac, 0.05)) * horizon
                events.append(ShardCrash(shard=shard, at=at, until=at + downtime))
            if rng.random() < slowdown_rate:
                at = rng.uniform(0.0, horizon)
                span = rng.uniform(0.05, 0.5) * horizon
                factor = rng.uniform(1.5, max(max_slowdown, 1.5))
                events.append(
                    ShardSlowdown(shard=shard, at=at, until=at + span, factor=factor)
                )
        for worker in range(n_workers):
            if rng.random() < death_rate:
                events.append(
                    WorkerDeath(worker=worker, at=rng.uniform(0.2, 0.8) * horizon)
                )
        return cls(events=tuple(events), seed=seed)

    # -- queries ---------------------------------------------------------
    def __bool__(self) -> bool:
        return bool(self.events)

    def crashes(self, shard: int) -> Tuple[ShardCrash, ...]:
        return tuple(
            e for e in self.events if isinstance(e, ShardCrash) and e.shard == shard
        )

    def crash_covering(self, shard: int, t: float) -> Optional[ShardCrash]:
        """The crash window containing instant ``t``, if any (DOA check)."""
        for event in self.crashes(shard):
            if event.covers(t):
                return event
        return None

    def crash_within(
        self, shard: int, start: float, finish: float
    ) -> Optional[ShardCrash]:
        """The earliest crash striking strictly inside ``(start, finish)``.

        A batch that *started* before the crash and would finish after
        it dies mid-flight; a crash at exactly ``start`` is the DOA
        case (:meth:`crash_covering`), at or past ``finish`` a miss.
        """
        best: Optional[ShardCrash] = None
        for event in self.crashes(shard):
            if start < event.at < finish and (best is None or event.at < best.at):
                best = event
        return best

    def slowdown_factor(self, shard: int, t: float) -> float:
        """Product of slowdown factors whose window covers instant ``t``."""
        factor = 1.0
        for event in self.events:
            if (
                isinstance(event, ShardSlowdown)
                and event.shard == shard
                and event.covers(t)
            ):
                factor *= event.factor
        return factor

    def worker_death(self, worker: int) -> Optional[WorkerDeath]:
        for event in self.events:
            if isinstance(event, WorkerDeath) and event.worker == worker:
                return event
        return None

    def fabric_faults(self, kind: Optional[str] = None) -> Tuple[FabricFault, ...]:
        return tuple(
            e
            for e in self.events
            if isinstance(e, FabricFault) and (kind is None or e.kind == kind)
        )

    # -- derivation ------------------------------------------------------
    def without_worker_death(self, worker: int) -> "FaultPlan":
        """The plan minus ``worker``'s death event (supervisor restarts
        must not die again on the same schedule)."""
        return replace(
            self,
            events=tuple(
                e
                for e in self.events
                if not (isinstance(e, WorkerDeath) and e.worker == worker)
            ),
        )

    def for_shard_block(self, offset: int, n_shards: int) -> "FaultPlan":
        """Re-map global shard indices onto a worker's local block.

        Keeps shard events targeting global shards
        ``[offset, offset + n_shards)`` with their indices shifted to
        worker-local numbering, drops shard events outside the block,
        and keeps worker/fabric events untouched (their indices are
        already global).
        """
        kept: List[FaultEvent] = []
        for event in self.events:
            if isinstance(event, (ShardCrash, ShardSlowdown)):
                if offset <= event.shard < offset + n_shards:
                    kept.append(replace(event, shard=event.shard - offset))
            else:
                kept.append(event)
        return replace(self, events=tuple(kept))


def corrupt_fabric_entries(plan: FaultPlan, root: str) -> int:
    """Apply the plan's ``"corrupt"`` fabric faults to a FileStore root.

    Overwrites every data file in each faulted namespace with garbage
    bytes (a torn write / bad sector stand-in), returning the number of
    files corrupted.  The index is left intact — exactly the dangerous
    shape: the index says the entry exists, the payload is unreadable —
    which :class:`~repro.store.FileStore` must quarantine as misses.
    """
    corrupted = 0
    for fault in plan.fabric_faults("corrupt"):
        ns_dir = os.path.join(root, fault.namespace)
        if not os.path.isdir(ns_dir):
            continue
        for name in sorted(os.listdir(ns_dir)):
            if name.endswith((".pkl", ".json")) and name != "index.json":
                with open(os.path.join(ns_dir, name), "wb") as handle:
                    handle.write(b"\x00corrupt\x00")
                corrupted += 1
    return corrupted


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for failed batch attempts.

    ``backoff(attempt)`` is the simulated delay before re-queueing the
    batch whose 0-based ``attempt`` just failed:
    ``min(base * factor**attempt, cap)``.  After ``max_retries``
    re-executions the batch is abandoned and its requests reported
    failed (reason ``"max_retries"``).
    """

    max_retries: int = 3
    backoff_base: float = 1e-4
    backoff_factor: float = 2.0
    backoff_cap: float = 1e-2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base <= 0 or self.backoff_cap <= 0:
            raise ValueError("backoff base and cap must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff(self, attempt: int) -> float:
        return min(self.backoff_base * self.backoff_factor**attempt, self.backoff_cap)


# ---------------------------------------------------------------------------
# The engine's per-failure log entry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FaultRecord:
    """One failed (or parked) batch attempt in the engine's fault log.

    ``kind`` is what went wrong (``"crash"`` — DOA or mid-flight on a
    crashed shard — or ``"all_shards_down"``), ``action`` what the
    engine did about it: ``"retry"`` (re-queued with backoff),
    ``"abandon"`` (retry budget exhausted, or every survivor was
    deadline-doomed — requests reported failed), ``"park"`` (every
    shard's breaker open; the batch waits, without consuming a retry,
    for the earliest re-admission probe time).  The reconciliation the
    chaos suite pins: every ``"retry"`` action at attempt *a* produces
    exactly one placement or crash record at attempt *a + 1*.
    """

    kind: str
    shard: Optional[int]
    batch_index: int
    at: float
    attempt: int
    action: str
    requests: int = 0
