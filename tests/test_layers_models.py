"""Layer and model tests: forward/infer agreement, training sanity."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.executor import CPWLBackend, FloatBackend, QuantizedFloatBackend
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GELU,
    LayerNorm,
    Linear,
    MaxPool2d,
    Module,
    MultiHeadSelfAttention,
    ReLU,
    Sequential,
    TransformerEncoderLayer,
)
from repro.nn.models import GCN, SmallResNet, TinyBERT
from repro.nn.models.gcn import normalized_adjacency
from repro.nn.training import Adam, SGD, accuracy, train_classifier, train_gcn

RNG = np.random.default_rng(0)
FLOAT = FloatBackend()


def assert_forward_infer_agree(module, x, atol=1e-9):
    module.eval()
    forward = module.forward(Tensor(x)).data
    infer = module.infer(x, FLOAT)
    assert np.allclose(forward, infer, atol=atol)


class TestLayersAgree:
    def test_linear(self):
        layer = Linear(6, 4, RNG)
        assert_forward_infer_agree(layer, RNG.normal(size=(5, 6)))

    def test_conv(self):
        layer = Conv2d(2, 3, 3, RNG, padding=1)
        assert_forward_infer_agree(layer, RNG.normal(size=(2, 2, 6, 6)))

    def test_conv_strided(self):
        layer = Conv2d(2, 3, 3, RNG, stride=2, padding=1)
        assert_forward_infer_agree(layer, RNG.normal(size=(2, 2, 8, 8)))

    def test_batchnorm_eval_mode(self):
        layer = BatchNorm2d(3)
        x = RNG.normal(size=(4, 3, 5, 5))
        layer.train()
        layer.forward(Tensor(x))  # populate running stats
        assert_forward_infer_agree(layer, x, atol=1e-6)

    def test_layernorm(self):
        layer = LayerNorm(8)
        assert_forward_infer_agree(layer, RNG.normal(size=(3, 8)), atol=1e-6)

    def test_activations(self):
        for layer in (ReLU(), GELU()):
            assert_forward_infer_agree(layer, RNG.normal(size=(4, 4)))

    def test_pool_flatten_sequential(self):
        model = Sequential(MaxPool2d(2), Flatten())
        assert_forward_infer_agree(model, RNG.normal(size=(2, 3, 4, 4)))

    def test_attention(self):
        layer = MultiHeadSelfAttention(16, 4, RNG)
        assert_forward_infer_agree(layer, RNG.normal(size=(2, 5, 16)), atol=1e-9)

    def test_attention_head_divisibility(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3, RNG)

    def test_encoder_layer(self):
        layer = TransformerEncoderLayer(16, 4, 32, RNG)
        assert_forward_infer_agree(layer, RNG.normal(size=(2, 5, 16)), atol=1e-6)


class TestModuleMechanics:
    def test_parameters_recursive(self):
        model = Sequential(Linear(4, 8, RNG), ReLU(), Linear(8, 2, RNG))
        assert len(model.parameters()) == 4

    def test_train_eval_propagates(self):
        model = Sequential(BatchNorm2d(2))
        model.eval()
        assert not model.modules[0].training
        model.train()
        assert model.modules[0].training

    def test_zero_grad(self):
        layer = Linear(3, 2, RNG)
        out = layer.forward(Tensor(np.ones((1, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_base_module_abstract(self):
        with pytest.raises(NotImplementedError):
            Module().forward(Tensor(np.zeros(1)))


class TestModels:
    def test_resnet_shapes(self):
        model = SmallResNet(in_channels=3, n_classes=7, seed=0)
        logits = model.forward(Tensor(RNG.normal(size=(4, 3, 8, 8))))
        assert logits.shape == (4, 7)

    def test_resnet_forward_infer_agree(self):
        model = SmallResNet(in_channels=1, n_classes=4, seed=0)
        x = RNG.normal(size=(2, 1, 8, 8))
        model.train()
        model.forward(Tensor(x))  # warm running stats
        model.eval()
        assert np.allclose(model.forward(Tensor(x)).data, model.infer(x, FLOAT), atol=1e-6)

    def test_bert_shapes(self):
        model = TinyBERT(vocab=16, seq_len=8, dim=16, heads=2, ff_dim=32, n_classes=3)
        tokens = RNG.integers(0, 16, size=(5, 8))
        assert model.forward(tokens).shape == (5, 3)
        assert model.infer(tokens, FLOAT).shape == (5, 3)

    def test_bert_forward_infer_agree(self):
        model = TinyBERT(vocab=16, seq_len=8, dim=16, heads=2, ff_dim=32).eval()
        tokens = RNG.integers(0, 16, size=(3, 8))
        assert np.allclose(model.forward(tokens).data, model.infer(tokens, FLOAT), atol=1e-6)

    def test_gcn_shapes_and_agreement(self):
        adj = (RNG.random((20, 20)) < 0.2).astype(float)
        adj = np.maximum(adj, adj.T)
        a_hat = normalized_adjacency(adj)
        model = GCN(in_features=8, hidden=6, n_classes=3).eval()
        feats = RNG.normal(size=(20, 8))
        fwd = model.forward(feats, a_hat).data
        inf = model.infer(feats, a_hat, FLOAT)
        assert fwd.shape == (20, 3)
        assert np.allclose(fwd, inf, atol=1e-9)

    def test_normalized_adjacency_properties(self):
        adj = np.array([[0, 1], [1, 0]], dtype=float)
        a_hat = normalized_adjacency(adj)
        assert np.allclose(a_hat, a_hat.T)
        eigs = np.linalg.eigvalsh(a_hat)
        assert eigs.max() <= 1.0 + 1e-9

    def test_normalized_adjacency_validates(self):
        with pytest.raises(ValueError):
            normalized_adjacency(np.zeros((2, 3)))


class TestTraining:
    def test_sgd_reduces_loss(self):
        layer = Linear(4, 1, np.random.default_rng(1))
        opt = SGD(layer.parameters(), lr=0.05)
        x = RNG.normal(size=(32, 4))
        target = x @ np.array([[1.0], [2.0], [-1.0], [0.5]])
        losses = []
        for _ in range(50):
            opt.zero_grad()
            pred = layer.forward(Tensor(x))
            loss = ((pred - Tensor(target)) ** 2).mean()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < 0.1 * losses[0]

    def test_adam_reduces_loss(self):
        layer = Linear(4, 1, np.random.default_rng(2))
        opt = Adam(layer.parameters(), lr=0.05)
        x = RNG.normal(size=(32, 4))
        target = x @ np.array([[1.0], [2.0], [-1.0], [0.5]])
        losses = []
        for _ in range(60):
            opt.zero_grad()
            loss = ((layer.forward(Tensor(x)) - Tensor(target)) ** 2).mean()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < 0.1 * losses[0]

    def test_train_classifier_improves(self):
        from repro.data.synthetic import make_image_task

        task = make_image_task("t", n_classes=4, noise=0.3, n_train=128, n_test=64, seed=0)
        model = SmallResNet(in_channels=1, n_classes=4, seed=0)
        log = train_classifier(model, task.x_train, task.y_train, epochs=4, lr=3e-3)
        assert log.accuracies[-1] > 0.8
        assert log.losses[-1] < log.losses[0]

    def test_train_gcn_improves(self):
        from repro.data.synthetic import make_graph_task

        task = make_graph_task("g", n_nodes=80, seed=0)
        model = GCN(task.features.shape[1], hidden=8, n_classes=task.n_classes)
        log = train_gcn(model, task.features, task.a_hat, task.labels, task.train_mask, epochs=60)
        assert log.accuracies[-1] > 0.7

    def test_accuracy_helper(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))
